(** XML serialization: the inverse of {!Parser} up to entity and CDATA
    normalisation — [parse ∘ serialize = id] on representable DOM
    values.  Not every DOM value has a faithful XML spelling: XML 1.0
    forbids ["--"] inside comments (and a trailing ["-"]), ["?>"]
    inside PI data, and any parser discards the whitespace separating
    a PI target from its data; an empty text node contributes no bytes,
    so [<t></t>] with only empty text reparses as [<t/>].  The
    serializer canonicalises such values instead of emitting
    unparseable or unstable bytes: forbidden pairs get a space
    inserted, PI data loses its leading whitespace, and empty text
    children are dropped before choosing the self-closing form.
    Serialization is therefore total and idempotent —
    [serialize ∘ parse ∘ serialize = serialize] on every value — which
    byte-keyed consumers (the engine's result cache, the differential
    tests) rely on. *)

(** [escape_text s] escapes ['&'], ['<'] and ['>'] for character data. *)
val escape_text : string -> string

(** [escape_attr s] escapes ['&'], ['<'], ['"'] and control characters
    for a double-quoted attribute value. *)
val escape_attr : string -> string

(** [node_to_buffer ?indent buf n] appends the serialization of [n].
    With [indent] (spaces per level), element-only content is broken
    over lines; mixed content is kept verbatim so that text round-trips
    exactly. *)
val node_to_buffer : ?indent:int -> Buffer.t -> Dom.node -> unit

(** [node_to_string ?indent n] serializes one node. *)
val node_to_string : ?indent:int -> Dom.node -> string

(** [to_string ?indent ?declaration doc] serializes a document;
    [declaration] (default [false]) prepends [<?xml version="1.0"?>]. *)
val to_string : ?indent:int -> ?declaration:bool -> Dom.document -> string

(** [to_file ?indent ?declaration path doc] writes the serialization to
    [path]. *)
val to_file : ?indent:int -> ?declaration:bool -> string -> Dom.document -> unit
