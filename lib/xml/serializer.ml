let escape_into buf s ~attr =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | '\t' when attr -> Buffer.add_string buf "&#9;"
      | '\n' when attr -> Buffer.add_string buf "&#10;"
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf s ~attr:false;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf s ~attr:true;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun { Dom.attr_name; attr_value } ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf attr_name;
      Buffer.add_string buf "=\"";
      escape_into buf attr_value ~attr:true;
      Buffer.add_char buf '"')
    attrs

let has_text_child children =
  List.exists (function Dom.Text _ -> true | _ -> false) children

(* XML 1.0 forbids "--" inside a comment and a "-" at its very end
   (the grammar would terminate early or not at all), and "?>" inside
   PI data; a parser (ours included) also eats the whitespace between
   a PI target and its data.  Such DOM values have no faithful XML
   spelling, so the serializer canonicalises instead of emitting
   unparseable bytes: a space breaks each forbidden pair, and PI data
   sheds its leading whitespace.  Serialization is thereby total and
   idempotent — parse ∘ serialize may normalise once, but
   serialize ∘ parse ∘ serialize = serialize, which is what byte-keyed
   consumers (the engine's result cache) rely on. *)
let add_comment buf s =
  Buffer.add_string buf "<!--";
  String.iteri
    (fun i c ->
      if c = '-' && i > 0 && s.[i - 1] = '-' then Buffer.add_char buf ' ';
      Buffer.add_char buf c)
    s;
  let n = String.length s in
  if n > 0 && s.[n - 1] = '-' then Buffer.add_char buf ' ';
  Buffer.add_string buf "-->"

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let add_pi buf target data =
  let n = String.length data in
  let start = ref 0 in
  while !start < n && is_ws data.[!start] do
    incr start
  done;
  Buffer.add_string buf "<?";
  Buffer.add_string buf target;
  if !start < n then begin
    Buffer.add_char buf ' ';
    for i = !start to n - 1 do
      if data.[i] = '>' && i > !start && data.[i - 1] = '?' then
        Buffer.add_char buf ' ';
      Buffer.add_char buf data.[i]
    done
  end;
  Buffer.add_string buf "?>"

let rec add_node ?indent ~level buf n =
  let pad () =
    match indent with
    | Some w ->
        if level > 0 || Buffer.length buf > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * level) ' ')
    | None -> ()
  in
  match n with
  | Dom.Text s -> escape_into buf s ~attr:false
  | Dom.Comment s ->
      pad ();
      add_comment buf s
  | Dom.Pi (target, data) ->
      pad ();
      add_pi buf target data
  | Dom.Element el ->
      pad ();
      Buffer.add_char buf '<';
      Buffer.add_string buf el.tag;
      add_attrs buf el.attrs;
      (* Empty text nodes produce no bytes, so they must not force the
         <t></t> form: a reparse would read <t/>, and the second
         serialization would differ from the first — breaking
         idempotence (and any byte-keyed cache). *)
      let children =
        List.filter (function Dom.Text "" -> false | _ -> true) el.children
      in
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        (* Mixed content is serialized without added whitespace so the
           text round-trips byte-for-byte. *)
        let child_indent = if has_text_child children then None else indent in
        List.iter
          (fun c -> add_node ?indent:child_indent ~level:(level + 1) buf c)
          children;
        (match (indent, child_indent) with
        | Some w, Some _ ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (w * level) ' ')
        | _ -> ());
        Buffer.add_string buf "</";
        Buffer.add_string buf el.tag;
        Buffer.add_char buf '>'
      end

let node_to_buffer ?indent buf n = add_node ?indent ~level:0 buf n

let node_to_string ?indent n =
  let buf = Buffer.create 256 in
  node_to_buffer ?indent buf n;
  Buffer.contents buf

let to_string ?indent ?(declaration = false) (doc : Dom.document) =
  let buf = Buffer.create 1024 in
  if declaration then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  List.iter
    (fun n ->
      node_to_buffer ?indent buf n;
      Buffer.add_char buf '\n')
    doc.prolog;
  node_to_buffer ?indent buf (Dom.Element doc.root);
  List.iter
    (fun n ->
      Buffer.add_char buf '\n';
      node_to_buffer ?indent buf n)
    doc.epilog;
  Buffer.contents buf

let to_file ?indent ?declaration path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?indent ?declaration doc))
