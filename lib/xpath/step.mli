(** Loop-lifted XPath steps over sequence tables.

    A step takes the [iter|pos|item] table of context nodes (as left by
    the previous step or FLWOR binding) and produces the result table,
    duplicate-free and in document order per iteration.  Contexts that
    span several documents are partitioned per document first — steps
    never match across fragments. *)

(** Raised when a context item is not a node. *)
exception Not_a_node of Standoff_relalg.Item.t

(** [positional t k] keeps the [k]-th row of every iteration group of
    [t] — the fused form of a literal positional predicate over a
    step result (which is duplicate-free and in document order per
    iteration, so group row rank is the XPath position). *)
val positional : Standoff_relalg.Table.t -> int -> Standoff_relalg.Table.t

(** [axis_step coll axis ?position ~test context] evaluates a standard
    axis step; [position] is a fused positional predicate applied to
    the result.  Attribute items in the context contribute only to the
    [Parent] axis (their owner element); they have no descendants or
    siblings. *)
val axis_step :
  Standoff_store.Collection.t ->
  Axes.axis ->
  ?position:int ->
  test:Node_test.t ->
  Standoff_relalg.Table.t ->
  Standoff_relalg.Table.t

(** [attribute_step coll ~test context] evaluates [attribute::test],
    producing [Attribute] items in attribute-name order per owner. *)
val attribute_step :
  Standoff_store.Collection.t ->
  test:Node_test.t ->
  Standoff_relalg.Table.t ->
  Standoff_relalg.Table.t
