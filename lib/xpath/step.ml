module Vec = Standoff_util.Vec
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table

exception Not_a_node of Item.t

(* Split the context table into per-document row streams, preserving
   (iter, pre) order within each document.  Attribute items map to
   their owner for the Parent axis and vanish otherwise; the document
   node participates like any other node. *)
let partition_by_doc (context : Table.t) ~keep_attribute_owner =
  let by_doc : (int, (int Vec.t * int Vec.t)) Hashtbl.t = Hashtbl.create 4 in
  let doc_ids = Vec.create () in
  let push doc_id iter pre =
    let iters, pres =
      match Hashtbl.find_opt by_doc doc_id with
      | Some cols -> cols
      | None ->
          let cols = (Vec.create (), Vec.create ()) in
          Hashtbl.add by_doc doc_id cols;
          Vec.push doc_ids doc_id;
          cols
    in
    Vec.push iters iter;
    Vec.push pres pre
  in
  for r = 0 to Table.row_count context - 1 do
    let iter = Table.iter_at context r in
    match Table.item_at context r with
    | Item.Node n -> push n.Collection.doc_id iter n.Collection.pre
    | Item.Attribute (owner, _, _) ->
        if keep_attribute_owner then
          push owner.Collection.doc_id iter owner.Collection.pre
    | (Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _) as item ->
        raise (Not_a_node item)
  done;
  let ids = Vec.to_array doc_ids in
  Array.sort compare ids;
  Array.to_list ids
  |> List.map (fun doc_id ->
         let iters, pres = Hashtbl.find by_doc doc_id in
         (doc_id, Vec.to_array iters, Vec.to_array pres))

(* A fused positional predicate: keep the [k]-th row of every
   iteration group.  Step results are per-iteration duplicate-free and
   in document order, so row rank within the group {e is} the XPath
   position. *)
let positional (t : Table.t) k =
  if k < 1 then Table.of_rows []
  else begin
    let rows = ref [] in
    let n = Table.row_count t in
    let r = ref 0 in
    while !r < n do
      let iter = Table.iter_at t !r in
      let lo = !r in
      while !r < n && Table.iter_at t !r = iter do
        incr r
      done;
      if lo + k - 1 < !r then
        rows := (iter, Table.item_at t (lo + k - 1)) :: !rows
    done;
    Table.of_rows (List.rev !rows)
  end

let axis_step coll axis ?position ~test (context : Table.t) =
  let keep_attribute_owner = axis = Axes.Parent in
  let parts = partition_by_doc context ~keep_attribute_owner in
  let tables =
    List.map
      (fun (doc_id, context_iters, context_pres) ->
        let doc = Collection.doc coll doc_id in
        let out_iters, out_pres =
          Axes.eval_lifted doc axis ~context_iters ~context_pres ~test
        in
        let items =
          Array.map (fun pre -> Item.Node { Collection.doc_id; pre }) out_pres
        in
        Table.make out_iters items)
      parts
  in
  (* Folding in ascending doc id keeps each iteration's sequence in
     global document order; per-document results are already sorted and
     duplicate-free. *)
  let out = Table.concat tables in
  match position with None -> out | Some k -> positional out k

let attribute_step coll ~test (context : Table.t) =
  let rows = ref [] in
  for r = Table.row_count context - 1 downto 0 do
    let iter = Table.iter_at context r in
    match Table.item_at context r with
    | Item.Node n ->
        let doc = Collection.doc coll n.Collection.doc_id in
        if Doc.kind_of doc n.Collection.pre = Doc.Element then
          List.iter
            (fun (name, value) ->
              if Node_test.matches_attribute test name then
                rows := (iter, Item.Attribute (n, name, value)) :: !rows)
            (Doc.attributes doc n.Collection.pre)
    | Item.Attribute _ | Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _
      ->
        ()
  done;
  Table.distinct_doc_order (Table.of_rows !rows)
