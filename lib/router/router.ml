module Http = Standoff_server.Http
module Metrics = Standoff_obs.Metrics
module Timing = Standoff_util.Timing

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let m_requests code =
  Metrics.counter "standoff_router_requests_total"
    ~labels:[ ("code", string_of_int code) ]
    ~help:"Router responses by status code"

let count_response code = Metrics.incr (m_requests code)

let m_restarts shard =
  Metrics.counter "standoff_router_shard_restarts_total"
    ~labels:[ ("shard", shard) ]
    ~help:"Managed shard processes restarted after a crash"

let m_proxied shard =
  Metrics.counter "standoff_router_proxied_total"
    ~labels:[ ("shard", shard) ]
    ~help:"Requests proxied to this shard"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  host : string;
  port : int;
  max_body_bytes : int;
  max_conns : int;
  auth_token : string option;
  shard_token : string option;
  shard_timeout_s : float;
  probe_interval_s : float;
  retry_after_s : int;
  vnodes : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    max_body_bytes = 64 * 1024 * 1024;
    max_conns = 128;
    auth_token = None;
    shard_token = None;
    shard_timeout_s = 30.0;
    probe_interval_s = 0.25;
    retry_after_s = 1;
    vnodes = 160;
  }

type shard_spec = {
  sp_name : string;
  sp_host : string;
  sp_port : int;
  sp_spawn : (string * string array) option;
}

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)

type health = Starting | Ready | Down

let health_label = function
  | Starting -> "starting"
  | Ready -> "ready"
  | Down -> "down"

type shard = {
  name : string;
  host : string;
  port : int;
  spawn : (string * string array) option;
  sm : Mutex.t;  (* guards [pid], [health], [restarts] *)
  mutable pid : int option;
  mutable health : health;
  mutable restarts : int;
}

type state = Created | Running | Stopped

type t = {
  cfg : config;
  shards : shard array;
  ring : Chash.t;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  active_conns : int Atomic.t;
  mutable acceptor : Thread.t option;
  mutable monitors : Thread.t list;
  mutable state : state;
  state_m : Mutex.t;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let create ?(config = default_config) specs =
  if specs = [] then invalid_arg "Router.create: no shards";
  let ring =
    Chash.create ~vnodes:config.vnodes (List.map (fun s -> s.sp_name) specs)
  in
  let shards =
    Array.of_list
      (List.map
         (fun s ->
           {
             name = s.sp_name;
             host = s.sp_host;
             port = s.sp_port;
             spawn = s.sp_spawn;
             sm = Mutex.create ();
             pid = None;
             health = Starting;
             restarts = 0;
           })
         specs)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen fd 128
   with e ->
     close_noerr fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  {
    cfg = config;
    shards;
    ring;
    listen_fd = fd;
    wake_r;
    wake_w;
    bound_port;
    stopping = Atomic.make false;
    active_conns = Atomic.make 0;
    acceptor = None;
    monitors = [];
    state = Created;
    state_m = Mutex.create ();
  }

let port t = t.bound_port
let shard_of_doc t doc = Chash.shard t.ring doc

let shard_by_name t name =
  let found = ref None in
  Array.iter (fun sh -> if sh.name = name then found := Some sh) t.shards;
  match !found with
  | Some sh -> sh
  | None -> invalid_arg ("Router: unknown shard " ^ name)

let shard_health sh =
  Mutex.lock sh.sm;
  let h = sh.health in
  Mutex.unlock sh.sm;
  h

let ready t =
  (not (Atomic.get t.stopping))
  && Array.for_all (fun sh -> shard_health sh = Ready) t.shards

(* ------------------------------------------------------------------ *)
(* Talking to shards                                                   *)

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let connect_shard ?(timeout_s = 5.0) sh =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Unix.connect fd (Unix.ADDR_INET (resolve sh.host, sh.port));
    Some fd
  with Unix.Unix_error _ | Not_found ->
    close_noerr fd;
    None

(* The headers the router sends a shard.  Its own token wins; failing
   that, the client's Authorization header passes through, so an
   unmanaged topology can still run end-to-end token-protected. *)
let shard_headers t (req : Http.request option) =
  match t.cfg.shard_token with
  | Some tok -> [ ("Authorization", "Bearer " ^ tok) ]
  | None -> (
      match req with
      | Some req -> (
          match Http.header req "authorization" with
          | Some v -> [ ("Authorization", v) ]
          | None -> [])
      | None -> [])

(* One buffered round-trip to a shard; [None] when it cannot be
   reached or answers garbage. *)
let shard_call ?req ?(timeout_s = 5.0) t sh ~meth ~target body =
  match connect_shard ~timeout_s sh with
  | None -> None
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          try
            Http.write_request fd ~meth ~target ~headers:(shard_headers t req)
              body;
            Some (Http.read_response (Http.reader fd))
          with Http.Closed | Http.Bad_request _ | Unix.Unix_error _ -> None)

let probe_ready t sh =
  match
    shard_call ~timeout_s:2.0 t sh ~meth:"GET" ~target:"/healthz?ready=1" ""
  with
  | Some { Http.status = 200; _ } -> true
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Supervision                                                         *)

let spawn_shard sh =
  match sh.spawn with
  | None -> ()
  | Some (prog, argv) ->
      let pid =
        Unix.create_process prog argv Unix.stdin Unix.stdout Unix.stderr
      in
      Mutex.lock sh.sm;
      sh.pid <- Some pid;
      sh.health <- Starting;
      Mutex.unlock sh.sm

(* A sleep the stop path can cut short. *)
let rec nap t s =
  if s > 0.0 && not (Atomic.get t.stopping) then begin
    Thread.delay (Float.min s 0.1);
    nap t (s -. 0.1)
  end

let status_label = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

(* One supervisor thread per shard: reap a dead managed process and
   respawn it with exponential backoff; drive [health] off the
   readiness probe either way.  A freshly respawned shard stays
   [Starting] — its requests answer 503 — until it has replayed its
   WAL and its own [/healthz?ready=1] turns 200. *)
let monitor t sh =
  let backoff = ref 0.2 in
  while not (Atomic.get t.stopping) do
    (match sh.pid with
    | Some pid -> (
        let dead =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> None
          | _, st -> Some (status_label st)
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Some "gone"
        in
        match dead with
        | None -> ()
        | Some label ->
            Mutex.lock sh.sm;
            sh.pid <- None;
            sh.health <- Down;
            sh.restarts <- sh.restarts + 1;
            Mutex.unlock sh.sm;
            Metrics.incr (m_restarts sh.name);
            Printf.eprintf
              "standoff-router: shard %s died (%s); restarting in %.1fs\n%!"
              sh.name label !backoff;
            nap t !backoff;
            backoff := Float.min 5.0 (!backoff *. 2.0);
            if not (Atomic.get t.stopping) then spawn_shard sh)
    | None -> ());
    let up = probe_ready t sh in
    Mutex.lock sh.sm;
    (if up then sh.health <- Ready
     else
       match sh.health with
       | Ready -> sh.health <- Down
       | (Starting | Down) as h -> sh.health <- h);
    Mutex.unlock sh.sm;
    if up then backoff := 0.2;
    nap t t.cfg.probe_interval_s
  done

let terminate_children ~grace_s t =
  let living () =
    Array.to_list t.shards
    |> List.filter_map (fun sh ->
           Mutex.lock sh.sm;
           let p = sh.pid in
           Mutex.unlock sh.sm;
           Option.map (fun pid -> (sh, pid)) p)
  in
  let signal signum (_, pid) =
    try Unix.kill pid signum with Unix.Unix_error _ -> ()
  in
  let reap (sh, pid) =
    let gone =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
    in
    if gone then begin
      Mutex.lock sh.sm;
      sh.pid <- None;
      Mutex.unlock sh.sm
    end
  in
  List.iter (signal Sys.sigterm) (living ());
  let deadline = Timing.now () +. grace_s in
  let rec drain () =
    if living () <> [] && Timing.now () < deadline then begin
      List.iter reap (living ());
      if living () <> [] then Thread.delay 0.05;
      drain ()
    end
  in
  drain ();
  (* Whatever ignored the term gets the kill, and a blocking reap —
     the process entry must not outlive the router. *)
  List.iter (signal Sys.sigkill) (living ());
  List.iter
    (fun (sh, pid) ->
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      Mutex.lock sh.sm;
      sh.pid <- None;
      Mutex.unlock sh.sm)
    (living ())

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

(* Raised by handlers; turned into a buffered JSON error reply. *)
exception Reply of int * (string * string) list * string

let fail ?(headers = []) status msg = raise (Reply (status, headers, msg))

let json_error_body msg =
  Printf.sprintf "{\"error\": \"%s\"}\n" (Metrics.json_escape msg)

let respond fd ~keep_alive ?(headers = [])
    ?(content_type = "application/json") status body =
  count_response status;
  Http.write_response fd ~status ~headers ~content_type ~keep_alive body;
  keep_alive

let unavailable t msg =
  fail 503 ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ] msg

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

(* The doc("…") / doc('…') references in a query text — the routing
   key when no [?context=] is given.  A scan, not a parse: false
   positives inside comments or string literals only ever make routing
   stricter (more references that must agree), never wrong. *)
let doc_refs text =
  let n = String.length text in
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
    | _ -> false
  in
  let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false in
  let refs = ref [] in
  let i = ref 0 in
  while !i + 3 <= n do
    if
      String.sub text !i 3 = "doc"
      && (!i = 0 || not (is_name_char text.[!i - 1]))
      && (!i + 3 >= n || not (is_name_char text.[!i + 3]))
    then begin
      let j = ref (!i + 3) in
      while !j < n && is_ws text.[!j] do
        incr j
      done;
      if !j < n && text.[!j] = '(' then begin
        incr j;
        while !j < n && is_ws text.[!j] do
          incr j
        done;
        if !j < n && (text.[!j] = '"' || text.[!j] = '\'') then begin
          let q = text.[!j] in
          incr j;
          let start = !j in
          while !j < n && text.[!j] <> q do
            incr j
          done;
          if !j < n then begin
            refs := String.sub text start (!j - start) :: !refs;
            i := !j
          end
        end
      end
    end;
    incr i
  done;
  List.sort_uniq String.compare !refs

(* Where a query goes: the [?context=] document wins; else every
   [doc("…")] reference must land on the same shard; a reference-free
   query is only routable when there is just one shard. *)
let query_shard t (req : Http.request) =
  match Http.param req "context" with
  | Some c -> shard_by_name t (shard_of_doc t c)
  | None -> (
      match doc_refs req.Http.body with
      | [] ->
          if Array.length t.shards = 1 then t.shards.(0)
          else
            fail 400
              "cannot route: query references no document (use ?context= or \
               doc(\"...\"))"
      | refs -> (
          match
            List.sort_uniq String.compare (List.map (shard_of_doc t) refs)
          with
          | [ name ] -> shard_by_name t name
          | names ->
              fail 400
                (Printf.sprintf
                   "cannot route: documents span shards %s — a query runs on \
                    one shard"
                   (String.concat ", " names))))

(* ------------------------------------------------------------------ *)
(* Proxying                                                            *)

(* Forwardable response headers: the diagnostics the shard stamps on
   its replies ([X-Request-Id], [X-Standoff-Cache], …).  Hop-by-hop
   and framing headers never pass through — the router does its own
   framing. *)
let relay_headers (head : Http.response_head) =
  List.filter
    (fun (n, _) -> String.length n > 2 && String.sub n 0 2 = "x-")
    head.Http.h_headers

let head_content_type (head : Http.response_head) =
  match List.assoc_opt "content-type" head.Http.h_headers with
  | Some ct -> ct
  | None -> "text/plain; charset=utf-8"

(* Pipe one request to [sh] and its response back, re-chunked, as the
   bytes arrive — the router never buffers more than the chunk-writer
   threshold of the body.  A shard failing before its status line is a
   502; one dying mid-body aborts the client's chunk stream without
   the terminator, the same truncation signal the shard itself
   uses. *)
let proxy t client_fd ~keep_alive sh (req : Http.request) =
  (match shard_health sh with
  | Ready -> ()
  | Starting | Down ->
      unavailable t
        (Printf.sprintf "shard %s is not ready (recovering or down)" sh.name));
  let fd =
    match connect_shard ~timeout_s:t.cfg.shard_timeout_s sh with
    | Some fd -> fd
    | None ->
        unavailable t (Printf.sprintf "shard %s refused connection" sh.name)
  in
  Metrics.incr (m_proxied sh.name);
  Fun.protect
    ~finally:(fun () -> close_noerr fd)
    (fun () ->
      let r = Http.reader fd in
      let head =
        try
          Http.write_request fd ~meth:req.Http.meth ~target:req.Http.target
            ~headers:(shard_headers t (Some req))
            req.Http.body;
          Http.read_response_head r
        with
        | Http.Closed | Http.Bad_request _ ->
            fail 502 (Printf.sprintf "shard %s: bad response" sh.name)
        | Unix.Unix_error (e, _, _) ->
            fail 502
              (Printf.sprintf "shard %s: %s" sh.name (Unix.error_message e))
      in
      (* Committed: from here on a failure can only truncate. *)
      count_response head.Http.h_status;
      Http.write_response_head client_fd ~status:head.Http.h_status
        ~headers:(("X-Standoff-Shard", sh.name) :: relay_headers head)
        ~content_type:(head_content_type head) ~keep_alive ();
      let w = Http.chunk_writer client_fd in
      match Http.iter_response_body r head (Http.chunk w) with
      | () ->
          Http.chunk_end w;
          keep_alive
      | exception exn ->
          Printf.eprintf
            "standoff-router: stream from shard %s aborted: %s\n%!" sh.name
            (Printexc.to_string exn);
          false)

(* ------------------------------------------------------------------ *)
(* Fan-out endpoints                                                   *)

(* Frame scan for bulk ingest: [<name> <length>\n] then exactly
   [length] payload bytes, whitespace between frames skipped — the
   same framing the server accepts, so sub-batches are rebuilt
   verbatim. *)
let scan_frames body on_part =
  let n = String.length body in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n
      && match body.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  skip_ws ();
  if !pos >= n then fail 400 "empty ingest body";
  while !pos < n do
    let nl =
      match String.index_from_opt body !pos '\n' with
      | Some i -> i
      | None -> fail 400 "truncated ingest frame header"
    in
    let header = String.trim (String.sub body !pos (nl - !pos)) in
    let name, len =
      match String.rindex_opt header ' ' with
      | Some i -> (
          let name = String.trim (String.sub header 0 i) in
          let len_s =
            String.sub header (i + 1) (String.length header - i - 1)
          in
          match int_of_string_opt len_s with
          | Some l when l >= 0 && name <> "" -> (name, l)
          | _ ->
              fail 400
                (Printf.sprintf "malformed ingest frame header %S" header))
      | None ->
          fail 400
            (Printf.sprintf
               "malformed ingest frame header %S (want \"<name> <length>\")"
               header)
    in
    if nl + 1 + len > n then
      fail 400 (Printf.sprintf "ingest frame %S: payload truncated" name);
    on_part name (String.sub body (nl + 1) len);
    pos := nl + 1 + len;
    skip_ws ()
  done

(* Split a framed batch per shard and forward the sub-batches.  Each
   shard's ingest is atomic, so per-document outcomes are the outcome
   of the owning shard's sub-batch; the answer lists every document
   with its shard and status — partial failure is visible per
   document, and the overall status is 200 only when every sub-batch
   landed. *)
let handle_ingest t client_fd ~keep_alive (req : Http.request) =
  match Http.param req "name" with
  | Some name ->
      proxy t client_fd ~keep_alive (shard_by_name t (shard_of_doc t name)) req
  | None ->
      let per_shard : (string, Buffer.t * string list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let order = ref [] in
      scan_frames req.Http.body (fun name payload ->
          let sname = shard_of_doc t name in
          let buf, docs =
            match Hashtbl.find_opt per_shard sname with
            | Some e -> e
            | None ->
                let e = (Buffer.create 1024, ref []) in
                Hashtbl.add per_shard sname e;
                order := sname :: !order;
                e
          in
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" name (String.length payload));
          Buffer.add_string buf payload;
          Buffer.add_char buf '\n';
          docs := name :: !docs);
      let order = List.rev !order in
      let forward sname =
        let sh = shard_by_name t sname in
        let buf, docs = Hashtbl.find per_shard sname in
        let docs = List.rev !docs in
        try
          match shard_health sh with
          | Starting | Down -> (sname, docs, 503, "shard not ready")
          | Ready -> (
              match
                shard_call ~req ~timeout_s:t.cfg.shard_timeout_s t sh
                  ~meth:"POST" ~target:req.Http.target (Buffer.contents buf)
              with
              | None -> (sname, docs, 502, "shard unreachable")
              | Some resp ->
                  (sname, docs, resp.Http.status, String.trim resp.Http.r_body))
        with e -> (sname, docs, 500, Printexc.to_string e)
      in
      (* The sub-batches fan out in parallel, one thread per shard:
         a sharded ingest scales precisely because N WALs fsync at
         once, so forwarding them sequentially would forfeit the
         point.  [forward] never raises past its own handler, and
         each thread writes a distinct slot. *)
      let order_a = Array.of_list order in
      let results_a =
        Array.map (fun sname -> (sname, ([] : string list), 500, "")) order_a
      in
      let threads =
        Array.mapi
          (fun i sname ->
            Thread.create (fun () -> results_a.(i) <- forward sname) ())
          order_a
      in
      Array.iter Thread.join threads;
      let results = Array.to_list results_a in
      let all_ok = List.for_all (fun (_, _, st, _) -> st = 200) results in
      let docs_json =
        results
        |> List.concat_map (fun (sname, docs, st, _) ->
               List.map
                 (fun d ->
                   Printf.sprintf
                     "{\"name\": \"%s\", \"shard\": \"%s\", \"ok\": %b, \
                      \"status\": %d}"
                     (Metrics.json_escape d) (Metrics.json_escape sname)
                     (st = 200) st)
                 docs)
        |> String.concat ", "
      in
      let shards_json =
        results
        |> List.map (fun (sname, _, st, body) ->
               Printf.sprintf
                 "{\"shard\": \"%s\", \"status\": %d, \"response\": \"%s\"}"
                 (Metrics.json_escape sname) st (Metrics.json_escape body))
        |> String.concat ", "
      in
      respond client_fd ~keep_alive
        (if all_ok then 200 else 502)
        (Printf.sprintf
           "{\"ok\": %b, \"docs\": [%s], \"shards\": [%s]}\n" all_ok docs_json
           shards_json)

(* Broadcast: every shard snapshots; 200 only when all do. *)
let handle_snapshot t client_fd ~keep_alive (req : Http.request) =
  let results =
    Array.to_list t.shards
    |> List.map (fun sh ->
           match shard_health sh with
           | Starting | Down -> (sh.name, 503, "shard not ready")
           | Ready -> (
               match
                 shard_call ~req ~timeout_s:t.cfg.shard_timeout_s t sh
                   ~meth:"POST" ~target:req.Http.target req.Http.body
               with
               | None -> (sh.name, 502, "shard unreachable")
               | Some r -> (sh.name, r.Http.status, String.trim r.Http.r_body)))
  in
  let all_ok = List.for_all (fun (_, st, _) -> st = 200) results in
  let body =
    results
    |> List.map (fun (name, st, resp) ->
           Printf.sprintf
             "{\"shard\": \"%s\", \"status\": %d, \"response\": \"%s\"}"
             (Metrics.json_escape name) st (Metrics.json_escape resp))
    |> String.concat ", "
  in
  respond client_fd ~keep_alive
    (if all_ok then 200 else 502)
    (Printf.sprintf "{\"ok\": %b, \"shards\": [%s]}\n" all_ok body)

(* Inject [shard="…"] into one Prometheus sample line; comment lines
   are dropped (duplicate HELP/TYPE across shards would be invalid
   exposition anyway). *)
let relabel_line ~shard line =
  if line = "" || line.[0] = '#' then None
  else
    match String.index_opt line ' ' with
    | None -> None
    | Some sp -> (
        let label = Printf.sprintf "shard=\"%s\"" shard in
        match String.index_opt line '{' with
        | Some b when b < sp ->
            Some
              (String.sub line 0 (b + 1)
              ^ label ^ ","
              ^ String.sub line (b + 1) (String.length line - b - 1))
        | _ ->
            Some
              (String.sub line 0 sp ^ "{" ^ label ^ "}"
              ^ String.sub line sp (String.length line - sp)))

let handle_metrics t client_fd ~keep_alive _req =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Metrics.expose ());
  Array.iter
    (fun sh ->
      let up =
        match
          shard_call ~timeout_s:2.0 t sh ~meth:"GET" ~target:"/metrics" ""
        with
        | Some { Http.status = 200; r_body; _ } ->
            List.iter
              (fun line ->
                match
                  relabel_line ~shard:(Metrics.escape_label_value sh.name) line
                with
                | Some l ->
                    Buffer.add_string buf l;
                    Buffer.add_char buf '\n'
                | None -> ())
              (String.split_on_char '\n' r_body);
            1
        | Some _ | None -> 0
      in
      Buffer.add_string buf
        (Printf.sprintf "standoff_router_shard_up{shard=\"%s\"} %d\n"
           (Metrics.escape_label_value sh.name)
           up))
    t.shards;
  respond client_fd ~keep_alive
    ~content_type:"text/plain; version=0.0.4; charset=utf-8" 200
    (Buffer.contents buf)

let handle_shards t client_fd ~keep_alive _req =
  let body =
    Array.to_list t.shards
    |> List.map (fun sh ->
           Mutex.lock sh.sm;
           let health = sh.health
           and restarts = sh.restarts
           and pid = sh.pid in
           Mutex.unlock sh.sm;
           Printf.sprintf
             "{\"name\": \"%s\", \"host\": \"%s\", \"port\": %d, \
              \"managed\": %b, \"health\": \"%s\", \"restarts\": %d%s}"
             (Metrics.json_escape sh.name)
             (Metrics.json_escape sh.host)
             sh.port (sh.spawn <> None) (health_label health) restarts
             (match pid with
             | Some p -> Printf.sprintf ", \"pid\": %d" p
             | None -> ""))
    |> String.concat ", "
  in
  respond client_fd ~keep_alive 200
    (Printf.sprintf "{\"vnodes\": %d, \"shards\": [%s]}\n"
       (Chash.vnodes t.ring) body)

let handle_healthz t client_fd ~keep_alive (req : Http.request) =
  let want_ready =
    match Http.param req "ready" with
    | None -> false
    | Some v -> (
        match String.lowercase_ascii (String.trim v) with
        | "off" | "0" | "false" | "no" -> false
        | _ -> true)
  in
  if not want_ready then
    respond client_fd ~keep_alive ~content_type:"text/plain; charset=utf-8" 200
      "ok\n"
  else
    let laggards =
      Array.to_list t.shards
      |> List.filter (fun sh -> shard_health sh <> Ready)
      |> List.map (fun sh -> sh.name)
    in
    if laggards = [] && not (Atomic.get t.stopping) then
      respond client_fd ~keep_alive ~content_type:"text/plain; charset=utf-8"
        200 "ready\n"
    else
      respond client_fd ~keep_alive
        ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ]
        ~content_type:"text/plain; charset=utf-8" 503
        (if Atomic.get t.stopping then "draining\n"
         else
           Printf.sprintf "not ready: %s\n" (String.concat ", " laggards))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let protected_path path =
  match path with
  | "/query" | "/update" | "/ingest" -> true
  | _ -> String.length path >= 7 && String.sub path 0 7 = "/admin/"

let authorized t (req : Http.request) =
  match t.cfg.auth_token with
  | None -> true
  | Some token when protected_path req.Http.path -> (
      match Http.bearer_token req.Http.headers with
      | Some presented -> Http.const_time_eq token presented
      | None -> false)
  | Some _ -> true

let known_paths =
  [
    ("/query", [ "POST" ]);
    ("/update", [ "POST" ]);
    ("/ingest", [ "POST" ]);
    ("/admin/snapshot", [ "POST" ]);
    ("/metrics", [ "GET" ]);
    ("/shards", [ "GET" ]);
    ("/healthz", [ "GET" ]);
  ]

let handle t client_fd ~keep_alive (req : Http.request) =
  try
    if not (authorized t req) then
      respond client_fd ~keep_alive
        ~headers:[ ("WWW-Authenticate", "Bearer") ]
        401
        (json_error_body "missing or invalid bearer token")
    else
      match (req.Http.meth, req.Http.path) with
      | "GET", "/healthz" -> handle_healthz t client_fd ~keep_alive req
      | "GET", "/metrics" -> handle_metrics t client_fd ~keep_alive req
      | "GET", "/shards" -> handle_shards t client_fd ~keep_alive req
      | "POST", "/query" ->
          proxy t client_fd ~keep_alive (query_shard t req) req
      | "POST", "/update" ->
          let doc =
            match Http.param req "doc" with
            | Some d -> d
            | None -> fail 400 "missing required doc parameter"
          in
          proxy t client_fd ~keep_alive
            (shard_by_name t (shard_of_doc t doc))
            req
      | "POST", "/ingest" -> handle_ingest t client_fd ~keep_alive req
      | "POST", "/admin/snapshot" -> handle_snapshot t client_fd ~keep_alive req
      | meth, path -> (
          match List.assoc_opt path known_paths with
          | Some allowed ->
              respond client_fd ~keep_alive
                ~headers:[ ("Allow", String.concat ", " allowed) ]
                405
                (json_error_body ("method not allowed: " ^ meth))
          | None -> respond client_fd ~keep_alive 404
                      (json_error_body ("no such endpoint: " ^ path)))
  with
  | Reply (status, headers, msg) ->
      respond client_fd ~keep_alive ~headers status (json_error_body msg)
  | Unix.Unix_error _ as e -> raise e
  | exn -> (
      Printf.eprintf "standoff-router: internal error on %s %s: %s\n%!"
        req.Http.meth req.Http.target (Printexc.to_string exn);
      try
        respond client_fd ~keep_alive:false 500
          (json_error_body "internal router error")
      with Unix.Unix_error _ -> false)

(* ------------------------------------------------------------------ *)
(* Connection serving                                                  *)

let serve_connection t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
     (* Proxied replies leave as head + chunks in separate small
        writes; without TCP_NODELAY, Nagle holds each one for the
        peer's delayed ACK (~40ms per routed request). *)
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let reader = Http.reader fd in
  let continue = ref true in
  while !continue do
    continue := false;
    match Http.read_request ~max_body:t.cfg.max_body_bytes reader with
    | exception Http.Closed -> ()
    | exception
        Unix.Unix_error
          ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET | EPIPE | EBADF), _, _)
      ->
        ()
    | exception Http.Bad_request msg -> (
        try ignore (respond fd ~keep_alive:false 400 (json_error_body msg))
        with Unix.Unix_error _ -> ())
    | exception Http.Not_implemented msg -> (
        try ignore (respond fd ~keep_alive:false 501 (json_error_body msg))
        with Unix.Unix_error _ -> ())
    | exception Http.Payload_too_large cap -> (
        try
          ignore
            (respond fd ~keep_alive:false 413
               (json_error_body
                  (Printf.sprintf "request body exceeds %d bytes" cap)))
        with Unix.Unix_error _ -> ())
    | req -> (
        let keep_alive =
          Http.wants_keep_alive req && not (Atomic.get t.stopping)
        in
        match handle t fd ~keep_alive req with
        | ka -> continue := ka
        | exception Unix.Unix_error _ -> ())
  done

let shed t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
     ignore
       (respond fd ~keep_alive:false
          ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ]
          503
          (json_error_body "router overloaded"))
   with Unix.Unix_error _ -> ());
  close_noerr fd

let rec accept_loop t =
  if Atomic.get t.stopping then ()
  else
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error ((EINTR | EAGAIN), _, _) -> accept_loop t
    | exception Unix.Unix_error (EBADF, _, _) -> ()
    | ready_fds, _, _ ->
        if List.mem t.wake_r ready_fds then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ((EBADF | EINVAL | ECONNABORTED | EINTR | EAGAIN), _, _) ->
              ()
          | fd, _ ->
              if Atomic.get t.stopping then close_noerr fd
              else if Atomic.get t.active_conns >= t.cfg.max_conns then
                shed t fd
              else begin
                Atomic.incr t.active_conns;
                ignore
                  (Thread.create
                     (fun fd ->
                       Fun.protect
                         ~finally:(fun () ->
                           close_noerr fd;
                           Atomic.decr t.active_conns)
                         (fun () ->
                           try serve_connection t fd
                           with exn ->
                             Printf.eprintf "standoff-router: connection: %s\n%!"
                               (Printexc.to_string exn)))
                     fd)
              end);
          accept_loop t
        end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start t =
  Mutex.lock t.state_m;
  (match t.state with
  | Created -> t.state <- Running
  | _ ->
      Mutex.unlock t.state_m;
      invalid_arg "Standoff_router.Router.start: already started");
  Mutex.unlock t.state_m;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Array.iter spawn_shard t.shards;
  t.monitors <-
    Array.to_list
      (Array.map (fun sh -> Thread.create (fun () -> monitor t sh) ()) t.shards);
  t.acceptor <- Some (Thread.create accept_loop t)

let stop ?(grace_s = 5.0) t =
  let prev =
    Mutex.lock t.state_m;
    let p = t.state in
    t.state <- Stopped;
    Mutex.unlock t.state_m;
    p
  in
  match prev with
  | Stopped -> ()
  | Created ->
      close_noerr t.listen_fd;
      close_noerr t.wake_r;
      close_noerr t.wake_w
  | Running ->
      Atomic.set t.stopping true;
      (try ignore (Unix.write_substring t.wake_w "x" 0 1)
       with Unix.Unix_error _ -> ());
      (match t.acceptor with Some th -> Thread.join th | None -> ());
      close_noerr t.listen_fd;
      close_noerr t.wake_r;
      close_noerr t.wake_w;
      (* Let in-flight proxying drain; connection threads exit on
         their own once their client goes away or times out. *)
      let deadline = Timing.now () +. grace_s in
      while Atomic.get t.active_conns > 0 && Timing.now () < deadline do
        Thread.delay 0.02
      done;
      List.iter Thread.join t.monitors;
      t.monitors <- [];
      terminate_children ~grace_s t
