(** Consistent hashing of document names onto shards.

    The classic ring: every shard contributes [vnodes] points (hashes
    of ["name#i"]), a key maps to the first point clockwise from its
    own hash.  Two properties matter to the router:

    - {b determinism}: the ring depends only on the shard names and
      the vnode count, so every router process — including one
      restarted mid-flight — computes the same placement;
    - {b stability}: adding or removing one shard of [n] moves about
      [1/n] of the keys (the arcs the new shard's points capture), not
      a wholesale reshuffle — so growing a deployment re-ingests a
      fraction of the corpus, not all of it.

    Hashing is MD5 ([Digest.string], first 8 bytes as an unsigned
     64-bit point) — no cryptographic claim, just a well-mixed stable
    hash available in the stdlib. *)

type t

(** [create ?vnodes names] builds the ring.  [vnodes] (default 160)
    trades balance (more points, smoother arcs) for lookup-table size.
    @raise Invalid_argument on an empty or duplicate-carrying name
    list. *)
val create : ?vnodes:int -> string list -> t

(** [shard t key] is the shard that owns [key]. *)
val shard : t -> string -> string

(** The shard names the ring was built from, in the given order. *)
val shards : t -> string list

(** Points per shard. *)
val vnodes : t -> int
