type t = { points : (int64 * string) array; names : string list; vnodes : int }

(* The first 8 bytes of the MD5 as an unsigned ring position.  MD5 is
   in the stdlib, fast, and mixes well; nothing here needs collision
   resistance. *)
let point s = Bytes.get_int64_be (Bytes.unsafe_of_string (Digest.string s)) 0

let create ?(vnodes = 160) names =
  if names = [] then invalid_arg "Chash.create: no shards";
  if vnodes <= 0 then invalid_arg "Chash.create: vnodes must be positive";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Chash.create: duplicate shard names";
  let count = List.length names in
  let points = Array.make (vnodes * count) (0L, "") in
  List.iteri
    (fun si name ->
      for v = 0 to vnodes - 1 do
        points.((si * vnodes) + v) <-
          (point (Printf.sprintf "%s#%d" name v), name)
      done)
    names;
  (* Ties between distinct shards' points are broken by name so the
     ring is a pure function of its inputs. *)
  Array.sort
    (fun (a, an) (b, bn) ->
      match Int64.unsigned_compare a b with
      | 0 -> String.compare an bn
      | c -> c)
    points;
  { points; names; vnodes }

let shard t key =
  let h = point key in
  let n = Array.length t.points in
  (* First point [>= h], clockwise wraparound past the last one. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let shards t = t.names
let vnodes t = t.vnodes
