(** The shard router: a thin HTTP front that consistent-hashes
    document names onto shard backends — each an ordinary
    [standoff-server] process with its own data directory — and scales
    the system out across processes (and, eventually, machines)
    without the engine learning anything about distribution.

    Placement is {!Chash} over document names: deterministic across
    router restarts, and moving only ~1/n of the corpus when the shard
    count changes.

    Endpoints:
    - [POST /query] — routed to one shard: by [?context=] when given,
      else by the [doc("…")] references in the query text (they must
      all map to the same shard; [400] otherwise, and [400] when a
      reference-free query arrives at a multi-shard topology).  The
      shard's response streams back as it arrives — chunked transfer
      encoding, bounded router memory — with an [X-Standoff-Shard]
      header naming the backend; pass [?stream=1] through to stream
      end-to-end off the shard's serializer too.
    - [POST /update] — routed by the required [?doc=].
    - [POST /ingest] — with [?name=], routed whole by that name;
      framed batches are split per shard by document name and
      forwarded as per-shard sub-batches.  Partial failure is reported
      per document: the JSON answer lists every document with its
      shard and outcome, [200] when every sub-batch succeeded, [502]
      otherwise.
    - [POST /admin/snapshot] — broadcast to every shard; [200] only
      when all succeed.
    - [GET /metrics] — the router's own metrics plus every live
      shard's, each shard sample relabelled with [shard="<name>"]
      (comment lines dropped), plus a synthesized
      [standoff_router_shard_up] gauge per shard.
    - [GET /shards] — the topology as JSON: name, address, placement,
      health, restart count.
    - [GET /healthz] — liveness; [?ready=1] readiness: [200] only when
      every shard answers its own readiness probe, [503] naming the
      laggards otherwise (a shard replaying its WAL after a crash
      shows up here, and requests routed to it answer [503] with
      [Retry-After] until it recovers).

    Managed shards (a {!shard_spec} with [sp_spawn]) are child
    processes the router supervises: spawned on {!start},
    health-checked continuously, restarted with exponential backoff
    (0.2 s doubling to 5 s) when they die, terminated on {!stop}
    (SIGTERM, then SIGKILL after the grace).  External shards (no
    [sp_spawn]) are probed but never spawned.

    When [config.auth_token] is set the router enforces
    [Authorization: Bearer] on [/query], [/update], [/ingest] and
    [/admin/*] exactly as the server does (constant-time compare,
    [401] + [WWW-Authenticate] otherwise); [config.shard_token] is
    what the router presents to the shards, letting the whole interior
    run token-protected too. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  max_body_bytes : int;  (** request body cap, 413 past it *)
  max_conns : int;  (** concurrent connections; 503 past it *)
  auth_token : string option;
      (** token clients must present; [None] = open *)
  shard_token : string option;
      (** token the router presents to shards; [None] = none *)
  shard_timeout_s : float;  (** socket timeout talking to a shard *)
  probe_interval_s : float;  (** health-probe cadence *)
  retry_after_s : int;  (** [Retry-After] on 503s *)
  vnodes : int;  (** ring points per shard (see {!Chash.create}) *)
}

val default_config : config

type shard_spec = {
  sp_name : string;  (** placement identity — must be stable *)
  sp_host : string;
  sp_port : int;
  sp_spawn : (string * string array) option;
      (** [(prog, argv)] to spawn and supervise; [None] = external *)
}

type t

(** [create ?config specs] binds the front socket (so {!port} is
    known) and builds the ring; nothing is spawned until {!start}.
    @raise Invalid_argument on an empty or duplicate-name spec list
    @raise Unix.Unix_error when binding fails. *)
val create : ?config:config -> shard_spec list -> t

(** The bound port — the configured one, or the kernel-chosen one when
    the configuration said [0]. *)
val port : t -> int

(** [shard_of_doc t name] is the shard that owns [name] — the same
    placement the proxy uses. *)
val shard_of_doc : t -> string -> string

(** Whether every shard currently answers its readiness probe. *)
val ready : t -> bool

(** [start t] spawns managed shards, their supervisors and the
    acceptor, and returns.
    @raise Invalid_argument if already started. *)
val start : t -> unit

(** [stop ?grace_s t] shuts down: stop accepting, give in-flight
    proxying up to [grace_s] (default 5 s) to drain, SIGTERM managed
    shards and SIGKILL whatever ignores it past the grace.
    Idempotent. *)
val stop : ?grace_s:float -> t -> unit
