(** Binary persistence of shredded documents, BLOBs and whole
    collections.

    A stored document keeps the columnar shredded form (paper §4.1), so
    loading skips parsing and re-shredding entirely — the database
    workflow of MonetDB/XQuery, where documents are shredded once at
    import.  Region indexes are rebuilt lazily on first StandOff query,
    as they are derived data under a per-query configuration.

    Format: magic + version, an LEB128/zig-zag encoded payload (see
    {!Standoff_util.Codec}), and a Fletcher-32 checksum.  Loading
    validates both the checksum and the structural invariants of the
    pre/size/level encoding. *)

exception Corrupt of string
(** Raised when loading malformed, truncated or checksum-failing
    input. *)

(** [doc_to_string d] / [doc_of_string s] encode one document. *)
val doc_to_string : Doc.t -> string

val doc_of_string : string -> Doc.t

(** [save_doc d path] / [load_doc path] — file variants. *)
val save_doc : Doc.t -> string -> unit

val load_doc : string -> Doc.t

(** [save_collection coll path] writes every document and BLOB of the
    collection into one database file. *)
val save_collection : Collection.t -> string -> unit

(** [load_collection path] reassembles the collection (document ids are
    re-assigned densely in the saved order). *)
val load_collection : string -> Collection.t

(** In-memory variants of [save_collection]/[load_collection]; the
    snapshot layer embeds these strings inside its own sealed frame. *)
val collection_to_string : Collection.t -> string

val collection_of_string : string -> Collection.t

(** [seal ~tag payload] wraps a payload in the common persistence frame
    (magic + version + tag + payload + Fletcher-32 checksum); [unseal]
    validates and strips it.  Exposed so sibling on-disk formats (WAL
    snapshots) share the same envelope.  @raise Corrupt on mismatch. *)
val seal : tag:string -> string -> string

val unseal : tag:string -> string -> string
