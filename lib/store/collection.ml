module Vec = Standoff_util.Vec
module Metrics = Standoff_obs.Metrics

let m_docs =
  Metrics.gauge "standoff_collection_docs"
    ~help:"Documents currently registered in the collection"

let m_doc_reads =
  Metrics.counter "standoff_collection_doc_reads_total"
    ~help:"Document handle lookups by id"

(* The lock serialises every access to the document Vec and the name
   tables: parallel query shards read documents (and register
   constructed ones) concurrently, and Vec growth swaps the backing
   array, so even reads must not race a push. *)
type t = {
  lock : Mutex.t;
  docs : Doc.t Vec.t;
  by_name : (string, int) Hashtbl.t;
  blobs : (string, Blob.t) Hashtbl.t;
}

let locked coll f =
  Mutex.lock coll.lock;
  match f () with
  | v ->
      Mutex.unlock coll.lock;
      v
  | exception e ->
      Mutex.unlock coll.lock;
      raise e

type node = {
  doc_id : int;
  pre : int;
}

let compare_node a b =
  let c = compare a.doc_id b.doc_id in
  if c <> 0 then c else compare a.pre b.pre

let create () =
  {
    lock = Mutex.create ();
    docs = Vec.create ();
    by_name = Hashtbl.create 8;
    blobs = Hashtbl.create 8;
  }

let add coll d =
  locked coll (fun () ->
      let name = d.Doc.doc_name in
      if Hashtbl.mem coll.by_name name then
        invalid_arg
          (Printf.sprintf "Collection.add: duplicate document %S" name);
      let id = Vec.length coll.docs in
      Vec.push coll.docs d;
      Hashtbl.add coll.by_name name id;
      Metrics.gauge_add m_docs 1;
      id)

let add_blob coll b =
  locked coll (fun () ->
      let name = Blob.name b in
      if Hashtbl.mem coll.blobs name then
        invalid_arg
          (Printf.sprintf "Collection.add_blob: duplicate blob %S" name);
      Hashtbl.add coll.blobs name b)

let doc coll id =
  Metrics.incr m_doc_reads;
  locked coll (fun () ->
      if id < 0 || id >= Vec.length coll.docs then
        invalid_arg (Printf.sprintf "Collection.doc: unknown id %d" id);
      Vec.get coll.docs id)

let doc_id_of_name coll name =
  locked coll (fun () -> Hashtbl.find_opt coll.by_name name)

let blob coll name = locked coll (fun () -> Hashtbl.find_opt coll.blobs name)
let doc_count coll = locked coll (fun () -> Vec.length coll.docs)
let root_node _coll id = { doc_id = id; pre = 0 }

let load_string coll ~name s = add coll (Doc.parse ~name s)

let fold_docs f acc coll =
  (* Snapshot under the lock, fold outside it — [f] may be arbitrary
     user code (and may itself take the lock via [add]). *)
  let snapshot = locked coll (fun () -> Vec.to_array coll.docs) in
  let acc = ref acc in
  Array.iteri (fun id d -> acc := f !acc id d) snapshot;
  !acc

let checkpoint coll = locked coll (fun () -> Vec.length coll.docs)

let rollback coll mark =
  locked coll (fun () ->
      if mark < 0 || mark > Vec.length coll.docs then
        invalid_arg "Collection.rollback: invalid checkpoint";
      Metrics.gauge_add m_docs (mark - Vec.length coll.docs);
      for id = mark to Vec.length coll.docs - 1 do
        Hashtbl.remove coll.by_name (Vec.get coll.docs id).Doc.doc_name
      done;
      Vec.truncate coll.docs mark)

let fold_blobs f acc coll =
  let blobs =
    locked coll (fun () ->
        Hashtbl.fold (fun _ blob acc -> blob :: acc) coll.blobs [])
  in
  List.fold_left f acc blobs
