(** Shredded XML documents.

    A document is stored column-wise, indexed by pre-order rank ([pre]),
    exactly as in MonetDB/XQuery's relational encoding: for each node
    its [kind], subtree [size] (number of proper descendants), [level],
    [parent], interned [name] and string [value].  Attributes live in a
    separate table clustered on their owner's [pre].  Node ids are the
    [pre] ranks, which are also the document order (paper §4.3 "uses
    the pre-order rank as node-id").

    [pre = 0] is the document node itself; the root element is
    [pre = 1]. *)

type kind =
  | Document
  | Element
  | Text
  | Comment
  | Pi

(** One node of a strong-DataGuide summary ({!Dataguide}): a distinct
    root-to-node label path, its sorted element pres, and the child
    paths extending it.  Defined here so the per-document cache slot in
    {!t} can hold a built guide; construction and lookup live in
    {!Dataguide}. *)
type guide_node = {
  g_name : int;  (** interned element name; [-1] on the document root *)
  mutable g_pres : int array;
      (** sorted pres of the elements reached by this label path.
          Shared with every consumer — never mutate. *)
  g_children : (int, guide_node) Hashtbl.t;  (** keyed on interned name *)
}

(** A built strong DataGuide for one document. *)
type guide = {
  guide_root : guide_node;  (** stands for the document node (pre 0) *)
  guide_paths : int;  (** distinct label paths in the document *)
  guide_generation : int;
      (** the catalogue generation the guide was built under
          ({!Standoff.Catalog.generation}); {!Dataguide.get} rebuilds
          on mismatch, so updated documents never serve stale pres *)
}

type t = private {
  doc_name : string;
  doc_uid : int;
      (** process-unique identity, assigned at construction.  Unlike
          [doc_name] it can never alias: a collection rollback followed
          by re-registration under the same name yields a new [doc_uid],
          which is what the engine's result cache keys document sets on. *)
  kind : kind array;
  size : int array;
  level : int array;
  parent : int array;       (** [-1] for the document node *)
  name : int array;         (** interned name; [-1] for unnamed kinds *)
  value : string array;     (** text/comment data, PI data; [""] otherwise *)
  attr_owner : int array;   (** clustered on owner pre *)
  attr_name : int array;
  attr_value : string array;
  attr_first : int array;   (** length [n+1]; attrs of [p] are rows
                                [attr_first.(p) .. attr_first.(p+1) - 1] *)
  names : Name_pool.t;
  index_lock : Mutex.t;
      (** serialises this document's lazy index builds; builds on
          distinct documents proceed concurrently *)
  mutable elem_index : (int, int array) Hashtbl.t option;
  mutable dataguide : guide option;
}

(** [of_dom ~name dom] shreds a DOM document. *)
val of_dom : name:string -> Standoff_xml.Dom.document -> t

(** [of_columns ...] reassembles a document from stored columns — the
    persistence layer's constructor.  [attr_first] is derived from
    [attr_owner].  The encoding invariants are re-validated.
    @raise Failure when the columns are inconsistent. *)
val of_columns :
  doc_name:string ->
  names:string array ->
  kind:kind array ->
  size:int array ->
  level:int array ->
  parent:int array ->
  name:int array ->
  value:string array ->
  attr_owner:int array ->
  attr_name:int array ->
  attr_value:string array ->
  t

(** [parse ~name s] is [of_dom] after parsing [s]. *)
val parse : name:string -> string -> t

(** [node_count d] is the total number of nodes (excluding attributes). *)
val node_count : t -> int

(** [attribute_count d] is the number of attribute rows. *)
val attribute_count : t -> int

(** [root d] is the pre rank of the root element (always [1]).
    @raise Invalid_argument on a pathological empty document. *)
val root : t -> int

(** [kind_of d pre] is the node kind. *)
val kind_of : t -> int -> kind

(** [name_of d pre] is the node's qualified name ([None] for text,
    comments and the document node; PI targets are names). *)
val name_of : t -> int -> string option

(** [value_of d pre] is the node's own string payload (text content for
    text nodes, data for comments/PIs, [""] otherwise). *)
val value_of : t -> int -> string

(** [parent_of d pre] is the parent pre, or [None] for the document
    node. *)
val parent_of : t -> int -> int option

(** [subtree_size d pre] is the number of proper descendants. *)
val subtree_size : t -> int -> int

(** [level_of d pre] is the depth ([0] for the document node). *)
val level_of : t -> int -> int

(** [is_ancestor d a b] holds when [a] is a proper ancestor of [b]
    (constant time via the pre/size window). *)
val is_ancestor : t -> int -> int -> bool

(** [children d pre] lists the child pres in document order
    (O(children)). *)
val children : t -> int -> int list

(** [iter_children d pre f] applies [f] to each child pre in order. *)
val iter_children : t -> int -> (int -> unit) -> unit

(** [attributes d pre] is the [(name, value)] list of [pre]'s
    attributes, in source order. *)
val attributes : t -> int -> (string * string) list

(** [attribute d pre name] is the value of attribute [name] on [pre],
    if present. *)
val attribute : t -> int -> string -> string option

(** [string_value d pre] is the XPath string value: the concatenation
    of all descendant text (the node's own text for a text node). *)
val string_value : t -> int -> string

(** [elements_named d name] is the sorted array of pres of elements
    called [name]; the underlying per-name index is built lazily on
    first use and cached (the paper's "element index").  The returned
    array is shared — callers must not mutate it. *)
val elements_named : t -> string -> int array

(** [all_elements d] is the sorted array of all element pres. *)
val all_elements : t -> int array

(** [with_index_lock d f] runs [f] holding [d]'s index-build lock —
    the double-checked publication discipline {!Dataguide.get} shares
    with the element index. *)
val with_index_lock : t -> (unit -> 'a) -> 'a

(** [dataguide_cache d] is the cached guide, if one has been built
    (possibly for an older generation — the caller checks). *)
val dataguide_cache : t -> guide option

(** [publish_dataguide d g] installs [g] as the cached guide,
    replacing any older-generation one.  Call under
    {!with_index_lock}. *)
val publish_dataguide : t -> guide -> unit

(** [to_dom d pre] re-materialises the subtree rooted at [pre] as a DOM
    node.  [pre] may be the document node, in which case the root
    element is returned. *)
val to_dom : t -> int -> Standoff_xml.Dom.node

(** [pp_node fmt (d, pre)] prints a one-line description of a node,
    e.g. ["<shot id='Intro'> (pre 4)"] — used in examples and error
    messages. *)
val pp_node : Format.formatter -> t * int -> unit

(** [check_invariants d] verifies the pre/size/level/parent encoding
    is internally consistent; raises [Failure] with a description
    otherwise.  Used by the test-suite and the shredder's own tests. *)
val check_invariants : t -> unit
