module Vec = Standoff_util.Vec
module Dom = Standoff_xml.Dom

type kind =
  | Document
  | Element
  | Text
  | Comment
  | Pi

(* Strong-DataGuide summary: one node per distinct root-to-node label
   path, each holding the sorted pres of the elements on that path.
   The type lives here (rather than in [Dataguide], which owns the
   construction and lookup algorithms) so the per-document cache slot
   below can hold it without a module cycle. *)
type guide_node = {
  g_name : int;  (** interned element name; [-1] on the document root *)
  mutable g_pres : int array;
      (** sorted pres of the elements reached by this label path *)
  g_children : (int, guide_node) Hashtbl.t;  (** keyed on interned name *)
}

type guide = {
  guide_root : guide_node;  (** stands for the document node *)
  guide_paths : int;  (** distinct label paths = guide-tree nodes - 1 *)
  guide_generation : int;
      (** the catalogue generation the guide was built under; a
          mismatch at probe time means rebuild *)
}

type t = {
  doc_name : string;
  doc_uid : int;
  kind : kind array;
  size : int array;
  level : int array;
  parent : int array;
  name : int array;
  value : string array;
  attr_owner : int array;
  attr_name : int array;
  attr_value : string array;
  attr_first : int array;
  names : Name_pool.t;
  index_lock : Mutex.t;
  mutable elem_index : (int, int array) Hashtbl.t option;
  mutable dataguide : guide option;
}

(* Process-unique document identities.  Names are unique only while a
   document is registered: a rollback followed by re-registration under
   the same name is a different document, and anything keyed on the
   identity (the engine's result cache) must see it as such. *)
let uid_counter = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add uid_counter 1

let of_dom ~name:doc_name (dom : Dom.document) =
  let names = Name_pool.create () in
  let kind = Vec.create () in
  let size = Vec.create () in
  let level = Vec.create () in
  let parent = Vec.create () in
  let name = Vec.create () in
  let value = Vec.create () in
  let attr_owner = Vec.create () in
  let attr_name = Vec.create () in
  let attr_value = Vec.create () in
  let alloc k lvl par nm v =
    let pre = Vec.length kind in
    Vec.push kind k;
    Vec.push size 0;
    Vec.push level lvl;
    Vec.push parent par;
    Vec.push name nm;
    Vec.push value v;
    pre
  in
  let rec shred_node lvl par = function
    | Dom.Text s -> ignore (alloc Text lvl par (-1) s)
    | Dom.Comment s -> ignore (alloc Comment lvl par (-1) s)
    | Dom.Pi (target, data) ->
        ignore (alloc Pi lvl par (Name_pool.intern names target) data)
    | Dom.Element el ->
        let pre = alloc Element lvl par (Name_pool.intern names el.tag) "" in
        List.iter
          (fun { Dom.attr_name = an; attr_value = av } ->
            Vec.push attr_owner pre;
            Vec.push attr_name (Name_pool.intern names an);
            Vec.push attr_value av)
          el.attrs;
        List.iter (shred_node (lvl + 1) pre) el.children;
        Vec.set size pre (Vec.length kind - pre - 1)
  in
  let doc_pre = alloc Document 0 (-1) (-1) "" in
  (* Prolog/epilog comments and PIs become children of the document
     node, surrounding the root element, like in the XDM. *)
  List.iter (shred_node 1 doc_pre) dom.Dom.prolog;
  shred_node 1 doc_pre (Dom.Element dom.Dom.root);
  List.iter (shred_node 1 doc_pre) dom.Dom.epilog;
  Vec.set size doc_pre (Vec.length kind - 1);
  let n = Vec.length kind in
  let attr_owner = Vec.to_array attr_owner in
  let attr_first = Array.make (n + 1) 0 in
  (* attr_owner is produced in increasing order of owner pre, so a
     single counting pass yields the per-node slices. *)
  Array.iter (fun owner -> attr_first.(owner + 1) <- attr_first.(owner + 1) + 1) attr_owner;
  for i = 1 to n do
    attr_first.(i) <- attr_first.(i) + attr_first.(i - 1)
  done;
  {
    doc_name;
    doc_uid = fresh_uid ();
    kind = Vec.to_array kind;
    size = Vec.to_array size;
    level = Vec.to_array level;
    parent = Vec.to_array parent;
    name = Vec.to_array name;
    value = Vec.to_array value;
    attr_owner;
    attr_name = Vec.to_array attr_name;
    attr_value = Vec.to_array attr_value;
    attr_first;
    names;
    index_lock = Mutex.create ();
    elem_index = None;
    dataguide = None;
  }

let parse ~name s = of_dom ~name (Standoff_xml.Parser.parse_string s)

(* Forward declaration resolved below; of_columns validates with it. *)
let check_invariants_ref = ref (fun (_ : t) -> ())

let of_columns ~doc_name ~names ~kind ~size ~level ~parent ~name ~value
    ~attr_owner ~attr_name ~attr_value =
  let n = Array.length kind in
  let columns_equal_length =
    Array.length size = n && Array.length level = n
    && Array.length parent = n && Array.length name = n
    && Array.length value = n
  in
  if not columns_equal_length then failwith "Doc.of_columns: column length mismatch";
  let m = Array.length attr_owner in
  if Array.length attr_name <> m || Array.length attr_value <> m then
    failwith "Doc.of_columns: attribute column length mismatch";
  let pool = Name_pool.create () in
  Array.iter (fun s -> ignore (Name_pool.intern pool s)) names;
  let check_name_id what id =
    if id < -1 || id >= Name_pool.count pool then
      failwith (Printf.sprintf "Doc.of_columns: bad %s id %d" what id)
  in
  Array.iter (check_name_id "name") name;
  Array.iter
    (fun id ->
      check_name_id "attribute name" id;
      if id < 0 then failwith "Doc.of_columns: attribute without name")
    attr_name;
  let attr_first = Array.make (n + 1) 0 in
  Array.iter
    (fun owner ->
      if owner < 0 || owner >= n then failwith "Doc.of_columns: bad attribute owner";
      attr_first.(owner + 1) <- attr_first.(owner + 1) + 1)
    attr_owner;
  for i = 1 to n do
    attr_first.(i) <- attr_first.(i) + attr_first.(i - 1)
  done;
  let d =
    {
      doc_name;
      doc_uid = fresh_uid ();
      kind;
      size;
      level;
      parent;
      name;
      value;
      attr_owner;
      attr_name;
      attr_value;
      attr_first;
      names = pool;
      index_lock = Mutex.create ();
      elem_index = None;
      dataguide = None;
    }
  in
  !check_invariants_ref d;
  d

let node_count d = Array.length d.kind
let attribute_count d = Array.length d.attr_owner

let root d =
  let n = node_count d in
  let rec find pre =
    if pre >= n then invalid_arg "Doc.root: document has no root element"
    else if d.kind.(pre) = Element && d.parent.(pre) = 0 then pre
    else find (pre + 1)
  in
  find 1

let kind_of d pre = d.kind.(pre)

let name_of d pre =
  let id = d.name.(pre) in
  if id < 0 then None else Some (Name_pool.name d.names id)

let value_of d pre = d.value.(pre)

let parent_of d pre =
  let p = d.parent.(pre) in
  if p < 0 then None else Some p

let subtree_size d pre = d.size.(pre)
let level_of d pre = d.level.(pre)

let is_ancestor d a b = a < b && b <= a + d.size.(a)

let iter_children d pre f =
  let stop = pre + d.size.(pre) in
  let c = ref (pre + 1) in
  while !c <= stop do
    f !c;
    c := !c + d.size.(!c) + 1
  done

let children d pre =
  let acc = ref [] in
  iter_children d pre (fun c -> acc := c :: !acc);
  List.rev !acc

let attributes d pre =
  let lo = d.attr_first.(pre) and hi = d.attr_first.(pre + 1) in
  let rec collect i acc =
    if i < lo then acc
    else
      collect (i - 1)
        ((Name_pool.name d.names d.attr_name.(i), d.attr_value.(i)) :: acc)
  in
  collect (hi - 1) []

let attribute d pre name =
  match Name_pool.find d.names name with
  | None -> None
  | Some nid ->
      let lo = d.attr_first.(pre) and hi = d.attr_first.(pre + 1) in
      let rec scan i =
        if i >= hi then None
        else if d.attr_name.(i) = nid then Some d.attr_value.(i)
        else scan (i + 1)
      in
      scan lo

let string_value d pre =
  match d.kind.(pre) with
  | Text | Comment | Pi -> d.value.(pre)
  | Document | Element ->
      let buf = Buffer.create 64 in
      for p = pre + 1 to pre + d.size.(pre) do
        if d.kind.(p) = Text then Buffer.add_string buf d.value.(p)
      done;
      Buffer.contents buf

(* Lazy index builds serialise on the document's own lock: builds on
   distinct documents proceed concurrently (a process-wide lock here
   once serialised every first-touch index build in the collection),
   while the locked [<- Some idx] publication keeps concurrent domains
   from ever observing a partially built table on the same document. *)
let with_index_lock d f =
  Mutex.lock d.index_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.index_lock) f

let dataguide_cache d = d.dataguide
let publish_dataguide d g = d.dataguide <- Some g

let build_elem_index d =
  match d.elem_index with
  | Some idx -> idx
  | None ->
      Mutex.lock d.index_lock;
      let idx =
        match d.elem_index with
        | Some idx -> idx (* another domain built it meanwhile *)
        | None ->
            let tmp : (int, int Vec.t) Hashtbl.t = Hashtbl.create 64 in
            Array.iteri
              (fun pre k ->
                if k = Element then begin
                  let nid = d.name.(pre) in
                  let v =
                    match Hashtbl.find_opt tmp nid with
                    | Some v -> v
                    | None ->
                        let v = Vec.create () in
                        Hashtbl.add tmp nid v;
                        v
                  in
                  Vec.push v pre
                end)
              d.kind;
            let idx = Hashtbl.create (Hashtbl.length tmp) in
            Hashtbl.iter
              (fun nid v -> Hashtbl.add idx nid (Vec.to_array v))
              tmp;
            d.elem_index <- Some idx;
            idx
      in
      Mutex.unlock d.index_lock;
      idx

let elements_named d name =
  match Name_pool.find d.names name with
  | None -> [||]
  | Some nid -> (
      match Hashtbl.find_opt (build_elem_index d) nid with
      | Some arr -> arr
      | None -> [||])

let all_elements d =
  let v = Vec.create () in
  Array.iteri (fun pre k -> if k = Element then Vec.push v pre) d.kind;
  Vec.to_array v

let rec to_dom d pre =
  match d.kind.(pre) with
  | Text -> Dom.Text d.value.(pre)
  | Comment -> Dom.Comment d.value.(pre)
  | Pi -> Dom.Pi (Name_pool.name d.names d.name.(pre), d.value.(pre))
  | Document -> to_dom d (root d)
  | Element ->
      let attrs =
        List.map
          (fun (attr_name, attr_value) -> { Dom.attr_name; attr_value })
          (attributes d pre)
      in
      let kids = List.map (to_dom d) (children d pre) in
      Dom.Element
        { Dom.tag = Name_pool.name d.names d.name.(pre); attrs; children = kids }

let pp_node fmt (d, pre) =
  match d.kind.(pre) with
  | Document -> Format.fprintf fmt "document(%s)" d.doc_name
  | Text -> Format.fprintf fmt "text(%S) (pre %d)" d.value.(pre) pre
  | Comment -> Format.fprintf fmt "comment (pre %d)" pre
  | Pi -> Format.fprintf fmt "pi(%s) (pre %d)" (Name_pool.name d.names d.name.(pre)) pre
  | Element ->
      let attrs = attributes d pre in
      Format.fprintf fmt "<%s%a> (pre %d)"
        (Name_pool.name d.names d.name.(pre))
        (fun fmt attrs ->
          List.iter (fun (n, v) -> Format.fprintf fmt " %s='%s'" n v) attrs)
        attrs pre

let check_invariants d =
  let n = node_count d in
  let fail fmt = Printf.ksprintf failwith fmt in
  if n = 0 then fail "empty document";
  if d.kind.(0) <> Document then fail "pre 0 is not the document node";
  if d.size.(0) <> n - 1 then fail "document size %d <> %d" d.size.(0) (n - 1);
  for pre = 0 to n - 1 do
    let sz = d.size.(pre) in
    if sz < 0 || pre + sz >= n then fail "size out of range at pre %d" pre;
    (match d.kind.(pre) with
    | Text | Comment | Pi ->
        if sz <> 0 then fail "leaf kind with descendants at pre %d" pre
    | Document | Element -> ());
    let p = d.parent.(pre) in
    if pre = 0 then begin
      if p <> -1 then fail "document node has a parent"
    end
    else begin
      if p < 0 || p >= pre then fail "bad parent %d at pre %d" p pre;
      if not (is_ancestor d p pre) then
        fail "parent %d does not contain pre %d" p pre;
      if d.level.(pre) <> d.level.(p) + 1 then fail "bad level at pre %d" pre;
      (* The parent must be the closest enclosing node. *)
      if pre + sz > p + d.size.(p) then
        fail "subtree of %d escapes its parent %d" pre p
    end
  done;
  (* Attribute table is clustered on owner. *)
  let m = attribute_count d in
  for i = 1 to m - 1 do
    if d.attr_owner.(i - 1) > d.attr_owner.(i) then
      fail "attribute table not clustered at row %d" i
  done;
  Array.iter
    (fun owner ->
      if d.kind.(owner) <> Element then fail "attribute on non-element %d" owner)
    d.attr_owner;
  for pre = 0 to n - 1 do
    let lo = d.attr_first.(pre) and hi = d.attr_first.(pre + 1) in
    if lo > hi || lo < 0 || hi > m then fail "bad attr_first at pre %d" pre;
    for i = lo to hi - 1 do
      if d.attr_owner.(i) <> pre then fail "attr slice mismatch at pre %d" pre
    done
  done

let () = check_invariants_ref := check_invariants
