module Codec = Standoff_util.Codec

exception Corrupt of string

let magic = "SODB"
let version = 1

let kind_to_byte = function
  | Doc.Document -> 0
  | Doc.Element -> 1
  | Doc.Text -> 2
  | Doc.Comment -> 3
  | Doc.Pi -> 4

let kind_of_byte = function
  | 0 -> Doc.Document
  | 1 -> Doc.Element
  | 2 -> Doc.Text
  | 3 -> Doc.Comment
  | 4 -> Doc.Pi
  | b -> raise (Corrupt (Printf.sprintf "unknown node kind %d" b))

let write_doc w (d : Doc.t) =
  let open Codec.Writer in
  string w d.Doc.doc_name;
  let pool_size =
    (* Name ids are dense and allocation-ordered; the largest id in use
       bounds the pool slice we must persist. *)
    let biggest = ref (-1) in
    Array.iter (fun id -> if id > !biggest then biggest := id) d.Doc.name;
    Array.iter (fun id -> if id > !biggest then biggest := id) d.Doc.attr_name;
    !biggest + 1
  in
  string_array w
    (Array.init pool_size (fun id -> Name_pool.name d.Doc.names id));
  varint w (Array.length d.Doc.kind);
  Array.iter (fun k -> byte w (kind_to_byte k)) d.Doc.kind;
  int_array w d.Doc.size;
  int_array w d.Doc.level;
  int_array w d.Doc.parent;
  int_array w d.Doc.name;
  string_array w d.Doc.value;
  int_array w d.Doc.attr_owner;
  int_array w d.Doc.attr_name;
  string_array w d.Doc.attr_value

let read_doc r =
  let open Codec.Reader in
  let doc_name = string r in
  let names = string_array r in
  let n = varint r in
  if n < 0 then raise (Corrupt "negative node count");
  let kind = Array.init n (fun _ -> kind_of_byte (byte r)) in
  let size = int_array r in
  let level = int_array r in
  let parent = int_array r in
  let name = int_array r in
  let value = string_array r in
  let attr_owner = int_array r in
  let attr_name = int_array r in
  let attr_value = string_array r in
  try
    Doc.of_columns ~doc_name ~names ~kind ~size ~level ~parent ~name ~value
      ~attr_owner ~attr_name ~attr_value
  with Failure msg -> raise (Corrupt msg)

(* Header: magic, version, section tag; trailer: checksum of the
   payload between them. *)
let seal ~tag payload =
  let w = Codec.Writer.create () in
  Codec.Writer.string w magic;
  Codec.Writer.varint w version;
  Codec.Writer.string w tag;
  Codec.Writer.string w payload;
  Codec.Writer.varint w (Codec.fletcher32 payload);
  Codec.Writer.contents w

let unseal ~tag s =
  let module R = Codec.Reader in
  try
    let r = R.create s in
    if R.string r <> magic then raise (Corrupt "bad magic");
    let v = R.varint r in
    if v <> version then
      raise (Corrupt (Printf.sprintf "unsupported version %d" v));
    let t = R.string r in
    if t <> tag then
      raise (Corrupt (Printf.sprintf "expected a %s file, found %s" tag t));
    let payload = R.string r in
    let sum = R.varint r in
    if not (R.at_end r) then raise (Corrupt "trailing bytes");
    if sum <> Codec.fletcher32 payload then
      raise (Corrupt "checksum mismatch");
    payload
  with Codec.Reader.Corrupt msg -> raise (Corrupt msg)

let doc_to_string d =
  let w = Codec.Writer.create () in
  write_doc w d;
  seal ~tag:"document" (Codec.Writer.contents w)

let doc_of_string s =
  let payload = unseal ~tag:"document" s in
  let r = Codec.Reader.create payload in
  try
    let d = read_doc r in
    if not (Codec.Reader.at_end r) then raise (Corrupt "trailing document bytes");
    d
  with Codec.Reader.Corrupt msg -> raise (Corrupt msg)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_doc d path = write_file path (doc_to_string d)
let load_doc path = doc_of_string (read_file path)

let collection_to_string coll =
  let w = Codec.Writer.create () in
  let docs =
    Collection.fold_docs (fun acc _ d -> d :: acc) [] coll |> List.rev
  in
  Codec.Writer.varint w (List.length docs);
  List.iter
    (fun d ->
      let dw = Codec.Writer.create () in
      write_doc dw d;
      Codec.Writer.string w (Codec.Writer.contents dw))
    docs;
  let blobs = Collection.fold_blobs (fun acc b -> b :: acc) [] coll in
  let blobs =
    List.sort (fun a b -> String.compare (Blob.name a) (Blob.name b)) blobs
  in
  Codec.Writer.varint w (List.length blobs);
  List.iter
    (fun b ->
      Codec.Writer.string w (Blob.name b);
      Codec.Writer.string w (Blob.contents b))
    blobs;
  seal ~tag:"collection" (Codec.Writer.contents w)

let save_collection coll path = write_file path (collection_to_string coll)

let collection_of_string s =
  let payload = unseal ~tag:"collection" s in
  let r = Codec.Reader.create payload in
  try
    let coll = Collection.create () in
    let ndocs = Codec.Reader.varint r in
    if ndocs < 0 then raise (Corrupt "negative document count");
    for _ = 1 to ndocs do
      let doc_payload = Codec.Reader.string r in
      let dr = Codec.Reader.create doc_payload in
      let d = read_doc dr in
      if not (Codec.Reader.at_end dr) then
        raise (Corrupt "trailing document bytes");
      ignore (Collection.add coll d)
    done;
    let nblobs = Codec.Reader.varint r in
    if nblobs < 0 then raise (Corrupt "negative blob count");
    for _ = 1 to nblobs do
      let name = Codec.Reader.string r in
      let contents = Codec.Reader.string r in
      Collection.add_blob coll (Blob.of_string ~name contents)
    done;
    if not (Codec.Reader.at_end r) then raise (Corrupt "trailing bytes");
    coll
  with Codec.Reader.Corrupt msg -> raise (Corrupt msg)

let load_collection path = collection_of_string (read_file path)
