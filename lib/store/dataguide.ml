(* Strong DataGuide over a shredded document (Goldman & Widom, adapted
   to the pre/size/level encoding): one guide node per distinct
   root-to-node label path, annotated with the sorted pre ranks of the
   elements on that path.  A multi-step child/descendant path then
   resolves to its full candidate set in one walk over the (tiny)
   guide tree instead of one axis sweep per step.

   Construction is a single pre-order pass.  The pass parallelises
   over contiguous pre ranges exactly like the region-index build:
   within a chunk [lo, hi), any element whose parent precedes the
   chunk has that parent on [lo]'s ancestor chain (parent p < lo <= e
   and e <= p + size(p) imply p properly contains lo), so seeding a
   chunk-local guide with lo's ancestors makes every chunk
   independent; chunk guides merge left-to-right, which keeps each
   path's pre list sorted because chunk ranges ascend. *)

module Vec = Standoff_util.Vec
module Pool = Standoff_util.Pool
module Timing = Standoff_util.Timing
module Metrics = Standoff_obs.Metrics

type step = bool * string
(* [(descendant, name)]: [false] = child step [/name], [true] =
   descendant step [//name], both starting from the document node for
   the first step and from the previous step's matches after. *)

let m_builds =
  Metrics.counter "standoff_dataguide_builds_total"
    ~help:"DataGuide constructions (first touch or post-update rebuild)"

let m_build_seconds =
  Metrics.histogram "standoff_dataguide_build_seconds"
    ~buckets:Metrics.duration_buckets
    ~help:"Wall time of DataGuide constructions"

let m_paths =
  Metrics.counter "standoff_dataguide_paths_total"
    ~help:"Distinct label paths summarised, accumulated over builds"

let m_probes =
  Metrics.counter "standoff_dataguide_probes_total"
    ~help:"Path lookups answered from a DataGuide"

let m_probe_hits =
  Metrics.counter "standoff_dataguide_probe_hits_total"
    ~help:"Path lookups that matched at least one element"

(* Chunk-local build tree; converted to the immutable-array
   [Doc.guide_node] form once all chunks are merged. *)
type bnode = {
  b_name : int;
  b_pres : int Vec.t;
  b_children : (int, bnode) Hashtbl.t;
}

let bnode name = { b_name = name; b_pres = Vec.create (); b_children = Hashtbl.create 4 }

let child_of b name =
  match Hashtbl.find_opt b.b_children name with
  | Some c -> c
  | None ->
      let c = bnode name in
      Hashtbl.add b.b_children name c;
      c

(* The guide node standing for element [pre]'s label path, entered
   into [stack] at [pre]'s level.  [stack.(l)] holds the guide node of
   the most recent element (or document) node at level [l]; since the
   scan is in pre order, that node is exactly the parent of the next
   level-[l+1] element. *)
let enter_element (d : Doc.t) stack pre =
  let l = d.Doc.level.(pre) in
  if Array.length !stack <= l then begin
    let grown = Array.make (max (l + 1) (2 * Array.length !stack)) !stack.(0) in
    Array.blit !stack 0 grown 0 (Array.length !stack);
    stack := grown
  end;
  let g = child_of !stack.(l - 1) d.Doc.name.(pre) in
  !stack.(l) <- g;
  g

(* Build the guide of the pre range [lo, hi), seeded with lo's proper
   ancestors so parents outside the chunk resolve locally. *)
let build_chunk (d : Doc.t) ~lo ~hi =
  let root = bnode (-1) in
  let stack = ref (Array.make 16 root) in
  let rec seed pre =
    if pre > 0 then seed d.Doc.parent.(pre);
    if pre > 0 && pre < lo && d.Doc.kind.(pre) = Doc.Element then
      ignore (enter_element d stack pre)
  in
  if lo > 0 then seed d.Doc.parent.(lo);
  for pre = lo to hi - 1 do
    if d.Doc.kind.(pre) = Doc.Element then
      Vec.push (enter_element d stack pre).b_pres pre
  done;
  root

(* Left-to-right merge: append [src]'s pres (all greater than any pre
   already in [dst], because chunk ranges ascend) and recurse on
   children. *)
let rec merge_into dst src =
  for i = 0 to Vec.length src.b_pres - 1 do
    Vec.push dst.b_pres (Vec.get src.b_pres i)
  done;
  Hashtbl.iter
    (fun name c -> merge_into (child_of dst name) c)
    src.b_children

let rec freeze b =
  let node =
    {
      Doc.g_name = b.b_name;
      g_pres = Vec.to_array b.b_pres;
      g_children = Hashtbl.create (Hashtbl.length b.b_children);
    }
  in
  Hashtbl.iter
    (fun name c -> Hashtbl.add node.Doc.g_children name (freeze c))
    b.b_children;
  node

let rec count_paths g =
  Hashtbl.fold (fun _ c acc -> acc + count_paths c) g.Doc.g_children 1

let build ?pool ~generation (d : Doc.t) =
  let root, elapsed =
    Timing.time (fun () ->
        let n = Doc.node_count d in
        let chunks =
          match pool with
          | Some p when Pool.jobs p > 1 ->
              Pool.parallel_chunks p ~min_chunk:4096 ~n (fun ~chunk:_ ~lo ~hi ->
                  build_chunk d ~lo ~hi)
          | _ -> [| build_chunk d ~lo:0 ~hi:n |]
        in
        let acc = chunks.(0) in
        for i = 1 to Array.length chunks - 1 do
          merge_into acc chunks.(i)
        done;
        freeze acc)
  in
  let paths = count_paths root - 1 in
  Metrics.incr m_builds;
  Metrics.observe m_build_seconds elapsed;
  Metrics.add m_paths paths;
  { Doc.guide_root = root; guide_paths = paths; guide_generation = generation }

let get ?pool ~generation (d : Doc.t) =
  match Doc.dataguide_cache d with
  | Some g when g.Doc.guide_generation = generation -> g
  | _ ->
      Doc.with_index_lock d (fun () ->
          match Doc.dataguide_cache d with
          | Some g when g.Doc.guide_generation = generation -> g
          | _ ->
              let g = build ?pool ~generation d in
              Doc.publish_dataguide d g;
              g)

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

(* All guide nodes matching [steps] from [roots].  Distinct guide
   nodes carry disjoint pre sets (every element lies on exactly one
   label path), but a descendant step can reach the same guide node
   from two nested frontier nodes, so matches dedup on physical
   identity. *)
let matching_nodes roots steps =
  let step frontier (desc, nid) =
    let out = ref [] in
    let add g = if not (List.memq g !out) then out := g :: !out in
    let rec descend g =
      Hashtbl.iter
        (fun name c ->
          if name = nid then add c;
          descend c)
        g.Doc.g_children
    in
    List.iter
      (fun g ->
        if desc then descend g
        else
          match Hashtbl.find_opt g.Doc.g_children nid with
          | Some c -> add c
          | None -> ())
      frontier;
    !out
  in
  List.fold_left step roots steps

(* Resolve the step names against the document's name pool; an unknown
   name means the path matches nothing. *)
let intern_steps (d : Doc.t) steps =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (desc, name) :: rest -> (
        match Name_pool.find d.Doc.names name with
        | Some nid -> go ((desc, nid) :: acc) rest
        | None -> None)
  in
  go [] steps

(* K-way merge of pairwise-disjoint sorted arrays.  The singleton case
   returns the guide's own array, shared — callers must not mutate
   (same contract as [Doc.elements_named]). *)
let merge_sorted = function
  | [] -> [||]
  | [ a ] -> a
  | arrays ->
      let arrays = Array.of_list arrays in
      let k = Array.length arrays in
      let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrays in
      let out = Array.make total 0 in
      let idx = Array.make k 0 in
      for o = 0 to total - 1 do
        let best = ref (-1) in
        for i = 0 to k - 1 do
          if
            idx.(i) < Array.length arrays.(i)
            && (!best < 0
               || arrays.(i).(idx.(i)) < arrays.(!best).(idx.(!best)))
          then best := i
        done;
        out.(o) <- arrays.(!best).(idx.(!best));
        idx.(!best) <- idx.(!best) + 1
      done;
      out

let lookup (d : Doc.t) (g : Doc.guide) steps =
  Metrics.incr m_probes;
  let pres =
    match intern_steps d steps with
    | None -> [||]
    | Some steps ->
        merge_sorted
          (List.map
             (fun node -> node.Doc.g_pres)
             (matching_nodes [ g.Doc.guide_root ] steps))
  in
  if Array.length pres > 0 then Metrics.incr m_probe_hits;
  pres

let count (d : Doc.t) (g : Doc.guide) steps =
  match intern_steps d steps with
  | None -> 0
  | Some steps ->
      List.fold_left
        (fun acc node -> acc + Array.length node.Doc.g_pres)
        0
        (matching_nodes [ g.Doc.guide_root ] steps)

let path_count (g : Doc.guide) = g.Doc.guide_paths
