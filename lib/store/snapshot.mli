(** Compact on-disk snapshots of a collection, bounding WAL replay.

    A snapshot file ([snapshot-<lsn>.sodb]) holds the whole collection
    in {!Persist}'s sealed format plus the LSN it covers and the
    catalog generation it was taken at.  Files are written to a temp
    name, fsynced and renamed, so a crash mid-snapshot leaves the
    previous snapshots untouched. *)

val filename : int -> string
(** [filename lsn] — the basename a snapshot covering [lsn] gets. *)

val write : dir:string -> lsn:int -> generation:int -> Collection.t -> string
(** Atomically writes a snapshot into [dir] and returns its path.
    [lsn] is the last WAL LSN folded into the collection;
    [generation] is the catalog version at that moment (an
    informational stamp carried back by {!load_latest}). *)

val load_latest : dir:string -> (int * int * Collection.t * string) option
(** Newest snapshot that decodes and validates, as
    [(lsn, generation, collection, path)].  Corrupt or torn snapshot
    files are skipped in favour of older intact ones; [None] when no
    usable snapshot exists. *)

val prune : dir:string -> keep:int -> int
(** Deletes all but the [keep] newest snapshot files (and any leftover
    [.tmp] from crashed writes); returns how many were removed. *)

val list : string -> (int * string) list
(** Snapshot files in [dir], newest first, as [(lsn, path)]. *)
