(** Strong DataGuide: a structural summary of one shredded document.

    One guide node per distinct root-to-node label path, annotated
    with the sorted pre ranks of the elements on that path
    ({!Doc.guide_node}).  A multi-step downward path — child ([/name])
    and descendant ([//name]) steps — resolves to its complete,
    duplicate-free, document-ordered candidate set in one walk over
    the guide tree, instead of one axis sweep per step; the per-path
    counts drive the optimizer's cost model ({!Standoff_xquery}).

    Guides build lazily on first probe, per document, under the
    document's own index lock (double-checked publication, like
    [Doc.elem_index]), in parallel over pre-range chunks when a pool
    is supplied.  Staleness is governed by the caller-supplied
    catalogue generation: {!get} rebuilds whenever the cached guide's
    generation differs from the document's current one, so updates
    invalidate guides exactly as they invalidate cached results. *)

type step = bool * string
(** One path step [(descendant, name)]: [(false, n)] selects the
    child elements named [n] of the previous step's matches (the
    document node, for the first step); [(true, n)] selects their
    proper descendants named [n] at any depth.  These are exactly the
    semantics of [/n] and [//n] applied to downward name paths. *)

(** [build ?pool ~generation d] constructs the guide in one pre-order
    pass — chunked across [pool]'s domains when given — and stamps it
    with [generation].  Exposed for benchmarks; query evaluation goes
    through {!get}. *)
val build : ?pool:Standoff_util.Pool.t -> generation:int -> Doc.t -> Doc.guide

(** [get ?pool ~generation d] is the cached guide when its stamp
    matches [generation], else a fresh {!build} published under the
    document's index lock.  Concurrent callers race benignly: exactly
    one builds, the rest block and receive the published guide. *)
val get : ?pool:Standoff_util.Pool.t -> generation:int -> Doc.t -> Doc.guide

(** [lookup d g steps] is the sorted, duplicate-free array of pres of
    the elements [steps] reaches from the document node.  A name
    absent from the document matches nothing.  Single-path matches
    return the guide's own array, shared — callers must not mutate it
    (the {!Doc.elements_named} contract). *)
val lookup : Doc.t -> Doc.guide -> step list -> int array

(** [count d g steps] is [Array.length (lookup d g steps)] without
    materialising the merge — the optimizer's per-path cardinality. *)
val count : Doc.t -> Doc.guide -> step list -> int

(** [path_count g] is the number of distinct label paths [g]
    summarises. *)
val path_count : Doc.guide -> int
