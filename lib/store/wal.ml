module Codec = Standoff_util.Codec
module Failpoint = Standoff_util.Failpoint
module Metrics = Standoff_obs.Metrics

exception Corrupt of string

let m_appended =
  Metrics.counter "standoff_wal_appended_records_total"
    ~help:"Records appended to the write-ahead log"

let m_appended_bytes =
  Metrics.counter "standoff_wal_appended_bytes_total"
    ~help:"Bytes appended to the write-ahead log (frames included)"

let m_fsync_seconds =
  Metrics.histogram "standoff_wal_fsync_seconds"
    ~buckets:Metrics.duration_buckets
    ~help:"Wall-clock fsync latency on the write-ahead log"

let m_replayed =
  Metrics.counter "standoff_wal_replayed_records_total"
    ~help:"Records replayed from the write-ahead log at recovery"

let m_torn_tails =
  Metrics.counter "standoff_wal_torn_tails_total"
    ~help:"Replays that stopped early at a torn or checksum-failing tail"

(* ------------------------------------------------------------------ *)
(* File format                                                         *)

(* Header: 5 magic bytes + 1 version byte.  Then records, each framed
   as

     4 bytes  payload length   (little-endian)
     4 bytes  Fletcher-32 checksum of the payload (little-endian)
     n bytes  payload

   The payload is Codec-encoded: the record's LSN (varint) followed by
   the operation.  A crash can only ever truncate the file (appends are
   sequential), so replay stops — without error — at the first frame
   that is short or fails its checksum: the torn tail.  Anything wrong
   *before* the tail (bad magic, undecodable checksummed payload) is
   real corruption and raises {!Corrupt}. *)

let magic = "SOWAL"
let version = 1
let header_len = String.length magic + 1

(* A frame length past this is garbage from a corrupted length field,
   not a real record; treat it as a torn tail rather than attempting
   the allocation. *)
let max_record_bytes = 16 * 1024 * 1024

type op =
  | Set_region of {
      doc : string;
      start_attr : string;
      end_attr : string;
      ptype : string;
      pre : int;
      start_pos : int64;
      end_pos : int64;
    }
  | Shift of {
      doc : string;
      start_attr : string;
      end_attr : string;
      ptype : string;
      from : int64;
      by : int64;
    }
  | Ingest of {
      docs : (string * string) list;  (* name, Persist doc payload *)
      blobs : (string * string) list;  (* name, contents *)
    }

let op_doc = function
  | Set_region { doc; _ } | Shift { doc; _ } -> doc
  | Ingest { docs = (name, _) :: _; _ } -> name
  | Ingest { docs = []; _ } -> ""

let encode_op w op =
  let open Codec.Writer in
  match op with
  | Set_region { doc; start_attr; end_attr; ptype; pre; start_pos; end_pos } ->
      byte w 1;
      string w doc;
      string w start_attr;
      string w end_attr;
      string w ptype;
      varint w pre;
      varint64 w start_pos;
      varint64 w end_pos
  | Shift { doc; start_attr; end_attr; ptype; from; by } ->
      byte w 2;
      string w doc;
      string w start_attr;
      string w end_attr;
      string w ptype;
      varint64 w from;
      varint64 w by
  | Ingest { docs; blobs } ->
      byte w 3;
      let pairs ps =
        varint w (List.length ps);
        List.iter
          (fun (name, payload) ->
            string w name;
            string w payload)
          ps
      in
      pairs docs;
      pairs blobs

let decode_op r =
  let open Codec.Reader in
  match byte r with
  | 1 ->
      let doc = string r in
      let start_attr = string r in
      let end_attr = string r in
      let ptype = string r in
      let pre = varint r in
      let start_pos = varint64 r in
      let end_pos = varint64 r in
      Set_region { doc; start_attr; end_attr; ptype; pre; start_pos; end_pos }
  | 2 ->
      let doc = string r in
      let start_attr = string r in
      let end_attr = string r in
      let ptype = string r in
      let from = varint64 r in
      let by = varint64 r in
      Shift { doc; start_attr; end_attr; ptype; from; by }
  | 3 ->
      let pairs () =
        let n = varint r in
        let rec go k acc =
          if k = 0 then List.rev acc
          else
            let name = string r in
            let payload = string r in
            go (k - 1) ((name, payload) :: acc)
        in
        go n []
      in
      let docs = pairs () in
      let blobs = pairs () in
      Ingest { docs; blobs }
  | b -> raise (Corrupt (Printf.sprintf "unknown WAL record tag %d" b))

let put_le32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let get_le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let frame_of_payload payload =
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  put_le32 b 0 n;
  put_le32 b 4 (Codec.fletcher32 payload);
  Bytes.blit_string payload 0 b 8 n;
  b

(* ------------------------------------------------------------------ *)
(* Fsync policies                                                      *)

type fsync_policy =
  | Always
  | Batch of int
  | Never

let default_batch = 64

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Always
  | "never" | "off" -> Never
  | "batch" -> Batch default_batch
  | s when String.length s > 6 && String.sub s 0 6 = "batch:" -> (
      let n = String.sub s 6 (String.length s - 6) in
      match int_of_string_opt n with
      | Some n when n >= 1 -> Batch n
      | _ ->
          invalid_arg (Printf.sprintf "bad fsync batch size %S" n))
  | s ->
      invalid_arg
        (Printf.sprintf
           "unknown fsync policy %S (expected always | batch[:N] | never)" s)

let fsync_policy_to_string = function
  | Always -> "always"
  | Batch n when n = default_batch -> "batch"
  | Batch n -> Printf.sprintf "batch:%d" n
  | Never -> "never"

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

type t = {
  path : string;
  fd : Unix.file_descr;
  policy : fsync_policy;
  lock : Mutex.t;
  mutable next_lsn : int;
  mutable unsynced : int;
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write_all fd b off len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd b (off + !written) (len - !written)
  done

let do_fsync t =
  Metrics.time m_fsync_seconds (fun () -> Unix.fsync t.fd);
  t.unsynced <- 0

let write_header fd =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set b (String.length magic) (Char.chr version);
  write_all fd b 0 header_len

let create ?(policy = Always) ~next_lsn path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  (try
     write_header fd;
     if policy <> Never then Unix.fsync fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    path;
    fd;
    policy;
    lock = Mutex.create ();
    next_lsn = max 1 next_lsn;
    unsynced = 0;
    closed = false;
  }

let open_append ?(policy = Always) ~valid_bytes ~next_lsn path =
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
  in
  (try
     if valid_bytes < header_len then begin
       (* Fresh file, or a crash landed inside the header write: start
          over.  Nothing valid can precede a complete header. *)
       Unix.ftruncate fd 0;
       write_header fd
     end
     else
       (* Drop the torn tail (replay already refused to read past
          [valid_bytes]); appending after garbage would hide every
          later record from the next replay. *)
       Unix.ftruncate fd valid_bytes;
     ignore (Unix.lseek fd 0 Unix.SEEK_END);
     if policy <> Never then Unix.fsync fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    path;
    fd;
    policy;
    lock = Mutex.create ();
    next_lsn = max 1 next_lsn;
    unsynced = 0;
    closed = false;
  }

let append t op =
  locked t (fun () ->
      if t.closed then invalid_arg "Wal.append: log is closed";
      let lsn = t.next_lsn in
      let w = Codec.Writer.create () in
      Codec.Writer.varint w lsn;
      encode_op w op;
      let frame = frame_of_payload (Codec.Writer.contents w) in
      let len = Bytes.length frame in
      if Failpoint.would_fire "wal.mid_append" then begin
        (* Make the torn state real: half the frame reaches the file,
           then the injected crash fires. *)
        let half = len / 2 in
        write_all t.fd frame 0 half;
        Failpoint.hit "wal.mid_append";
        write_all t.fd frame half (len - half)
      end
      else begin
        write_all t.fd frame 0 len;
        Failpoint.hit "wal.mid_append"
      end;
      t.unsynced <- t.unsynced + 1;
      Failpoint.hit "wal.before_fsync";
      (match t.policy with
      | Always -> do_fsync t
      | Batch n -> if t.unsynced >= n then do_fsync t
      | Never -> ());
      Failpoint.hit "wal.after_append";
      t.next_lsn <- lsn + 1;
      Metrics.incr m_appended;
      Metrics.add m_appended_bytes len;
      lsn)

let flush t =
  locked t (fun () ->
      if (not t.closed) && t.unsynced > 0 && t.policy <> Never then do_fsync t)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        (try if t.unsynced > 0 && t.policy <> Never then do_fsync t
         with Unix.Unix_error _ -> ());
        t.closed <- true;
        try Unix.close t.fd with Unix.Unix_error _ -> ()
      end)

let next_lsn t = locked t (fun () -> t.next_lsn)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replayed = {
  r_ops : (int * op) list;
  r_valid_bytes : int;
  r_torn : string option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay path =
  if not (Sys.file_exists path) then
    { r_ops = []; r_valid_bytes = 0; r_torn = None }
  else begin
    let s = read_file path in
    let n = String.length s in
    if n = 0 then { r_ops = []; r_valid_bytes = 0; r_torn = None }
    else if n < header_len then
      (* The crash landed inside the very first write: no record can
         have been acknowledged, so this is an (empty) torn tail. *)
      { r_ops = []; r_valid_bytes = 0; r_torn = Some "torn header" }
    else if String.sub s 0 (String.length magic) <> magic then
      raise (Corrupt "bad WAL magic")
    else if Char.code s.[String.length magic] <> version then
      raise
        (Corrupt
           (Printf.sprintf "unsupported WAL version %d"
              (Char.code s.[String.length magic])))
    else begin
      let ops = ref [] in
      let count = ref 0 in
      let off = ref header_len in
      let torn = ref None in
      let stop reason = torn := Some reason in
      while !torn = None && !off < n do
        if n - !off < 8 then stop "short record header"
        else begin
          let len = get_le32 s !off in
          let sum = get_le32 s (!off + 4) in
          if len > max_record_bytes then stop "implausible record length"
          else if len > n - (!off + 8) then stop "short record payload"
          else begin
            let payload = String.sub s (!off + 8) len in
            if Codec.fletcher32 payload <> sum then stop "checksum mismatch"
            else begin
              let r = Codec.Reader.create payload in
              (try
                 let lsn = Codec.Reader.varint r in
                 let op = decode_op r in
                 if not (Codec.Reader.at_end r) then
                   raise (Corrupt "trailing bytes in WAL record");
                 if lsn < 1 then
                   raise (Corrupt (Printf.sprintf "bad WAL record lsn %d" lsn));
                 ops := (lsn, op) :: !ops;
                 incr count
               with Codec.Reader.Corrupt msg ->
                 (* The checksum held but the payload does not decode:
                    that is not a torn write, it is a format problem. *)
                 raise (Corrupt ("undecodable WAL record: " ^ msg)));
              off := !off + 8 + len
            end
          end
        end
      done;
      Metrics.add m_replayed !count;
      if !torn <> None then Metrics.incr m_torn_tails;
      { r_ops = List.rev !ops; r_valid_bytes = !off; r_torn = !torn }
    end
  end
