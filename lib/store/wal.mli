(** Write-ahead log for annotation updates.

    Records are length-prefixed and Fletcher-32 checksummed; a crash
    can only truncate the file, so {!replay} stops cleanly at the
    first short or checksum-failing frame (the torn tail) and returns
    everything before it.  Corruption that cannot be explained by a
    torn append — bad magic, an undecodable checksummed payload —
    raises {!Corrupt} instead of being silently skipped. *)

exception Corrupt of string

(** A logged update, self-contained: the attribute names and position
    type travel with the record so replay does not depend on server
    configuration at recovery time. *)
type op =
  | Set_region of {
      doc : string;
      start_attr : string;
      end_attr : string;
      ptype : string;
      pre : int;
      start_pos : int64;
      end_pos : int64;
    }
  | Shift of {
      doc : string;
      start_attr : string;
      end_attr : string;
      ptype : string;
      from : int64;
      by : int64;
    }
  | Ingest of {
      docs : (string * string) list;
          (** (name, {!Standoff_store.Persist.doc_to_string} payload) *)
      blobs : (string * string) list;  (** (name, raw contents) *)
    }
      (** A whole batch of new documents and blobs as one record — the
          bulk-load path logs (and fsyncs) once per batch, not once
          per document. *)

val op_doc : op -> string
(** Document name the operation targets (the first document of a
    batch; [""] for an empty batch). *)

type fsync_policy =
  | Always  (** fsync after every append: acked implies durable *)
  | Batch of int  (** fsync every n appends: bounded loss window *)
  | Never  (** leave it to the OS: fastest, weakest *)

val fsync_policy_of_string : string -> fsync_policy
(** Parses ["always"], ["batch"], ["batch:N"], ["never"]/["off"].
    @raise Invalid_argument on anything else. *)

val fsync_policy_to_string : fsync_policy -> string

type t
(** An open log.  Appends are serialised internally; safe to call from
    several domains. *)

val create : ?policy:fsync_policy -> next_lsn:int -> string -> t
(** [create ~next_lsn path] truncates [path] and starts a fresh log
    whose first record will carry [next_lsn]. *)

val open_append : ?policy:fsync_policy -> valid_bytes:int -> next_lsn:int -> string -> t
(** [open_append ~valid_bytes ~next_lsn path] reopens an existing log
    for appending, first truncating it to [valid_bytes] (as reported
    by {!replay}) so a torn tail never precedes new records. *)

val append : t -> op -> int
(** Appends one record and returns its LSN.  When the policy is
    [Always] the record is on disk when this returns. *)

val flush : t -> unit
(** Force an fsync of any unsynced appends (no-op under [Never]). *)

val close : t -> unit
(** Flushes (best-effort) and closes the file descriptor. *)

val next_lsn : t -> int

type replayed = {
  r_ops : (int * op) list;  (** (lsn, op) in file order *)
  r_valid_bytes : int;  (** prefix length containing intact records *)
  r_torn : string option;  (** why replay stopped early, if it did *)
}

val replay : string -> replayed
(** Reads every intact record from the file at [path].  A missing or
    empty file replays as zero records.  @raise Corrupt on damage that
    a torn append cannot explain. *)
