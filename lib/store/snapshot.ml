module Codec = Standoff_util.Codec
module Failpoint = Standoff_util.Failpoint
module Metrics = Standoff_obs.Metrics

let m_snapshots =
  Metrics.counter "standoff_wal_snapshots_total"
    ~help:"Snapshots written (clean shutdowns included)"

let m_snapshot_seconds =
  Metrics.histogram "standoff_wal_snapshot_seconds"
    ~buckets:Metrics.duration_buckets
    ~help:"Wall-clock time to encode, write and fsync a snapshot"

(* A snapshot is the collection sealed with a generation stamp and the
   LSN it covers: every WAL record with lsn <= snapshot lsn is already
   folded in, so recovery replays only the suffix.  Files are named by
   that LSN so "newest" is a lexicographic max, and they are written
   tmp + fsync + rename so a crash leaves either the old set or the
   old set plus one complete new file — never a half-written one under
   the real name. *)

let file_re = "snapshot-"
let suffix = ".sodb"

let filename lsn = Printf.sprintf "snapshot-%012d%s" lsn suffix

let lsn_of_filename name =
  let pre = String.length file_re and suf = String.length suffix in
  if
    String.length name > pre + suf
    && String.sub name 0 pre = file_re
    && String.sub name (String.length name - suf) suf = suffix
  then int_of_string_opt (String.sub name pre (String.length name - pre - suf))
  else None

let list dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match lsn_of_filename name with
           | Some lsn -> Some (lsn, Filename.concat dir name)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
(* newest first *)

let encode ~lsn ~generation coll =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w lsn;
  Codec.Writer.varint w generation;
  Codec.Writer.string w (Persist.collection_to_string coll);
  Persist.seal ~tag:"snapshot" (Codec.Writer.contents w)

let decode s =
  let payload = Persist.unseal ~tag:"snapshot" s in
  let r = Codec.Reader.create payload in
  try
    let lsn = Codec.Reader.varint r in
    let generation = Codec.Reader.varint r in
    let coll = Persist.collection_of_string (Codec.Reader.string r) in
    if not (Codec.Reader.at_end r) then
      raise (Persist.Corrupt "trailing snapshot bytes");
    (lsn, generation, coll)
  with Codec.Reader.Corrupt msg -> raise (Persist.Corrupt msg)

let fsync_dir dir =
  (* Make the rename itself durable.  Directory fsync is best-effort:
     some filesystems refuse O_RDONLY fsync on directories. *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write ~dir ~lsn ~generation coll =
  Metrics.time m_snapshot_seconds (fun () ->
      let contents = encode ~lsn ~generation coll in
      let final = Filename.concat dir (filename lsn) in
      let tmp = final ^ ".tmp" in
      let fd =
        Unix.openfile tmp
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
          0o644
      in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let b = Bytes.of_string contents in
          let len = Bytes.length b in
          let write_range from upto =
            let w = ref from in
            while !w < upto do
              w := !w + Unix.write fd b !w (upto - !w)
            done
          in
          if Failpoint.would_fire "snapshot.mid_write" then begin
            (* Half the bytes land, then the injected crash. *)
            write_range 0 (len / 2);
            Failpoint.hit "snapshot.mid_write";
            write_range (len / 2) len
          end
          else begin
            write_range 0 len;
            Failpoint.hit "snapshot.mid_write"
          end;
          Unix.fsync fd);
      Failpoint.hit "snapshot.before_rename";
      Unix.rename tmp final;
      fsync_dir dir;
      Metrics.incr m_snapshots;
      final)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_latest ~dir =
  let rec try_files = function
    | [] -> None
    | (_, path) :: older -> (
        match decode (read_file path) with
        | lsn, generation, coll -> Some (lsn, generation, coll, path)
        | exception (Persist.Corrupt _ | Sys_error _) ->
            (* A damaged snapshot must not take the store down when an
               older intact one can still bound the replay. *)
            try_files older)
  in
  try_files (list dir)

let prune ~dir ~keep =
  if keep < 1 then invalid_arg "Snapshot.prune: keep must be >= 1";
  let all = list dir in
  let doomed = if List.length all <= keep then [] else List.filteri (fun i _ -> i >= keep) all in
  List.iter
    (fun (_, path) -> try Sys.remove path with Sys_error _ -> ())
    doomed;
  (* Leftover tmp files from crashed writes are garbage by definition. *)
  (if Sys.file_exists dir then
     Sys.readdir dir |> Array.iter (fun name ->
         if Filename.check_suffix name ".tmp" then
           try Sys.remove (Filename.concat dir name) with Sys_error _ -> ()));
  List.length doomed
