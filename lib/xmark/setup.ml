module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Engine = Standoff_xquery.Engine

type t = {
  engine : Engine.t;
  coll : Collection.t;
  standard_doc : string;
  standoff_doc : string;
  blob_name : string;
  scale : float;
  serialized_size : int;
}

let build ?(seed = 20060630L) ?permute ?(with_standard = true) ?jobs ~scale () =
  let dom = Gen.generate { Gen.scale; seed } in
  let serialized_size =
    String.length (Standoff_xml.Serializer.to_string dom)
  in
  let transformed = Standoffify.transform ?permute dom in
  let coll = Collection.create () in
  let standard_doc = Printf.sprintf "xmark-%g.xml" scale in
  let standoff_doc = Printf.sprintf "xmark-standoff-%g.xml" scale in
  let blob_name = Printf.sprintf "xmark-%g.blob" scale in
  if with_standard then
    ignore (Collection.add coll (Doc.of_dom ~name:standard_doc dom));
  ignore
    (Collection.add coll (Doc.of_dom ~name:standoff_doc transformed.Standoffify.doc));
  Collection.add_blob coll (Blob.of_string ~name:blob_name transformed.Standoffify.blob);
  {
    engine = Engine.create ?jobs coll;
    coll;
    standard_doc;
    standoff_doc;
    blob_name;
    scale;
    serialized_size;
  }

let size_label bytes =
  if bytes >= 1_000_000 then Printf.sprintf "%dMB" (bytes / 1_000_000)
  else if bytes >= 1_000 then Printf.sprintf "%dKB" (bytes / 1_000)
  else Printf.sprintf "%dB" bytes
