(** One-call construction of the paper's experimental setup: generate
    an XMark document at a scale factor, run the StandOff
    transformation, shred both versions, and register them (plus the
    BLOB) in a collection behind a query engine. *)

type t = {
  engine : Standoff_xquery.Engine.t;
  coll : Standoff_store.Collection.t;
  standard_doc : string;  (** name of the untransformed document *)
  standoff_doc : string;  (** name of the stand-off document *)
  blob_name : string;
  scale : float;
  serialized_size : int;  (** bytes of the standard serialized form *)
}

(** [build ?seed ?permute ?with_standard ?jobs ~scale ()] generates and
    loads everything.  [with_standard] (default [true]) also shreds the
    untransformed document (needed for the Staircase-Join comparison
    benchmark, not for Figure 6).  [jobs] is passed to
    {!Standoff_xquery.Engine.create}. *)
val build :
  ?seed:int64 ->
  ?permute:bool ->
  ?with_standard:bool ->
  ?jobs:int ->
  scale:float ->
  unit ->
  t

(** [size_label bytes] renders a Figure 6 style size label, e.g.
    ["11MB"]. *)
val size_label : int -> string
