module Dom = Standoff_xml.Dom
module Prng = Standoff_util.Prng
module Convert = Standoff_convert.Convert

type result = {
  doc : Dom.document;
  blob : string;
}

(* Pass 2: coarse permutation.  The grandchildren of the root (the
   entity subtrees) are collected, shuffled, and dealt back across the
   root's children, so most entities end up under a different section
   element than in the original tree. *)
let permute_coarse ~seed root =
  let rng = Prng.create seed in
  let sections = root.Dom.children in
  let entities =
    List.concat_map
      (function
        | Dom.Element s -> s.Dom.children
        | (Dom.Text _ | Dom.Comment _ | Dom.Pi _) as other -> [ other ])
      sections
  in
  let shuffled = Array.of_list entities in
  Prng.shuffle rng shuffled;
  let n_sections =
    List.length
      (List.filter (function Dom.Element _ -> true | _ -> false) sections)
  in
  if n_sections = 0 then root
  else begin
    let buckets = Array.make n_sections [] in
    Array.iteri
      (fun i entity -> buckets.(i mod n_sections) <- entity :: buckets.(i mod n_sections))
      shuffled;
    let idx = ref 0 in
    let children =
      List.map
        (fun section ->
          match section with
          | Dom.Element s ->
              let mine = List.rev buckets.(!idx) in
              incr idx;
              Dom.Element { s with Dom.children = mine }
          | other -> other)
        sections
    in
    { root with Dom.children }
  end

(* Pass 1 — move text into the blob and annotate extents — is the
   general conversion with the historical [On_empty] separator policy:
   a separator byte only when a subtree contributed no bytes, which
   keeps the blob byte-identical to what this module always produced. *)
let transform ?(seed = 42L) ?(permute = true) (dom : Dom.document) =
  let conv = Convert.to_standoff ~separator:Convert.On_empty dom in
  let annotated = conv.Convert.doc.Dom.root in
  let root = if permute then permute_coarse ~seed annotated else annotated in
  { doc = { dom with Dom.root }; blob = conv.Convert.blob }
