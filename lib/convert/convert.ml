module Dom = Standoff_xml.Dom

type separator = Per_element | On_empty

type t = {
  doc : Dom.document;
  layers : (string * Dom.document) list;
  blob : string;
}

let default_node_wrapper = "so-node"

(* The separator byte every element contributes at its open position
   (every empty subtree under [On_empty]).  Reconstruction never
   inspects its value — placement is purely positional — so text is
   free to contain the same byte. *)
let sep_byte = '\n'

(* ------------------------------------------------------------------ *)
(* Inline -> stand-off                                                 *)

let check_element ~start_name ~end_name ~node_wrapper ~separator e =
  if separator = Per_element && String.equal e.Dom.tag node_wrapper then
    invalid_arg
      (Printf.sprintf
         "Convert.to_standoff: element named %S collides with the node \
          wrapper"
         node_wrapper);
  List.iter
    (fun a ->
      if
        String.equal a.Dom.attr_name start_name
        || String.equal a.Dom.attr_name end_name
      then
        invalid_arg
          (Printf.sprintf
             "Convert.to_standoff: element <%s> already carries a %S \
              attribute"
             e.Dom.tag a.Dom.attr_name))
    e.Dom.attrs

let with_extent ~start_name ~end_name e start stop =
  Dom.with_attr
    (Dom.with_attr e start_name (string_of_int start))
    end_name (string_of_int stop)

(* Move text into [buf] and annotate extents.  Under [Per_element]
   every element (and every comment/PI, via its wrapper) owns one
   separator byte at its open position, so extents are valid regions
   that nest strictly; under [On_empty] only empty subtrees get one —
   the historical Standoffify layout. *)
let rec annotate ~start_name ~end_name ~node_wrapper ~separator buf node =
  match node with
  | Dom.Text s ->
      Buffer.add_string buf s;
      None
  | (Dom.Comment _ | Dom.Pi _) as n -> (
      match separator with
      | On_empty -> Some n
      | Per_element ->
          let start = Buffer.length buf in
          Buffer.add_char buf sep_byte;
          let wrapper =
            { Dom.tag = node_wrapper; attrs = []; children = [ n ] }
          in
          Some (Dom.Element (with_extent ~start_name ~end_name wrapper start start)))
  | Dom.Element e ->
      check_element ~start_name ~end_name ~node_wrapper ~separator e;
      let start = Buffer.length buf in
      if separator = Per_element then Buffer.add_char buf sep_byte;
      let children =
        List.filter_map
          (annotate ~start_name ~end_name ~node_wrapper ~separator buf)
          e.Dom.children
      in
      if separator = On_empty && Buffer.length buf = start then
        Buffer.add_char buf sep_byte;
      let stop = Buffer.length buf - 1 in
      Some
        (Dom.Element
           (with_extent ~start_name ~end_name { e with Dom.children } start stop))

(* A layer is a flat projection: the matching elements of the full
   stand-off tree in document order, attributes (extents included)
   kept, children dropped. *)
let project_layer root tags =
  let out = ref [] in
  let rec go e =
    if List.exists (String.equal e.Dom.tag) tags then
      out := Dom.Element { e with Dom.children = [] } :: !out;
    List.iter
      (function Dom.Element c -> go c | Dom.Text _ | Dom.Comment _ | Dom.Pi _ -> ())
      e.Dom.children
  in
  go root;
  List.rev !out

let to_standoff ?(start_name = "start") ?(end_name = "end")
    ?(node_wrapper = default_node_wrapper) ?(separator = Per_element)
    ?(layers = []) (dom : Dom.document) =
  List.iter
    (fun (name, _) ->
      if not (Dom.valid_name name) then
        invalid_arg
          (Printf.sprintf "Convert.to_standoff: invalid layer name %S" name))
    layers;
  let buf = Buffer.create 65536 in
  let root =
    match
      annotate ~start_name ~end_name ~node_wrapper ~separator buf
        (Dom.Element dom.Dom.root)
    with
    | Some (Dom.Element root) -> root
    | Some _ | None -> assert false
  in
  let doc = { dom with Dom.root } in
  let layers =
    List.map
      (fun (name, tags) ->
        ( name,
          Dom.document
            (Dom.Element
               { Dom.tag = name; attrs = []; children = project_layer root tags }) ))
      layers
  in
  { doc; layers; blob = Buffer.contents buf }

(* ------------------------------------------------------------------ *)
(* Stand-off -> inline                                                 *)

type ann = {
  a_tag : string;
  a_attrs : Dom.attribute list;  (* extents already stripped *)
  a_payload : Dom.node list;  (* wrapper payload: the comment/PI *)
  a_wrapper : bool;
  a_start : int;
  a_end : int;
  a_seq : int;  (* input order: the deterministic tie-break *)
  a_continuation : bool;  (* split tail: its first byte is real text *)
}

(* start ascending; longer annotation first at a shared start (it must
   open before anything it contains); input order last, so the
   placement of crossing or duplicate regions is deterministic. *)
let compare_ann a b =
  if a.a_start <> b.a_start then compare a.a_start b.a_start
  else if a.a_end <> b.a_end then compare b.a_end a.a_end
  else compare a.a_seq b.a_seq

let extent_of ~start_name ~end_name ~blob_len e =
  let parse what v =
    match int_of_string_opt (String.trim v) with
    | Some n -> n
    | None ->
        invalid_arg
          (Printf.sprintf "Convert.to_inline: <%s> has non-integer %s=%S"
             e.Dom.tag what v)
  in
  match (Dom.attr e start_name, Dom.attr e end_name) with
  | None, None -> None
  | Some s, Some ee ->
      let s = parse start_name s and ee = parse end_name ee in
      if s > ee then
        invalid_arg
          (Printf.sprintf "Convert.to_inline: <%s> has start %d > end %d"
             e.Dom.tag s ee);
      if s < 0 || ee >= blob_len then
        invalid_arg
          (Printf.sprintf
             "Convert.to_inline: <%s> extent [%d,%d] outside the %d-byte blob"
             e.Dom.tag s ee blob_len);
      Some (s, ee)
  | Some _, None ->
      invalid_arg
        (Printf.sprintf "Convert.to_inline: <%s> has %S without %S" e.Dom.tag
           start_name end_name)
  | None, Some _ ->
      invalid_arg
        (Printf.sprintf "Convert.to_inline: <%s> has %S without %S" e.Dom.tag
           end_name start_name)

(* Elements with both extent attributes are annotations; elements with
   neither are containers whose element children are scanned (the root
   of a flat layer).  Text inside annotation documents carries no
   placement information and is ignored. *)
let collect ~start_name ~end_name ~node_wrapper ~blob_len docs =
  let anns = ref [] and seq = ref 0 in
  let rec go e =
    let descend () =
      List.iter
        (function
          | Dom.Element c -> go c
          | Dom.Text _ | Dom.Comment _ | Dom.Pi _ -> ())
        e.Dom.children
    in
    match extent_of ~start_name ~end_name ~blob_len e with
    | None -> descend ()
    | Some (s, ee) ->
        let a_wrapper = String.equal e.Dom.tag node_wrapper in
        let a_attrs =
          List.filter
            (fun a ->
              not
                (String.equal a.Dom.attr_name start_name
                || String.equal a.Dom.attr_name end_name))
            e.Dom.attrs
        in
        anns :=
          {
            a_tag = e.Dom.tag;
            a_attrs;
            a_payload = (if a_wrapper then e.Dom.children else []);
            a_wrapper;
            a_start = s;
            a_end = ee;
            a_seq = !seq;
            a_continuation = false;
          }
          :: !anns;
        incr seq;
        if not a_wrapper then descend ()
  in
  List.iter (fun (d : Dom.document) -> go d.Dom.root) docs;
  List.rev !anns

type frame = {
  f_tag : string;
  f_attrs : Dom.attribute list;
  f_payload : Dom.node list;
  f_wrapper : bool;
  f_end : int;
  mutable f_children : Dom.node list;  (* reversed *)
}

let to_inline ?(start_name = "start") ?(end_name = "end")
    ?(node_wrapper = default_node_wrapper) ?(consume_separator = true)
    ?(root_name = "text") ~blob docs =
  let blob_len = String.length blob in
  let anns =
    List.sort compare_ann
      (collect ~start_name ~end_name ~node_wrapper ~blob_len docs)
  in
  (* The virtual root collects top-level annotations and any text the
     annotations do not cover. *)
  let virtual_root =
    {
      f_tag = "";
      f_attrs = [];
      f_payload = [];
      f_wrapper = false;
      f_end = blob_len - 1;
      f_children = [];
    }
  in
  let stack = ref [] in
  let pos = ref 0 in
  let current () = match !stack with f :: _ -> f | [] -> virtual_root in
  let flush_text upto =
    if upto >= !pos then begin
      let f = current () in
      f.f_children <-
        Dom.Text (String.sub blob !pos (upto - !pos + 1)) :: f.f_children;
      pos := upto + 1
    end
  in
  let close_top () =
    match !stack with
    | [] -> assert false
    | f :: rest ->
        flush_text f.f_end;
        stack := rest;
        let parent = current () in
        let nodes =
          if f.f_wrapper then f.f_payload @ List.rev f.f_children
          else
            [
              Dom.Element
                {
                  Dom.tag = f.f_tag;
                  attrs = f.f_attrs;
                  children = List.rev f.f_children;
                };
            ]
        in
        parent.f_children <- List.rev_append nodes parent.f_children
  in
  let open_ann a =
    flush_text (a.a_start - 1);
    stack :=
      {
        f_tag = a.a_tag;
        f_attrs = a.a_attrs;
        f_payload = a.a_payload;
        f_wrapper = a.a_wrapper;
        f_end = a.a_end;
        f_children = [];
      }
      :: !stack;
    (* The annotation's first byte is its Per_element separator; a
       split continuation starts on real text and owns no separator.
       [max] guards against a second annotation sharing a start with
       an already-opened one: the byte is consumed only once. *)
    if consume_separator && not a.a_continuation then
      pos := max !pos (a.a_start + 1)
  in
  let rec insert a = function
    | [] -> [ a ]
    | b :: rest as l -> if compare_ann a b <= 0 then a :: l else b :: insert a rest
  in
  let queue = ref anns in
  while !queue <> [] do
    let a = List.hd !queue in
    match !stack with
    | f :: _ when f.f_end < a.a_start ->
        (* the open annotation ends before [a] starts *)
        close_top ()
    | f :: _ when a.a_end > f.f_end ->
        (* [a] crosses the open annotation's right boundary: split it
           there and re-queue the tail — the standoff2inline tag-split
           for partially overlapping layers *)
        let head = { a with a_end = f.f_end } in
        let tail =
          {
            a with
            a_start = f.f_end + 1;
            a_payload = [];
            a_continuation = true;
          }
        in
        queue := head :: insert tail (List.tl !queue)
    | _ ->
        open_ann a;
        queue := List.tl !queue
  done;
  while !stack <> [] do
    close_top ()
  done;
  flush_text (blob_len - 1);
  let children = List.rev virtual_root.f_children in
  let prolog, epilog =
    match docs with
    | d :: _ -> (d.Dom.prolog, d.Dom.epilog)
    | [] -> ([], [])
  in
  let root =
    match children with
    | [ Dom.Element e ] -> e
    | children ->
        if not (Dom.valid_name root_name) then
          invalid_arg
            (Printf.sprintf "Convert.to_inline: invalid root name %S" root_name);
        { Dom.tag = root_name; attrs = []; children }
  in
  { Dom.prolog; root; epilog }
