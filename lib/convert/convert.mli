(** Inline ⇄ stand-off conversion.

    Real stand-off corpora are born as inline markup: a TEI or
    ALVIS-style document is converted to stand-off for ingestion (text
    moves to a BLOB, elements become area annotations with [start]/
    [end] byte extents) and re-inlined on export.  This module is the
    general form of that conversion — {!Standoff_xmark.Standoffify}'s
    synthetic transform is a thin wrapper over {!to_standoff} with
    [~separator:On_empty].

    {2 Coordinate system}

    Under the default [Per_element] separator policy, every element
    (and every comment/PI wrapper) contributes exactly one separator
    byte (['\n']) to the BLOB at its open position, followed by its
    text content in document order.  Consequences:

    - every extent is a valid inclusive region ([start <= end]), even
      for empty elements;
    - extents are {e strictly nested}: no two nodes share an extent,
      and [extent b ⊆ extent a] holds iff [b] is a descendant-or-self
      of [a] — so the StandOff containment axes ([select-narrow])
      answer exactly the descendant axis of the inline original;
    - reconstruction is unambiguous: {!to_inline} recovers the
      canonical serialization of the original byte-for-byte.

    [On_empty] reproduces {!Standoffify}'s historical blob layout (a
    separator only when a subtree contributed no bytes); it keeps the
    BLOB closest to the plain text but its extents can collide and its
    output is not reconstructible, so {!to_inline} does not support
    it. *)

(** Separator policy for {!to_standoff}. *)
type separator =
  | Per_element
      (** one ['\n'] per element open — strict nesting, lossless
          round-trip (the default) *)
  | On_empty
      (** one ['\n'] only for empty subtrees — the historical
          {!Standoffify} layout; not reconstructible *)

type t = {
  doc : Standoff_xml.Dom.document;
      (** the full stand-off document: the input tree with text
          removed and [start]/[end] extent attributes added *)
  layers : (string * Standoff_xml.Dom.document) list;
      (** one flat annotation document per requested layer, in request
          order; every layer references the same {!blob} *)
  blob : string;  (** the extracted text *)
}

val default_node_wrapper : string
(** ["so-node"] — the reserved element name wrapping comments and
    processing instructions so they keep a byte position. *)

val to_standoff :
  ?start_name:string ->
  ?end_name:string ->
  ?node_wrapper:string ->
  ?separator:separator ->
  ?layers:(string * string list) list ->
  Standoff_xml.Dom.document ->
  t
(** [to_standoff dom] walks [dom], moves its text into a BLOB in
    document order and returns the annotated stand-off form.

    [?layers] is a list of [(layer_name, element_names)] pairs; each
    produces a flat annotation document [<layer_name>] whose children
    are the matching elements of [dom] in document order, attributes
    and extents included, children dropped.

    @raise Invalid_argument if any element of [dom] already carries an
    attribute named [start_name] or [end_name], is named
    [node_wrapper] (under [Per_element]), or if a layer name is not a
    valid element name. *)

val to_inline :
  ?start_name:string ->
  ?end_name:string ->
  ?node_wrapper:string ->
  ?consume_separator:bool ->
  ?root_name:string ->
  blob:string ->
  Standoff_xml.Dom.document list ->
  Standoff_xml.Dom.document
(** [to_inline ~blob docs] re-inserts the annotations of [docs] into
    [blob] as element tags and returns the resulting inline document.

    Every element carrying both extent attributes is an annotation;
    elements carrying neither are containers (their children are
    scanned, they themselves produce no tags — the root of a flat
    layer, say).  Annotations are placed by region with deterministic
    tie-breaking: start ascending, then end descending (longer
    annotations open first at a shared boundary), then input order
    (document list order, then document order).  An annotation that
    partially overlaps an open one is split at the boundary into two
    elements of the same name — the [standoff2inline] placement
    semantics for crossing layers.

    [~consume_separator] (default [true]) treats the first extent byte
    of every annotation as its {!Per_element} separator and drops it;
    pass [false] for foreign annotations over a plain-text blob.

    If the annotations do not provide a unique covering root element,
    the result is wrapped in a synthetic [root_name] (default
    ["text"]) element.  Elements named [node_wrapper] are replaced by
    their children (comments/PIs restored in position).  The prolog
    and epilog of the first input document are preserved.

    @raise Invalid_argument if an annotation has malformed extents
    (non-integer, [start > end], or outside the blob), or if exactly
    one of the two extent attributes is present. *)
