(** A domain-safe, size-accounted LRU cache with generation-stamped
    invalidation.

    One mutex guards each cache; every critical section runs under
    [Fun.protect], so an exception raised while the lock is held (an
    allocation failure, an asynchronous [Out_of_memory]) can never
    leave the cache poisoned for the other domains — the bug class the
    original hand-rolled restricted-index cache in [Annots] had.

    {1 The generation-counter invalidation contract}

    Entries are stamped with the [~generation] passed to {!add}
    (default [0]).  A {!find} with [~generation:g] returns the entry
    only when the entry's stamp is exactly [g]; on a mismatch the
    entry is dropped (counted as an eviction) and the lookup reports a
    miss.  Callers use a monotonic counter that some authority bumps
    whenever the cached derivation could change — in this engine,
    [Standoff.Catalog.invalidate] (reached through every [Update.*]
    entry point) bumps a per-document generation and the catalogue-wide
    version, and the engine's result cache stamps entries with that
    version.  Because the counter only grows, a stale entry can never
    be served: either the stamp matches (nothing was invalidated since
    the entry was stored) or the entry dies on its next lookup.
    Invalidation is therefore O(1) for the writer — bump the counter —
    and lazy for the cache; no key enumeration is ever needed.

    {1 Size accounting}

    Every value is weighed on insertion by the [weight] function given
    to {!create} (clamped to >= 1); the cache evicts from the
    least-recently-used end until both [max_entries] and [max_bytes]
    hold.  A value weighing more than [max_bytes] on its own is not
    inserted at all.  Hit/miss/eviction counts and the current
    bytes/entries are published through {!Standoff_obs.Metrics} as
    [standoff_cache_*{cache="<name>"}], and mirrored in {!stats} for
    callers that need exact per-instance numbers (the metrics are
    shared by every cache created under the same name). *)

type ('k, 'v) t
(** A cache from structurally-compared keys ['k] to values ['v]. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** includes entries dropped as generation-stale *)
  entries : int;
  bytes : int;
}

(** [create ~name ~weight ()] is an empty cache.  [max_entries]
    (default [1024]) and [max_bytes] (default unbounded) cap the
    size; [weight v] is the accounted size of a value in bytes
    (estimates are fine — the point is a stable bound, not exact
    heap accounting).  [name] labels the exported metrics. *)
val create :
  ?max_entries:int ->
  ?max_bytes:int ->
  name:string ->
  weight:('v -> int) ->
  unit ->
  ('k, 'v) t

(** [find t ?generation k] is the cached value for [k] stamped with
    exactly [generation] (default [0]), promoting it to
    most-recently-used.  A generation mismatch drops the entry and
    counts a miss (plus an eviction). *)
val find : ('k, 'v) t -> ?generation:int -> 'k -> 'v option

(** [add t ?generation k v] inserts [v] under [k] stamped with
    [generation] (default [0]), replacing any previous entry for [k]
    and evicting from the LRU end until the caps hold. *)
val add : ('k, 'v) t -> ?generation:int -> 'k -> 'v -> unit

(** [remove t k] drops the entry for [k], if any (not counted as an
    eviction). *)
val remove : ('k, 'v) t -> 'k -> unit

(** [clear t] drops every entry (not counted as evictions); the
    hit/miss/eviction counters keep their values. *)
val clear : ('k, 'v) t -> unit

(** [stats t] is an exact snapshot of this instance's counters. *)
val stats : ('k, 'v) t -> stats

(** [length t] is the number of live entries. *)
val length : ('k, 'v) t -> int
