module Metrics = Standoff_obs.Metrics

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

(* Doubly-linked recency list threaded through the hash-table entries:
   [mru] is the head, [lru] the tail, so promotion and eviction are
   O(1).  Keys are compared structurally (generic [Hashtbl]), which is
   what lets candidate-id arrays and composite string keys hit across
   separately computed but equal instances. *)
type ('k, 'v) entry = {
  key : 'k;
  value : 'v;
  weight : int;
  gen : int;
  mutable prev : ('k, 'v) entry option;  (* toward MRU *)
  mutable next : ('k, 'v) entry option;  (* toward LRU *)
}

type ('k, 'v) t = {
  lock : Mutex.t;
  tbl : ('k, ('k, 'v) entry) Hashtbl.t;
  weight : 'v -> int;
  max_entries : int;
  max_bytes : int;
  mutable mru : ('k, 'v) entry option;
  mutable lru : ('k, 'v) entry option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  m_bytes : Metrics.gauge;
  m_entries : Metrics.gauge;
}

(* Every critical section goes through here: the unlock is in a
   [Fun.protect] finaliser, so no exception path can leave the mutex
   held. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(max_entries = 1024) ?(max_bytes = max_int) ~name ~weight () =
  let labels = [ ("cache", name) ] in
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    weight;
    max_entries = max 1 max_entries;
    max_bytes = max 1 max_bytes;
    mru = None;
    lru = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    m_hits =
      Metrics.counter ~labels ~help:"Cache lookups served from the cache"
        "standoff_cache_hits_total";
    m_misses =
      Metrics.counter ~labels
        ~help:"Cache lookups that missed (including generation-stale entries)"
        "standoff_cache_misses_total";
    m_evictions =
      Metrics.counter ~labels
        ~help:"Entries dropped by capacity pressure or staleness"
        "standoff_cache_evictions_total";
    m_bytes =
      Metrics.gauge ~labels ~help:"Accounted bytes held (sum over instances)"
        "standoff_cache_bytes";
    m_entries =
      Metrics.gauge ~labels ~help:"Live entries (sum over instances)"
        "standoff_cache_entries";
  }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

(* Remove [e] entirely; [evicted] separates capacity/staleness drops
   (counted) from explicit [remove]/replacement (not counted). *)
let drop ~evicted t e =
  unlink t e;
  Hashtbl.remove t.tbl e.key;
  t.bytes <- t.bytes - e.weight;
  Metrics.gauge_add t.m_bytes (-e.weight);
  Metrics.gauge_add t.m_entries (-1);
  if evicted then begin
    t.evictions <- t.evictions + 1;
    Metrics.incr t.m_evictions
  end

let miss t =
  t.misses <- t.misses + 1;
  Metrics.incr t.m_misses;
  None

let find t ?(generation = 0) key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.gen = generation ->
          (match t.mru with
          | Some m when m == e -> ()
          | _ ->
              unlink t e;
              push_front t e);
          t.hits <- t.hits + 1;
          Metrics.incr t.m_hits;
          Some e.value
      | Some e ->
          (* Stamped under an older generation: the derivation it was
             computed from has been invalidated since. *)
          drop ~evicted:true t e;
          miss t
      | None -> miss t)

let add t ?(generation = 0) key value =
  let w = max 1 (t.weight value) in
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some e -> drop ~evicted:false t e
      | None -> ());
      (* A value that cannot fit even in an empty cache is not worth
         thrashing the whole LRU chain for. *)
      if w <= t.max_bytes then begin
        let e =
          { key; value; weight = w; gen = generation; prev = None; next = None }
        in
        Hashtbl.replace t.tbl key e;
        push_front t e;
        t.bytes <- t.bytes + w;
        Metrics.gauge_add t.m_bytes w;
        Metrics.gauge_add t.m_entries 1;
        let rec evict () =
          if Hashtbl.length t.tbl > t.max_entries || t.bytes > t.max_bytes then
            match t.lru with
            | Some tail ->
                drop ~evicted:true t tail;
                evict ()
            | None -> ()
        in
        evict ()
      end)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e -> drop ~evicted:false t e
      | None -> ())

let clear t =
  locked t (fun () ->
      Metrics.gauge_add t.m_bytes (-t.bytes);
      Metrics.gauge_add t.m_entries (-Hashtbl.length t.tbl);
      Hashtbl.reset t.tbl;
      t.mru <- None;
      t.lru <- None;
      t.bytes <- 0)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
        bytes = t.bytes;
      })

let length t = locked t (fun () -> Hashtbl.length t.tbl)
