(* A process-wide, domain-safe metrics registry.

   Counters and histogram buckets are sharded over a small power-of-two
   number of atomic cells indexed by the calling domain's id, so hot
   paths running under a pool ([--jobs > 1]) do not serialize on one
   cache line; a read sums the shards, which is exact because counter
   updates are [fetch_and_add] (no torn reads on an int cell, no lost
   increments).  Registration is memoized and mutex-guarded: calling
   [counter] twice with the same name and labels returns the same
   handle, so instrumented modules can register at module-init time and
   keep the handle in a top-level binding, off the hot path.

   Exposition follows the Prometheus text format: one [# HELP]/[# TYPE]
   pair per metric name, then one line per labelled instance; histogram
   buckets are cumulative with an [+Inf] bucket equal to [_count].  A
   JSON dump of the same data serves structured consumers.

   The whole registry can be switched off ([set_enabled false]): update
   handles become no-ops (one atomic load on the hot path), which is
   what the [obs-overhead] bench measures against. *)

(* ------------------------------------------------------------------ *)
(* Sharding                                                            *)

let shard_count = 16 (* power of two *)
let shard () = (Domain.self () :> int) land (shard_count - 1)
let make_cells () = Array.init shard_count (fun _ -> Atomic.make 0)
let sum_cells cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells
let zero_cells cells = Array.iter (fun c -> Atomic.set c 0) cells

(* ------------------------------------------------------------------ *)
(* Enable switch                                                       *)

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Metric kinds                                                        *)

type counter = { c_cells : int Atomic.t array }

type gauge = { g_cell : int Atomic.t }

(* Histogram observations are in abstract units (callers observing
   durations pass seconds); the running sum is kept in integer
   nano-units so it can live in sharded atomic int cells. *)
type histogram = {
  h_bounds : float array;  (** ascending upper bounds (inclusive) *)
  h_counts : int Atomic.t array array;
      (** per-bound shard cells, plus one overflow row: non-cumulative
          internally, made cumulative at exposition *)
  h_sum_nanos : int Atomic.t array;
}

type kind = Counter of counter | Gauge of gauge | Histogram of histogram

type metric = {
  m_name : string;
  m_labels : (string * string) list;  (** sorted by label name *)
  m_help : string;
  m_kind : kind;
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let registry_lock = Mutex.create ()

(* All registry access goes through here: the unlock is a [Fun.protect]
   finaliser, so a raise under the lock (the kind-conflict check below)
   cannot leave the registry poisoned for every other domain. *)
let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let registry : (string * (string * string) list, metric) Hashtbl.t =
  Hashtbl.create 64

(* Registration order, for stable exposition. *)
let order : (string * (string * string) list) list ref = ref []

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let register name labels help make_kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let key = (name, labels) in
  locked (fun () ->
      match Hashtbl.find_opt registry key with
      | Some m -> m
      | None ->
          let m = { m_name = name; m_labels = labels; m_help = help; m_kind = make_kind () } in
          (* One name must keep one kind and one help across instances,
             or exposition would emit contradictory TYPE lines. *)
          List.iter
            (fun k ->
              let other = Hashtbl.find registry k in
              if other.m_name = name && kind_name other.m_kind <> kind_name m.m_kind
              then
                invalid_arg
                  (Printf.sprintf
                     "Metrics: %s re-registered as a different kind" name))
            !order;
          Hashtbl.add registry key m;
          order := !order @ [ key ];
          m)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let counter ?(labels = []) ?(help = "") name =
  let m = register name labels help (fun () -> Counter { c_cells = make_cells () }) in
  match m.m_kind with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a counter" name)

let incr c = if enabled () then ignore (Atomic.fetch_and_add c.c_cells.(shard ()) 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  if n > 0 && enabled () then ignore (Atomic.fetch_and_add c.c_cells.(shard ()) n)

let counter_value c = sum_cells c.c_cells

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

let gauge ?(labels = []) ?(help = "") name =
  let m = register name labels help (fun () -> Gauge { g_cell = Atomic.make 0 }) in
  match m.m_kind with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a gauge" name)

let gauge_set g v = if enabled () then Atomic.set g.g_cell v
let gauge_add g n = if enabled () then ignore (Atomic.fetch_and_add g.g_cell n)
let gauge_value g = Atomic.get g.g_cell

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

(* Fixed log-scale bucket bounds: [start, start*factor, ...], [count]
   of them.  Callers share bound arrays freely; the registry copies
   nothing. *)
let log_buckets ~start ~factor ~count =
  if start <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Metrics.log_buckets";
  Array.init count (fun i -> start *. (factor ** float_of_int i))

(* 10us .. ~20s, doubling: covers pool task waits and whole queries. *)
let duration_buckets = log_buckets ~start:1e-5 ~factor:2.0 ~count:22

let histogram ?(labels = []) ?(help = "") ~buckets name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: buckets must be strictly ascending")
    buckets;
  let m =
    register name labels help (fun () ->
        Histogram
          {
            h_bounds = Array.copy buckets;
            h_counts =
              Array.init (Array.length buckets + 1) (fun _ -> make_cells ());
            h_sum_nanos = make_cells ();
          })
  in
  match m.m_kind with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a histogram" name)

(* First bucket whose bound is >= v ([le] semantics), else overflow. *)
let bucket_index h v =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && h.h_bounds.(!i) < v do
    i := !i + 1
  done;
  !i

let observe h v =
  if enabled () then begin
    let s = shard () in
    ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h v).(s) 1);
    ignore (Atomic.fetch_and_add h.h_sum_nanos.(s) (int_of_float (v *. 1e9)))
  end

(* [time h f] runs [f] and observes its wall-clock duration — on
   success and on exception alike, so latency histograms of fallible
   operations (fsync, snapshot writes) count the failures too. *)
let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let histogram_count h =
  Array.fold_left (fun acc cells -> acc + sum_cells cells) 0 h.h_counts

let histogram_sum h = float_of_int (sum_cells h.h_sum_nanos) *. 1e-9

(* Cumulative per-bound counts, Prometheus style (the +Inf bucket is
   [histogram_count]). *)
let histogram_cumulative h =
  let n = Array.length h.h_bounds in
  let out = Array.make (n + 1) 0 in
  let acc = ref 0 in
  for i = 0 to n do
    acc := !acc + sum_cells h.h_counts.(i);
    out.(i) <- !acc
  done;
  out

(* ------------------------------------------------------------------ *)
(* Reset (tests and the overhead bench re-measure from zero)           *)

let reset_all () =
  let metrics = locked (fun () -> List.map (Hashtbl.find registry) !order) in
  List.iter
    (fun m ->
      match m.m_kind with
      | Counter c -> zero_cells c.c_cells
      | Gauge g -> Atomic.set g.g_cell 0
      | Histogram h ->
          Array.iter zero_cells h.h_counts;
          zero_cells h.h_sum_nanos)
    metrics

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* [le] values print like Prometheus clients do: shortest float that
   round-trips. *)
let float_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let snapshot () =
  locked (fun () -> List.map (Hashtbl.find registry) !order)

let expose () =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem seen_header m.m_name) then begin
        Hashtbl.add seen_header m.m_name ();
        if m.m_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" m.m_name m.m_help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_name m.m_kind))
      end;
      let ls = label_string m.m_labels in
      match m.m_kind with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.m_name ls (counter_value c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.m_name ls (gauge_value g))
      | Histogram h ->
          let cumulative = histogram_cumulative h in
          let with_le le =
            let extra = ("le", le) :: m.m_labels in
            label_string
              (List.sort (fun (a, _) (b, _) -> compare a b) extra)
          in
          Array.iteri
            (fun i bound ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                   (with_le (float_string bound))
                   cumulative.(i)))
            h.h_bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" m.m_name (with_le "+Inf")
               cumulative.(Array.length h.h_bounds));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %.9g\n" m.m_name ls (histogram_sum h));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.m_name ls
               cumulative.(Array.length h.h_bounds)))
    (snapshot ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON dump                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"labels\":{"
           (json_escape m.m_name) (kind_name m.m_kind));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        m.m_labels;
      Buffer.add_string buf "},";
      (match m.m_kind with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "\"value\":%d" (counter_value c))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "\"value\":%d" (gauge_value g))
      | Histogram h ->
          let cumulative = histogram_cumulative h in
          Buffer.add_string buf "\"buckets\":[";
          Array.iteri
            (fun j bound ->
              if j > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf
                (Printf.sprintf "{\"le\":%.9g,\"count\":%d}" bound
                   cumulative.(j)))
            h.h_bounds;
          Buffer.add_string buf
            (Printf.sprintf "],\"sum\":%.9g,\"count\":%d" (histogram_sum h)
               (histogram_count h)));
      Buffer.add_string buf "}")
    (snapshot ());
  Buffer.add_string buf "]";
  Buffer.contents buf
