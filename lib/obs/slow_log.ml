(* The slow-query log: queries slower than a threshold are recorded in
   a bounded in-memory ring (newest first) and counted; an optional
   sink receives each entry as it lands (the CLI points it at stderr).

   The threshold itself lives on the engine ([Engine.set_slow_ms],
   seeded from [STANDOFF_SLOW_MS]); this module only stores what the
   engine decides to record. *)

type entry = {
  e_at : float;  (** wall-clock time the query finished *)
  e_query : string;
  e_seconds : float;
  e_strategy : string;
  e_jobs : int;
  e_summary : string;  (** trace digest, "" when tracing was off *)
}

let capacity = 128
let lock = Mutex.create ()
let entries : entry list ref = ref [] (* newest first, bounded *)
let sink : (entry -> unit) option ref = ref None

let slow_total =
  Metrics.counter "standoff_slow_queries_total"
    ~help:"Queries that exceeded the slow-query threshold"

let env_threshold_ms () =
  match Sys.getenv_opt "STANDOFF_SLOW_MS" with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some ms when ms >= 0.0 -> Some ms
      | _ -> None)

let set_sink f = sink := f

let record entry =
  Metrics.incr slow_total;
  Mutex.lock lock;
  let es = entry :: !entries in
  entries :=
    (if List.length es > capacity then List.filteri (fun i _ -> i < capacity) es
     else es);
  let s = !sink in
  Mutex.unlock lock;
  match s with Some f -> f entry | None -> ()

let recent () =
  Mutex.lock lock;
  let es = !entries in
  Mutex.unlock lock;
  es

let clear () =
  Mutex.lock lock;
  entries := [];
  Mutex.unlock lock

(* JSON rendering of the ring, newest first — the HTTP server's
   [GET /slow] endpoint serves this verbatim. *)
let to_json () =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"at\": %.6f, \"seconds\": %.6f, \"strategy\": \"%s\", \
            \"jobs\": %d, \"query\": \"%s\", \"summary\": \"%s\"}"
           e.e_at e.e_seconds
           (Metrics.json_escape e.e_strategy)
           e.e_jobs
           (Metrics.json_escape e.e_query)
           (Metrics.json_escape e.e_summary)))
    (recent ());
  Buffer.add_char b ']';
  Buffer.contents b

let entry_to_string e =
  Printf.sprintf "slow-query %.3fms strategy=%s jobs=%d%s: %s"
    (e.e_seconds *. 1e3) e.e_strategy e.e_jobs
    (if e.e_summary = "" then "" else " [" ^ e.e_summary ^ "]")
    e.e_query
