(* Structured query tracing: one collector per query run, producing a
   span tree (parse -> optimize -> per-physical-operator eval).

   A span records a name, an optional plan-node id (so EXPLAIN ANALYZE
   can aggregate spans back onto the plan), wall-clock start/end, a
   small attribute list (row counts, index probes, chunk counts,
   strategy), and its children.

   The collector is single-domain by design: the evaluator's recursion
   stays on the domain that called [Engine.run_prepared] (pool workers
   run join sweeps and index builds, not [eval]), so span mutation
   needs no locking.  Exception safety is the caller's contract —
   [enter] attaches the span to its parent immediately and [finish]
   closes whatever is still open — so a query killed mid-flight by
   [Deadline_exceeded] still yields a well-formed partial trace with no
   dangling open spans. *)

type value = Int of int | Float of float | Str of string

type span = {
  sp_name : string;
  sp_node : int;  (** plan-node id, or -1 for phase spans *)
  sp_start : float;
  mutable sp_end : float;  (** [nan] while the span is open *)
  mutable sp_attrs : (string * value) list;
  mutable sp_rev_children : span list;
}

type t = {
  tr_root : span;
  mutable tr_stack : span list;  (** open spans, innermost first *)
  mutable tr_spans : int;
}

let now () = Unix.gettimeofday ()

let fresh_span ~node name =
  {
    sp_name = name;
    sp_node = node;
    sp_start = now ();
    sp_end = Float.nan;
    sp_attrs = [];
    sp_rev_children = [];
  }

let create ?(name = "query") () =
  let root = fresh_span ~node:(-1) name in
  { tr_root = root; tr_stack = [ root ]; tr_spans = 1 }

let root t = t.tr_root
let span_count t = t.tr_spans

(* Open a child of the innermost open span.  The child is attached to
   the tree right away, so even if it never closes it is visible in
   the (partial) trace. *)
let enter t ?(node = -1) name =
  let sp = fresh_span ~node name in
  (match t.tr_stack with
  | parent :: _ -> parent.sp_rev_children <- sp :: parent.sp_rev_children
  | [] ->
      (* After [finish]: keep late arrivals under the root rather than
         losing them. *)
      t.tr_root.sp_rev_children <- sp :: t.tr_root.sp_rev_children);
  t.tr_stack <- sp :: t.tr_stack;
  t.tr_spans <- t.tr_spans + 1;
  sp

let close_span sp = if Float.is_nan sp.sp_end then sp.sp_end <- now ()

(* Close [sp]; any deeper spans still open (a callee that died without
   exiting) are closed along the way. *)
let exit t sp =
  if List.memq sp t.tr_stack then begin
    let rec pop = function
      | top :: rest ->
          close_span top;
          if top == sp then rest else pop rest
      | [] -> []
    in
    t.tr_stack <- pop t.tr_stack
  end
  else close_span sp

(* Close every open span (the root included) and return the root.
   Safe to call after an exception unwound past any number of [exit]s:
   this is what makes partial traces well-formed. *)
let finish t =
  List.iter close_span t.tr_stack;
  t.tr_stack <- [];
  close_span t.tr_root;
  t.tr_root

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)

let set_attr sp key v =
  sp.sp_attrs <- (key, v) :: List.remove_assoc key sp.sp_attrs

let set_int sp key n = set_attr sp key (Int n)
let set_str sp key s = set_attr sp key (Str s)
let set_float sp key f = set_attr sp key (Float f)

(* Accumulate: per-shard contributions to one join span sum up. *)
let add_int sp key n =
  let base =
    match List.assoc_opt key sp.sp_attrs with Some (Int i) -> i | _ -> 0
  in
  set_attr sp key (Int (base + n))

let attr sp key = List.assoc_opt key sp.sp_attrs

let int_attr sp key =
  match attr sp key with Some (Int i) -> Some i | _ -> None

let str_attr sp key =
  match attr sp key with Some (Str s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Reading the tree                                                    *)

let name sp = sp.sp_name
let node sp = sp.sp_node
let children sp = List.rev sp.sp_rev_children
let is_closed sp = not (Float.is_nan sp.sp_end)

let duration sp =
  if is_closed sp then sp.sp_end -. sp.sp_start else Float.nan

(* Pre-order walk. *)
let rec iter f sp =
  f sp;
  List.iter (iter f) (children sp)

let find_all p sp =
  let out = ref [] in
  iter (fun s -> if p s then out := s :: !out) sp;
  List.rev !out

let rec all_closed sp =
  is_closed sp && List.for_all all_closed (children sp)

let rec depth sp =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 (children sp)

(* A one-line digest for the slow-query log: total spans, tree depth,
   and the slowest operator span. *)
let summary t =
  let root = t.tr_root in
  let slowest = ref None in
  iter
    (fun sp ->
      if sp != root && is_closed sp then
        match !slowest with
        | Some (_, d) when d >= duration sp -> ()
        | _ -> slowest := Some (sp.sp_name, duration sp))
    root;
  let slow_part =
    match !slowest with
    | Some (n, d) -> Printf.sprintf " slowest=%s:%.3fms" n (d *. 1e3)
    | None -> ""
  in
  Printf.sprintf "spans=%d depth=%d%s" t.tr_spans (depth root) slow_part

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (Metrics.json_escape s))

let rec json_of_span buf ~t0 sp =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\"" (Metrics.json_escape sp.sp_name));
  if sp.sp_node >= 0 then
    Buffer.add_string buf (Printf.sprintf ",\"node\":%d" sp.sp_node);
  Buffer.add_string buf
    (Printf.sprintf ",\"start_ms\":%.6g" ((sp.sp_start -. t0) *. 1e3));
  if is_closed sp then
    Buffer.add_string buf
      (Printf.sprintf ",\"duration_ms\":%.6g" (duration sp *. 1e3))
  else Buffer.add_string buf ",\"duration_ms\":null";
  (match sp.sp_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (Metrics.json_escape k));
          json_value buf v)
        (List.rev attrs);
      Buffer.add_string buf "}");
  (match children sp with
  | [] -> ()
  | kids ->
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i kid ->
          if i > 0 then Buffer.add_string buf ",";
          json_of_span buf ~t0 kid)
        kids;
      Buffer.add_string buf "]");
  Buffer.add_string buf "}"

let to_json t =
  let buf = Buffer.create 1024 in
  json_of_span buf ~t0:t.tr_root.sp_start t.tr_root;
  Buffer.contents buf

let span_to_json sp =
  let buf = Buffer.create 1024 in
  json_of_span buf ~t0:sp.sp_start sp;
  Buffer.contents buf
