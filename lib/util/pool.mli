(** The process-wide work-stealing scheduler for data-parallel
    execution.

    One domain budget for the whole process, sized against
    [Domain.recommended_domain_count ()] (override with the
    [STANDOFF_DOMAIN_BUDGET] environment variable, or
    {!set_domain_budget}): at most [budget - 1] worker domains ever
    exist, shared by every handle.  A {!t} is a lightweight handle
    whose [jobs] is a {e per-batch max-parallelism cap} — [jobs = n]
    means a batch submitted through the handle occupies at most [n]
    domains (the submitting domain always participates), and
    [jobs = 1] never touches the scheduler at all: every entry point
    degenerates to a plain sequential loop on the caller's domain,
    making the sequential behaviour bit-identical to code that never
    heard of the scheduler.

    Workers own deques and steal from each other when their own runs
    dry; a domain waiting for its batch keeps helping (its own batch
    first, then anything stealable), which is what makes nested
    submission deadlock-free.  Caps inherit: a task running under a
    batch capped at [c] that submits its own batch runs it at
    [min c jobs'], so recursive sweeps cannot oversubscribe the budget
    by multiplying caps.  Batch completion never depends on worker
    availability — with a zero-worker budget the submitting domain
    drains the batch alone.

    Exceptions raised by tasks are caught per task and re-raised on the
    submitting domain once the batch has drained, lowest task index
    first — a [Timing.Deadline_exceeded] escaping a chunk therefore
    surfaces to the caller exactly like in sequential code.

    Scheduler observability lives in {!Standoff_obs.Metrics}:
    [standoff_pool_tasks_total], [standoff_pool_queue_depth],
    [standoff_pool_queue_wait_seconds], [standoff_pool_steals_total],
    [standoff_pool_cap_clamps_total], [standoff_pool_workers], and
    per-worker [standoff_pool_worker_busy{worker="i"}] gauges. *)

type t

(** [create ~jobs] makes a handle capping batches at [jobs] concurrent
    tasks ([jobs >= 1]).  Handles are two words; workers are global
    and spawned lazily on the first parallel submission.
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> t

(** [jobs t] is the handle's parallelism cap. *)
val jobs : t -> int

(** [shared ~jobs] is {!create}: kept for callers written against the
    historic per-jobs-count memoized pools.  All handles share the one
    process-wide worker set, so a process using [jobs = 4] and
    [jobs = 8] no longer holds two disjoint worker sets.
    @raise Invalid_argument if [jobs < 1]. *)
val shared : jobs:int -> t

(** [default_jobs ()] reads the [STANDOFF_JOBS] environment variable
    (an integer >= 0); unset or unparsable means [0], which callers
    (the engine) interpret as "pick adaptively per request". *)
val default_jobs : unit -> int

(** [domain_budget ()] is the process domain budget: the total number
    of domains (workers + the main domain + reserved external domains)
    execution is sized against. *)
val domain_budget : unit -> int

(** [set_domain_budget n] resizes the budget (clamped to [>= 1]).
    Takes effect on the next submission; live workers beyond the new
    target retire at the next {!park}. *)
val set_domain_budget : int -> unit

(** [reserve_domains n] registers [n] externally owned domains (the
    HTTP server's connection workers) against the budget: the
    scheduler spawns at most [budget - 1 - reserved] workers, so
    server workers and engine parallelism share cores instead of
    multiplying.  Balanced by {!release_domains}. *)
val reserve_domains : int -> unit

(** [release_domains n] returns [n] reserved domains to the budget. *)
val release_domains : int -> unit

(** [max_parallelism ()] is the parallelism left for query execution:
    [max 1 (budget - reserved)].  The engine's adaptive jobs choice
    clamps to it. *)
val max_parallelism : unit -> int

(** [worker_count ()] is the number of live scheduler worker domains
    (for tests and diagnostics). *)
val worker_count : unit -> int

(** [current_cap ()] is the effective cap of the batch the calling
    domain is currently executing a task of, or [None] outside any
    batch.  Nested {!run_all} calls clamp their handle's cap to it. *)
val current_cap : unit -> int option

(** [run_all t tasks] runs every task to completion, at most
    [min (jobs t) inherited-cap] concurrently.  The calling domain
    participates.  The first exception (by task index) is re-raised
    after all tasks have finished or failed. *)
val run_all : t -> (unit -> unit) array -> unit

(** [chunk_count t ?min_chunk ~n ()] is the number of contiguous
    chunks [parallel_chunks] would split a length-[n] input into:
    [min effective-cap (n / min_chunk)], at least 1.  [min_chunk]
    defaults to [1]. *)
val chunk_count : t -> ?min_chunk:int -> n:int -> unit -> int

(** [parallel_chunks t ?min_chunk ~n f] partitions the index range
    [0, n) into {!chunk_count} near-equal contiguous chunks, applies
    [f ~chunk ~lo ~hi] to each (in parallel when more than one chunk),
    and returns the results {e in chunk order} — callers that
    concatenate them preserve any order the input had.  With one chunk
    the call runs directly on the caller's domain. *)
val parallel_chunks :
  t -> ?min_chunk:int -> n:int -> (chunk:int -> lo:int -> hi:int -> 'a) -> 'a array

(** [map_reduce t ?min_chunk ~n ~map ~reduce init] maps chunks of
    [0, n) in parallel and folds the chunk results left-to-right in
    chunk order: [reduce (... (reduce init r0) ...) rk]. *)
val map_reduce :
  t ->
  ?min_chunk:int ->
  n:int ->
  map:(lo:int -> hi:int -> 'a) ->
  reduce:('b -> 'a -> 'b) ->
  'b ->
  'b

(** [map_array t f a] applies [f] to every element of [a] (one task per
    element) and returns the results in input order. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [park ()] asks the scheduler's worker domains to exit and joins
    them.  Safe concurrently with submissions: a batch submitted
    during the teardown runs on its submitting domain alone, and
    workers respawn on the next submission afterwards.  Idempotent. *)
val park : unit -> unit

(** [teardown t] is {!park} — the handle only selects the historic
    signature. *)
val teardown : t -> unit
