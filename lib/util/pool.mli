(** A fixed-size pool of OCaml 5 domains for data-parallel execution.

    The pool owns [jobs - 1] worker domains (spawned lazily on the
    first parallel call) plus the calling domain, which always
    participates in draining the task queue — so a pool with [jobs = n]
    runs at most [n] tasks concurrently and [jobs = 1] never spawns a
    domain at all: every entry point degenerates to a plain sequential
    loop on the caller's domain, making the sequential behaviour
    bit-identical to code that never heard of the pool.

    Nested parallelism is safe: a task may itself submit a batch to the
    same pool.  While a batch waits for its own tasks, the waiting
    domain keeps executing queued tasks (its own or other batches'), so
    the pool cannot deadlock on nesting.

    Exceptions raised by tasks are caught per task and re-raised on the
    submitting domain once the batch has drained, lowest task index
    first — a [Timing.Deadline_exceeded] escaping a chunk therefore
    surfaces to the caller exactly like in sequential code. *)

type t

(** [create ~jobs] makes a pool running at most [jobs] tasks
    concurrently ([jobs >= 1]; worker domains are spawned lazily).
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> t

(** [jobs t] is the configured parallelism. *)
val jobs : t -> int

(** [shared ~jobs] is the process-wide pool for this jobs count,
    created on first request.  Prefer this over {!create} when pools
    are made per engine or per test: live domains are capped at ~128
    by the runtime, and sharing keeps the worker count bounded no
    matter how many engines exist.
    @raise Invalid_argument if [jobs < 1]. *)
val shared : jobs:int -> t

(** [default_jobs ()] reads the [STANDOFF_JOBS] environment variable
    (an integer >= 1); unset or unparsable means [1]. *)
val default_jobs : unit -> int

(** [run_all t tasks] runs every task to completion, at most
    [jobs t] concurrently.  The calling domain participates.  The
    first exception (by task index) is re-raised after all tasks have
    finished or failed. *)
val run_all : t -> (unit -> unit) array -> unit

(** [chunk_count t ?min_chunk ~n ()] is the number of contiguous
    chunks [parallel_chunks] would split a length-[n] input into:
    [min jobs (n / min_chunk)], at least 1.  [min_chunk] defaults to
    [1]. *)
val chunk_count : t -> ?min_chunk:int -> n:int -> unit -> int

(** [parallel_chunks t ?min_chunk ~n f] partitions the index range
    [0, n) into {!chunk_count} near-equal contiguous chunks, applies
    [f ~chunk ~lo ~hi] to each (in parallel when more than one chunk),
    and returns the results {e in chunk order} — callers that
    concatenate them preserve any order the input had.  With one chunk
    the call runs directly on the caller's domain. *)
val parallel_chunks :
  t -> ?min_chunk:int -> n:int -> (chunk:int -> lo:int -> hi:int -> 'a) -> 'a array

(** [map_reduce t ?min_chunk ~n ~map ~reduce init] maps chunks of
    [0, n) in parallel and folds the chunk results left-to-right in
    chunk order: [reduce (... (reduce init r0) ...) rk]. *)
val map_reduce :
  t ->
  ?min_chunk:int ->
  n:int ->
  map:(lo:int -> hi:int -> 'a) ->
  reduce:('b -> 'a -> 'b) ->
  'b ->
  'b

(** [map_array t f a] applies [f] to every element of [a] (one task per
    element) and returns the results in input order. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [teardown t] asks the worker domains to exit and joins them.  The
    pool is reusable afterwards (workers respawn on the next parallel
    call).  Must not run concurrently with a batch.  Idempotent. *)
val teardown : t -> unit
