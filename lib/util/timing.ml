let now () = Unix.gettimeofday ()

type 'a outcome =
  | Finished of 'a * float
  | Timed_out of float

exception Deadline_exceeded

type deadline = {
  expires_at : float;
  fuel : int Atomic.t option;
      (* deterministic test deadline: fires on the (n+1)-th checkpoint.
         Atomic because pool workers checkpoint a shared deadline. *)
}
(* [infinity] encodes "no deadline"; comparison against it is free. *)

let no_deadline = { expires_at = infinity; fuel = None }
let deadline_after seconds = { expires_at = now () +. seconds; fuel = None }
let deadline_with_fuel n = { expires_at = infinity; fuel = Some (Atomic.make n) }

let checkpoint d =
  (match d.fuel with
  | Some a -> if Atomic.fetch_and_add a (-1) <= 0 then raise Deadline_exceeded
  | None -> ());
  if d.expires_at <> infinity && now () > d.expires_at then
    raise Deadline_exceeded

let run_with_timeout ~seconds f =
  let d = deadline_after seconds in
  let t0 = now () in
  match f d with
  | v -> Finished (v, now () -. t0)
  | exception Deadline_exceeded -> Timed_out (now () -. t0)

let time f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
