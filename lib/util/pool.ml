(* One process-wide work-stealing scheduler.  The whole process draws
   from a single domain budget sized against
   [Domain.recommended_domain_count ()]: at most [budget - 1] worker
   domains ever exist, no matter how many engines, servers, or jobs
   settings are in play.  A [t] is a lightweight *handle* whose [jobs]
   is a per-batch max-parallelism cap, not a worker count — two
   handles with different caps share the same workers.

   Each worker owns a deque: it pushes and pops batch runners at the
   back (LIFO, cache-friendly for nested work) and other workers —
   or a submitting domain waiting out its batch — steal from the
   front.  A batch is an array of tasks plus an atomic claim counter;
   "runners" placed in deques are just activation stubs that pull
   tasks through the counter, so batch completion never depends on a
   stub being executed: the submitting domain is itself a runner and
   can always drain its batch alone.  That property is what makes the
   scheduler deadlock-free under nesting, teardown, and a zero-worker
   budget alike.

   Caps inherit: a task running under a batch capped at [c] that
   submits its own batch runs it at [min c jobs'] — recursive sweeps
   cannot oversubscribe the budget by multiplying caps. *)

module Metrics = Standoff_obs.Metrics

(* Registered at module init, so the pool metrics appear in exposition
   (at zero) even in a process that never runs parallel work. *)
let m_tasks_total =
  Metrics.counter "standoff_pool_tasks_total"
    ~help:"Tasks drained from the scheduler"

let m_queue_depth =
  Metrics.gauge "standoff_pool_queue_depth"
    ~help:"Tasks submitted to the scheduler and not yet started"

let m_queue_wait =
  Metrics.histogram "standoff_pool_queue_wait_seconds"
    ~buckets:Metrics.duration_buckets
    ~help:"Time tasks spent queued before a domain picked them up"

let m_steals_total =
  Metrics.counter "standoff_pool_steals_total"
    ~help:"Batch runners taken from another domain's deque"

let m_cap_clamps_total =
  Metrics.counter "standoff_pool_cap_clamps_total"
    ~help:"Batches whose requested parallelism was clamped to the submitter's inherited cap"

let m_workers_live =
  Metrics.gauge "standoff_pool_workers"
    ~help:"Scheduler worker domains currently live"

(* Memoized by the registry: one gauge per worker slot. *)
let busy_gauge i =
  Metrics.gauge "standoff_pool_worker_busy"
    ~labels:[ ("worker", string_of_int i) ]
    ~help:"1 while this scheduler worker is running batch tasks"

(* ------------------------------------------------------------------ *)
(* Handles                                                            *)

type t = { cap : int }

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { cap = jobs }

(* Historically [shared] memoized one *pool* (worker set) per jobs
   count, so a process touching jobs=4 then jobs=8 held two disjoint
   worker sets forever.  Handles fixed that leak structurally: the
   worker set is global and a handle is two words. *)
let shared ~jobs =
  if jobs < 1 then invalid_arg "Pool.shared: jobs must be >= 1";
  { cap = jobs }

let jobs t = t.cap

let default_jobs () =
  match Sys.getenv_opt "STANDOFF_JOBS" with
  | None -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> 0)

(* ------------------------------------------------------------------ *)
(* Batches                                                            *)

type batch = {
  b_tasks : (unit -> unit) array;
  b_next : int Atomic.t;  (** claim counter; claims >= length are void *)
  b_remaining : int Atomic.t;
  b_errors : exn option array;
  b_cap : int;  (** the effective cap tasks of this batch run under *)
  b_m : Mutex.t;
  b_done : Condition.t;
  b_enqueued : float;  (** submit timestamp; 0.0 when metrics are off *)
}

(* The inherited cap of the running domain: [max_int] outside any
   batch, the batch's effective cap inside one. *)
let cap_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> max_int)

let current_cap () =
  match Domain.DLS.get cap_key with
  | c when c = max_int -> None
  | c -> Some c

(* ------------------------------------------------------------------ *)
(* Per-worker deques                                                  *)

module Deque = struct
  (* A mutex-guarded ring: owner end is the back, thieves take the
     front.  Contention is one short critical section per operation;
     the arrays stay tiny (runners, not tasks, are queued). *)
  type 'a s = {
    m : Mutex.t;
    mutable buf : 'a option array;
    mutable head : int;
    mutable len : int;
  }

  let create () =
    { m = Mutex.create (); buf = Array.make 8 None; head = 0; len = 0 }

  let grow d =
    let n = Array.length d.buf in
    let buf = Array.make (2 * n) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod n)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d x =
    Mutex.lock d.m;
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1;
    Mutex.unlock d.m

  let take d ~front =
    Mutex.lock d.m;
    let r =
      if d.len = 0 then None
      else begin
        let n = Array.length d.buf in
        let i = if front then d.head else (d.head + d.len - 1) mod n in
        let x = d.buf.(i) in
        d.buf.(i) <- None;
        if front then d.head <- (d.head + 1) mod n;
        d.len <- d.len - 1;
        x
      end
    in
    Mutex.unlock d.m;
    r

  let pop_back d = take d ~front:false
  let steal d = take d ~front:true
end

(* ------------------------------------------------------------------ *)
(* The scheduler                                                      *)

(* Live domains are capped at ~128 by the runtime; leave headroom for
   server workers and the main domain. *)
let max_workers = 64

type sched = {
  sm : Mutex.t;
      (* guards [workers], [n_workers], [budget], [reserved], [epoch];
         [closing] is atomic so drain loops can poll it lock-free *)
  has_work : Condition.t;
  mutable epoch : int;
      (* bumped on every submission; sleepers re-scan when it moves *)
  closing : bool Atomic.t;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable budget : int;
  mutable reserved : int;
  deques : batch Deque.s array;
}

let env_budget () =
  match Sys.getenv_opt "STANDOFF_DOMAIN_BUDGET" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)
  | None -> None

let sched =
  {
    sm = Mutex.create ();
    has_work = Condition.create ();
    epoch = 0;
    closing = Atomic.make false;
    workers = [];
    n_workers = 0;
    budget =
      (match env_budget () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()));
    reserved = 0;
    deques = Array.init max_workers (fun _ -> Deque.create ());
  }

let domain_budget () =
  Mutex.lock sched.sm;
  let b = sched.budget in
  Mutex.unlock sched.sm;
  b

let set_domain_budget n =
  Mutex.lock sched.sm;
  sched.budget <- max 1 n;
  Mutex.unlock sched.sm

let reserve_domains n =
  if n > 0 then begin
    Mutex.lock sched.sm;
    sched.reserved <- sched.reserved + n;
    Mutex.unlock sched.sm
  end

let release_domains n =
  if n > 0 then begin
    Mutex.lock sched.sm;
    sched.reserved <- max 0 (sched.reserved - n);
    Mutex.unlock sched.sm
  end

let max_parallelism () =
  Mutex.lock sched.sm;
  let v = max 1 (sched.budget - sched.reserved) in
  Mutex.unlock sched.sm;
  v

let worker_count () =
  Mutex.lock sched.sm;
  let n = sched.n_workers in
  Mutex.unlock sched.sm;
  n

(* How many workers the budget allows right now.  Called under [sm]. *)
let worker_target () =
  min max_workers (max 0 (sched.budget - 1 - sched.reserved))

(* ------------------------------------------------------------------ *)
(* Running batches                                                    *)

let exec_task b i =
  Metrics.gauge_add m_queue_depth (-1);
  if b.b_enqueued > 0.0 then
    Metrics.observe m_queue_wait (Unix.gettimeofday () -. b.b_enqueued);
  Metrics.incr m_tasks_total;
  let saved = Domain.DLS.get cap_key in
  Domain.DLS.set cap_key b.b_cap;
  (try b.b_tasks.(i) () with e -> b.b_errors.(i) <- Some e);
  Domain.DLS.set cap_key saved;
  (* The release on this atomic publishes the (plain) error write; the
     submitter reads errors only after observing remaining = 0. *)
  if Atomic.fetch_and_add b.b_remaining (-1) = 1 then begin
    Mutex.lock b.b_m;
    Condition.broadcast b.b_done;
    Mutex.unlock b.b_m
  end

(* Claim and run tasks of [b] until none are left unclaimed.  Workers
   pass [stop_on_close:true] so a teardown only waits out the current
   task, not the whole batch — the batch still completes because its
   submitter never stops claiming. *)
let rec drive_batch ~stop_on_close b =
  if not (stop_on_close && Atomic.get sched.closing) then begin
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < Array.length b.b_tasks then begin
      exec_task b i;
      drive_batch ~stop_on_close b
    end
  end

(* Steal a runner from any deque, skipping [self]'s own (the owner end
   of that one was already tried). *)
let steal_any ~self =
  let n = Array.length sched.deques in
  let rec go k =
    if k >= n then None
    else if k = self then go (k + 1)
    else
      match Deque.steal sched.deques.(k) with
      | Some b ->
          Metrics.incr m_steals_total;
          Some b
      | None -> go (k + 1)
  in
  go 0

let worker_loop i () =
  let busy = busy_gauge i in
  let rec find () =
    Mutex.lock sched.sm;
    let e = sched.epoch in
    Mutex.unlock sched.sm;
    if Atomic.get sched.closing then ()
    else
      match
        (match Deque.pop_back sched.deques.(i) with
        | Some b -> Some b
        | None -> steal_any ~self:i)
      with
      | Some b ->
          Metrics.gauge_set busy 1;
          drive_batch ~stop_on_close:true b;
          Metrics.gauge_set busy 0;
          find ()
      | None ->
          Mutex.lock sched.sm;
          while sched.epoch = e && not (Atomic.get sched.closing) do
            Condition.wait sched.has_work sched.sm
          done;
          Mutex.unlock sched.sm;
          if Atomic.get sched.closing then () else find ()
  in
  find ();
  Metrics.gauge_set busy 0

(* Spawn workers up to the current target.  Called under [sm].  During
   a teardown ([closing]) nothing spawns: the submitting batch still
   completes solo, and workers respawn on the next submission. *)
let ensure_workers () =
  if not (Atomic.get sched.closing) then begin
    let tgt = worker_target () in
    while sched.n_workers < tgt do
      let i = sched.n_workers in
      sched.workers <- Domain.spawn (worker_loop i) :: sched.workers;
      sched.n_workers <- sched.n_workers + 1
    done;
    Metrics.gauge_set m_workers_live sched.n_workers
  end

let run_all t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let inherited = Domain.DLS.get cap_key in
    let cap = min t.cap inherited in
    if cap < t.cap then Metrics.incr m_cap_clamps_total;
    if cap <= 1 || n <= 1 then begin
      (* The strict sequential path: tasks run inline, and anything
         they submit inherits cap 1, so the whole subtree stays on
         this domain — bit-identical to code that never heard of the
         scheduler. *)
      Domain.DLS.set cap_key 1;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set cap_key inherited)
        (fun () -> Array.iter (fun f -> f ()) tasks)
    end
    else begin
      let b =
        {
          b_tasks = tasks;
          b_next = Atomic.make 0;
          b_remaining = Atomic.make n;
          b_errors = Array.make n None;
          b_cap = cap;
          b_m = Mutex.create ();
          b_done = Condition.create ();
          b_enqueued = (if Metrics.enabled () then Unix.gettimeofday () else 0.0);
        }
      in
      Metrics.gauge_add m_queue_depth n;
      (* Publish runner stubs: one per extra domain this batch may
         occupy, bounded by live workers — with zero workers no stub
         is queued and the submitter simply drains the batch alone. *)
      Mutex.lock sched.sm;
      ensure_workers ();
      let nw = sched.n_workers in
      let stubs = min (min cap n - 1) nw in
      if stubs > 0 then begin
        (* Spread stubs from a rotating start so concurrent batches do
           not all land on worker 0. *)
        let start = sched.epoch mod max 1 nw in
        for k = 0 to stubs - 1 do
          Deque.push_back sched.deques.((start + k) mod nw) b
        done;
        sched.epoch <- sched.epoch + 1;
        Condition.broadcast sched.has_work
      end;
      Mutex.unlock sched.sm;
      (* The submitting domain is a runner too: it always participates
         and can finish the batch with no worker help at all. *)
      drive_batch ~stop_on_close:false b;
      (* Tasks may still be running on workers.  Help other batches
         while waiting (the work-conserving property nested batches
         rely on), sleeping only when there is nothing to steal. *)
      let rec wait () =
        if Atomic.get b.b_remaining > 0 then
          match steal_any ~self:(-1) with
          | Some b' ->
              drive_batch ~stop_on_close:false b';
              wait ()
          | None ->
              Mutex.lock b.b_m;
              if Atomic.get b.b_remaining > 0 then
                Condition.wait b.b_done b.b_m;
              Mutex.unlock b.b_m;
              wait ()
      in
      wait ();
      Array.iter (function Some e -> raise e | None -> ()) b.b_errors
    end
  end

(* ------------------------------------------------------------------ *)
(* Chunked helpers                                                    *)

(* Chunking follows the *effective* cap, so a nested sweep does not
   split into more chunks than it may ever run concurrently.  Chunk
   boundaries are deterministic for a given count, and callers
   concatenate chunk results in order, so results never depend on the
   count chosen. *)
let effective_cap t = min t.cap (Domain.DLS.get cap_key)

let chunk_count t ?(min_chunk = 1) ~n () =
  if n <= 0 then 1
  else max 1 (min (effective_cap t) (n / max 1 min_chunk))

let chunk_bounds ~n ~chunks k =
  (* Near-equal contiguous chunks: the first [n mod chunks] get one
     extra element. *)
  let base = n / chunks and extra = n mod chunks in
  let lo = (k * base) + min k extra in
  let hi = lo + base + (if k < extra then 1 else 0) in
  (lo, hi)

let parallel_chunks t ?min_chunk ~n f =
  let chunks = chunk_count t ?min_chunk ~n () in
  if chunks = 1 then [| f ~chunk:0 ~lo:0 ~hi:n |]
  else begin
    let results = Array.make chunks None in
    run_all t
      (Array.init chunks (fun k () ->
           let lo, hi = chunk_bounds ~n ~chunks k in
           results.(k) <- Some (f ~chunk:k ~lo ~hi)));
    Array.map
      (function Some r -> r | None -> assert false (* run_all raised *))
      results
  end

let map_reduce t ?min_chunk ~n ~map ~reduce init =
  let pieces = parallel_chunks t ?min_chunk ~n (fun ~chunk:_ ~lo ~hi -> map ~lo ~hi) in
  Array.fold_left reduce init pieces

let map_array t f a =
  let n = Array.length a in
  if effective_cap t = 1 || n <= 1 then Array.map f a
  else begin
    let results = Array.make n None in
    run_all t (Array.init n (fun i () -> results.(i) <- Some (f a.(i))));
    Array.map (function Some r -> r | None -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Teardown                                                           *)

(* [ensure_workers] and [park] serialize on [sm], and spawning is
   refused while [closing] holds — so a concurrent submission during a
   teardown can never strand freshly spawned workers that observe
   [closing] and exit unjoined (the historic deadlock); it just runs
   its batch on the submitting domain and workers respawn on the next
   submission after the teardown completes. *)
let park () =
  Mutex.lock sched.sm;
  if sched.workers = [] then Mutex.unlock sched.sm
  else begin
    Atomic.set sched.closing true;
    Condition.broadcast sched.has_work;
    let ws = sched.workers in
    sched.workers <- [];
    sched.n_workers <- 0;
    Metrics.gauge_set m_workers_live 0;
    Mutex.unlock sched.sm;
    List.iter Domain.join ws;
    Mutex.lock sched.sm;
    Atomic.set sched.closing false;
    Mutex.unlock sched.sm
  end

let teardown _t = park ()
