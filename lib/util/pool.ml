(* A work-queue domain pool.  One mutex guards the queue and the
   worker list; workers block on [has_work] and exit when [closing].
   Batches track their own completion count, so concurrent and nested
   batches on the same pool are independent: a domain waiting for its
   batch keeps draining the shared queue instead of sleeping while
   runnable tasks exist, which is what makes nesting deadlock-free. *)

module Metrics = Standoff_obs.Metrics

(* Registered at module init, so the pool metrics appear in exposition
   (at zero) even in a process that never runs parallel work. *)
let m_tasks_total =
  Metrics.counter "standoff_pool_tasks_total"
    ~help:"Tasks drained from the pool work queue"

let m_queue_depth =
  Metrics.gauge "standoff_pool_queue_depth"
    ~help:"Tasks currently waiting in the pool work queue"

let m_queue_wait =
  Metrics.histogram "standoff_pool_queue_wait_seconds"
    ~buckets:Metrics.duration_buckets
    ~help:"Time tasks spent queued before a domain picked them up"

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    jobs;
    mutex = Mutex.create ();
    has_work = Condition.create ();
    batch_done = Condition.create ();
    queue = Queue.create ();
    closing = false;
    workers = [];
  }

let jobs t = t.jobs

let default_jobs () =
  match Sys.getenv_opt "STANDOFF_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    match Queue.take_opt t.queue with
    | Some task ->
        Metrics.gauge_set m_queue_depth (Queue.length t.queue);
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        loop ()
    | None ->
        if t.closing then Mutex.unlock t.mutex
        else begin
          Condition.wait t.has_work t.mutex;
          loop ()
        end
  in
  loop ()

(* Workers spawn on first use, so a pool created with [jobs > 1] but
   only ever used sequentially costs nothing. *)
let ensure_workers t =
  if t.workers = [] && t.jobs > 1 then begin
    t.closing <- false;
    t.workers <-
      List.init (t.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
  end

let run_all t tasks =
  let n = Array.length tasks in
  if t.jobs = 1 || n <= 1 then Array.iter (fun f -> f ()) tasks
  else begin
    let remaining = ref n in
    let errors = Array.make n None in
    let wrap i f =
      (* Timestamp at enqueue, observed at execution: the queue-wait
         histogram.  Skipped entirely when the registry is disabled so
         the no-sink hot path pays one atomic load, not two clock
         reads. *)
      let enqueued = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
      fun () ->
        if enqueued > 0.0 then
          Metrics.observe m_queue_wait (Unix.gettimeofday () -. enqueued);
        Metrics.incr m_tasks_total;
        (try f () with e -> errors.(i) <- Some e);
        Mutex.lock t.mutex;
        decr remaining;
        (* Waiters of every batch share the condition; each re-checks its
           own counter. *)
        if !remaining = 0 then Condition.broadcast t.batch_done;
        Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    ensure_workers t;
    Array.iteri (fun i f -> Queue.add (wrap i f) t.queue) tasks;
    Metrics.gauge_set m_queue_depth (Queue.length t.queue);
    Condition.broadcast t.has_work;
    (* The submitting domain helps: run queued tasks (this batch's or a
       concurrent one's) until this batch has fully drained. *)
    let rec drive () =
      if !remaining > 0 then
        match Queue.take_opt t.queue with
        | Some task ->
            Metrics.gauge_set m_queue_depth (Queue.length t.queue);
            Mutex.unlock t.mutex;
            task ();
            Mutex.lock t.mutex;
            drive ()
        | None ->
            Condition.wait t.batch_done t.mutex;
            drive ()
    in
    drive ();
    Mutex.unlock t.mutex;
    Array.iter (function Some e -> raise e | None -> ()) errors
  end

let chunk_count t ?(min_chunk = 1) ~n () =
  if n <= 0 then 1 else max 1 (min t.jobs (n / max 1 min_chunk))

let chunk_bounds ~n ~chunks k =
  (* Near-equal contiguous chunks: the first [n mod chunks] get one
     extra element. *)
  let base = n / chunks and extra = n mod chunks in
  let lo = (k * base) + min k extra in
  let hi = lo + base + (if k < extra then 1 else 0) in
  (lo, hi)

let parallel_chunks t ?min_chunk ~n f =
  let chunks = chunk_count t ?min_chunk ~n () in
  if chunks = 1 then [| f ~chunk:0 ~lo:0 ~hi:n |]
  else begin
    let results = Array.make chunks None in
    run_all t
      (Array.init chunks (fun k () ->
           let lo, hi = chunk_bounds ~n ~chunks k in
           results.(k) <- Some (f ~chunk:k ~lo ~hi)));
    Array.map
      (function Some r -> r | None -> assert false (* run_all raised *))
      results
  end

let map_reduce t ?min_chunk ~n ~map ~reduce init =
  let pieces = parallel_chunks t ?min_chunk ~n (fun ~chunk:_ ~lo ~hi -> map ~lo ~hi) in
  Array.fold_left reduce init pieces

let map_array t f a =
  let n = Array.length a in
  if t.jobs = 1 || n <= 1 then Array.map f a
  else begin
    let results = Array.make n None in
    run_all t (Array.init n (fun i () -> results.(i) <- Some (f a.(i))));
    Array.map (function Some r -> r | None -> assert false) results
  end

(* Domains are a bounded OS resource (the runtime caps live domains at
   ~128), so callers that create engines freely must not each own a
   worker set.  [shared] memoizes one pool per jobs count for the whole
   process; tearing a shared pool down is safe — workers respawn on the
   next parallel call. *)
let shared_lock = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~jobs =
  if jobs < 1 then invalid_arg "Pool.shared: jobs must be >= 1";
  Mutex.lock shared_lock;
  let p =
    match Hashtbl.find_opt shared_pools jobs with
    | Some p -> p
    | None ->
        let p = create ~jobs in
        Hashtbl.add shared_pools jobs p;
        p
  in
  Mutex.unlock shared_lock;
  p

let teardown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.has_work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers;
  Mutex.lock t.mutex;
  t.closing <- false;
  Mutex.unlock t.mutex
