(** Wall-clock measurement with a cooperative timeout, used by the
    benchmark harness to reproduce the paper's DNF ("did not finish
    within an hour") protocol at laptop scale. *)

(** [now ()] is the current wall-clock time in seconds. *)
val now : unit -> float

(** Result of running a measured computation under a deadline. *)
type 'a outcome =
  | Finished of 'a * float  (** value and elapsed seconds *)
  | Timed_out of float      (** gave up after this many seconds *)

(** Raised by {!checkpoint} when the deadline has passed. *)
exception Deadline_exceeded

(** A deadline token to thread through long-running algorithms. *)
type deadline

(** [no_deadline] never fires. *)
val no_deadline : deadline

(** [deadline_after seconds] fires [seconds] from now. *)
val deadline_after : float -> deadline

(** [deadline_with_fuel n] fires on the [(n+1)]-th {!checkpoint} (and
    on every one after), independent of wall-clock time.  Deterministic
    by construction, which is what makes it possible to test deadline
    behaviour at an exact point of a run — e.g. that a deadline firing
    during result serialization still yields a clean error.  Safe to
    share across pool domains. *)
val deadline_with_fuel : int -> deadline

(** [checkpoint d] raises {!Deadline_exceeded} if [d] has passed.
    Cheap enough to call every few thousand loop iterations. *)
val checkpoint : deadline -> unit

(** [run_with_timeout ~seconds f] runs [f ()], which must itself call
    {!checkpoint} on the deadline it receives, and reports either its
    value or a timeout. *)
val run_with_timeout : seconds:float -> (deadline -> 'a) -> 'a outcome

(** [time f] is [(f (), elapsed_seconds)]. *)
val time : (unit -> 'a) -> 'a * float
