(** Test-only failure injection.

    Durability code calls {!hit} at its crash-critical points
    (mid-append, before-fsync, mid-snapshot, ...); a test arms a point
    and the next hit either raises {!Injected_crash} — an in-process
    crash simulation: the store handle is abandoned exactly as a
    killed process would leave the files — or hard-exits the process
    (subprocess harnesses).

    Points can also be armed from the environment at program load:

    {v
    STANDOFF_FAILPOINT="wal.mid_append"        crash on the first hit
    STANDOFF_FAILPOINT="wal.after_append:3"    crash on the third hit
    v}

    Environment-armed points hard-exit with status 137 (the SIGKILL
    convention), skipping every [at_exit]/flush — the whole point is
    to leave files in the state an abrupt death would.

    When nothing is armed, {!hit} costs a single atomic load. *)

exception Injected_crash of string

type mode =
  | Raise  (** raise {!Injected_crash} — in-process tests *)
  | Exit of int  (** [Unix._exit code] — subprocess harnesses *)

val arm : ?after:int -> ?mode:mode -> string -> unit
(** [arm name] makes the [after]th subsequent [hit name] fire (default
    the very next one).  Firing is one-shot: the point disarms itself,
    so the recovery that follows the injected crash runs through the
    same code unimpeded.  @raise Invalid_argument when [after < 1]. *)

val disarm : string -> unit
(** Remove one armed point; no-op if it is not armed. *)

val clear : unit -> unit
(** Disarm everything. *)

val would_fire : string -> bool
(** True when the very next [hit name] will fire — callers that need
    to prepare the crash site (e.g. split one write into two so the
    torn state is real) check this first. *)

val hit : string -> unit
(** Cross a crash point: fires if the point is armed and its count is
    due, otherwise returns immediately. *)
