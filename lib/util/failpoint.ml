(* Test-only failure injection.  Durability code calls [hit "name"] at
   its crash-critical points (mid-append, before-fsync, mid-snapshot,
   ...); a test arms a point and the next hit either raises
   [Injected_crash] (in-process crash simulation: the store handle is
   abandoned exactly as a killed process would leave the files) or
   hard-exits the process (subprocess harnesses).

   Arming is programmatic ([arm]) or via the environment:

     STANDOFF_FAILPOINT="wal.mid_append"        crash on the first hit
     STANDOFF_FAILPOINT="wal.after_append:3"    crash on the third hit

   Environment-armed points hard-exit with status 137 (the SIGKILL
   convention), skipping every at_exit/flush — the whole point is to
   leave files in the state an abrupt death would.

   When nothing is armed, [hit] is a single atomic load. *)

exception Injected_crash of string

type mode =
  | Raise  (** raise {!Injected_crash} — in-process tests *)
  | Exit of int  (** [Unix._exit code] — subprocess harnesses *)

type armed = {
  mutable remaining : int;  (* fires when this reaches 0 *)
  a_mode : mode;
}

let table : (string, armed) Hashtbl.t = Hashtbl.create 4
let lock = Mutex.create ()

(* Fast-path guard: number of armed points.  [hit] returns immediately
   when zero, so production code pays one atomic read per crash point. *)
let active = Atomic.make 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(after = 1) ?(mode = Raise) name =
  if after < 1 then invalid_arg "Failpoint.arm: after must be >= 1";
  locked (fun () ->
      if not (Hashtbl.mem table name) then Atomic.incr active;
      Hashtbl.replace table name { remaining = after; a_mode = mode })

let disarm name =
  locked (fun () ->
      if Hashtbl.mem table name then begin
        Hashtbl.remove table name;
        Atomic.decr active
      end)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set active 0)

(* True when the very next [hit name] will fire — callers that need to
   prepare the crash site (e.g. split one write into two so the torn
   state is real) check this first. *)
let would_fire name =
  Atomic.get active > 0
  && locked (fun () ->
         match Hashtbl.find_opt table name with
         | Some a -> a.remaining <= 1
         | None -> false)

let hit name =
  if Atomic.get active > 0 then begin
    let fire =
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | None -> None
          | Some a ->
              a.remaining <- a.remaining - 1;
              if a.remaining <= 0 then begin
                (* One-shot: the recovery that follows the injected
                   crash must run through the same code unimpeded. *)
                Hashtbl.remove table name;
                Atomic.decr active;
                Some a.a_mode
              end
              else None)
    in
    match fire with
    | None -> ()
    | Some Raise -> raise (Injected_crash name)
    | Some (Exit code) ->
        (* No flush, no at_exit: leave buffers and files exactly as an
           abrupt kill would. *)
        Unix._exit code
  end

(* Environment arming, parsed once at load: "name[:count][,name...]". *)
let () =
  match Sys.getenv_opt "STANDOFF_FAILPOINT" with
  | None | Some "" -> ()
  | Some spec ->
      List.iter
        (fun one ->
          let one = String.trim one in
          if one <> "" then
            match String.index_opt one ':' with
            | None -> arm ~mode:(Exit 137) one
            | Some i ->
                let name = String.sub one 0 i in
                let count =
                  String.sub one (i + 1) (String.length one - i - 1)
                in
                let after =
                  match int_of_string_opt count with
                  | Some n when n >= 1 -> n
                  | _ ->
                      invalid_arg
                        (Printf.sprintf "STANDOFF_FAILPOINT: bad count %S"
                           count)
                in
                arm ~after ~mode:(Exit 137) name)
        (String.split_on_char ',' spec)
