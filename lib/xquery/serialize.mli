(** Serialization of query results. *)

(** [item coll i] serializes one item: nodes as XML markup, attributes
    as [name="value"], atomics in their canonical lexical form. *)
val item : Standoff_store.Collection.t -> Standoff_relalg.Item.t -> string

(** [sequence ?deadline coll items] serializes a result sequence:
    adjacent atomic values are separated by a single space, nodes by
    newlines.  [deadline] is checked before each item; if it fires,
    {!Standoff_util.Timing.Deadline_exceeded} is raised and no partial
    output escapes (the buffer is discarded with the raise).
    @raise Standoff_util.Timing.Deadline_exceeded when [deadline] has
    passed. *)
val sequence :
  ?deadline:Standoff_util.Timing.deadline ->
  Standoff_store.Collection.t ->
  Standoff_relalg.Item.t list ->
  string
