(** Serialization of query results. *)

(** [item coll i] serializes one item: nodes as XML markup, attributes
    as [name="value"], atomics in their canonical lexical form. *)
val item : Standoff_store.Collection.t -> Standoff_relalg.Item.t -> string

(** [sequence ?deadline coll items] serializes a result sequence:
    adjacent atomic values are separated by a single space, nodes by
    newlines.  [deadline] is checked before each item; if it fires,
    {!Standoff_util.Timing.Deadline_exceeded} is raised and no partial
    output escapes (the buffer is discarded with the raise).
    @raise Standoff_util.Timing.Deadline_exceeded when [deadline] has
    passed. *)
val sequence :
  ?deadline:Standoff_util.Timing.deadline ->
  Standoff_store.Collection.t ->
  Standoff_relalg.Item.t list ->
  string

(** [sequence_emit ?deadline coll items ~emit] is the streaming form
    of {!sequence}: each item's bytes (separator first) are handed to
    [emit] as they are rendered, at the same per-item deadline
    checkpoints — so a caller wiring [emit] to a chunked HTTP writer
    streams large results without ever holding the whole serialization.
    Byte-concatenating every [emit] argument reproduces {!sequence}'s
    output exactly.  A deadline firing mid-sequence raises between
    items: the bytes already emitted are a clean prefix, and the caller
    (who may have shipped them) is responsible for signalling
    truncation — the chunked encoding's missing terminator does that on
    the wire.
    @raise Standoff_util.Timing.Deadline_exceeded when [deadline] has
    passed. *)
val sequence_emit :
  ?deadline:Standoff_util.Timing.deadline ->
  Standoff_store.Collection.t ->
  Standoff_relalg.Item.t list ->
  emit:(string -> unit) ->
  unit
