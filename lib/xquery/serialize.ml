module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Serializer = Standoff_xml.Serializer

let item coll = function
  | Item.Node n ->
      let doc = Collection.doc coll n.Collection.doc_id in
      Serializer.node_to_string (Doc.to_dom doc n.Collection.pre)
  | Item.Attribute (_, name, value) ->
      Printf.sprintf "%s=\"%s\"" name (Serializer.escape_attr value)
  | (Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _) as atom ->
      Atomic.atomic_to_string (Atomic.atomize coll atom)

let sequence ?(deadline = Standoff_util.Timing.no_deadline) coll items =
  let buf = Buffer.create 256 in
  let prev_atomic = ref false in
  List.iteri
    (fun i it ->
      (* A deadline firing mid-serialization must abort the whole run:
         the buffer is local, so no partial output can escape to a
         caller (a server response, say) — the exception is the only
         observable outcome. *)
      Standoff_util.Timing.checkpoint deadline;
      let atomic = not (Item.is_node it) in
      if i > 0 then
        if atomic && !prev_atomic then Buffer.add_char buf ' '
        else Buffer.add_char buf '\n';
      Buffer.add_string buf (item coll it);
      prev_atomic := atomic)
    items;
  Buffer.contents buf
