module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Serializer = Standoff_xml.Serializer

let item coll = function
  | Item.Node n ->
      let doc = Collection.doc coll n.Collection.doc_id in
      Serializer.node_to_string (Doc.to_dom doc n.Collection.pre)
  | Item.Attribute (_, name, value) ->
      Printf.sprintf "%s=\"%s\"" name (Serializer.escape_attr value)
  | (Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _) as atom ->
      Atomic.atomic_to_string (Atomic.atomize coll atom)

(* The streaming form: each item is rendered and handed to [emit]
   (separator first) at the per-item deadline checkpoint — the natural
   flush seam.  A caller that wires [emit] to a chunked HTTP writer
   streams arbitrarily large results with bounded buffering; the
   deadline firing mid-sequence aborts between items, so the bytes
   already emitted are a clean prefix of the full serialization. *)
let sequence_emit ?(deadline = Standoff_util.Timing.no_deadline) coll items
    ~emit =
  let prev_atomic = ref false in
  List.iteri
    (fun i it ->
      Standoff_util.Timing.checkpoint deadline;
      let atomic = not (Item.is_node it) in
      if i > 0 then
        emit (if atomic && !prev_atomic then " " else "\n");
      emit (item coll it);
      prev_atomic := atomic)
    items

let sequence ?deadline coll items =
  let buf = Buffer.create 256 in
  (* The buffer is local, so a deadline firing mid-serialization
     discards all partial output with the raise — the exception is the
     only observable outcome. *)
  sequence_emit ?deadline coll items ~emit:(Buffer.add_string buf);
  Buffer.contents buf
