module Vec = Standoff_util.Vec
module Search = Standoff_util.Search
module Timing = Standoff_util.Timing
module Pool = Standoff_util.Pool
module Dom = Standoff_xml.Dom
module Doc = Standoff_store.Doc
module Dataguide = Standoff_store.Dataguide
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table
module Axes = Standoff_xpath.Axes
module Node_test = Standoff_xpath.Node_test
module Step = Standoff_xpath.Step
module Config = Standoff.Config
module Op = Standoff.Op
module Catalog = Standoff.Catalog
module Join = Standoff.Join
module Trace = Standoff_obs.Trace

type env = {
  coll : Collection.t;
  catalog : Catalog.t;
  config : Config.t;
  strategy : Config.strategy option;
      (* engine-wide override; [None] lets each operator resolve its
         own strategy from annotation statistics *)
  deadline : Timing.deadline;
  trace : Trace.t option;
      (* span collector; [None] is the uninstrumented hot path.  The
         collector is single-domain: [eval]'s recursion stays on the
         calling domain (pool workers run join sweeps and index builds,
         not [eval]), so span mutation needs no locking.  The sharded
         entry point [Engine.run_prepared_sharded], which does eval in
         workers, runs untraced. *)
  span : Trace.span option;
      (* the span of the plan node currently being evaluated *)
  loop : int array;
  vars : (string * Table.t) list;
  focus : focus option;
  functions : (string, Plan.function_def) Hashtbl.t;
  depth : int;
  pool : Pool.t option;
      (* parallel execution; [None] is the sequential code path *)
}

and focus = {
  f_item : Table.t;
  f_pos : Table.t;
  f_last : Table.t;
}

let initial_env ~coll ~catalog ~config ~strategy ?trace ?pool
    ~deadline ~functions ~context () =
  let loop = [| 0 |] in
  let focus =
    Option.map
      (fun item ->
        {
          f_item = Table.const ~loop [ item ];
          f_pos = Table.const ~loop [ Item.Int 1L ];
          f_last = Table.const ~loop [ Item.Int 1L ];
        })
      context
  in
  {
    coll;
    catalog;
    config;
    strategy;
    deadline;
    trace;
    span = None;
    loop;
    vars = [];
    focus;
    functions;
    depth = 0;
    pool;
  }

(* ------------------------------------------------------------------ *)
(* Environment plumbing                                               *)

let lift_focus focus ~outer_of_inner =
  Option.map
    (fun f ->
      {
        f_item = Table.lift f.f_item ~outer_of_inner;
        f_pos = Table.lift f.f_pos ~outer_of_inner;
        f_last = Table.lift f.f_last ~outer_of_inner;
      })
    focus

(* Enter a for-loop body: lift only the variables the body mentions. *)
let enter_loop env (exp : Table.expansion) ~free =
  let vars =
    List.filter_map
      (fun (name, t) ->
        if List.mem name free then
          Some (name, Table.lift t ~outer_of_inner:exp.Table.outer_of_inner)
        else None)
      env.vars
  in
  {
    env with
    loop = exp.Table.inner_loop;
    vars;
    focus = lift_focus env.focus ~outer_of_inner:exp.Table.outer_of_inner;
  }

let restrict_table t ~keep =
  let iters = Vec.create () and items = Vec.create () in
  for r = 0 to Table.row_count t - 1 do
    let it = Table.iter_at t r in
    if Search.mem_sorted_int keep it then begin
      Vec.push iters it;
      Vec.push items (Table.item_at t r)
    end
  done;
  Table.make (Vec.to_array iters) (Vec.to_array items)

let restrict_env env ~keep =
  {
    env with
    loop = keep;
    vars = List.map (fun (n, t) -> (n, restrict_table t ~keep)) env.vars;
    focus =
      Option.map
        (fun f ->
          {
            f_item = restrict_table f.f_item ~keep;
            f_pos = restrict_table f.f_pos ~keep;
            f_last = restrict_table f.f_last ~keep;
          })
        env.focus;
  }

(* ------------------------------------------------------------------ *)
(* Per-iteration helpers                                              *)

(* Apply [f iter items] for each iteration of the loop, where [items]
   is that iteration's sequence in [t]. *)
let per_iter env t ~f =
  Array.iter (fun iter -> f iter (Table.sequence_of_iter t iter)) env.loop

let ebv_mask env t =
  let mask = Array.make (Array.length env.loop) false in
  Array.iteri
    (fun i iter ->
      mask.(i) <-
        Atomic.effective_boolean_value env.coll (Table.sequence_of_iter t iter))
    env.loop;
  mask

let loop_where env mask value =
  let keep = Vec.create () in
  Array.iteri (fun i iter -> if mask.(i) = value then Vec.push keep iter) env.loop;
  Vec.to_array keep

let bool_table env mask =
  Table.make (Array.copy env.loop)
    (Array.map (fun b -> Item.Bool b) mask)

let singleton_of what items =
  match items with
  | [] -> None
  | [ x ] -> Some x
  | _ -> Err.raisef "%s expects at most one item per iteration" what

(* ------------------------------------------------------------------ *)
(* StandOff joins                                                     *)

(* Partition context rows per document, keeping for each document both
   the (iter, pre) rows and the set of live iterations (needed by the
   reject operators: an iteration whose context has no annotations
   still designates the fragment).

   Physical-operator knobs (decided by the optimizer, carried on the
   plan node):
   - [pushdown]: restrict the candidate region index to elements
     matching the name test before the join, instead of joining
     against every area-annotation and post-filtering (§4.3).  The
     post-filter below always runs, so a plan without pushdown is
     still correct — just slower.
   - [strategy]: [S_fixed] uses that algorithm; [S_auto] defers to the
     engine-wide override if any, else picks per document from the
     context and candidate sizes.
   [span] receives the join statistics as trace attributes. *)
let standoff_step env ?span ~strategy_choice ~pushdown op test context =
  let by_doc : (int, int Vec.t * int Vec.t) Hashtbl.t = Hashtbl.create 4 in
  let doc_ids = Vec.create () in
  for r = 0 to Table.row_count context - 1 do
    let iter = Table.iter_at context r in
    match Table.item_at context r with
    | Item.Node n ->
        let iters, pres =
          match Hashtbl.find_opt by_doc n.Collection.doc_id with
          | Some cols -> cols
          | None ->
              let cols = (Vec.create (), Vec.create ()) in
              Hashtbl.add by_doc n.Collection.doc_id cols;
              Vec.push doc_ids n.Collection.doc_id;
              cols
        in
        Vec.push iters iter;
        Vec.push pres n.Collection.pre
    | Item.Attribute _ -> ()
    | (Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _) as item ->
        Err.raisef "%s:: applied to a non-node item %s" (Op.to_string op)
          (Item.to_string item)
  done;
  let ids = Vec.to_array doc_ids in
  Array.sort compare ids;
  (* Per-document shards: annotation tables, candidate indexes and
     strategies resolve sequentially (they touch lazily built shared
     state), then the joins — the expensive part — run one shard per
     document, in parallel when a pool is available.  StandOff steps
     match only nodes from the same fragment (§3.3), so sharding on
     the document is semantics-preserving, and concatenating shard
     tables in ascending doc-id order restores global document
     order. *)
  let prepped =
    Array.map
      (fun doc_id ->
        let iters_v, pres_v = Hashtbl.find by_doc doc_id in
        let context_iters = Vec.to_array iters_v in
        let context_pres = Vec.to_array pres_v in
        let doc = Collection.doc env.coll doc_id in
        let annots = Catalog.annots ?pool:env.pool env.catalog env.config doc in
        let candidates =
          if pushdown then
            Option.map (Doc.elements_named doc) (Node_test.name_filter test)
          else None
        in
        let strategy =
          match strategy_choice with
          | Plan.S_fixed s -> s
          | Plan.S_auto -> (
              match env.strategy with
              | Some s -> s
              | None ->
                  Join.auto_strategy annots
                    ~context_rows:(Array.length context_pres)
                    ~candidate_rows:(Option.map Array.length candidates))
        in
        let stats =
          match span with Some _ -> Some (Join.fresh_stats ()) | None -> None
        in
        (doc_id, doc, annots, context_iters, context_pres, candidates,
         strategy, stats))
      ids
  in
  let run_shard
      (doc_id, doc, annots, context_iters, context_pres, candidates, strategy,
       stats) =
    let loop =
      (* Distinct iters present in this document's context. *)
      let v = Vec.create () in
      Array.iteri
        (fun i it ->
          if i = 0 || context_iters.(i - 1) <> it then Vec.push v it)
        context_iters;
      Vec.to_array v
    in
    let iters, pres =
      Join.run_lifted op strategy annots ?pool:env.pool ~deadline:env.deadline
        ?stats ~loop ~context_iters ~context_pres ~candidates ()
    in
    let keep = Vec.create () in
    Array.iteri
      (fun r pre ->
        (* Whether or not the name test was pushed into the
           candidate index, the node test filters here (kind
           tests cannot be pushed at all). *)
        if Node_test.matches doc test pre then
          Vec.push keep (iters.(r), Item.Node { Collection.doc_id; pre }))
      pres;
    let rows = Vec.to_array keep in
    Table.make (Array.map fst rows) (Array.map snd rows)
  in
  let tables =
    match env.pool with
    | Some p when Pool.jobs p > 1 && Array.length prepped > 1 ->
        Pool.map_array p run_shard prepped
    | _ -> Array.map run_shard prepped
  in
  (* Instrumentation folds in after the (possibly parallel) shards so
     the trace span is only ever mutated from this domain. *)
  (match span with
  | Some sp ->
      Array.iter
        (fun (_, _, _, _, _, _, strategy, stats) ->
          match stats with
          | Some s ->
              Trace.add_int sp "index_rows" s.Join.s_index_rows;
              Trace.add_int sp "chunks" s.Join.s_chunks;
              Trace.set_str sp "strategy" (Config.strategy_to_string strategy)
          | None -> ())
        prepped
  | None -> ());
  Table.concat (Array.to_list tables)

(* ------------------------------------------------------------------ *)
(* Element construction                                               *)

(* Names for constructed-node documents, unique across the process so
   parallel shards and repeated runs never collide in the
   collection. *)
let ctor_counter = Stdlib.Atomic.make 0

let rec dom_of_items env items =
  (* Adjacent atomic values merge into one text node separated by
     spaces; nodes are deep-copied. *)
  let out = ref [] in
  let pending = Buffer.create 16 in
  let pending_nonempty = ref false in
  let flush () =
    if !pending_nonempty then begin
      out := Dom.Text (Buffer.contents pending) :: !out;
      Buffer.clear pending;
      pending_nonempty := false
    end
  in
  let attrs = ref [] in
  List.iter
    (fun item ->
      match item with
      | Item.Node n ->
          flush ();
          let doc = Collection.doc env.coll n.Collection.doc_id in
          out := Doc.to_dom doc n.Collection.pre :: !out
      | Item.Attribute (_, name, value) -> attrs := (name, value) :: !attrs
      | Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _ ->
          if !pending_nonempty then Buffer.add_char pending ' ';
          Buffer.add_string pending
            (Atomic.atomic_to_string (Atomic.atomize env.coll item));
          pending_nonempty := true)
    items;
  flush ();
  (List.rev !attrs, List.rev !out)

and construct_element env ~tag ~attr_tables ~content_tables iter =
  let attr_value parts =
    String.concat ""
      (List.map
         (function
           | `Fixed s -> s
           | `Table t ->
               Table.sequence_of_iter t iter
               |> List.map (fun item ->
                      Atomic.atomic_to_string (Atomic.atomize env.coll item))
               |> String.concat " ")
         parts)
  in
  let attrs = List.map (fun (name, parts) -> (name, attr_value parts)) attr_tables in
  let content_attrs = ref [] in
  let children =
    List.concat_map
      (function
        | `Fixed s -> if Dom.is_ws_only s then [] else [ Dom.Text s ]
        | `Table t ->
            let extra, nodes = dom_of_items env (Table.sequence_of_iter t iter) in
            content_attrs := !content_attrs @ extra;
            nodes)
      content_tables
  in
  let el = Dom.element ~attrs:(attrs @ !content_attrs) tag children in
  (* Process-wide counter: parallel query shards construct elements
     concurrently into the shared collection, and [Collection.add]
     rejects duplicate names. *)
  let n = Stdlib.Atomic.fetch_and_add ctor_counter 1 in
  let name = Printf.sprintf "#constructed-%d" (n + 1) in
  let doc = Doc.of_dom ~name (Dom.document el) in
  let doc_id = Collection.add env.coll doc in
  Item.Node { Collection.doc_id; pre = 1 }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)

let rec eval env (plan : Plan.t) =
  Timing.checkpoint env.deadline;
  (* Dead iteration scopes evaluate to nothing without touching the
     plan.  Besides saving work, this is what lets recursive user
     functions terminate: the recursive branch of a conditional runs
     under the loop restricted to the iterations that took it, which
     eventually is empty.  Instrumentation skips them too, so EXPLAIN
     ANALYZE reports dead branches as not executed. *)
  if Array.length env.loop = 0 then Table.empty
  else
    match env.trace with
    | None -> eval_live env plan
    | Some tr ->
        (* One span per operator evaluation, tagged with the plan-node
           id for EXPLAIN ANALYZE aggregation.  [Fun.protect] closes
           the span on the way out even when the evaluation dies
           (deadline, evaluation error), so partial traces stay
           well-formed. *)
        let span = Trace.enter tr ~node:plan.Plan.id (Plan.label plan) in
        Fun.protect
          ~finally:(fun () -> Trace.exit tr span)
          (fun () ->
            let out = eval_live { env with span = Some span } plan in
            Trace.set_int span "rows_out" (Table.row_count out);
            out)

and record_rows_in env input =
  match env.span with
  | Some sp -> Trace.set_int sp "rows_in" (Table.row_count input)
  | None -> ()

and eval_live env (plan : Plan.t) =
  match plan.Plan.desc with
  | Plan.Literal (Ast.Lit_int i) -> Table.const ~loop:env.loop [ Item.Int i ]
  | Plan.Literal (Ast.Lit_float f) -> Table.const ~loop:env.loop [ Item.Float f ]
  | Plan.Literal (Ast.Lit_string s) -> Table.const ~loop:env.loop [ Item.Str s ]
  | Plan.Var v -> (
      match List.assoc_opt v env.vars with
      | Some t -> t
      | None -> Err.raisef "unbound variable $%s" v)
  | Plan.Context_item -> (
      match env.focus with
      | Some f -> f.f_item
      | None -> Err.raisef "no context item is defined here")
  | Plan.Sequence es -> Table.concat (List.map (eval env) es)
  | Plan.For { var; pos_var; source; order_by; body } ->
      let src = eval env source in
      let exp = Table.expand src in
      let free =
        List.sort_uniq compare
          (Plan.free_vars body
          @ List.concat_map (fun s -> Plan.free_vars s.Plan.key) order_by)
      in
      let env' = enter_loop env exp ~free in
      let vars = (var, exp.Table.var_table) :: env'.vars in
      let vars =
        match pos_var with
        | Some p -> (p, exp.Table.pos_table) :: vars
        | None -> vars
      in
      let env' = { env' with vars } in
      let out = eval env' body in
      if order_by = [] then
        Table.backmap out ~outer_of_inner:exp.Table.outer_of_inner
      else
        reorder_for env' exp out order_by
  | Plan.Let { var; value; body } ->
      let v = eval env value in
      eval { env with vars = (var, v) :: env.vars } body
  | Plan.Where { cond; body } ->
      let mask = ebv_mask env (eval env cond) in
      let keep = loop_where env mask true in
      eval (restrict_env env ~keep) body
  | Plan.Quantified { universal; var; source; satisfies } ->
      let src = eval env source in
      let exp = Table.expand src in
      let free = Plan.free_vars satisfies in
      let env' = enter_loop env exp ~free in
      let env' = { env' with vars = (var, exp.Table.var_table) :: env'.vars } in
      let sat = eval env' satisfies in
      let inner_mask = ebv_mask env' sat in
      (* Fold the inner verdicts back onto the outer loop. *)
      let verdict = Array.map (fun _ -> universal) env.loop in
      Array.iteri
        (fun inner outer ->
          let i = Search.lower_bound_int env.loop outer in
          if universal then
            verdict.(i) <- verdict.(i) && inner_mask.(inner)
          else verdict.(i) <- verdict.(i) || inner_mask.(inner))
        exp.Table.outer_of_inner;
      bool_table env verdict
  | Plan.If { cond; then_; else_ } ->
      let mask = ebv_mask env (eval env cond) in
      let keep_t = loop_where env mask true in
      let keep_f = loop_where env mask false in
      let t = eval (restrict_env env ~keep:keep_t) then_ in
      let f = eval (restrict_env env ~keep:keep_f) else_ in
      Table.append2 t f
  | Plan.Binop (op, a, b) -> eval_binop env op a b
  | Plan.Unary_minus e ->
      let t = eval env e in
      let rows = ref [] in
      per_iter env t ~f:(fun iter items ->
          match singleton_of "unary minus" items with
          | None -> ()
          | Some item ->
              rows :=
                (iter, Atomic.to_item (Atomic.negate (Atomic.atomize env.coll item)))
                :: !rows);
      Table.of_rows (List.rev !rows)
  | Plan.Axis_step { input; axis; test; position } -> (
      let ctx = eval env input in
      record_rows_in env ctx;
      try Step.axis_step env.coll axis ?position ~test ctx
      with Step.Not_a_node item ->
        Err.raisef "axis step applied to non-node %s" (Item.to_string item))
  | Plan.Attribute_step { input; test } ->
      let ctx = eval env input in
      record_rows_in env ctx;
      Step.attribute_step env.coll ~test ctx
  | Plan.Path_lookup { input; steps } ->
      (* One DataGuide probe answers the whole collapsed path per
         document.  The input evaluates to document nodes only (the
         optimizer collapses over doc()/root() sources exclusively),
         so per context row the matches are the probe's sorted
         duplicate-free pre list verbatim. *)
      let ctx = eval env input in
      record_rows_in env ctx;
      let per_doc : (int, int array) Hashtbl.t = Hashtbl.create 4 in
      let lookup doc_id =
        match Hashtbl.find_opt per_doc doc_id with
        | Some pres -> pres
        | None ->
            let doc = Collection.doc env.coll doc_id in
            let generation = Catalog.generation env.catalog doc.Doc.doc_name in
            let guide = Dataguide.get ?pool:env.pool ~generation doc in
            let pres = Dataguide.lookup doc guide steps in
            Hashtbl.add per_doc doc_id pres;
            pres
      in
      let iters = Vec.create () in
      let items = Vec.create () in
      let total = ref 0 in
      for r = 0 to Table.row_count ctx - 1 do
        let iter = Table.iter_at ctx r in
        match Table.item_at ctx r with
        | Item.Node { Collection.doc_id; pre = 0 } ->
            let pres = lookup doc_id in
            total := !total + Array.length pres;
            Array.iter
              (fun pre ->
                Vec.push iters iter;
                Vec.push items (Item.Node { Collection.doc_id; pre }))
              pres
        | item ->
            Err.raisef "path lookup applied to non-document item %s"
              (Item.to_string item)
      done;
      (match env.span with
      | Some sp ->
          Trace.set_str sp "path" (Plan.path_to_string steps);
          Trace.add_int sp "guide_rows" !total
      | None -> ());
      Table.make (Vec.to_array iters) (Vec.to_array items)
  | Plan.Standoff_join
      { input; op; test; position; pushdown; strategy; candidates } ->
      let ctx = eval env input in
      record_rows_in env ctx;
      let span = env.span in
      let joined =
        match candidates with
        | None ->
            standoff_step env ?span ~strategy_choice:strategy ~pushdown op test
              ctx
        | Some cand_plan ->
            let cand = eval env cand_plan in
            standoff_function env ?span ~strategy_choice:strategy op test ctx
              cand
      in
      (match position with
      | None -> joined
      | Some k -> Step.positional joined k)
  | Plan.Filter { input; predicate } -> eval_filter env input predicate
  | Plan.Path_map { input; body } ->
      let t = eval env input in
      let exp = Table.expand t in
      let free = Plan.free_vars body in
      let env' = enter_loop env exp ~free in
      let last_items =
        Array.map
          (fun outer ->
            let lo, hi = Table.group_bounds t outer in
            Item.Int (Int64.of_int (hi - lo)))
          exp.Table.outer_of_inner
      in
      let env' =
        {
          env' with
          focus =
            Some
              {
                f_item = exp.Table.var_table;
                f_pos = exp.Table.pos_table;
                f_last =
                  Table.make (Array.copy exp.Table.inner_loop) last_items;
              };
        }
      in
      let out = eval env' body in
      let back = Table.backmap out ~outer_of_inner:exp.Table.outer_of_inner in
      (* A path result that is all nodes is deduplicated in document
         order; sequences of atomic values keep their order. *)
      let all_nodes = ref true in
      for r = 0 to Table.row_count back - 1 do
        if not (Item.is_node (Table.item_at back r)) then all_nodes := false
      done;
      if !all_nodes then Table.distinct_doc_order back else back
  | Plan.Call { name; args } -> eval_call env name args
  | Plan.Elem_ctor { tag; attrs; content } ->
      let eval_part = function
        | Plan.Fixed s -> `Fixed s
        | Plan.Enclosed e -> `Table (eval env e)
      in
      let attr_tables =
        List.map (fun (n, parts) -> (n, List.map eval_part parts)) attrs
      in
      let content_tables = List.map eval_part content in
      let items =
        Array.map
          (fun iter ->
            construct_element env ~tag ~attr_tables ~content_tables iter)
          env.loop
      in
      Table.make (Array.copy env.loop) items

(* ---------------- order by ---------------- *)

(* Reorder the for-loop's iterations per outer group according to the
   sort keys, then map the body's results back in that order.  Each key
   evaluates to at most one atomic per iteration; absent keys sort
   first (XQuery's default "empty least"). *)
and reorder_for env' (exp : Table.expansion) out order_by =
  let n = Array.length exp.Table.inner_loop in
  let keys =
    List.map
      (fun spec ->
        let t = eval env' spec.Plan.key in
        let column = Array.make n None in
        Array.iter
          (fun inner ->
            match
              singleton_of "order by key" (Table.sequence_of_iter t inner)
            with
            | None -> ()
            | Some item ->
                column.(inner) <- Some (Atomic.atomize env'.coll item))
          exp.Table.inner_loop;
        (column, spec.Plan.descending))
      order_by
  in
  let perm = Array.init n Fun.id in
  let compare_inner a b =
    let c = compare exp.Table.outer_of_inner.(a) exp.Table.outer_of_inner.(b) in
    if c <> 0 then c
    else
      let rec by_keys = function
        | [] -> compare a b (* stable: input order breaks ties *)
        | (column, descending) :: rest ->
            let c =
              match (column.(a), column.(b)) with
              | None, None -> 0
              | None, Some _ -> -1
              | Some _, None -> 1
              | Some x, Some y -> Atomic.order_compare x y
            in
            let c = if descending then -c else c in
            if c <> 0 then c else by_keys rest
      in
      by_keys keys
  in
  Array.sort compare_inner perm;
  let iters = Vec.create () and items = Vec.create () in
  Array.iter
    (fun inner ->
      let lo, hi = Table.group_bounds out inner in
      for r = lo to hi - 1 do
        Vec.push iters exp.Table.outer_of_inner.(inner);
        Vec.push items (Table.item_at out r)
      done)
    perm;
  Table.make (Vec.to_array iters) (Vec.to_array items)

(* ---------------- binary operators ---------------- *)

and eval_binop env op a b =
  match op with
  | Ast.Op_or | Ast.Op_and ->
      let m1 = ebv_mask env (eval env a) in
      let m2 = ebv_mask env (eval env b) in
      let combine = if op = Ast.Op_or then ( || ) else ( && ) in
      bool_table env (Array.map2 combine m1 m2)
  | Ast.Op_eq | Ast.Op_ne | Ast.Op_lt | Ast.Op_le | Ast.Op_gt | Ast.Op_ge ->
      let cmp =
        match op with
        | Ast.Op_eq -> Atomic.Ceq
        | Ast.Op_ne -> Atomic.Cne
        | Ast.Op_lt -> Atomic.Clt
        | Ast.Op_le -> Atomic.Cle
        | Ast.Op_gt -> Atomic.Cgt
        | _ -> Atomic.Cge
      in
      let t1 = eval env a and t2 = eval env b in
      let mask = Array.make (Array.length env.loop) false in
      Array.iteri
        (fun i iter ->
          let s1 =
            List.map (Atomic.atomize env.coll) (Table.sequence_of_iter t1 iter)
          in
          let s2 =
            List.map (Atomic.atomize env.coll) (Table.sequence_of_iter t2 iter)
          in
          (* General comparison: existential over both sequences. *)
          mask.(i) <-
            List.exists
              (fun x -> List.exists (fun y -> Atomic.compare_atomics cmp x y) s2)
              s1)
        env.loop;
      bool_table env mask
  | Ast.Op_add | Ast.Op_sub | Ast.Op_mul | Ast.Op_div | Ast.Op_idiv
  | Ast.Op_mod ->
      let arith =
        match op with
        | Ast.Op_add -> Atomic.Add
        | Ast.Op_sub -> Atomic.Sub
        | Ast.Op_mul -> Atomic.Mul
        | Ast.Op_div -> Atomic.Div
        | Ast.Op_idiv -> Atomic.Idiv
        | _ -> Atomic.Mod
      in
      let t1 = eval env a and t2 = eval env b in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s1 = Table.sequence_of_iter t1 iter in
          let s2 = Table.sequence_of_iter t2 iter in
          match
            (singleton_of "arithmetic" s1, singleton_of "arithmetic" s2)
          with
          | Some x, Some y ->
              let v =
                Atomic.arithmetic arith (Atomic.atomize env.coll x)
                  (Atomic.atomize env.coll y)
              in
              rows := (iter, Atomic.to_item v) :: !rows
          | _ -> () (* empty operand -> empty result *))
        env.loop;
      Table.of_rows (List.rev !rows)
  | Ast.Op_to ->
      let t1 = eval env a and t2 = eval env b in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let bound what t =
            match singleton_of "range" (Table.sequence_of_iter t iter) with
            | None -> None
            | Some item -> (
                match Atomic.to_number (Atomic.atomize env.coll item) with
                | Atomic.A_int i -> Some i
                | _ -> Err.raisef "range %s must be an integer" what)
          in
          match (bound "start" t1, bound "end" t2) with
          | Some lo, Some hi ->
              if Int64.sub hi lo > 10_000_000L then
                Err.raisef "range %Ld to %Ld is too large" lo hi;
              let i = ref lo in
              while Int64.compare !i hi <= 0 do
                rows := (iter, Item.Int !i) :: !rows;
                i := Int64.add !i 1L
              done
          | _ -> ())
        env.loop;
      Table.of_rows (List.rev !rows)
  | Ast.Op_union ->
      let t = Table.append2 (eval env a) (eval env b) in
      (try Table.distinct_doc_order t
       with Invalid_argument _ ->
         Err.raisef "union operands must be node sequences")
  | Ast.Op_intersect | Ast.Op_except ->
      let t1 = eval env a and t2 = eval env b in
      let keep_if_in_t2 = op = Ast.Op_intersect in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let rhs = Table.sequence_of_iter t2 iter in
          List.iter
            (fun item ->
              if not (Item.is_node item) then
                Err.raisef "set operation operands must be node sequences";
              let present = List.exists (Item.equal item) rhs in
              if present = keep_if_in_t2 then rows := (iter, item) :: !rows)
            (Table.sequence_of_iter t1 iter))
        env.loop;
      Table.distinct_doc_order (Table.of_rows (List.rev !rows))

(* ---------------- predicates ---------------- *)

and eval_filter env input predicate =
  let t = eval env input in
  record_rows_in env t;
  let exp = Table.expand t in
  let free = Plan.free_vars predicate in
  let env' = enter_loop env exp ~free in
  (* Focus: the filtered item, its position, and the size of its
     iteration's sequence. *)
  let last_items =
    Array.map
      (fun outer ->
        let lo, hi = Table.group_bounds t outer in
        Item.Int (Int64.of_int (hi - lo)))
      exp.Table.outer_of_inner
  in
  let focus =
    Some
      {
        f_item = exp.Table.var_table;
        f_pos = exp.Table.pos_table;
        f_last = Table.make (Array.copy exp.Table.inner_loop) last_items;
      }
  in
  let env' = { env' with focus } in
  let p = eval env' predicate in
  let keep = Vec.create () in
  Array.iteri
    (fun inner outer ->
      let verdict =
        match Table.sequence_of_iter p inner with
        | [ Item.Int n ] ->
            (* Positional predicate. *)
            (match Table.item_at exp.Table.pos_table inner with
            | Item.Int pos -> Int64.equal pos n
            | _ -> assert false)
        | [ Item.Float f ] ->
            (match Table.item_at exp.Table.pos_table inner with
            | Item.Int pos -> Float.equal (Int64.to_float pos) f
            | _ -> assert false)
        | items -> Atomic.effective_boolean_value env.coll items
      in
      if verdict then
        Vec.push keep (outer, Table.item_at exp.Table.var_table inner))
    exp.Table.outer_of_inner;
  let rows = Vec.to_array keep in
  Table.make (Array.map fst rows) (Array.map snd rows)

(* ---------------- function calls ---------------- *)

(* The area of a node item under the current standoff configuration,
   via the catalogue. *)
and area_of_item env item =
  match item with
  | Item.Node n ->
      let doc = Collection.doc env.coll n.Collection.doc_id in
      let annots = Catalog.annots ?pool:env.pool env.catalog env.config doc in
      Option.map
        (fun area -> (n, area))
        (Standoff.Annots.area_of annots n.Collection.pre)
  | Item.Attribute _ | Item.Bool _ | Item.Int _ | Item.Float _ | Item.Str _ ->
      None

and eval_call env name args =
  let local =
    match String.index_opt name ':' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  match Hashtbl.find_opt env.functions name with
  | Some fn -> apply_udf env fn args
  | None -> (
      match Hashtbl.find_opt env.functions local with
      | Some fn -> apply_udf env fn args
      | None -> eval_builtin env local args)

and apply_udf env fn args =
  if env.depth > 1024 then
    Err.raisef
      "function %s: recursion depth exceeded (does the recursion terminate?)"
      fn.Plan.fn_name;
  if List.length args <> List.length fn.Plan.fn_params then
    Err.raisef "function %s expects %d arguments, got %d" fn.Plan.fn_name
      (List.length fn.Plan.fn_params) (List.length args);
  let bindings =
    List.map2 (fun p a -> (p, eval env a)) fn.Plan.fn_params args
  in
  (* The body sees only its parameters (functions have no closure over
     query variables), plus the focus-free top environment. *)
  eval
    { env with vars = bindings; focus = None; depth = env.depth + 1 }
    fn.Plan.fn_body

and eval_builtin env name args =
  let argc = List.length args in
  let arg n = List.nth args n in
  let eval1 () = eval env (arg 0) in
  let per_iter_strings t =
    (* Each iteration's sequence as an optional string (singleton). *)
    fun iter ->
      match singleton_of name (Table.sequence_of_iter t iter) with
      | None -> None
      | Some item -> Some (Atomic.string_value env.coll item)
  in
  match (name, argc) with
  | "#ddo", 1 -> (
      try Table.distinct_doc_order (eval1 ())
      with Invalid_argument _ ->
        Err.raisef "path steps must produce node sequences")
  | "doc", 1 ->
      let t = eval1 () in
      let get = per_iter_strings t in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          match get iter with
          | None -> ()
          | Some uri -> (
              match Collection.doc_id_of_name env.coll uri with
              | Some doc_id ->
                  rows := (iter, Item.Node { Collection.doc_id; pre = 0 }) :: !rows
              | None -> Err.raisef "doc(%S): no such document" uri))
        env.loop;
      Table.of_rows (List.rev !rows)
  | "root", 1 ->
      let t = eval1 () in
      Table.distinct_doc_order
        (Table.map_items
           (fun item ->
             match item with
             | Item.Node n | Item.Attribute (n, _, _) ->
                 Item.Node { n with Collection.pre = 0 }
             | _ -> Err.raisef "root(): not a node")
           t)
  | "count", 1 -> Table.count ~loop:env.loop (eval1 ())
  | "exists", 1 -> Table.exists ~loop:env.loop (eval1 ())
  | "empty", 1 ->
      Table.map_items
        (function Item.Bool b -> Item.Bool (not b) | x -> x)
        (Table.exists ~loop:env.loop (eval1 ()))
  | "not", 1 ->
      let mask = ebv_mask env (eval1 ()) in
      bool_table env (Array.map not mask)
  | "boolean", 1 -> bool_table env (ebv_mask env (eval1 ()))
  | "true", 0 -> Table.const ~loop:env.loop [ Item.Bool true ]
  | "false", 0 -> Table.const ~loop:env.loop [ Item.Bool false ]
  | "position", 0 -> (
      match env.focus with
      | Some f -> f.f_pos
      | None -> Err.raisef "position(): no context")
  | "last", 0 -> (
      match env.focus with
      | Some f -> f.f_last
      | None -> Err.raisef "last(): no context")
  | "string", 0 -> (
      match env.focus with
      | Some f ->
          Table.map_items
            (fun item -> Item.Str (Atomic.string_value env.coll item))
            f.f_item
      | None -> Err.raisef "string(): no context")
  | "string", 1 ->
      let t = eval1 () in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s =
            match singleton_of "string" (Table.sequence_of_iter t iter) with
            | None -> ""
            | Some item -> Atomic.string_value env.coll item
          in
          rows := (iter, Item.Str s) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "data", 1 ->
      Table.map_items
        (fun item -> Atomic.to_item (Atomic.atomize env.coll item))
        (eval1 ())
  | "number", 1 ->
      Table.map_items
        (fun item ->
          Atomic.to_item (Atomic.to_number (Atomic.atomize env.coll item)))
        (eval1 ())
  | ("name" | "local-name"), 1 ->
      let t = eval1 () in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s =
            match singleton_of name (Table.sequence_of_iter t iter) with
            | None -> ""
            | Some (Item.Node n) ->
                let doc = Collection.doc env.coll n.Collection.doc_id in
                Option.value ~default:"" (Doc.name_of doc n.Collection.pre)
            | Some (Item.Attribute (_, a, _)) -> a
            | Some _ -> Err.raisef "%s(): not a node" name
          in
          rows := (iter, Item.Str s) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "concat", _ when argc >= 2 ->
      let tables = List.map (eval env) args in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let parts =
            List.map
              (fun t ->
                match singleton_of "concat" (Table.sequence_of_iter t iter) with
                | None -> ""
                | Some item -> Atomic.string_value env.coll item)
              tables
          in
          rows := (iter, Item.Str (String.concat "" parts)) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "string-join", 2 ->
      let t = eval1 () and sep_t = eval env (arg 1) in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let sep =
            match
              singleton_of "string-join" (Table.sequence_of_iter sep_t iter)
            with
            | None -> ""
            | Some item -> Atomic.string_value env.coll item
          in
          let parts =
            List.map (Atomic.string_value env.coll)
              (Table.sequence_of_iter t iter)
          in
          rows := (iter, Item.Str (String.concat sep parts)) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "contains", 2 | "starts-with", 2 ->
      let t1 = eval1 () and t2 = eval env (arg 1) in
      let g1 = per_iter_strings t1 and g2 = per_iter_strings t2 in
      let mask =
        Array.map
          (fun iter ->
            let s1 = Option.value ~default:"" (g1 iter) in
            let s2 = Option.value ~default:"" (g2 iter) in
            let contains hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec scan i =
                i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1))
              in
              nn = 0 || scan 0
            in
            if name = "contains" then contains s1 s2
            else
              String.length s2 <= String.length s1
              && String.sub s1 0 (String.length s2) = s2)
          env.loop
      in
      bool_table env mask
  | "string-length", 1 ->
      let t = eval1 () in
      let g = per_iter_strings t in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s = Option.value ~default:"" (g iter) in
          rows := (iter, Item.Int (Int64.of_int (String.length s))) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "substring", (2 | 3) ->
      let t = eval1 () and start_t = eval env (arg 1) in
      let len_t = if argc = 3 then Some (eval env (arg 2)) else None in
      let g = per_iter_strings t in
      let num t iter =
        match singleton_of "substring" (Table.sequence_of_iter t iter) with
        | None -> Err.raisef "substring: missing argument"
        | Some item -> (
            match Atomic.to_number (Atomic.atomize env.coll item) with
            | Atomic.A_int i -> Int64.to_int i
            | Atomic.A_float f -> int_of_float (Float.round f)
            | _ -> assert false)
      in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s = Option.value ~default:"" (g iter) in
          let start = max 1 (num start_t iter) in
          let len =
            match len_t with
            | None -> String.length s - start + 1
            | Some t -> num t iter
          in
          let lo = start - 1 in
          let len = max 0 (min len (String.length s - lo)) in
          let sub = if lo >= String.length s then "" else String.sub s lo len in
          rows := (iter, Item.Str sub) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | ("sum" | "min" | "max" | "avg"), 1 ->
      let t = eval1 () in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let nums =
            List.map
              (fun item -> Atomic.to_number (Atomic.atomize env.coll item))
              (Table.sequence_of_iter t iter)
          in
          let float_of = function
            | Atomic.A_int i -> Int64.to_float i
            | Atomic.A_float f -> f
            | _ -> assert false
          in
          match (name, nums) with
          | "sum", [] -> rows := (iter, Item.Int 0L) :: !rows
          | _, [] -> ()
          | "sum", nums ->
              let all_int =
                List.for_all (function Atomic.A_int _ -> true | _ -> false) nums
              in
              if all_int then
                let s =
                  List.fold_left
                    (fun acc -> function
                      | Atomic.A_int i -> Int64.add acc i
                      | _ -> acc)
                    0L nums
                in
                rows := (iter, Item.Int s) :: !rows
              else
                let s = List.fold_left (fun acc n -> acc +. float_of n) 0.0 nums in
                rows := (iter, Item.Float s) :: !rows
          | "avg", nums ->
              let s = List.fold_left (fun acc n -> acc +. float_of n) 0.0 nums in
              rows := (iter, Item.Float (s /. float_of_int (List.length nums))) :: !rows
          | op, first :: rest ->
              let better a b =
                let c = Float.compare (float_of a) (float_of b) in
                if op = "min" then c <= 0 else c >= 0
              in
              let best =
                List.fold_left (fun acc n -> if better acc n then acc else n) first rest
              in
              rows := (iter, Atomic.to_item best) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | ("abs" | "floor" | "ceiling" | "round"), 1 ->
      let t = eval1 () in
      Table.map_items
        (fun item ->
          match Atomic.to_number (Atomic.atomize env.coll item) with
          | Atomic.A_int i ->
              Item.Int (if name = "abs" then Int64.abs i else i)
          | Atomic.A_float f ->
              let g =
                match name with
                | "abs" -> Float.abs f
                | "floor" -> Float.floor f
                | "ceiling" -> Float.ceil f
                | _ -> Float.round f
              in
              Item.Float g
          | _ -> assert false)
        t
  | "normalize-space", 1 ->
      let t = eval1 () in
      let g = per_iter_strings t in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s = Option.value ~default:"" (g iter) in
          let words =
            String.split_on_char ' '
              (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
            |> List.filter (fun w -> String.length w > 0)
          in
          rows := (iter, Item.Str (String.concat " " words)) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "translate", 3 ->
      let t = eval1 () and from_t = eval env (arg 1) and to_t = eval env (arg 2) in
      let g = per_iter_strings t
      and gf = per_iter_strings from_t
      and gt = per_iter_strings to_t in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let s = Option.value ~default:"" (g iter) in
          let from_s = Option.value ~default:"" (gf iter) in
          let to_s = Option.value ~default:"" (gt iter) in
          let buf = Buffer.create (String.length s) in
          String.iter
            (fun c ->
              match String.index_opt from_s c with
              | None -> Buffer.add_char buf c
              | Some i ->
                  if i < String.length to_s then Buffer.add_char buf to_s.[i])
            s;
          rows := (iter, Item.Str (Buffer.contents buf)) :: !rows)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "reverse", 1 ->
      let t = eval1 () in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          List.iter
            (fun item -> rows := (iter, item) :: !rows)
            (List.rev (Table.sequence_of_iter t iter)))
        env.loop;
      Table.of_rows (List.rev !rows)
  | "subsequence", (2 | 3) ->
      let t = eval1 () and start_t = eval env (arg 1) in
      let len_t = if argc = 3 then Some (eval env (arg 2)) else None in
      let num t iter =
        match singleton_of "subsequence" (Table.sequence_of_iter t iter) with
        | None -> Err.raisef "subsequence: missing argument"
        | Some item -> (
            match Atomic.to_number (Atomic.atomize env.coll item) with
            | Atomic.A_int i -> Int64.to_int i
            | Atomic.A_float f -> int_of_float (Float.round f)
            | _ -> assert false)
      in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let items = Table.sequence_of_iter t iter in
          let start = num start_t iter in
          let len =
            match len_t with None -> List.length items | Some t -> num t iter
          in
          List.iteri
            (fun i item ->
              let pos = i + 1 in
              if pos >= start && pos < start + len then
                rows := (iter, item) :: !rows)
            items)
        env.loop;
      Table.of_rows (List.rev !rows)
  | "index-of", 2 ->
      let t = eval1 () and needle_t = eval env (arg 1) in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          match
            singleton_of "index-of" (Table.sequence_of_iter needle_t iter)
          with
          | None -> ()
          | Some needle ->
              let nv = Atomic.atomize env.coll needle in
              List.iteri
                (fun i item ->
                  let ok =
                    try
                      Atomic.compare_atomics Atomic.Ceq
                        (Atomic.atomize env.coll item) nv
                    with Err.Error _ -> false
                  in
                  if ok then
                    rows := (iter, Item.Int (Int64.of_int (i + 1))) :: !rows)
                (Table.sequence_of_iter t iter))
        env.loop;
      Table.of_rows (List.rev !rows)
  | "distinct-values", 1 ->
      let t = eval1 () in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let seen = Hashtbl.create 8 in
          List.iter
            (fun item ->
              let a = Atomic.atomize env.coll item in
              let key = Atomic.atomic_to_string a in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                rows := (iter, Atomic.to_item a) :: !rows
              end)
            (Table.sequence_of_iter t iter))
        env.loop;
      Table.of_rows (List.rev !rows)
  | ("standoff-start" | "standoff-end"), 1 ->
      (* Region accessors: the extent bounds of a node's area under the
         current standoff configuration. *)
      let t = eval1 () in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          match singleton_of name (Table.sequence_of_iter t iter) with
          | None -> ()
          | Some item -> (
              match area_of_item env item with
              | None -> ()
              | Some (_, area) ->
                  let extent = Standoff_interval.Area.extent area in
                  let v =
                    if name = "standoff-start" then
                      Standoff_interval.Region.start_pos extent
                    else Standoff_interval.Region.end_pos extent
                  in
                  rows := (iter, Item.Int v) :: !rows))
        env.loop;
      Table.of_rows (List.rev !rows)
  | ("standoff-contains" | "standoff-overlaps"), 2 ->
      (* The paper's §3.1 predicates between two area-annotations,
         honouring non-contiguous areas. *)
      let t1 = eval1 () and t2 = eval env (arg 1) in
      let mask =
        Array.map
          (fun iter ->
            match
              ( singleton_of name (Table.sequence_of_iter t1 iter),
                singleton_of name (Table.sequence_of_iter t2 iter) )
            with
            | Some a, Some b -> (
                match (area_of_item env a, area_of_item env b) with
                | Some (_, area_a), Some (_, area_b) ->
                    if name = "standoff-contains" then
                      Standoff_interval.Area.contains area_a area_b
                    else Standoff_interval.Area.overlaps area_a area_b
                | _ -> false)
            | _ -> false)
          env.loop
      in
      bool_table env mask
  | "standoff-relation", 2 ->
      (* The exact Allen relation between the two annotations' extents
         (per Allen 1983; the 13 relations of §3). *)
      let t1 = eval1 () and t2 = eval env (arg 1) in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          match
            ( singleton_of name (Table.sequence_of_iter t1 iter),
              singleton_of name (Table.sequence_of_iter t2 iter) )
          with
          | Some a, Some b -> (
              match (area_of_item env a, area_of_item env b) with
              | Some (_, area_a), Some (_, area_b) ->
                  let rel =
                    Standoff_interval.Allen.classify
                      (Standoff_interval.Area.extent area_a)
                      (Standoff_interval.Area.extent area_b)
                  in
                  rows :=
                    (iter, Item.Str (Standoff_interval.Allen.to_string rel))
                    :: !rows
              | _ -> ())
          | _ -> ())
        env.loop;
      Table.of_rows (List.rev !rows)
  | "standoff-snippet", 2 ->
      (* The BLOB content under a node's area: the regions are read in
         order and concatenated (re-assembling non-contiguous areas). *)
      let t = eval1 () and blob_t = eval env (arg 1) in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          match
            ( singleton_of name (Table.sequence_of_iter t iter),
              singleton_of name (Table.sequence_of_iter blob_t iter) )
          with
          | Some item, Some blob_name -> (
              match area_of_item env item with
              | None -> ()
              | Some (_, area) -> (
                  let blob_name = Atomic.string_value env.coll blob_name in
                  match Collection.blob env.coll blob_name with
                  | None -> Err.raisef "standoff-snippet: no blob %S" blob_name
                  | Some blob ->
                      rows :=
                        (iter,
                         Item.Str (Standoff_store.Blob.read_area blob area))
                        :: !rows))
          | _ -> ())
        env.loop;
      Table.of_rows (List.rev !rows)
  | _ -> Err.raisef "unknown function %s/%d" name argc

(* Function form of the StandOff joins with an explicit candidate
   sequence (Figure 3).  [Plan.lower] already unified the
   no-candidates form with the axis form, so only the explicit case
   lands here. *)
and standoff_function env ?span ~strategy_choice op test ctx cand_table =
  (* Restrict per document to the explicit candidate nodes. *)
  let by_doc : (int, int Vec.t) Hashtbl.t = Hashtbl.create 4 in
  for r = 0 to Table.row_count cand_table - 1 do
    match Table.item_at cand_table r with
    | Item.Node n ->
        let v =
          match Hashtbl.find_opt by_doc n.Collection.doc_id with
          | Some v -> v
          | None ->
              let v = Vec.create () in
              Hashtbl.add by_doc n.Collection.doc_id v;
              v
        in
        Vec.push v n.Collection.pre
    | item -> Err.raisef "%s: candidate is not a node" (Item.to_string item)
  done;
  let sorted_by_doc = Hashtbl.create 4 in
  Hashtbl.iter
    (fun doc_id v ->
      let ids = Vec.to_array v in
      Array.sort compare ids;
      Hashtbl.add sorted_by_doc doc_id ids)
    by_doc;
  (* Select ops: intersect with the candidate set.  Reject ops need
     the join re-run against the candidate set, since rejecting is
     relative to S2. *)
  match op with
  | Op.Select_narrow | Op.Select_wide ->
      let unrestricted =
        standoff_step env ?span ~strategy_choice ~pushdown:false op test ctx
      in
      Table.filter
        (fun item ->
          match item with
          | Item.Node n -> (
              match Hashtbl.find_opt sorted_by_doc n.Collection.doc_id with
              | Some ids -> Search.mem_sorted_int ids n.Collection.pre
              | None -> false)
          | _ -> false)
        unrestricted
  | Op.Reject_narrow | Op.Reject_wide ->
      (* reject(S1, S2) = S2 minus select(S1, S2): compute the
         matching semi-join and complement within S2, per
         iteration. *)
      let selected =
        standoff_function env ?span ~strategy_choice (Op.select_of op) test ctx
          cand_table
      in
      let rows = ref [] in
      Array.iter
        (fun iter ->
          let matched = Table.sequence_of_iter selected iter in
          List.iter
            (fun item ->
              (* Keep candidates that are area-annotations and did
                 not match. *)
              match item with
              | Item.Node n ->
                  let doc = Collection.doc env.coll n.Collection.doc_id in
                  let annots =
                    Catalog.annots ?pool:env.pool env.catalog env.config doc
                  in
                  if
                    Standoff.Annots.is_annotation annots n.Collection.pre
                    && not (List.exists (Item.equal item) matched)
                  then rows := (iter, item) :: !rows
              | _ -> ())
            (Table.sequence_of_iter cand_table iter))
        env.loop;
      Table.distinct_doc_order (Table.of_rows (List.rev !rows))
