(** The loop-lifted evaluator over {!Plan.t} physical plans.

    Plans evaluate to {!Standoff_relalg.Table.t} sequence tables over
    the current loop relation, exactly as in the Pathfinder
    translation the paper builds on (§4.1): a [for] clause expands the
    binding sequence into a fresh inner loop, variables are lifted
    through the map relation, and the return value is mapped back.
    Axis steps — including the four StandOff joins — therefore receive
    the context of {e all} iterations at once, which is what lets the
    {!Standoff.Config.Loop_lifted} strategy answer them in a single
    merge-join sweep while the other strategies are re-invoked per
    iteration.

    The physical operators honour the plan's decisions: fused
    positional predicates, candidate pushdown on StandOff joins, and
    per-operator strategy choice ([S_auto] resolves against the
    engine-wide override, if any, else from {!Standoff.Annots}
    statistics per document).  With a {!Standoff_obs.Trace} collector
    attached, every plan-node evaluation opens a span tagged with the
    node id and row counts, which EXPLAIN ANALYZE aggregates. *)

type env = {
  coll : Standoff_store.Collection.t;
  catalog : Standoff.Catalog.t;
  config : Standoff.Config.t;
  strategy : Standoff.Config.strategy option;
      (** engine-wide strategy override; [None] = per-operator auto *)
  deadline : Standoff_util.Timing.deadline;
  trace : Standoff_obs.Trace.t option;
      (** span collector; single-domain, so only the domain that called
          [Engine.run_prepared] may evaluate under it *)
  span : Standoff_obs.Trace.span option;
      (** the span of the plan node currently evaluating *)
  loop : int array;
  vars : (string * Standoff_relalg.Table.t) list;
  focus : focus option;
  functions : (string, Plan.function_def) Hashtbl.t;
  depth : int;  (** user-function inlining depth (recursion guard) *)
  pool : Standoff_util.Pool.t option;
      (** domain pool for parallel joins, index builds and per-document
          sharding; [None] is the (bit-identical) sequential path *)
}

and focus = {
  f_item : Standoff_relalg.Table.t;
  f_pos : Standoff_relalg.Table.t;
  f_last : Standoff_relalg.Table.t;
}

(** [initial_env ~coll ~catalog ~config ~strategy ~deadline ~functions
    ~context ()] is the single-iteration top-level environment;
    [context], when given, becomes the initial context item (used for
    queries with leading [/] paths). *)
val initial_env :
  coll:Standoff_store.Collection.t ->
  catalog:Standoff.Catalog.t ->
  config:Standoff.Config.t ->
  strategy:Standoff.Config.strategy option ->
  ?trace:Standoff_obs.Trace.t ->
  ?pool:Standoff_util.Pool.t ->
  deadline:Standoff_util.Timing.deadline ->
  functions:(string, Plan.function_def) Hashtbl.t ->
  context:Standoff_relalg.Item.t option ->
  unit ->
  env

(** [eval env plan] evaluates [plan] under [env].
    @raise Err.Error on dynamic errors
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val eval : env -> Plan.t -> Standoff_relalg.Table.t
