(** Pretty-printing of the AST back to query surface syntax.

    The output re-parses to the same AST (tested as a fixpoint
    property), which makes it usable both as an [explain] facility —
    showing how the parser desugared a query (abbreviated steps,
    predicate loops, where clauses) — and as a debugging aid. *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val expr_to_string : Ast.expr -> string

(** [decl_to_string d] renders one prolog declaration (used by
    [Engine.explain] above the plan tree). *)
val decl_to_string : Ast.prolog_decl -> string

(** [query_to_string q] includes the prolog declarations. *)
val query_to_string : Ast.query -> string
