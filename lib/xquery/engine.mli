(** The query engine façade: parse a query, process its prolog
    ([declare option standoff-*], [declare function], [declare
    variable]), lower it to a {!Plan.t}, optimize, and evaluate it
    against a document collection.

    The pipeline is parse -> {!Plan.lower} -> {!Optimize.optimize} ->
    {!Eval.eval}.  {!prepare} runs the front half once and returns a
    reusable {!prepared} query; {!run} is the one-shot composition.

    Strategy selection is per StandOff operator: with no engine-wide
    override ([create] without [?strategy], no prolog
    [declare option standoff-strategy], no [?strategy] argument) each
    join resolves its own strategy from annotation statistics at run
    time.  An override pins every operator, which is what the paper's
    Figure 6 strategy sweeps use.

    Nodes constructed by element constructors live in scratch documents
    registered in the collection.  By default they stay alive so the
    returned node handles remain valid; callers that run many queries
    (the benchmark harness) pass [rollback_constructed:true] or use
    {!run_with_timeout}, which always rolls back, and consume results
    through [serialized]. *)

type t

(** Query caching levels.  [Cache_plan] reuses prepared plans across
    {!run} calls with the same text and effective strategy (parse +
    optimize are skipped).  [Cache_result] additionally serves
    byte-identical results for repeat runs, keyed on (plan fingerprint,
    context document, document-uid set) and stamped with the
    catalogue's invalidation version — any [Update.*] /
    {!Standoff.Catalog.invalidate} expires every earlier entry, so a
    cached result can never survive an update.  Runs that construct
    nodes are never result-cached (their items would dangle after
    rollback).  [Cache_result] implies plan caching. *)
type cache_mode = Cache_off | Cache_plan | Cache_result

(** [cache_mode_of_string s] parses ["off" | "plan" | "result"] (plus
    common boolean spellings; ["on"] means [Cache_result]).
    @raise Invalid_argument on anything else. *)
val cache_mode_of_string : string -> cache_mode

val cache_mode_to_string : cache_mode -> string

(** [default_cache_mode ()] is [STANDOFF_CACHE] from the environment,
    else [Cache_off]. *)
val default_cache_mode : unit -> cache_mode

(** [default_dataguide ()] is [false] when [STANDOFF_DATAGUIDE] is set
    to ["off"], ["0"], ["false"] or ["no"] in the environment, else
    [true] — the DataGuide path index defaults on. *)
val default_dataguide : unit -> bool

(** [create ?strategy ?jobs ?slow_ms ?cache ?dataguide coll] wraps a
    collection.
    Without [strategy], each StandOff operator picks its own strategy
    from annotation statistics ({!Standoff.Join.auto_strategy}).
    [jobs] (default {!Standoff.Config.default_jobs}, i.e.
    [STANDOFF_JOBS] or 0) caps the parallelism of query execution:
    with [jobs = 1] every run takes the exact sequential code path;
    with more, runs submit to the process-wide work-stealing scheduler
    ({!Standoff_util.Pool}) driving parallel merge sweeps, index
    builds, and per-document sharding.  [jobs = 0] means {e adaptive}:
    each run is sized from its plan's cost estimate
    ({!Optimize.estimate_cost}) — cheap requests run sequentially,
    expensive ones scale up to {!Standoff_util.Pool.max_parallelism} —
    so concurrent requests share the domain budget instead of each
    claiming a fixed slice.  [slow_ms]
    is the slow-query-log threshold in milliseconds (default:
    [STANDOFF_SLOW_MS], else disabled); runs at least that slow are
    recorded in {!Standoff_obs.Slow_log}.  [cache] (default:
    [STANDOFF_CACHE], else {!Cache_off}) selects the caching level;
    the result cache's byte budget is 64 MiB, overridable with
    [STANDOFF_CACHE_MB].  [dataguide] (default: {!default_dataguide},
    i.e. [STANDOFF_DATAGUIDE], else on) enables the DataGuide path
    index: downward child/descendant name paths collapse into single
    index probes and the optimizer's statistics answer from per-path
    cardinalities — a pure performance knob, results are
    byte-identical either way. *)
val create :
  ?strategy:Standoff.Config.strategy ->
  ?jobs:int ->
  ?slow_ms:float ->
  ?cache:cache_mode ->
  ?dataguide:bool ->
  Standoff_store.Collection.t ->
  t

(** [cache_mode t] is the engine's caching level. *)
val cache_mode : t -> cache_mode

(** [set_cache_mode t m] reconfigures the caching level.  Existing
    entries stay (they are keyed and stamped safely either way); they
    are simply not consulted while the relevant level is off. *)
val set_cache_mode : t -> cache_mode -> unit

(** [plan_cache_stats t] / [result_cache_stats t] are exact per-engine
    hit/miss/eviction/size snapshots ({!Standoff_cache.Lru.stats});
    the same numbers are exported process-wide through
    {!Standoff_obs.Metrics} as [standoff_cache_*{cache="plan"}] and
    [standoff_cache_*{cache="result"}]. *)
val plan_cache_stats : t -> Standoff_cache.Lru.stats

val result_cache_stats : t -> Standoff_cache.Lru.stats

(** [jobs t] is the configured parallelism cap; [0] means adaptive. *)
val jobs : t -> int

(** [set_jobs t n] reconfigures the parallelism (clamped to >= 0;
    [0] selects adaptive sizing). *)
val set_jobs : t -> int -> unit

(** [slow_ms t] is the slow-query-log threshold, if any. *)
val slow_ms : t -> float option

(** [set_slow_ms t ms] reconfigures the slow-query-log threshold;
    [None] disables logging. *)
val set_slow_ms : t -> float option -> unit

(** [dataguide t] is the engine-wide DataGuide default. *)
val dataguide : t -> bool

(** [set_dataguide t b] reconfigures the engine-wide DataGuide
    default.  Already-cached plans keep the flag they were prepared
    under (the plan-cache key includes it). *)
val set_dataguide : t -> bool -> unit

(** [shutdown _] parks the process-wide scheduler's worker domains
    ({!Standoff_util.Pool.park}).  All engines share the one worker
    set, so this affects them all — harmlessly: a run submitting
    during the teardown completes on its own domain, and workers
    respawn on the next parallel run.  Call it when going quiet
    (domains are a bounded OS resource). *)
val shutdown : t -> unit

(** [collection t] is the underlying collection. *)
val collection : t -> Standoff_store.Collection.t

(** [catalog t] is the annotation catalogue (region indexes). *)
val catalog : t -> Standoff.Catalog.t

(** [set_on_update t hook] installs (or clears) the durability hook:
    it receives the self-contained WAL record of every successful
    in-place update made through {!set_region} /
    {!shift_annotations}.  The server points it at
    [Standoff.Durable.log]. *)
val set_on_update : t -> (Standoff_store.Wal.op -> unit) option -> unit

(** [set_region t config doc ~pre region] is
    {!Standoff.Update.set_region} on the engine's catalogue, followed —
    only on success — by the durability hook.  The caller provides
    write exclusion, exactly as with [Update.set_region]. *)
val set_region :
  t ->
  Standoff.Config.t ->
  Standoff_store.Doc.t ->
  pre:int ->
  Standoff_interval.Region.t ->
  unit

(** [shift_annotations t config doc ~from ~by] — as {!set_region}, for
    {!Standoff.Update.shift_annotations}.  Returns the number of
    annotations moved; a no-op shift (0 moved) is not logged. *)
val shift_annotations :
  t ->
  Standoff.Config.t ->
  Standoff_store.Doc.t ->
  from:int64 ->
  by:int64 ->
  int

(** [ingest t docs blobs] adds a whole batch of new documents and
    blobs to the collection at once — the bulk-load fast path.  The
    batch is validated first (duplicate names within the batch or
    against the collection raise [Invalid_argument] before anything is
    mutated), then every document's region index (under [?config],
    default {!Standoff.Config.default}) and DataGuide are built once,
    the catalogue version is bumped {e once}, and the durability hook
    receives {e one} batched {!Standoff_store.Wal.Ingest} record — so
    ingesting N documents costs one invalidation and one WAL fsync,
    not N.  Returns the number of documents added.  The caller
    provides write exclusion, as with the other updates. *)
val ingest :
  t ->
  ?config:Standoff.Config.t ->
  Standoff_store.Doc.t list ->
  (string * string) list ->
  int

(** [set_strategy t s] pins the engine-wide strategy. *)
val set_strategy : t -> Standoff.Config.strategy -> unit

(** [set_auto_strategy t] removes the engine-wide pin, returning to
    per-operator selection. *)
val set_auto_strategy : t -> unit

(** Everything a query run produces. *)
type result = {
  items : Standoff_relalg.Item.t list;
  serialized : string;  (** materialized before constructed nodes are
                            rolled back *)
  config : Standoff.Config.t;  (** the configuration after the prolog *)
  trace : Standoff_obs.Trace.span option;
      (** the closed root span of the run, when tracing was on *)
}

(** A parsed, lowered, optimized query, ready to evaluate any number
    of times. *)
type prepared

(** The optimized body plan (for tests and plan inspection). *)
val prepared_plan : prepared -> Plan.t

(** The configuration the prolog produced. *)
val prepared_config : prepared -> Standoff.Config.t

(** [prepared_constructs p] holds when evaluating [p] may register
    scratch documents in the collection (an element constructor occurs
    in the body, a global variable, or any declared function — the
    function check is conservative: declared-but-uncalled constructors
    still count).  Concurrent callers (the HTTP server) use it to give
    constructing runs exclusive collection access, so one run's
    checkpoint/rollback pair can never truncate another's scratch
    documents. *)
val prepared_constructs : prepared -> bool

(** [prepare t ?strategy ?optimize ?dataguide ?trace query] parses
    [query] and lowers it to a plan.  With [optimize:false] (default
    [true]) the optimizer pass is skipped and the structural lowering
    is evaluated as-is — the direct path, used to validate rewrites.
    [dataguide] overrides the engine-wide DataGuide default for this
    preparation only (collapse rewrite + per-path statistics); it
    never changes results.  With [trace], the parse and
    lowering/optimize phases are recorded as ["parse"] and
    ["optimize"] spans.  When the engine caches plans ({!cache_mode}
    other than [Cache_off]), a repeat [prepare] with the same text,
    effective strategy, [optimize] and [dataguide] flags returns the
    cached prepared query and records no parse/optimize spans.
    @raise Err.Error on static errors
    @raise Lexer.Syntax_error on parse errors. *)
val prepare :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?optimize:bool ->
  ?dataguide:bool ->
  ?trace:Standoff_obs.Trace.t ->
  string ->
  prepared

(** [run_prepared t ?deadline ?context_doc ?rollback_constructed
    ?trace prepared] evaluates a prepared query.  [context_doc]
    names the document that leading [/] paths refer to.  With [trace]
    (or [STANDOFF_TRACE=1] in the environment) the run produces a span
    tree — ["eval"] and ["serialize"] phase spans, one span per plan
    operator evaluated — returned closed as [result.trace]; a run
    killed by {!Standoff_util.Timing.Deadline_exceeded} still leaves
    the collector holding a well-formed partial trace.  Every run
    updates the engine metrics and, past the [slow_ms] threshold, the
    slow-query log.

    Under [Cache_result], a repeat run of the same prepared query on
    the same document set returns the byte-identical cached result
    without evaluating (the trace then holds only a root span whose
    ["cache"] attribute is ["hit"]; on evaluated runs it is ["miss"],
    or ["off"] when the result cache is not consulted).
    [use_cache:false] (default [true]) bypasses the result cache for
    one run — {!explain_analyze} uses it, since it needs the
    evaluation spans.  Cache hits still count in the engine metrics.
    [jobs] overrides the engine-wide parallelism for this run only
    (clamped to [>= 1]); the engine configuration is untouched, so
    concurrent runs with different overrides do not interfere.
    Without an override, an engine in adaptive mode ([jobs t = 0])
    sizes the run from the prepared plan's cost estimate.

    Results are byte-identical across every jobs setting: parallel
    runs merge chunk results in chunk order, so parallelism changes
    timing, never output.

    The deadline covers serialization too: a timeout firing while the
    result is rendered raises like one firing during evaluation, and no
    partial output escapes.

    With [emit], the run {e streams}: the serialized result is handed
    to the callback item by item ({!Serialize.sequence_emit}) instead
    of being materialized, and [result.serialized] is [""].  A result-
    cache hit feeds the cached bytes through [emit] in bounded slices;
    a streamed miss is never inserted into the result cache (its bytes
    were handed away).  A deadline firing mid-stream raises after a
    clean prefix has been emitted — the caller owns signalling
    truncation (the HTTP server's chunked encoding does it by omitting
    the terminator).
    @raise Err.Error on dynamic errors
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val run_prepared :
  t ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?context_doc:string ->
  ?rollback_constructed:bool ->
  ?use_cache:bool ->
  ?jobs:int ->
  ?emit:(string -> unit) ->
  ?trace:Standoff_obs.Trace.t ->
  prepared ->
  result

(** [run t ?strategy ?deadline ?context_doc query] is {!prepare}
    composed with {!run_prepared}.
    @raise Err.Error on static/dynamic errors
    @raise Lexer.Syntax_error on parse errors
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val run :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?context_doc:string ->
  ?rollback_constructed:bool ->
  ?trace:Standoff_obs.Trace.t ->
  string ->
  result

(** [run_prepared_sharded t ?deadline ?rollback_constructed prepared]
    fans a prepared query out across every document of the collection
    — one shard per document, the shard's document root as context
    item — and concatenates the shard results in collection order.
    Shards run in parallel on the shared scheduler when the engine's
    effective jobs (configured, or adaptive from plan cost) exceeds 1.
    StandOff steps match only nodes from the same fragment (§3.3), so
    for document-scoped queries this is semantics-preserving.  A
    single checkpoint brackets the fan-out; with
    [rollback_constructed:true] all shards' constructed documents are
    dropped together at the end.  Sharded runs evaluate inside pool
    workers and are therefore never traced ([result.trace = None]).
    Under [Cache_result] sharded runs hit the result cache too, under
    a key distinct from the unsharded form of the same query. *)
val run_prepared_sharded :
  t ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?rollback_constructed:bool ->
  prepared ->
  result

(** [explain t query] renders the optimized physical plan: prolog
    declarations, then the plan trees of user functions, global
    variables, and the query body, with candidate-pushdown and
    strategy decisions visible on every StandOff join.  Evaluates
    nothing.  [optimize:false] shows the raw lowering instead;
    [dataguide:false] shows the plan without path collapse. *)
val explain :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?optimize:bool ->
  ?dataguide:bool ->
  string ->
  string

(** [explain_analyze t query] runs the query under a trace collector,
    aggregates the span tree into per-node {!Plan.analysis} records,
    and renders the plan annotated with per-operator call counts, row
    cardinalities, region-index rows scanned, resolved strategies, and
    inclusive wall times.  Constructed nodes are rolled back.  The
    result cache is bypassed (a hit evaluates nothing and would render
    every operator "(not executed)"). *)
val explain_analyze :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?dataguide:bool ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?context_doc:string ->
  string ->
  string

(** [run_with_timeout t ?strategy ?context_doc ~seconds query] is
    {!run} under a wall-clock budget, reporting DNF as
    [Timed_out] — the protocol of the paper's Figure 6. *)
val run_with_timeout :
  t ->
  ?strategy:Standoff.Config.strategy ->
  ?context_doc:string ->
  ?trace:Standoff_obs.Trace.t ->
  seconds:float ->
  string ->
  result Standoff_util.Timing.outcome
