(* The rule-based plan optimizer.  One bottom-up pass applies:

   - constant folding (arithmetic, comparisons, unary minus, constant
     conditionals, singleton-sequence flattening), using the same
     {!Atomic} semantics the evaluator applies at run time — rules
     whose runtime behaviour is an error (division by zero,
     incomparable types) are left in place so the error still occurs;

   - step/filter fusion: a literal positional predicate on an axis
     step or StandOff join becomes the operator's fused [position]
     ([$b/select-narrow::bidder[1]] executes as one step), and a
     [self::name] predicate on an unnamed step becomes its name test;

   - node-test pushdown (paper §4.3): a name test on a StandOff join
     restricts the candidate region index before the merge sweep
     instead of post-filtering the join result — unless collection
     statistics say the name covers nearly all annotations, in which
     case restricting the index costs more than it saves;

   - strategy pinning: an engine-wide strategy override (prolog
     [declare option standoff-strategy], CLI [--strategy], benchmark
     sweeps) pins every StandOff operator; otherwise operators stay
     [S_auto] and resolve per call site from {!Standoff.Annots}
     statistics. *)

module Node_test = Standoff_xpath.Node_test
module Axes = Standoff_xpath.Axes
module Config = Standoff.Config
module Catalog = Standoff.Catalog
module Annots = Standoff.Annots
module Collection = Standoff_store.Collection
module Doc = Standoff_store.Doc
module Dataguide = Standoff_store.Dataguide

type stats = {
  st_annotations : unit -> int;
      (** total area-annotations across the collection *)
  st_named : string -> int;  (** total elements with this name *)
  st_path : (bool * string) list -> int;
      (** elements a collapsed path reaches, from the DataGuide *)
}

let no_stats =
  {
    st_annotations = (fun () -> 0);
    st_named = (fun _ -> 0);
    st_path = (fun _ -> 0);
  }

let collection_stats ?(dataguide = false) coll catalog config =
  let annots =
    lazy
      (Collection.fold_docs
         (fun acc _ doc ->
           (* Documents whose region markup is invalid under this
              configuration simply contribute no statistics; touching
              them in a query still reports the error. *)
           match Catalog.annots catalog config doc with
           | a -> Annots.annotation_count a + acc
           | exception Annots.Invalid_region _ -> acc)
         0 coll)
  in
  {
    st_annotations = (fun () -> Lazy.force annots);
    st_named =
      (fun name ->
        Collection.fold_docs
          (fun acc _ doc -> acc + Array.length (Doc.elements_named doc name))
          0 coll);
    st_path =
      (fun steps ->
        if not dataguide then
          (* Guide off: fall back on the final step's name count, the
             same number the step-by-step plan would cost. *)
          match List.rev steps with
          | (_, name) :: _ ->
              Collection.fold_docs
                (fun acc _ doc ->
                  acc + Array.length (Doc.elements_named doc name))
                0 coll
          | [] -> 0
        else
          Collection.fold_docs
            (fun acc _ doc ->
              let generation = Catalog.generation catalog doc.Doc.doc_name in
              let guide = Dataguide.get ~generation doc in
              acc + Dataguide.count doc guide steps)
            0 coll);
  }

(* ------------------------------------------------------------------ *)
(* Constant folding helpers                                           *)

let atomic_of_literal = function
  | Ast.Lit_int i -> Atomic.A_int i
  | Ast.Lit_float f -> Atomic.A_float f
  | Ast.Lit_string s -> Atomic.A_str s

let literal_of_atomic = function
  | Atomic.A_int i -> Some (Ast.Lit_int i)
  | Atomic.A_float f -> Some (Ast.Lit_float f)
  | Atomic.A_str s -> Some (Ast.Lit_string s)
  | Atomic.A_bool _ | Atomic.A_untyped _ -> None

let bool_call b = Plan.make (Plan.Call { name = (if b then "true" else "false"); args = [] })

let arith_of_binop = function
  | Ast.Op_add -> Some Atomic.Add
  | Ast.Op_sub -> Some Atomic.Sub
  | Ast.Op_mul -> Some Atomic.Mul
  | Ast.Op_div -> Some Atomic.Div
  | Ast.Op_idiv -> Some Atomic.Idiv
  | Ast.Op_mod -> Some Atomic.Mod
  | _ -> None

let cmp_of_binop = function
  | Ast.Op_eq -> Some Atomic.Ceq
  | Ast.Op_ne -> Some Atomic.Cne
  | Ast.Op_lt -> Some Atomic.Clt
  | Ast.Op_le -> Some Atomic.Cle
  | Ast.Op_gt -> Some Atomic.Cgt
  | Ast.Op_ge -> Some Atomic.Cge
  | _ -> None

(* The effective boolean value of a plan whose verdict is static:
   literals, true()/false(), and the empty sequence. *)
let static_ebv (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Literal (Ast.Lit_int i) -> Some (not (Int64.equal i 0L))
  | Plan.Literal (Ast.Lit_float f) -> Some (not (f = 0.0 || Float.is_nan f))
  | Plan.Literal (Ast.Lit_string s) -> Some (String.length s > 0)
  | Plan.Call { name = "true"; args = [] } -> Some true
  | Plan.Call { name = "false"; args = [] } -> Some false
  | Plan.Sequence [] -> Some false
  | _ -> None

let fold_binop op (a : Plan.t) (b : Plan.t) =
  match (a.Plan.desc, b.Plan.desc) with
  | Plan.Literal la, Plan.Literal lb -> (
      let xa = atomic_of_literal la and xb = atomic_of_literal lb in
      match arith_of_binop op with
      | Some arith -> (
          match Atomic.arithmetic arith xa xb with
          | v -> Option.map (fun l -> Plan.make (Plan.Literal l)) (literal_of_atomic v)
          | exception Err.Error _ -> None)
      | None -> (
          match cmp_of_binop op with
          | Some cmp -> (
              match Atomic.compare_atomics cmp xa xb with
              | v -> Some (bool_call v)
              | exception Err.Error _ -> None)
          | None -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fusion helpers                                                     *)

let positional_literal (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Literal (Ast.Lit_int k)
    when Int64.compare k 1L >= 0 && Int64.compare k (Int64.of_int max_int) <= 0
    ->
      Some (Int64.to_int k)
  | _ -> None

(* [self::n] as a predicate: keeps exactly the context elements named
   [n]. *)
let self_name_test (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Axis_step
      {
        input = { Plan.desc = Plan.Context_item; _ };
        axis = Axes.Self;
        test = Node_test.Name n;
        position = None;
      } ->
      Some n
  | _ -> None

let unnamed_test = function
  | Node_test.Any | Node_test.Kind_node | Node_test.Kind_element None -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Path collapse (strong DataGuide)                                    *)

(* The base of a collapsible path chain: a source that evaluates to
   document nodes only — the builtin [doc(uri)], the builtin [root(x)]
   (the lowering of a leading [/]) — or an already-collapsed
   [Path_lookup], whose steps the next step extends.  The engine turns
   collapse off altogether when the prolog declares a user function
   named [doc] or [root] (user functions shadow builtins, so the
   document-node guarantee would be gone). *)
let path_base (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Call { name = "doc" | "root"; args = [ _ ] } -> Some (p, [])
  | Plan.Path_lookup { input; steps } -> Some (input, steps)
  | _ -> None

(* [a//b] lowers to [child::b] over [descendant-or-self::node()]; a
   descendant-or-self step directly over a path base contributes the
   pending [//] of the next child step. *)
let desc_or_self_over_base (p : Plan.t) =
  match p.Plan.desc with
  | Plan.Axis_step
      {
        input;
        axis = Axes.Descendant_or_self;
        test = Node_test.Kind_node;
        position = None;
      } ->
      path_base input
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The rewriter                                                       *)

let optimize ?pin_strategy ?(stats = no_stats) ?(dataguide = false) plan =
  let pushdown_pays name =
    let total = stats.st_annotations () in
    (* With no statistics (empty collection) restricting is the safe
       default — it can only shrink the index.  Skip it only when the
       name demonstrably covers nearly all annotations (>80%), where
       building the restricted index costs about as much as the scan
       it saves. *)
    total = 0 || stats.st_named name * 5 < total * 4
  in
  let rec go (p : Plan.t) : Plan.t =
    let p = descend p in
    rewrite p
  and descend (p : Plan.t) =
    let mk desc = Plan.make desc in
    match p.Plan.desc with
    | Plan.Literal _ | Plan.Var _ | Plan.Context_item -> p
    | Plan.Sequence es -> mk (Plan.Sequence (List.map go es))
    | Plan.For { var; pos_var; source; order_by; body } ->
        mk
          (Plan.For
             {
               var;
               pos_var;
               source = go source;
               order_by =
                 List.map
                   (fun s -> { s with Plan.key = go s.Plan.key })
                   order_by;
               body = go body;
             })
    | Plan.Let { var; value; body } ->
        mk (Plan.Let { var; value = go value; body = go body })
    | Plan.Where { cond; body } ->
        mk (Plan.Where { cond = go cond; body = go body })
    | Plan.Quantified { universal; var; source; satisfies } ->
        mk
          (Plan.Quantified
             { universal; var; source = go source; satisfies = go satisfies })
    | Plan.If { cond; then_; else_ } ->
        mk (Plan.If { cond = go cond; then_ = go then_; else_ = go else_ })
    | Plan.Binop (op, a, b) -> mk (Plan.Binop (op, go a, go b))
    | Plan.Unary_minus e -> mk (Plan.Unary_minus (go e))
    | Plan.Axis_step s -> mk (Plan.Axis_step { s with input = go s.input })
    | Plan.Attribute_step s ->
        mk (Plan.Attribute_step { s with input = go s.input })
    | Plan.Path_lookup l -> mk (Plan.Path_lookup { l with input = go l.input })
    | Plan.Standoff_join j ->
        mk
          (Plan.Standoff_join
             {
               j with
               input = go j.input;
               candidates = Option.map go j.candidates;
             })
    | Plan.Filter { input; predicate } ->
        mk (Plan.Filter { input = go input; predicate = go predicate })
    | Plan.Path_map { input; body } ->
        mk (Plan.Path_map { input = go input; body = go body })
    | Plan.Call { name; args } ->
        mk (Plan.Call { name; args = List.map go args })
    | Plan.Elem_ctor { tag; attrs; content } ->
        let part = function
          | Plan.Fixed s -> Plan.Fixed s
          | Plan.Enclosed e -> Plan.Enclosed (go e)
        in
        mk
          (Plan.Elem_ctor
             {
               tag;
               attrs = List.map (fun (n, ps) -> (n, List.map part ps)) attrs;
               content = List.map part content;
             })
  and rewrite (p : Plan.t) : Plan.t =
    match p.Plan.desc with
    (* -------- constant folding -------- *)
    | Plan.Sequence [ e ] -> e
    | Plan.Binop (op, a, b) -> (
        match fold_binop op a b with Some folded -> folded | None -> p)
    | Plan.Unary_minus { Plan.desc = Plan.Literal l; _ } -> (
        match literal_of_atomic (Atomic.negate (atomic_of_literal l)) with
        | Some l' -> Plan.make (Plan.Literal l')
        | None -> p)
    | Plan.If { cond; then_; else_ } -> (
        match static_ebv cond with
        | Some true -> then_
        | Some false -> else_
        | None -> p)
    | Plan.Where { cond; body } -> (
        match static_ebv cond with
        | Some true -> body
        | Some false -> Plan.make (Plan.Sequence [])
        | None -> p)
    (* -------- step/filter fusion -------- *)
    | Plan.Filter
        {
          input = { Plan.desc = Plan.Axis_step ({ position = None; _ } as s); _ };
          predicate;
        }
      when Option.is_some (positional_literal predicate) ->
        Plan.make
          (Plan.Axis_step { s with position = positional_literal predicate })
    | Plan.Filter
        {
          input =
            { Plan.desc = Plan.Standoff_join ({ position = None; _ } as j); _ };
          predicate;
        }
      when Option.is_some (positional_literal predicate) ->
        rewrite
          (Plan.make
             (Plan.Standoff_join
                { j with position = positional_literal predicate }))
    | Plan.Filter
        {
          input = { Plan.desc = Plan.Axis_step ({ position = None; _ } as s); _ };
          predicate;
        }
      when unnamed_test s.test && Option.is_some (self_name_test predicate)
      ->
        Plan.make
          (Plan.Axis_step
             { s with test = Node_test.Name (Option.get (self_name_test predicate)) })
    | Plan.Filter
        {
          input =
            {
              Plan.desc =
                Plan.Standoff_join
                  ({ position = None; candidates = None; _ } as j);
              _;
            };
          predicate;
        }
      when unnamed_test j.test && Option.is_some (self_name_test predicate)
      ->
        rewrite
          (Plan.make
             (Plan.Standoff_join
                {
                  j with
                  test = Node_test.Name (Option.get (self_name_test predicate));
                }))
    (* -------- path collapse (strong DataGuide) -------- *)
    (* A child or descendant name step whose input chain bottoms out
       in a document-node source folds into one [Path_lookup]; the
       pass is bottom-up, so multi-step prefixes collapse
       incrementally: doc(…)/a -> PL[/a], PL[/a]//b -> PL[/a//b].
       Positional steps never collapse (the fused position is
       per-context-node, which the flattened candidate set cannot
       express); [a//b] arrives as child::b over
       descendant-or-self::node(), matched as one descendant step. *)
    | Plan.Axis_step
        { input; axis = Axes.Child; test = Node_test.Name n; position = None }
      when dataguide && Option.is_some (desc_or_self_over_base input) ->
        let root, steps = Option.get (desc_or_self_over_base input) in
        Plan.make (Plan.Path_lookup { input = root; steps = steps @ [ (true, n) ] })
    | Plan.Axis_step
        { input; axis = Axes.Child; test = Node_test.Name n; position = None }
      when dataguide && Option.is_some (path_base input) ->
        let root, steps = Option.get (path_base input) in
        Plan.make
          (Plan.Path_lookup { input = root; steps = steps @ [ (false, n) ] })
    | Plan.Axis_step
        {
          input;
          axis = Axes.Descendant;
          test = Node_test.Name n;
          position = None;
        }
      when dataguide && Option.is_some (path_base input) ->
        let root, steps = Option.get (path_base input) in
        Plan.make (Plan.Path_lookup { input = root; steps = steps @ [ (true, n) ] })
    (* -------- node-test pushdown + strategy pinning -------- *)
    | Plan.Standoff_join j ->
        let pushdown =
          match (j.candidates, Node_test.name_filter j.test) with
          | None, Some name -> pushdown_pays name
          | _ -> j.pushdown
        in
        let strategy =
          match pin_strategy with
          | Some s -> Plan.S_fixed s
          | None -> j.strategy
        in
        if pushdown = j.pushdown && strategy = j.strategy then p
        else Plan.make (Plan.Standoff_join { j with pushdown; strategy })
    | _ -> p
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Cost estimation                                                    *)

(* A coarse work estimate in "rows touched": for every StandOff join,
   the candidate-set size its merge sweep will scan (the named-element
   count when the node test is pushed down into the region index, the
   whole annotation population otherwise), and for every named axis
   step the matching-element count.  The estimate only has to separate
   cheap requests (run sequential, leave domains to concurrent
   requests) from heavy ones (worth a parallel sweep), so additive
   and loop-blind is enough — the loop-lifted strategy amortizes
   iteration counts away by construction. *)
let estimate_cost ~stats plan =
  let total = ref 0 in
  let add n = total := !total + max 0 n in
  let rec go (p : Plan.t) =
    match p.Plan.desc with
    | Plan.Literal _ | Plan.Var _ | Plan.Context_item -> ()
    | Plan.Sequence es -> List.iter go es
    | Plan.For { source; order_by; body; _ } ->
        go source;
        List.iter (fun s -> go s.Plan.key) order_by;
        go body
    | Plan.Let { value; body; _ } ->
        go value;
        go body
    | Plan.Where { cond; body } ->
        go cond;
        go body
    | Plan.Quantified { source; satisfies; _ } ->
        go source;
        go satisfies
    | Plan.If { cond; then_; else_ } ->
        go cond;
        go then_;
        go else_
    | Plan.Binop (_, a, b) ->
        go a;
        go b
    | Plan.Unary_minus e -> go e
    | Plan.Axis_step { input; test; _ } ->
        (match Node_test.name_filter test with
        | Some name -> add (stats.st_named name)
        | None -> ());
        go input
    | Plan.Attribute_step { input; _ } -> go input
    | Plan.Path_lookup { input; steps } ->
        add (stats.st_path steps);
        go input
    | Plan.Standoff_join { input; test; pushdown; candidates; _ } ->
        (match (candidates, Node_test.name_filter test) with
        | None, Some name when pushdown -> add (stats.st_named name)
        | _ -> add (stats.st_annotations ()));
        go input;
        Option.iter go candidates
    | Plan.Filter { input; predicate } ->
        go input;
        go predicate
    | Plan.Path_map { input; body } ->
        go input;
        go body
    | Plan.Call { args; _ } -> List.iter go args
    | Plan.Elem_ctor { attrs; content; _ } ->
        let part = function Plan.Fixed _ -> () | Plan.Enclosed e -> go e in
        List.iter (fun (_, ps) -> List.iter part ps) attrs;
        List.iter part content
  in
  go plan;
  !total
