(** Rule-based rewriter over {!Plan.t}.

    A single bottom-up pass applies constant folding, step/filter
    fusion (positional and [self::name] predicates), node-test
    pushdown into StandOff-join candidate sets (paper §4.3), and
    strategy pinning.  All rewrites are result-preserving. *)

(** Collection statistics consulted by the pushdown rule. *)
type stats = {
  st_annotations : unit -> int;
      (** total area-annotations across the collection *)
  st_named : string -> int;  (** total elements with this name *)
}

(** Statistics that report zero everywhere; pushdown then always
    fires (restricting a candidate index can only shrink it). *)
val no_stats : stats

(** [collection_stats coll catalog config] derives lazy statistics
    from the collection's cached {!Standoff.Annots} tables.  Documents
    whose region markup is invalid under [config] contribute nothing
    (the error still surfaces when a query touches them). *)
val collection_stats :
  Standoff_store.Collection.t -> Standoff.Catalog.t -> Standoff.Config.t -> stats

(** [optimize ?pin_strategy ?stats p] is the rewritten plan.
    [pin_strategy] forces every StandOff operator to that strategy
    (engine-wide override); absent, operators keep their
    {!Plan.strategy_choice}. *)
val optimize :
  ?pin_strategy:Standoff.Config.strategy -> ?stats:stats -> Plan.t -> Plan.t

(** [estimate_cost ~stats p] is a coarse work estimate for evaluating
    [p], in rows touched: per StandOff join, the candidate-set size
    its merge sweep scans (named-element count under pushdown, the
    whole annotation population otherwise); per named axis step, the
    matching-element count.  The engine's adaptive parallelism choice
    thresholds on it — cheap requests run sequential and leave domains
    to concurrent requests. *)
val estimate_cost : stats:stats -> Plan.t -> int
