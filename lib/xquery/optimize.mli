(** Rule-based rewriter over {!Plan.t}.

    A single bottom-up pass applies constant folding, step/filter
    fusion (positional and [self::name] predicates), node-test
    pushdown into StandOff-join candidate sets (paper §4.3), and
    strategy pinning.  All rewrites are result-preserving. *)

(** Collection statistics consulted by the pushdown rule and the cost
    model. *)
type stats = {
  st_annotations : unit -> int;
      (** total area-annotations across the collection *)
  st_named : string -> int;  (** total elements with this name *)
  st_path : (bool * string) list -> int;
      (** elements a collapsed child/descendant path reaches — the
          DataGuide's per-path cardinality when guides are on, the
          final step's name count otherwise *)
}

(** Statistics that report zero everywhere; pushdown then always
    fires (restricting a candidate index can only shrink it). *)
val no_stats : stats

(** [collection_stats ?dataguide coll catalog config] derives lazy
    statistics from the collection's cached {!Standoff.Annots} tables.
    With [dataguide:true], [st_path] answers from each document's
    strong DataGuide ({!Standoff_store.Dataguide}), built lazily at
    the document's current catalogue generation.  Documents whose
    region markup is invalid under [config] contribute nothing (the
    error still surfaces when a query touches them). *)
val collection_stats :
  ?dataguide:bool ->
  Standoff_store.Collection.t ->
  Standoff.Catalog.t ->
  Standoff.Config.t ->
  stats

(** [optimize ?pin_strategy ?stats ?dataguide p] is the rewritten
    plan.  [pin_strategy] forces every StandOff operator to that
    strategy (engine-wide override); absent, operators keep their
    {!Plan.strategy_choice}.  With [dataguide:true] (default [false]),
    consecutive child/descendant name steps rooted at a document-node
    source ([doc(…)], the leading-[/] [root(…)]) collapse into a
    single {!Plan.desc.Path_lookup} answered by the DataGuide; results
    are byte-identical either way. *)
val optimize :
  ?pin_strategy:Standoff.Config.strategy ->
  ?stats:stats ->
  ?dataguide:bool ->
  Plan.t ->
  Plan.t

(** [estimate_cost ~stats p] is a coarse work estimate for evaluating
    [p], in rows touched: per StandOff join, the candidate-set size
    its merge sweep scans (named-element count under pushdown, the
    whole annotation population otherwise); per named axis step, the
    matching-element count.  The engine's adaptive parallelism choice
    thresholds on it — cheap requests run sequential and leave domains
    to concurrent requests. *)
val estimate_cost : stats:stats -> Plan.t -> int
