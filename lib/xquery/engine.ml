module Timing = Standoff_util.Timing
module Pool = Standoff_util.Pool
module Collection = Standoff_store.Collection
module Doc = Standoff_store.Doc
module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table
module Config = Standoff.Config
module Catalog = Standoff.Catalog
module Lru = Standoff_cache.Lru
module Metrics = Standoff_obs.Metrics
module Trace = Standoff_obs.Trace
module Slow_log = Standoff_obs.Slow_log

let m_queries_total =
  Metrics.counter "standoff_queries_total" ~help:"Queries executed"

let m_query_errors_total =
  Metrics.counter "standoff_query_errors_total"
    ~help:"Queries that raised (including deadline kills)"

let m_query_seconds =
  Metrics.histogram "standoff_query_seconds"
    ~buckets:Metrics.duration_buckets ~help:"Wall-clock query latency"

(* ------------------------------------------------------------------ *)
(* Cache modes                                                        *)

type cache_mode = Cache_off | Cache_plan | Cache_result

let cache_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" | "0" | "false" | "no" -> Cache_off
  | "plan" -> Cache_plan
  | "result" | "on" | "1" | "true" | "yes" -> Cache_result
  | s ->
      invalid_arg
        (Printf.sprintf "unknown cache mode %S (expected off | plan | result)"
           s)

let cache_mode_to_string = function
  | Cache_off -> "off"
  | Cache_plan -> "plan"
  | Cache_result -> "result"

let default_cache_mode () =
  match Sys.getenv_opt "STANDOFF_CACHE" with
  | Some s -> cache_mode_of_string s
  | None -> Cache_off

(* The DataGuide path index defaults on; STANDOFF_DATAGUIDE=off turns
   it off process-wide (per-request knobs still override). *)
let default_dataguide () =
  match Sys.getenv_opt "STANDOFF_DATAGUIDE" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "off" | "0" | "false" | "no" -> false
      | _ -> true)
  | None -> true

(* Result-cache byte budget; the entry cap is secondary. *)
let result_cache_bytes () =
  match Sys.getenv_opt "STANDOFF_CACHE_MB" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb -> max 1 mb * 1024 * 1024
      | None -> 64 * 1024 * 1024)
  | None -> 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Prepared queries: parse -> lower -> optimize, once.                *)

type prepared = {
  p_text : string;  (** original query text, for the slow-query log *)
  p_prolog : Ast.prolog_decl list;
  p_plan : Plan.t;
  p_functions : (string, Plan.function_def) Hashtbl.t;
  p_globals : (string * Plan.t) list;
  p_config : Config.t;
  p_strategy : Config.strategy option;
  p_cost : int;
      (** estimated rows touched ({!Optimize.estimate_cost}), taken at
          prepare time; steers the adaptive jobs choice only, so a
          stale estimate under a cached plan can never change results *)
  p_fingerprint : string;
      (** digest of the rendered physical plan + config + strategy;
          the result cache keys on it *)
}

let prepared_plan p = p.p_plan
let prepared_config p = p.p_config

(* Conservative: a call to a constructing user function from a
   non-constructing body still reports [true] (function bodies are
   checked whether called or not), which errs on the safe side for
   callers deciding between shared and exclusive collection access. *)
let prepared_constructs p =
  Plan.constructs p.p_plan
  || List.exists (fun (_, g) -> Plan.constructs g) p.p_globals
  || Hashtbl.fold
       (fun _ fn acc -> acc || Plan.constructs fn.Plan.fn_body)
       p.p_functions false

(* What one result-cache entry stores: everything [run_prepared]
   returns except the trace, which is per-run. *)
type cached_result = {
  cr_items : Item.t list;
  cr_serialized : string;
  cr_config : Config.t;
}

type t = {
  coll : Collection.t;
  cat : Catalog.t;
  mutable strategy : Config.strategy option;
      (* engine-wide override; [None] lets the planner/evaluator pick a
         strategy per operator *)
  mutable jobs : int;
  mutable slow_ms : float option;
      (* slow-query log threshold; [None] disables logging *)
  mutable cache : cache_mode;
  mutable dataguide : bool;
      (* path-collapse rewrite + DataGuide statistics; purely a
         performance knob, results are byte-identical either way *)
  plan_cache : (string, prepared) Lru.t;
      (* keyed on (query text, effective strategy, optimize flag,
         dataguide flag);
         deliberately not generation-stamped — collection statistics
         only steer strategy choice, and all strategies are
         result-equivalent *)
  result_cache : (string, cached_result) Lru.t;
      (* keyed on (plan fingerprint, context, document-uid set),
         stamped with the catalogue version at lookup time *)
  mutable on_update : (Standoff_store.Wal.op -> unit) option;
      (* durability hook: called after each successful in-place update
         with its self-contained WAL record; the server points this at
         [Durable.log] *)
}

let create ?strategy ?jobs ?slow_ms ?cache ?dataguide coll =
  (* [jobs = 0] means adaptive: each request picks its parallelism
     from the prepared plan's cost estimate, clamped to what the
     domain budget has left after external reservations. *)
  let jobs =
    match jobs with Some n -> max 0 n | None -> Config.default_jobs ()
  in
  let slow_ms =
    match slow_ms with Some _ -> slow_ms | None -> Slow_log.env_threshold_ms ()
  in
  let cache =
    match cache with Some c -> c | None -> default_cache_mode ()
  in
  let dataguide =
    match dataguide with Some b -> b | None -> default_dataguide ()
  in
  {
    coll;
    cat = Catalog.create ();
    strategy;
    jobs;
    slow_ms;
    cache;
    dataguide;
    plan_cache =
      Lru.create ~name:"plan" ~max_entries:128
        ~weight:(fun p -> String.length p.p_text + 512)
        ();
    result_cache =
      Lru.create ~name:"result" ~max_entries:1024
        ~max_bytes:(result_cache_bytes ())
        ~weight:(fun r ->
          String.length r.cr_serialized + (64 * List.length r.cr_items) + 128)
        ();
    on_update = None;
  }

let collection t = t.coll
let catalog t = t.cat
let set_strategy t s = t.strategy <- Some s
let set_auto_strategy t = t.strategy <- None
let jobs t = t.jobs
let set_jobs t n = t.jobs <- max 0 n
let slow_ms t = t.slow_ms
let set_slow_ms t ms = t.slow_ms <- ms
let cache_mode t = t.cache
let set_cache_mode t m = t.cache <- m
let dataguide t = t.dataguide
let set_dataguide t b = t.dataguide <- b
let plan_cache_stats t = Lru.stats t.plan_cache
let result_cache_stats t = Lru.stats t.result_cache
let set_on_update t f = t.on_update <- f

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

(* Apply-then-log: the update validates against the live collection
   first (raising [Invalid_argument] exactly as [Update.*] does), and
   only a successful mutation reaches the hook — so a WAL replay can
   never encounter a record the store once rejected.  The caller is
   responsible for write exclusion, as with [Update.*] directly. *)

let notify t op = match t.on_update with None -> () | Some f -> f op

let set_region t config doc ~pre region =
  Standoff.Update.set_region t.cat config doc ~pre region;
  notify t
    (Standoff_store.Wal.Set_region
       {
         doc = doc.Doc.doc_name;
         start_attr = config.Config.start_name;
         end_attr = config.Config.end_name;
         ptype = config.Config.position_type;
         pre;
         start_pos = Standoff_interval.Region.start_pos region;
         end_pos = Standoff_interval.Region.end_pos region;
       })

let shift_annotations t config doc ~from ~by =
  let moved = Standoff.Update.shift_annotations t.cat config doc ~from ~by in
  if moved > 0 then
    notify t
      (Standoff_store.Wal.Shift
         {
           doc = doc.Doc.doc_name;
           start_attr = config.Config.start_name;
           end_attr = config.Config.end_name;
           ptype = config.Config.position_type;
           from;
           by;
         });
  moved

let ingest t ?(config = Standoff.Config.default) docs blobs =
  (* Two passes, like the in-place updates: validate the whole batch
     against the live collection before mutating anything, so a
     conflicting name in the middle of a batch rejects the batch
     whole — no partial ingest ever reaches the store or the WAL. *)
  let coll = t.coll in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d : Doc.t) ->
      let name = d.Doc.doc_name in
      if Hashtbl.mem seen name then
        invalid_arg
          (Printf.sprintf "Engine.ingest: duplicate document %S in batch" name);
      Hashtbl.add seen name ();
      if Standoff_store.Collection.doc_id_of_name coll name <> None then
        invalid_arg
          (Printf.sprintf "Engine.ingest: document %S already exists" name))
    docs;
  let seen_blobs = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen_blobs name then
        invalid_arg
          (Printf.sprintf "Engine.ingest: duplicate blob %S in batch" name);
      Hashtbl.add seen_blobs name ();
      if Standoff_store.Collection.blob coll name <> None then
        invalid_arg (Printf.sprintf "Engine.ingest: blob %S already exists" name))
    blobs;
  List.iter (fun d -> ignore (Standoff_store.Collection.add coll d)) docs;
  List.iter
    (fun (name, contents) ->
      Standoff_store.Collection.add_blob coll
        (Standoff_store.Blob.of_string ~name contents))
    blobs;
  (* Warm the per-document structures while we still hold the batch:
     the region index (through the catalogue, so later queries share
     it) and the DataGuide, each built exactly once per document per
     batch instead of on first query. *)
  List.iter
    (fun (d : Doc.t) ->
      ignore (Standoff.Catalog.annots t.cat config d);
      ignore
        (Standoff_store.Dataguide.get
           ~generation:(Standoff.Catalog.generation t.cat d.Doc.doc_name)
           d))
    docs;
  (* One catalogue-wide version bump and one WAL record for the whole
     batch: ingesting N documents costs one invalidation, not N. *)
  Standoff.Catalog.bump t.cat;
  notify t
    (Standoff_store.Wal.Ingest
       {
         docs =
           List.map
             (fun (d : Doc.t) ->
               (d.Doc.doc_name, Standoff_store.Persist.doc_to_string d))
             docs;
         blobs;
       });
  List.length docs

(* STANDOFF_TRACE=1 forces a trace collector onto every run that was
   not handed one explicitly (CI uses this to catch
   instrumentation-only crashes). *)
let trace_forced () =
  match Sys.getenv_opt "STANDOFF_TRACE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let shutdown _t = Pool.park ()

(* All engines share the one process-wide scheduler; a handle is just
   a parallelism cap.  [None] when sequential, so jobs=1 never even
   consults it. *)
let pool_for jobs = if jobs <= 1 then None else Some (Pool.shared ~jobs)

(* The adaptive jobs choice: threshold the prepared plan's cost
   estimate, then clamp to the parallelism the domain budget has left
   (server workers reserve their share).  The thresholds sit around
   the region index's own parallel-sort threshold (4096 rows) — below
   it, parallel code paths would not even engage. *)
let adaptive_jobs cost =
  let wanted =
    if cost < 4_096 then 1
    else if cost < 16_384 then 2
    else if cost < 65_536 then 4
    else 8
  in
  max 1 (min wanted (Pool.max_parallelism ()))

let effective_jobs t prepared =
  if t.jobs > 0 then t.jobs else adaptive_jobs prepared.p_cost

type result = {
  items : Item.t list;
  serialized : string;
  config : Config.t;
  trace : Trace.span option;
      (* the closed root span of the run, when tracing was on *)
}

(* Prolog processing: fold the standoff-* options into a configuration,
   register user functions, and collect global variables. *)
let process_prolog (q : Ast.query) =
  let functions = Hashtbl.create 8 in
  let config = ref Config.default in
  let strategy_override = ref None in
  let globals = ref [] in
  List.iter
    (function
      | Ast.Decl_option { name; value } -> (
          (* Accept both "standoff-start" and prefixed "so:standoff-start". *)
          let name =
            match String.index_opt name ':' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match name with
          | "standoff-type" ->
              config := Config.set_option !config ~name:"type" ~value
          | "standoff-start" ->
              config := Config.set_option !config ~name:"start" ~value
          | "standoff-end" ->
              config := Config.set_option !config ~name:"end" ~value
          | "standoff-region" ->
              config := Config.set_option !config ~name:"region" ~value
          | "standoff-strategy" ->
              strategy_override := Some (Config.strategy_of_string value)
          | _ -> () (* foreign options are ignored, as the spec requires *))
      | Ast.Decl_namespace _ -> ()
      | Ast.Decl_function fn ->
          if Hashtbl.mem functions fn.Ast.fn_name then
            Err.raisef "function %s declared twice" fn.Ast.fn_name;
          Hashtbl.add functions fn.Ast.fn_name fn
      | Ast.Decl_variable { var; value } -> globals := (var, value) :: !globals)
    q.Ast.prolog;
  (functions, !config, !strategy_override, List.rev !globals)

(* Run [f] under a fresh child span of [trace], when tracing. *)
let phase_span trace name f =
  match trace with
  | None -> f ()
  | Some tr ->
      let sp = Trace.enter tr name in
      Fun.protect ~finally:(fun () -> Trace.exit tr sp) f

let strategy_label = function
  | Some s -> Config.strategy_to_string s
  | None -> "auto"

(* ------------------------------------------------------------------ *)
(* Plan rendering (EXPLAIN), also the basis of the plan fingerprint   *)

let render_prepared ?annotate prepared =
  let decls = List.map Pp_ast.decl_to_string prepared.p_prolog in
  let fn_plans =
    (* Deterministic order for display. *)
    Hashtbl.fold (fun _ fn acc -> fn :: acc) prepared.p_functions []
    |> List.sort (fun a b -> compare a.Plan.fn_name b.Plan.fn_name)
    |> List.map (fun fn ->
           Printf.sprintf "function %s(%s):\n%s" fn.Plan.fn_name
             (String.concat ", "
                (List.map (fun p -> "$" ^ p) fn.Plan.fn_params))
             (Plan.render ?annotate fn.Plan.fn_body))
  in
  let global_plans =
    List.map
      (fun (var, p) ->
        Printf.sprintf "variable $%s:\n%s" var (Plan.render ?annotate p))
      prepared.p_globals
  in
  String.concat "\n"
    (decls @ fn_plans @ global_plans
    @ [ Plan.render ?annotate prepared.p_plan ])

(* Two prepared queries with the same fingerprint evaluate to the same
   result on the same document set: the rendered physical plan pins
   every operator (including candidate pushdown), the configuration
   pins the annotation vocabulary, and the strategy label separates
   pinned runs from auto runs so per-strategy observability (metrics,
   traces) stays truthful even when results would coincide. *)
let fingerprint_of prepared =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            render_prepared prepared;
            Format.asprintf "%a" Config.pp prepared.p_config;
            strategy_label prepared.p_strategy;
          ]))

(* ------------------------------------------------------------------ *)
(* Prepare, behind the plan cache                                     *)

let prepare_uncached t ?strategy ~optimize ~dataguide ?trace query_text =
  let q = phase_span trace "parse" (fun () -> Parse.parse_query query_text) in
  let ast_functions, config, strategy_override, ast_globals =
    process_prolog q
  in
  (* A name declared as a user function shadows the builtin function
     form of the StandOff operators, so lowering must not turn calls to
     it into join nodes. *)
  let is_udf name = Hashtbl.mem ast_functions name in
  (* The path-collapse rewrite treats [doc]/[root] calls as document
     sources; a user function of either name shadows the builtin, so
     collapse must stand down for the whole query. *)
  let dataguide =
    dataguide && not (is_udf "doc") && not (is_udf "root")
  in
  let resolved =
    match (strategy_override, strategy) with
    | Some s, _ -> Some s
    | None, Some s -> Some s
    | None, None -> t.strategy
  in
  (* Statistics steer the optimizer's pushdown rule and the adaptive
     jobs estimate; both are heuristics, so stale numbers can only
     mis-steer performance, never results. *)
  let stats = Optimize.collection_stats ~dataguide t.coll t.cat config in
  let rewrite =
    if optimize then fun plan ->
      Optimize.optimize ?pin_strategy:resolved ~stats ~dataguide plan
    else Fun.id
  in
  let lower e = rewrite (Plan.lower ~is_udf e) in
  phase_span trace "optimize" (fun () ->
      let functions = Hashtbl.create (Hashtbl.length ast_functions) in
      Hashtbl.iter
        (fun name fn ->
          Hashtbl.add functions name
            {
              Plan.fn_name = fn.Ast.fn_name;
              fn_params = fn.Ast.fn_params;
              fn_body = lower fn.Ast.fn_body;
            })
        ast_functions;
      let body = lower q.Ast.body in
      let globals =
        List.map (fun (var, value) -> (var, lower value)) ast_globals
      in
      let cost =
        List.fold_left
          (fun acc (_, g) -> acc + Optimize.estimate_cost ~stats g)
          (Optimize.estimate_cost ~stats body)
          globals
      in
      let p =
        {
          p_text = query_text;
          p_prolog = q.Ast.prolog;
          p_plan = body;
          p_functions = functions;
          p_globals = globals;
          p_config = config;
          p_strategy = resolved;
          p_cost = cost;
          p_fingerprint = "";
        }
      in
      { p with p_fingerprint = fingerprint_of p })

let prepare t ?strategy ?(optimize = true) ?dataguide ?trace query_text =
  let dataguide =
    match dataguide with Some b -> b | None -> t.dataguide
  in
  if t.cache = Cache_off then
    prepare_uncached t ?strategy ~optimize ~dataguide ?trace query_text
  else begin
    (* The key is everything outside the text that steers lowering: the
       effective strategy (the [?strategy] argument, else the engine
       pin — a prolog override is inside the text), the optimize flag,
       and the dataguide flag (it gates the path-collapse rewrite, so
       the physical plan differs).  Not generation-stamped on purpose:
       stale collection statistics can only mis-steer strategy choice,
       never change the result, and replanning on every update would
       defeat the cache. *)
    let effective =
      match strategy with Some _ -> strategy | None -> t.strategy
    in
    let key =
      String.concat "\x00"
        [
          query_text;
          strategy_label effective;
          (if optimize then "opt" else "raw");
          (if dataguide then "dg" else "nodg");
        ]
    in
    match Lru.find t.plan_cache key with
    | Some p -> p
    | None ->
        let p =
          prepare_uncached t ?strategy ~optimize ~dataguide ?trace query_text
        in
        Lru.add t.plan_cache key p;
        p
  end

(* Record a finished run in the engine metrics and, past the
   threshold, the slow-query log.  Runs on success and on error alike
   (the finally of [run_prepared]). *)
let account t prepared trace ~jobs ~seconds ~failed =
  Metrics.incr m_queries_total;
  if failed then Metrics.incr m_query_errors_total;
  Metrics.observe m_query_seconds seconds;
  match t.slow_ms with
  | Some ms when seconds *. 1e3 >= ms ->
      Slow_log.record
        {
          Slow_log.e_at = Timing.now ();
          e_query = prepared.p_text;
          e_seconds = seconds;
          e_strategy = strategy_label prepared.p_strategy;
          e_jobs = jobs;
          e_summary =
            (match trace with Some tr -> Trace.summary tr | None -> "");
        }
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Result cache plumbing                                              *)

(* The document-set component of a result key.  Uids, not names: a
   rollback followed by re-registration under the same name is a
   different document with possibly different content, and must land
   on a different key — names would alias, uids cannot. *)
let docset_digest t =
  let buf = Buffer.create 64 in
  Collection.fold_docs
    (fun () _ d ->
      Buffer.add_string buf (string_of_int d.Doc.doc_uid);
      Buffer.add_char buf ';')
    () t.coll;
  Digest.string (Buffer.contents buf)

let result_key t prepared ~context_doc ~sharded =
  String.concat "\x00"
    [
      prepared.p_fingerprint;
      Option.value ~default:"" context_doc;
      (if sharded then "sharded" else "");
      docset_digest t;
    ]

let set_root_attrs trace prepared ~jobs ~cache =
  match trace with
  | Some tr ->
      let root = Trace.root tr in
      Trace.set_str root "strategy" (strategy_label prepared.p_strategy);
      Trace.set_int root "jobs" jobs;
      Trace.set_str root "cache" cache
  | None -> ()

(* Feed a string already materialized (a cached result) to a streaming
   sink in bounded slices, so the sink's own coalescing buffer never
   has to swallow it whole. *)
let emit_sliced emit s =
  let n = String.length s in
  let step = 65536 in
  let i = ref 0 in
  while !i < n do
    emit (String.sub s !i (min step (n - !i)));
    i := !i + step
  done

let run_prepared t ?(deadline = Timing.no_deadline) ?context_doc
    ?(rollback_constructed = false) ?(use_cache = true) ?jobs ?emit ?trace
    prepared =
  (* [jobs] overrides the engine-wide parallelism for this one run (the
     HTTP server maps a per-request [?jobs=] knob onto it); the engine
     field is left alone so concurrent runs are unaffected.  With no
     override and the engine in adaptive mode ([jobs t = 0]) the run is
     sized from the plan's cost estimate. *)
  let jobs = match jobs with Some n -> max 1 n | None -> effective_jobs t prepared in
  let trace =
    match trace with
    | Some _ -> trace
    | None -> if trace_forced () then Some (Trace.create ()) else None
  in
  let cache_on = use_cache && t.cache = Cache_result in
  (* The key and the generation stamp are both taken before evaluation:
     an update racing the run can only make the stored entry stale
     (its stamp is older than the post-update version), never let a
     pre-update result outlive the update. *)
  let key = if cache_on then Some (result_key t prepared ~context_doc ~sharded:false) else None in
  let generation = if cache_on then Catalog.version t.cat else 0 in
  let hit =
    match key with
    | Some k -> Lru.find t.result_cache ~generation k
    | None -> None
  in
  match hit with
  | Some cr ->
      (* Byte-identical replay: the serialized form (and the items) are
         exactly what the original run produced.  Still a query as far
         as accounting is concerned. *)
      let t0 = Timing.now () in
      set_root_attrs trace prepared ~jobs ~cache:"hit";
      Option.iter (fun tr -> ignore (Trace.finish tr)) trace;
      account t prepared trace ~jobs ~seconds:(Timing.now () -. t0)
        ~failed:false;
      (* A streaming caller gets the cached bytes through its sink, in
         slices, and an empty [serialized] — same contract as a
         streamed evaluation. *)
      (match emit with
      | Some emit -> emit_sliced emit cr.cr_serialized
      | None -> ());
      {
        items = cr.cr_items;
        serialized = (if emit = None then cr.cr_serialized else "");
        config = cr.cr_config;
        trace = Option.map Trace.root trace;
      }
  | None ->
      let context =
        Option.map
          (fun name ->
            match Collection.doc_id_of_name t.coll name with
            | Some doc_id -> Item.Node { Collection.doc_id; pre = 0 }
            | None -> Err.raisef "context document %S not found" name)
          context_doc
      in
      let mark = Collection.checkpoint t.coll in
      let t0 = Timing.now () in
      let failed = ref true in
      Fun.protect
        ~finally:(fun () ->
          (* Closing every span that is still open is what keeps a trace
             killed by [Deadline_exceeded] (or any evaluation error)
             well-formed. *)
          Option.iter (fun tr -> ignore (Trace.finish tr)) trace;
          account t prepared trace ~jobs ~seconds:(Timing.now () -. t0)
            ~failed:!failed;
          (* Constructed-node scratch documents are dropped when the caller
             does not need the node handles (benchmark loops), and always
             on error. *)
          if rollback_constructed then Collection.rollback t.coll mark)
        (fun () ->
          set_root_attrs trace prepared ~jobs
            ~cache:(if cache_on then "miss" else "off");
          let env =
            Eval.initial_env ~coll:t.coll ~catalog:t.cat
              ~config:prepared.p_config ~strategy:prepared.p_strategy ?trace
              ?pool:(pool_for jobs) ~deadline ~functions:prepared.p_functions
              ~context ()
          in
          let env =
            List.fold_left
              (fun env (var, value) ->
                { env with Eval.vars = (var, Eval.eval env value) :: env.Eval.vars })
              env prepared.p_globals
          in
          let table =
            phase_span trace "eval" (fun () -> Eval.eval env prepared.p_plan)
          in
          let items = Table.to_sequence table in
          (* Serialize before constructed documents are rolled back.
             The deadline is threaded through: a timeout firing while
             the result is being rendered aborts the run with the same
             clean [Deadline_exceeded] as one firing during evaluation —
             no half-written output can reach a caller (the HTTP server
             turns this into a well-formed 408). *)
          let serialized =
            phase_span trace "serialize" (fun () ->
                match emit with
                | None -> Serialize.sequence ~deadline t.coll items
                | Some emit ->
                    (* Streamed: each item flushes through the caller's
                       sink at the serializer's deadline checkpoints —
                       the whole result is never materialized here. *)
                    Serialize.sequence_emit ~deadline t.coll items ~emit;
                    "")
          in
          failed := false;
          (* Cache only runs that constructed nothing: items referring
             to scratch documents would dangle once those documents are
             rolled back, and the document set the key captured no
             longer matches anyway.  Streamed runs are never inserted
             either — their serialization was handed away, not kept. *)
          (match key with
          | Some k when emit = None && Collection.checkpoint t.coll = mark ->
              Lru.add t.result_cache ~generation k
                {
                  cr_items = items;
                  cr_serialized = serialized;
                  cr_config = prepared.p_config;
                }
          | _ -> ());
          {
            items;
            serialized;
            config = prepared.p_config;
            trace = Option.map Trace.root trace;
          })

let run t ?strategy ?deadline ?context_doc ?rollback_constructed ?trace
    query_text =
  let trace =
    match trace with
    | Some _ -> trace
    | None -> if trace_forced () then Some (Trace.create ()) else None
  in
  let prepared = prepare t ?strategy ?trace query_text in
  run_prepared t ?deadline ?context_doc ?rollback_constructed ?trace prepared

(* Per-document sharding: the paper's StandOff steps match only nodes
   from the same XML fragment (§3.3), so a query whose leading [/]
   refers to "the" document can be fanned out across every document of
   the collection, one shard per document, and the shard results
   concatenated in collection order.  One checkpoint brackets the whole
   fan-out — the shards themselves never roll back, or they would
   truncate each other's constructed documents. *)
let run_prepared_sharded t ?(deadline = Timing.no_deadline)
    ?(rollback_constructed = false) prepared =
  let cache_on = t.cache = Cache_result in
  let key =
    if cache_on then
      Some (result_key t prepared ~context_doc:None ~sharded:true)
    else None
  in
  let generation = if cache_on then Catalog.version t.cat else 0 in
  let hit =
    match key with
    | Some k -> Lru.find t.result_cache ~generation k
    | None -> None
  in
  match hit with
  | Some cr ->
      {
        items = cr.cr_items;
        serialized = cr.cr_serialized;
        config = cr.cr_config;
        trace = None;
      }
  | None ->
      let n_docs = Collection.doc_count t.coll in
      let mark = Collection.checkpoint t.coll in
      Fun.protect
        ~finally:(fun () ->
          if rollback_constructed then Collection.rollback t.coll mark)
        (fun () ->
          let pool = pool_for (effective_jobs t prepared) in
          let run_one doc_id =
            let context = Some (Item.Node { Collection.doc_id; pre = 0 }) in
            let env =
              Eval.initial_env ~coll:t.coll ~catalog:t.cat
                ~config:prepared.p_config ~strategy:prepared.p_strategy ?pool
                ~deadline ~functions:prepared.p_functions ~context ()
            in
            let env =
              List.fold_left
                (fun env (var, value) ->
                  { env with Eval.vars = (var, Eval.eval env value) :: env.Eval.vars })
                env prepared.p_globals
            in
            Table.to_sequence (Eval.eval env prepared.p_plan)
          in
          let doc_ids = Array.init n_docs Fun.id in
          let per_doc =
            match pool with
            | Some p when Pool.jobs p > 1 && n_docs > 1 ->
                Pool.map_array p run_one doc_ids
            | _ -> Array.map run_one doc_ids
          in
          let items = List.concat (Array.to_list per_doc) in
          let serialized = Serialize.sequence ~deadline t.coll items in
          (match key with
          | Some k when Collection.checkpoint t.coll = mark ->
              Lru.add t.result_cache ~generation k
                {
                  cr_items = items;
                  cr_serialized = serialized;
                  cr_config = prepared.p_config;
                }
          | _ -> ());
          (* Sharded evaluation runs [eval] inside pool workers, and the
             trace collector is single-domain — so sharded runs are
             untraced. *)
          { items; serialized; config = prepared.p_config; trace = None })

(* ------------------------------------------------------------------ *)
(* EXPLAIN / EXPLAIN ANALYZE                                          *)

let explain t ?strategy ?optimize ?dataguide query_text =
  render_prepared (prepare t ?strategy ?optimize ?dataguide query_text)

(* Fold the span tree of one traced run into a per-plan-node table.
   A node can be evaluated many times (loop bodies, function bodies):
   counts sum, [a_strategy] keeps the last strategy seen, and nodes
   with no span at all render as "(not executed)". *)
let analysis_of_trace root =
  let tbl : (int, Plan.analysis) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter
    (fun sp ->
      let node = Trace.node sp in
      if node >= 0 then begin
        let a =
          match Hashtbl.find_opt tbl node with
          | Some a -> a
          | None ->
              let a = Plan.fresh_analysis () in
              Hashtbl.add tbl node a;
              a
        in
        a.Plan.a_calls <- a.Plan.a_calls + 1;
        let d = Trace.duration sp in
        if not (Float.is_nan d) then a.Plan.a_seconds <- a.Plan.a_seconds +. d;
        let add get set key =
          match Trace.int_attr sp key with
          | Some n -> set a (get a + n)
          | None -> ()
        in
        add
          (fun a -> a.Plan.a_rows_out)
          (fun a n -> a.Plan.a_rows_out <- n)
          "rows_out";
        add
          (fun a -> a.Plan.a_rows_in)
          (fun a n -> a.Plan.a_rows_in <- n)
          "rows_in";
        add
          (fun a -> a.Plan.a_index_rows)
          (fun a n -> a.Plan.a_index_rows <- n)
          "index_rows";
        add
          (fun a -> a.Plan.a_chunks)
          (fun a n -> a.Plan.a_chunks <- n)
          "chunks";
        add
          (fun a -> a.Plan.a_guide_rows)
          (fun a n -> a.Plan.a_guide_rows <- n)
          "guide_rows";
        match Trace.str_attr sp "strategy" with
        | Some s -> a.Plan.a_strategy <- Some (Config.strategy_of_string s)
        | None -> ()
      end)
    root;
  tbl

let explain_analyze t ?strategy ?dataguide ?(deadline = Timing.no_deadline)
    ?context_doc query_text =
  let trace = Trace.create () in
  let prepared = prepare t ?strategy ?dataguide ~trace query_text in
  (* [use_cache:false]: the whole point is to observe the evaluation,
     so a result-cache hit (which evaluates nothing and would render
     every operator "(not executed)") must be bypassed. *)
  let _ =
    run_prepared t ~deadline ?context_doc ~rollback_constructed:true
      ~use_cache:false ~trace prepared
  in
  let tbl = analysis_of_trace (Trace.root trace) in
  render_prepared
    ~annotate:(fun p -> Plan.analyze_suffix p (Hashtbl.find_opt tbl p.Plan.id))
    prepared

let run_with_timeout t ?strategy ?context_doc ?trace ~seconds query_text =
  let mark = Collection.checkpoint t.coll in
  Fun.protect
    ~finally:(fun () -> Collection.rollback t.coll mark)
    (fun () ->
      Timing.run_with_timeout ~seconds (fun deadline ->
          run t ?strategy ~deadline ?context_doc ?trace query_text))
