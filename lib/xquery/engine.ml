module Timing = Standoff_util.Timing
module Pool = Standoff_util.Pool
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table
module Config = Standoff.Config
module Catalog = Standoff.Catalog

type t = {
  coll : Collection.t;
  cat : Catalog.t;
  mutable strategy : Config.strategy option;
      (* engine-wide override; [None] lets the planner/evaluator pick a
         strategy per operator *)
  mutable jobs : int;
}

let create ?strategy ?jobs coll =
  let jobs =
    match jobs with Some n -> max 1 n | None -> Config.default_jobs ()
  in
  { coll; cat = Catalog.create (); strategy; jobs }

let collection t = t.coll
let catalog t = t.cat
let set_strategy t s = t.strategy <- Some s
let set_auto_strategy t = t.strategy <- None
let jobs t = t.jobs
let set_jobs t n = t.jobs <- max 1 n

let shutdown t =
  if t.jobs > 1 then Pool.teardown (Pool.shared ~jobs:t.jobs)

(* Engines with the same jobs count share one process-wide pool (live
   domains are a bounded resource); [None] when sequential, so jobs=1
   never even consults it. *)
let pool_of t = if t.jobs <= 1 then None else Some (Pool.shared ~jobs:t.jobs)

type result = {
  items : Item.t list;
  serialized : string;
  config : Config.t;
}

(* Prolog processing: fold the standoff-* options into a configuration,
   register user functions, and collect global variables. *)
let process_prolog (q : Ast.query) =
  let functions = Hashtbl.create 8 in
  let config = ref Config.default in
  let strategy_override = ref None in
  let globals = ref [] in
  List.iter
    (function
      | Ast.Decl_option { name; value } -> (
          (* Accept both "standoff-start" and prefixed "so:standoff-start". *)
          let name =
            match String.index_opt name ':' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match name with
          | "standoff-type" ->
              config := Config.set_option !config ~name:"type" ~value
          | "standoff-start" ->
              config := Config.set_option !config ~name:"start" ~value
          | "standoff-end" ->
              config := Config.set_option !config ~name:"end" ~value
          | "standoff-region" ->
              config := Config.set_option !config ~name:"region" ~value
          | "standoff-strategy" ->
              strategy_override := Some (Config.strategy_of_string value)
          | _ -> () (* foreign options are ignored, as the spec requires *))
      | Ast.Decl_namespace _ -> ()
      | Ast.Decl_function fn ->
          if Hashtbl.mem functions fn.Ast.fn_name then
            Err.raisef "function %s declared twice" fn.Ast.fn_name;
          Hashtbl.add functions fn.Ast.fn_name fn
      | Ast.Decl_variable { var; value } -> globals := (var, value) :: !globals)
    q.Ast.prolog;
  (functions, !config, !strategy_override, List.rev !globals)

(* ------------------------------------------------------------------ *)
(* Prepared queries: parse -> lower -> optimize, once.                *)

type prepared = {
  p_prolog : Ast.prolog_decl list;
  p_plan : Plan.t;
  p_functions : (string, Plan.function_def) Hashtbl.t;
  p_globals : (string * Plan.t) list;
  p_config : Config.t;
  p_strategy : Config.strategy option;
}

let prepared_plan p = p.p_plan
let prepared_config p = p.p_config

let prepare t ?strategy ?(optimize = true) query_text =
  let q = Parse.parse_query query_text in
  let ast_functions, config, strategy_override, ast_globals =
    process_prolog q
  in
  (* A name declared as a user function shadows the builtin function
     form of the StandOff operators, so lowering must not turn calls to
     it into join nodes. *)
  let is_udf name = Hashtbl.mem ast_functions name in
  let resolved =
    match (strategy_override, strategy) with
    | Some s, _ -> Some s
    | None, Some s -> Some s
    | None, None -> t.strategy
  in
  let rewrite =
    if optimize then begin
      let stats = Optimize.collection_stats t.coll t.cat config in
      fun plan -> Optimize.optimize ?pin_strategy:resolved ~stats plan
    end
    else Fun.id
  in
  let lower e = rewrite (Plan.lower ~is_udf e) in
  let functions = Hashtbl.create (Hashtbl.length ast_functions) in
  Hashtbl.iter
    (fun name fn ->
      Hashtbl.add functions name
        {
          Plan.fn_name = fn.Ast.fn_name;
          fn_params = fn.Ast.fn_params;
          fn_body = lower fn.Ast.fn_body;
        })
    ast_functions;
  {
    p_prolog = q.Ast.prolog;
    p_plan = lower q.Ast.body;
    p_functions = functions;
    p_globals = List.map (fun (var, value) -> (var, lower value)) ast_globals;
    p_config = config;
    p_strategy = resolved;
  }

let run_prepared t ?(deadline = Timing.no_deadline) ?context_doc
    ?(rollback_constructed = false) ?(instrument = false) prepared =
  let context =
    Option.map
      (fun name ->
        match Collection.doc_id_of_name t.coll name with
        | Some doc_id -> Item.Node { Collection.doc_id; pre = 0 }
        | None -> Err.raisef "context document %S not found" name)
      context_doc
  in
  if instrument then begin
    Plan.reset_counters prepared.p_plan;
    Hashtbl.iter
      (fun _ fn -> Plan.reset_counters fn.Plan.fn_body)
      prepared.p_functions;
    List.iter (fun (_, p) -> Plan.reset_counters p) prepared.p_globals
  end;
  let mark = Collection.checkpoint t.coll in
  Fun.protect
    ~finally:(fun () ->
      (* Constructed-node scratch documents are dropped when the caller
         does not need the node handles (benchmark loops), and always
         on error. *)
      if rollback_constructed then Collection.rollback t.coll mark)
    (fun () ->
      let env =
        Eval.initial_env ~coll:t.coll ~catalog:t.cat ~config:prepared.p_config
          ~strategy:prepared.p_strategy ~instrument ?pool:(pool_of t)
          ~deadline ~functions:prepared.p_functions ~context ()
      in
      let env =
        List.fold_left
          (fun env (var, value) ->
            { env with Eval.vars = (var, Eval.eval env value) :: env.Eval.vars })
          env prepared.p_globals
      in
      let table = Eval.eval env prepared.p_plan in
      let items = Table.to_sequence table in
      (* Serialize before constructed documents are rolled back. *)
      let serialized = Serialize.sequence t.coll items in
      { items; serialized; config = prepared.p_config })

let run t ?strategy ?deadline ?context_doc ?rollback_constructed query_text =
  let prepared = prepare t ?strategy query_text in
  run_prepared t ?deadline ?context_doc ?rollback_constructed prepared

(* Per-document sharding: the paper's StandOff steps match only nodes
   from the same XML fragment (§3.3), so a query whose leading [/]
   refers to "the" document can be fanned out across every document of
   the collection, one shard per document, and the shard results
   concatenated in collection order.  One checkpoint brackets the whole
   fan-out — the shards themselves never roll back, or they would
   truncate each other's constructed documents. *)
let run_prepared_sharded t ?(deadline = Timing.no_deadline)
    ?(rollback_constructed = false) prepared =
  let n_docs = Collection.doc_count t.coll in
  let mark = Collection.checkpoint t.coll in
  Fun.protect
    ~finally:(fun () ->
      if rollback_constructed then Collection.rollback t.coll mark)
    (fun () ->
      let pool = pool_of t in
      let run_one doc_id =
        let context = Some (Item.Node { Collection.doc_id; pre = 0 }) in
        let env =
          Eval.initial_env ~coll:t.coll ~catalog:t.cat
            ~config:prepared.p_config ~strategy:prepared.p_strategy ?pool
            ~deadline ~functions:prepared.p_functions ~context ()
        in
        let env =
          List.fold_left
            (fun env (var, value) ->
              { env with Eval.vars = (var, Eval.eval env value) :: env.Eval.vars })
            env prepared.p_globals
        in
        Table.to_sequence (Eval.eval env prepared.p_plan)
      in
      let doc_ids = Array.init n_docs Fun.id in
      let per_doc =
        match pool with
        | Some p when Pool.jobs p > 1 && n_docs > 1 ->
            Pool.map_array p run_one doc_ids
        | _ -> Array.map run_one doc_ids
      in
      let items = List.concat (Array.to_list per_doc) in
      let serialized = Serialize.sequence t.coll items in
      { items; serialized; config = prepared.p_config })

(* ------------------------------------------------------------------ *)
(* EXPLAIN / EXPLAIN ANALYZE                                          *)

let render_prepared ?analyze prepared =
  let decls = List.map Pp_ast.decl_to_string prepared.p_prolog in
  let fn_plans =
    (* Deterministic order for display. *)
    Hashtbl.fold (fun _ fn acc -> fn :: acc) prepared.p_functions []
    |> List.sort (fun a b -> compare a.Plan.fn_name b.Plan.fn_name)
    |> List.map (fun fn ->
           Printf.sprintf "function %s(%s):\n%s" fn.Plan.fn_name
             (String.concat ", "
                (List.map (fun p -> "$" ^ p) fn.Plan.fn_params))
             (Plan.render ?analyze fn.Plan.fn_body))
  in
  let global_plans =
    List.map
      (fun (var, p) ->
        Printf.sprintf "variable $%s:\n%s" var (Plan.render ?analyze p))
      prepared.p_globals
  in
  String.concat "\n"
    (decls @ fn_plans @ global_plans @ [ Plan.render ?analyze prepared.p_plan ])

let explain t ?strategy ?optimize query_text =
  render_prepared (prepare t ?strategy ?optimize query_text)

let explain_analyze t ?strategy ?(deadline = Timing.no_deadline) ?context_doc
    query_text =
  let prepared = prepare t ?strategy query_text in
  let _ =
    run_prepared t ~deadline ?context_doc ~rollback_constructed:true
      ~instrument:true prepared
  in
  render_prepared ~analyze:true prepared

let run_with_timeout t ?strategy ?context_doc ~seconds query_text =
  let mark = Collection.checkpoint t.coll in
  Fun.protect
    ~finally:(fun () -> Collection.rollback t.coll mark)
    (fun () ->
      Timing.run_with_timeout ~seconds (fun deadline ->
          run t ?strategy ~deadline ?context_doc query_text))
