(* The logical/physical query-plan IR between [Parse] and [Eval].

   Lowering from [Ast.expr] is structural and lossless; the interesting
   part is that path operators stop being generic AST nodes and become
   explicit plan operators carrying the decisions the optimizer makes:

   - [Axis_step]/[Attribute_step] with an optional fused positional
     predicate ([a/b[1]] executes as one step, no filter machinery);
   - [Standoff_join] for the paper's four operators, in both axis form
     ([x/select-narrow::music]) and function form
     ([select-narrow(x, cands)]), carrying the candidate-pushdown
     decision (restrict the region-index scan vs. post-filter, §4.3)
     and a per-operator strategy choice resolved from {!Standoff.Annots}
     statistics instead of the engine-wide knob.

   Every node carries a process-unique integer {!id}.  The evaluator
   carries no instrumentation of its own any more: when a query runs
   with a {!Standoff_obs.Trace} collector attached, each operator
   evaluation opens a span tagged with the node id, and EXPLAIN ANALYZE
   aggregates the span tree back onto the plan through that id (see
   {!analysis} and [Engine.explain_analyze]). *)

module Node_test = Standoff_xpath.Node_test
module Axes = Standoff_xpath.Axes
module Op = Standoff.Op
module Config = Standoff.Config

type strategy_choice =
  | S_auto  (** resolve per call site from annotation statistics *)
  | S_fixed of Config.strategy  (** pinned by prolog/CLI/optimizer *)

type t = { id : int; desc : desc }

and desc =
  | Literal of Ast.literal
  | Var of string
  | Context_item
  | Sequence of t list
  | For of {
      var : string;
      pos_var : string option;
      source : t;
      order_by : order_spec list;
      body : t;
    }
  | Let of { var : string; value : t; body : t }
  | Where of { cond : t; body : t }
  | Quantified of { universal : bool; var : string; source : t; satisfies : t }
  | If of { cond : t; then_ : t; else_ : t }
  | Binop of Ast.binop * t * t
  | Unary_minus of t
  | Axis_step of {
      input : t;
      axis : Axes.axis;
      test : Node_test.t;
      position : int option;  (** fused positional predicate *)
    }
  | Attribute_step of { input : t; test : Node_test.t }
  | Standoff_join of {
      input : t;
      op : Op.t;
      test : Node_test.t;
      position : int option;
      pushdown : bool;
          (** [true]: a name test restricts the candidate region index
              before the join; [false]: join against all
              area-annotations and post-filter with [test] *)
      strategy : strategy_choice;
      candidates : t option;
          (** explicit candidate sequence (function form, Figure 3) *)
    }
  | Path_lookup of {
      input : t;  (** evaluates to document nodes (doc()/root() calls) *)
      steps : (bool * string) list;
          (** the collapsed child ([false]) / descendant ([true]) name
              steps, answered in one DataGuide probe per document *)
    }
  | Filter of { input : t; predicate : t }
  | Path_map of { input : t; body : t }
  | Call of { name : string; args : t list }
  | Elem_ctor of {
      tag : string;
      attrs : (string * attr_part list) list;
      content : attr_part list;
    }

and attr_part = Fixed of string | Enclosed of t

and order_spec = { key : t; descending : bool }

type function_def = { fn_name : string; fn_params : string list; fn_body : t }

(* Node ids are process-wide (an atomic, not a per-plan counter), so
   ids from different prepared queries never collide and a span tree
   can be aggregated without knowing which plan object it came from. *)
let next_id = Stdlib.Atomic.make 0

let make desc = { id = Stdlib.Atomic.fetch_and_add next_id 1; desc }

(* ------------------------------------------------------------------ *)
(* Lowering                                                           *)

(* Strip an optional namespace prefix, the way [Eval.eval_call] does
   before builtin lookup. *)
let local_name name =
  match String.index_opt name ':' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let lower ?(is_udf = fun _ -> false) expr =
  let rec go expr =
    match expr with
    | Ast.Literal l -> make (Literal l)
    | Ast.Var v -> make (Var v)
    | Ast.Context_item -> make Context_item
    | Ast.Sequence es -> make (Sequence (List.map go es))
    | Ast.For { var; pos_var; source; order_by; body } ->
        make
          (For
             {
               var;
               pos_var;
               source = go source;
               order_by =
                 List.map
                   (fun s ->
                     { key = go s.Ast.key; descending = s.Ast.descending })
                   order_by;
               body = go body;
             })
    | Ast.Let { var; value; body } ->
        make (Let { var; value = go value; body = go body })
    | Ast.Where { cond; body } ->
        make (Where { cond = go cond; body = go body })
    | Ast.Quantified { universal; var; source; satisfies } ->
        make
          (Quantified
             { universal; var; source = go source; satisfies = go satisfies })
    | Ast.If { cond; then_; else_ } ->
        make (If { cond = go cond; then_ = go then_; else_ = go else_ })
    | Ast.Binop (op, a, b) -> make (Binop (op, go a, go b))
    | Ast.Unary_minus e -> make (Unary_minus (go e))
    | Ast.Step { input; axis = Ast.Std axis; test } ->
        make (Axis_step { input = go input; axis; test; position = None })
    | Ast.Step { input; axis = Ast.Attribute; test } ->
        make (Attribute_step { input = go input; test })
    | Ast.Step { input; axis = Ast.Standoff op; test } ->
        make
          (Standoff_join
             {
               input = go input;
               op;
               test;
               position = None;
               pushdown = false;
               strategy = S_auto;
               candidates = None;
             })
    | Ast.Call { name; args }
      when (not (is_udf name))
           && (not (is_udf (local_name name)))
           && Option.is_some (Op.of_string_opt (local_name name))
           && (List.length args = 1 || List.length args = 2) ->
        (* Alternative-3 function form of the StandOff joins (§3.2):
           unify with the axis form at the plan level. *)
        let op = Option.get (Op.of_string_opt (local_name name)) in
        let input, candidates =
          match args with
          | [ ctx ] -> (go ctx, None)
          | [ ctx; cand ] -> (go ctx, Some (go cand))
          | _ -> assert false
        in
        make
          (Standoff_join
             {
               input;
               op;
               test = Node_test.Kind_node;
               position = None;
               pushdown = false;
               strategy = S_auto;
               candidates;
             })
    | Ast.Call { name; args } -> make (Call { name; args = List.map go args })
    | Ast.Filter { input; predicate } ->
        make (Filter { input = go input; predicate = go predicate })
    | Ast.Path_map { input; body } ->
        make (Path_map { input = go input; body = go body })
    | Ast.Elem_ctor { tag; attrs; content } ->
        let part = function
          | Ast.Fixed s -> Fixed s
          | Ast.Enclosed e -> Enclosed (go e)
        in
        make
          (Elem_ctor
             {
               tag;
               attrs = List.map (fun (n, ps) -> (n, List.map part ps)) attrs;
               content = List.map part content;
             })
  in
  go expr

(* ------------------------------------------------------------------ *)
(* Free variables (the evaluator lifts only live variables through
   for-loops, exactly as [Ast.free_vars] does pre-lowering).          *)

let free_vars plan =
  let module S = Set.Make (String) in
  let rec go bound acc p =
    match p.desc with
    | Literal _ | Context_item -> acc
    | Var v -> if S.mem v bound then acc else S.add v acc
    | Sequence es -> List.fold_left (go bound) acc es
    | For { var; pos_var; source; order_by; body } ->
        let acc = go bound acc source in
        let bound = S.add var bound in
        let bound =
          match pos_var with Some p -> S.add p bound | None -> bound
        in
        let acc =
          List.fold_left (fun acc spec -> go bound acc spec.key) acc order_by
        in
        go bound acc body
    | Let { var; value; body } ->
        let acc = go bound acc value in
        go (S.add var bound) acc body
    | Where { cond; body } -> go bound (go bound acc cond) body
    | Quantified { var; source; satisfies; _ } ->
        let acc = go bound acc source in
        go (S.add var bound) acc satisfies
    | If { cond; then_; else_ } ->
        go bound (go bound (go bound acc cond) then_) else_
    | Binop (_, a, b) -> go bound (go bound acc a) b
    | Unary_minus e
    | Axis_step { input = e; _ }
    | Attribute_step { input = e; _ }
    | Path_lookup { input = e; _ } ->
        go bound acc e
    | Standoff_join { input; candidates; _ } ->
        let acc = go bound acc input in
        (match candidates with Some c -> go bound acc c | None -> acc)
    | Filter { input; predicate } -> go bound (go bound acc input) predicate
    | Path_map { input; body } -> go bound (go bound acc input) body
    | Call { args; _ } -> List.fold_left (go bound) acc args
    | Elem_ctor { attrs; content; _ } ->
        let go_part acc = function
          | Fixed _ -> acc
          | Enclosed e -> go bound acc e
        in
        let acc =
          List.fold_left
            (fun acc (_, parts) -> List.fold_left go_part acc parts)
            acc attrs
        in
        List.fold_left go_part acc content
  in
  go S.empty S.empty plan |> S.elements

let rec constructs p =
  match p.desc with
  | Elem_ctor _ -> true
  | Literal _ | Var _ | Context_item -> false
  | Sequence es -> List.exists constructs es
  | For { source; order_by; body; _ } ->
      constructs source || constructs body
      || List.exists (fun spec -> constructs spec.key) order_by
  | Let { value; body; _ } -> constructs value || constructs body
  | Where { cond; body } -> constructs cond || constructs body
  | Quantified { source; satisfies; _ } ->
      constructs source || constructs satisfies
  | If { cond; then_; else_ } ->
      constructs cond || constructs then_ || constructs else_
  | Binop (_, a, b) -> constructs a || constructs b
  | Unary_minus e
  | Axis_step { input = e; _ }
  | Attribute_step { input = e; _ }
  | Path_lookup { input = e; _ } ->
      constructs e
  | Standoff_join { input; candidates; _ } ->
      constructs input
      || (match candidates with Some c -> constructs c | None -> false)
  | Filter { input; predicate } -> constructs input || constructs predicate
  | Path_map { input; body } -> constructs input || constructs body
  | Call { args; _ } -> List.exists constructs args

(* ------------------------------------------------------------------ *)
(* Rendering (EXPLAIN / EXPLAIN ANALYZE)                              *)

let literal_to_string = function
  | Ast.Lit_int i -> Int64.to_string i
  | Ast.Lit_float f -> Printf.sprintf "%.17g" f
  | Ast.Lit_string s -> Printf.sprintf "%S" s

let binop_name = function
  | Ast.Op_or -> "or"
  | Ast.Op_and -> "and"
  | Ast.Op_eq -> "="
  | Ast.Op_ne -> "!="
  | Ast.Op_lt -> "<"
  | Ast.Op_le -> "<="
  | Ast.Op_gt -> ">"
  | Ast.Op_ge -> ">="
  | Ast.Op_add -> "+"
  | Ast.Op_sub -> "-"
  | Ast.Op_mul -> "*"
  | Ast.Op_div -> "div"
  | Ast.Op_idiv -> "idiv"
  | Ast.Op_mod -> "mod"
  | Ast.Op_to -> "to"
  | Ast.Op_union -> "union"
  | Ast.Op_intersect -> "intersect"
  | Ast.Op_except -> "except"

let test_to_string test = Format.asprintf "%a" Node_test.pp test

let position_suffix = function
  | None -> ""
  | Some k -> Printf.sprintf "[%d]" k

let strategy_choice_to_string = function
  | S_auto -> "auto"
  | S_fixed s -> Config.strategy_to_string s

(* Internal variables introduced by desugaring are named "#dotN";
   print them with a display-safe underscore. *)
let var_name v = String.map (function '#' -> '_' | c -> c) v

let path_to_string steps =
  String.concat ""
    (List.map
       (fun (desc, name) -> (if desc then "//" else "/") ^ name)
       steps)

let label plan =
  match plan.desc with
  | Literal l -> Printf.sprintf "literal %s" (literal_to_string l)
  | Var v -> Printf.sprintf "$%s" (var_name v)
  | Context_item -> "context-item"
  | Sequence [] -> "empty-sequence"
  | Sequence _ -> "sequence"
  | For { var; pos_var; order_by; _ } ->
      Printf.sprintf "for $%s%s%s" (var_name var)
        (match pos_var with
        | Some p -> Printf.sprintf " at $%s" (var_name p)
        | None -> "")
        (if order_by = [] then "" else " order-by")
  | Let { var; _ } -> Printf.sprintf "let $%s" (var_name var)
  | Where _ -> "where"
  | Quantified { universal; var; _ } ->
      Printf.sprintf "%s $%s" (if universal then "every" else "some")
        (var_name var)
  | If _ -> "if"
  | Binop (op, _, _) -> Printf.sprintf "binop %s" (binop_name op)
  | Unary_minus _ -> "negate"
  | Axis_step { axis; test; position; _ } ->
      Printf.sprintf "step %s::%s%s" (Axes.axis_to_string axis)
        (test_to_string test) (position_suffix position)
  | Attribute_step { test; _ } ->
      Printf.sprintf "step attribute::%s" (test_to_string test)
  | Standoff_join { op; test; position; pushdown; strategy; candidates; _ } ->
      let cand_desc =
        match candidates with
        | Some _ -> "explicit sequence"
        | None -> (
            match (pushdown, Node_test.name_filter test) with
            | true, Some n -> Printf.sprintf "elements(%s) [pushed-down]" n
            | _ -> "all-annotations [post-filter test]")
      in
      Printf.sprintf "standoff-join %s::%s%s candidates=%s strategy=%s"
        (Op.to_string op) (test_to_string test) (position_suffix position)
        cand_desc
        (strategy_choice_to_string strategy)
  | Path_lookup { steps; _ } ->
      Printf.sprintf "path-lookup %s [dataguide]" (path_to_string steps)
  | Filter _ -> "filter"
  | Path_map _ -> "path-map"
  | Call { name = "#ddo"; _ } -> "distinct-doc-order"
  | Call { name; args } -> Printf.sprintf "call %s/%d" name (List.length args)
  | Elem_ctor { tag; _ } -> Printf.sprintf "element <%s>" tag

(* Labeled sub-plans, in display order. *)
let children plan =
  let parts label ps =
    List.filter_map
      (function Fixed _ -> None | Enclosed e -> Some (Some label, e))
      ps
  in
  match plan.desc with
  | Literal _ | Var _ | Context_item -> []
  | Sequence es -> List.map (fun e -> (None, e)) es
  | For { source; order_by; body; _ } ->
      ((Some "in", source) :: List.map (fun s -> (Some "key", s.key)) order_by)
      @ [ (Some "return", body) ]
  | Let { value; body; _ } -> [ (Some "value", value); (Some "return", body) ]
  | Where { cond; body } -> [ (Some "cond", cond); (Some "return", body) ]
  | Quantified { source; satisfies; _ } ->
      [ (Some "in", source); (Some "satisfies", satisfies) ]
  | If { cond; then_; else_ } ->
      [ (Some "cond", cond); (Some "then", then_); (Some "else", else_) ]
  | Binop (_, a, b) -> [ (None, a); (None, b) ]
  | Unary_minus e -> [ (None, e) ]
  | Axis_step { input; _ } | Attribute_step { input; _ }
  | Path_lookup { input; _ } ->
      [ (Some "in", input) ]
  | Standoff_join { input; candidates; _ } -> (
      (Some "in", input)
      ::
      (match candidates with
      | Some c -> [ (Some "candidates", c) ]
      | None -> []))
  | Filter { input; predicate } ->
      [ (Some "in", input); (Some "pred", predicate) ]
  | Path_map { input; body } -> [ (Some "in", input); (Some "map", body) ]
  | Call { args; _ } -> List.map (fun a -> (None, a)) args
  | Elem_ctor { attrs; content; _ } ->
      List.concat_map (fun (n, ps) -> parts ("attr " ^ n) ps) attrs
      @ parts "content" content

(* Per-node aggregation of a query run, distilled from the span tree
   (one [analysis] per executed node; absent = not executed).  Produced
   by [Engine.explain_analyze] folding every span with this node's id;
   the rendered format is unchanged from when the counters lived on
   the plan nodes themselves. *)
type analysis = {
  mutable a_calls : int;
  mutable a_rows_in : int;  (** rows of the primary input (step-like ops) *)
  mutable a_rows_out : int;
  mutable a_seconds : float;  (** inclusive wall time *)
  mutable a_index_rows : int;  (** region-index rows the joins scanned *)
  mutable a_chunks : int;  (** parallel sweep chunks the joins ran *)
  mutable a_guide_rows : int;
      (** candidate pres the DataGuide probes returned (path lookups) *)
  mutable a_strategy : Config.strategy option;
      (** last strategy an auto operator resolved to *)
}

let fresh_analysis () =
  {
    a_calls = 0;
    a_rows_in = 0;
    a_rows_out = 0;
    a_seconds = 0.0;
    a_index_rows = 0;
    a_chunks = 0;
    a_guide_rows = 0;
    a_strategy = None;
  }

let analyze_suffix plan analysis =
  match analysis with
  | None -> "  (not executed)"
  | Some m ->
      let buf = Buffer.create 48 in
      Buffer.add_string buf
        (Printf.sprintf "  (calls=%d rows=%d" m.a_calls m.a_rows_out);
      let step_like =
        match plan.desc with
        | Axis_step _ | Attribute_step _ | Standoff_join _ | Filter _
        | Path_lookup _ ->
            true
        | _ -> false
      in
      if step_like then
        Buffer.add_string buf (Printf.sprintf " rows_in=%d" m.a_rows_in);
      (match plan.desc with
      | Path_lookup { steps; _ } ->
          Buffer.add_string buf
            (Printf.sprintf " path=%s guide_rows=%d" (path_to_string steps)
               m.a_guide_rows)
      | Standoff_join _ ->
          Buffer.add_string buf (Printf.sprintf " index_rows=%d" m.a_index_rows);
          if m.a_chunks > 1 then
            Buffer.add_string buf (Printf.sprintf " chunks=%d" m.a_chunks);
          Option.iter
            (fun s ->
              Buffer.add_string buf
                (Printf.sprintf " strategy=%s" (Config.strategy_to_string s)))
            m.a_strategy
      | _ -> ());
      Buffer.add_string buf (Printf.sprintf " time=%.3fms)" (m.a_seconds *. 1e3));
      Buffer.contents buf

(* [annotate] produces the per-node suffix (EXPLAIN ANALYZE passes
   [analyze_suffix] applied to its aggregation table). *)
let render ?annotate plan =
  let buf = Buffer.create 256 in
  let rec go prefix child_prefix labelled plan =
    Buffer.add_string buf prefix;
    (match labelled with
    | Some l -> Buffer.add_string buf (l ^ ": ")
    | None -> ());
    Buffer.add_string buf (label plan);
    (match annotate with
    | Some f -> Buffer.add_string buf (f plan)
    | None -> ());
    Buffer.add_char buf '\n';
    let kids = children plan in
    let n = List.length kids in
    List.iteri
      (fun i (l, kid) ->
        let last = i = n - 1 in
        let branch = if last then "└─ " else "├─ " in
        let cont = if last then "   " else "│  " in
        go (child_prefix ^ branch) (child_prefix ^ cont) l kid)
      kids
  in
  go "" "" None plan;
  (* Drop the trailing newline: callers add their own. *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s
