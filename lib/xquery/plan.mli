(** The logical/physical query-plan IR between parsing and evaluation.

    {!lower} turns an {!Ast.expr} into a plan tree in which the path
    operators are explicit physical operators: axis steps with an
    optionally fused positional predicate, and the paper's four
    StandOff joins as {!desc.Standoff_join} nodes carrying the
    candidate-pushdown decision (§4.3) and a per-operator evaluation
    strategy.  {!Optimize} rewrites plans; {!Eval} executes them.

    Every node carries a process-unique integer {!t.id}.  The plan
    itself holds no run-time state: a traced run
    ({!Standoff_obs.Trace}) opens one span per operator evaluation
    tagged with the node id, and EXPLAIN ANALYZE distills the span
    tree into one {!analysis} per node keyed on that id. *)

type strategy_choice =
  | S_auto  (** resolve per call site from annotation statistics *)
  | S_fixed of Standoff.Config.strategy

type t = { id : int; desc : desc }

and desc =
  | Literal of Ast.literal
  | Var of string
  | Context_item
  | Sequence of t list
  | For of {
      var : string;
      pos_var : string option;
      source : t;
      order_by : order_spec list;
      body : t;
    }
  | Let of { var : string; value : t; body : t }
  | Where of { cond : t; body : t }
  | Quantified of { universal : bool; var : string; source : t; satisfies : t }
  | If of { cond : t; then_ : t; else_ : t }
  | Binop of Ast.binop * t * t
  | Unary_minus of t
  | Axis_step of {
      input : t;
      axis : Standoff_xpath.Axes.axis;
      test : Standoff_xpath.Node_test.t;
      position : int option;  (** fused positional predicate *)
    }
  | Attribute_step of { input : t; test : Standoff_xpath.Node_test.t }
  | Standoff_join of {
      input : t;
      op : Standoff.Op.t;
      test : Standoff_xpath.Node_test.t;
      position : int option;
      pushdown : bool;
          (** [true]: the name test restricts the candidate region
              index before the join; [false]: post-filter *)
      strategy : strategy_choice;
      candidates : t option;  (** explicit candidates (function form) *)
    }
  | Path_lookup of {
      input : t;  (** evaluates to document nodes (doc()/root() calls) *)
      steps : (bool * string) list;
          (** collapsed child ([false]) / descendant ([true]) name
              steps, answered in one {!Standoff_store.Dataguide} probe
              per document *)
    }
  | Filter of { input : t; predicate : t }
  | Path_map of { input : t; body : t }
  | Call of { name : string; args : t list }
  | Elem_ctor of {
      tag : string;
      attrs : (string * attr_part list) list;
      content : attr_part list;
    }

and attr_part = Fixed of string | Enclosed of t

and order_spec = { key : t; descending : bool }

type function_def = { fn_name : string; fn_params : string list; fn_body : t }

(** [make desc] wraps [desc] with a fresh process-unique node id. *)
val make : desc -> t

(** [lower ?is_udf e] is the structural lowering of [e].  [is_udf]
    names user-declared functions, which shadow the builtin function
    form of the StandOff operators. *)
val lower : ?is_udf:(string -> bool) -> Ast.expr -> t

(** [free_vars p] is the set of variables [p] references but does not
    bind, as {!Ast.free_vars}. *)
val free_vars : t -> string list

(** [constructs p] holds when [p] contains an element constructor
    anywhere — i.e. evaluating it may register scratch documents in the
    collection.  Callers running queries concurrently (the HTTP server)
    use this to decide which runs need exclusive access: a constructing
    run's checkpoint/rollback pair must not interleave with another
    run's. *)
val constructs : t -> bool

(** Per-node aggregation of one traced run (EXPLAIN ANALYZE): call
    count, input/output row cardinalities, inclusive wall time,
    region-index rows scanned, parallel sweep chunks, and the resolved
    strategy. *)
type analysis = {
  mutable a_calls : int;
  mutable a_rows_in : int;  (** rows of the primary input (step-like ops) *)
  mutable a_rows_out : int;
  mutable a_seconds : float;  (** inclusive wall time *)
  mutable a_index_rows : int;  (** region-index rows the joins scanned *)
  mutable a_chunks : int;  (** parallel sweep chunks the joins ran *)
  mutable a_guide_rows : int;
      (** candidate pres the DataGuide probes returned (path lookups) *)
  mutable a_strategy : Standoff.Config.strategy option;
      (** last strategy an auto operator resolved to *)
}

(** A zeroed {!analysis}. *)
val fresh_analysis : unit -> analysis

(** [analyze_suffix p a] is the per-line EXPLAIN ANALYZE annotation for
    node [p]: ["  (not executed)"] when [a] is [None], else the
    counter summary (rows_in only on step-like operators, index rows /
    chunks / strategy only on StandOff joins). *)
val analyze_suffix : t -> analysis option -> string

(** [render ?annotate p] draws the plan tree; [annotate], when given,
    appends a per-node suffix to each operator line (EXPLAIN ANALYZE
    passes {!analyze_suffix} applied to its aggregation table). *)
val render : ?annotate:(t -> string) -> t -> string

(** [label p] is the one-line operator description {!render} uses for
    the root of [p] (exposed for tests). *)
val label : t -> string

(** [path_to_string steps] renders a {!desc.Path_lookup} step list as
    the path it collapsed, e.g. [//site/open_auctions]. *)
val path_to_string : (bool * string) list -> string
