(** A deliberately small HTTP/1.1 wire layer over [Unix] file
    descriptors: enough of RFC 9112 for the query service — request
    line, headers, [Content-Length] bodies, keep-alive, and chunked
    transfer encoding on the response side (written via
    {!chunk_writer}, read via {!iter_response_body}) — and nothing
    more (no obsolete line folding, no trailers; chunked {e request}
    bodies are answered 501 via {!Not_implemented}).

    Both directions are here: the server side ({!read_request} /
    {!write_response} / {!chunk_writer}) and the client side
    ({!write_request} / {!read_response} / {!read_response_head}),
    the latter shared by the router's proxy path, the test suite and
    the [bench serve] load generator, so the bytes the tests speak are
    produced by the same code they exercise. *)

(** A syntactically invalid request (malformed request line, bad
    header, unsupported transfer encoding, bad [Content-Length]).
    The server answers 400. *)
exception Bad_request of string

(** Valid HTTP this implementation chooses not to serve (a chunked
    request body).  The server answers 501 and closes — the body
    boundary is unknowable, so the connection cannot be reused. *)
exception Not_implemented of string

(** A body larger than the configured cap; the argument is the cap.
    The server answers 413. *)
exception Payload_too_large of int

(** The peer closed the connection (or a read timed out) before a full
    message was received.  Between keep-alive requests this is the
    normal end of a connection, not an error. *)
exception Closed

type request = {
  meth : string;  (** verb, as sent (["GET"], ["POST"], ...) *)
  target : string;  (** raw request-target, e.g. ["/query?jobs=4"] *)
  path : string;  (** decoded path component, e.g. ["/query"] *)
  query : (string * string) list;  (** decoded query parameters *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;
      (** names lowercased, in arrival order *)
  body : string;
}

(** A buffered reader over a file descriptor.  One reader per
    connection: leftover bytes after a request (pipelined requests)
    stay in the buffer for the next {!read_request}. *)
type reader

val reader : Unix.file_descr -> reader

(** [read_request ~max_body r] reads one full request.
    @raise Bad_request on syntax errors
    @raise Not_implemented on a chunked request body
    @raise Payload_too_large when [Content-Length] exceeds [max_body]
    @raise Closed on EOF before a complete request
    @raise Unix.Unix_error ([EAGAIN]/[EWOULDBLOCK]) when the socket's
    receive timeout fires mid-read. *)
val read_request : ?max_body:int -> reader -> request

(** [header req name] is the value of the (case-insensitive) header. *)
val header : request -> string -> string option

(** [param req name] is the value of a decoded query parameter. *)
val param : request -> string -> string option

(** Whether the client asked to keep the connection open: HTTP/1.1
    defaults to yes unless [Connection: close]; HTTP/1.0 defaults to
    no unless [Connection: keep-alive]. *)
val wants_keep_alive : request -> bool

(** The canonical reason phrase, e.g. [reason 503 = "Service
    Unavailable"]. *)
val reason : int -> string

(** [write_response fd ~status ~keep_alive body] writes a complete
    response with [Content-Length], a [Connection] header matching
    [keep_alive], [content_type] (default
    ["text/plain; charset=utf-8"]) and any extra [headers]. *)
val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  keep_alive:bool ->
  string ->
  unit

(** {1 Chunked responses (streaming write side)}

    [write_response_head] writes a head announcing
    [Transfer-Encoding: chunked]; the body then streams through a
    {!chunk_writer}.  Small emissions coalesce into chunks of about
    [threshold] bytes (default 8 KiB), so the per-connection peak
    buffering is the threshold — never the whole response.  The
    terminating [0]-chunk written by {!chunk_end} is what lets a
    client distinguish completion from truncation: a stream aborted
    mid-way (a deadline firing during serialization, a dead shard) is
    detectable because the terminator never arrives. *)

val write_response_head :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  keep_alive:bool ->
  unit ->
  unit

type chunk_writer

val chunk_writer : ?threshold:int -> Unix.file_descr -> chunk_writer

(** [chunk w s] appends [s] to the current chunk, flushing it as one
    HTTP chunk once it reaches the threshold. *)
val chunk : chunk_writer -> string -> unit

(** [chunk_flush w] forces the buffered bytes out as one chunk. *)
val chunk_flush : chunk_writer -> unit

(** [chunk_end w] flushes and writes the last-chunk terminator. *)
val chunk_end : chunk_writer -> unit

(** Payload bytes emitted so far (excluding chunk framing). *)
val chunk_writer_bytes : chunk_writer -> int

(** HTTP chunks written so far. *)
val chunk_writer_chunks : chunk_writer -> int

(** {1 Bearer-token authentication helpers}

    Shared by the server and the router so both enforce the token the
    same way. *)

(** [const_time_eq a b] compares without short-circuiting: the time
    taken depends only on the length of [a] (the presented token),
    never on how long a prefix matched.  [false] when [b] is empty. *)
val const_time_eq : string -> string -> bool

(** [bearer_token headers] extracts the token of an
    [Authorization: Bearer <token>] header (names lowercased, as
    {!read_request} returns them). *)
val bearer_token : (string * string) list -> string option

(** {1 Client side} *)

type response = {
  status : int;
  r_headers : (string * string) list;  (** names lowercased *)
  r_body : string;
}

(** [write_request fd ~meth ~target body] writes a complete request
    with [Content-Length] (and [Host], as HTTP/1.1 requires). *)
val write_request :
  Unix.file_descr ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  string ->
  unit

(** [read_response r] reads one full response — [Content-Length]-
    delimited, chunked, or close-delimited — assembling the body.
    @raise Closed on EOF before a complete response
    @raise Bad_request on syntax errors. *)
val read_response : reader -> response

val response_header : response -> string -> string option

(** {2 Streaming read side}

    The router's pipe: read the head, decide what to tell the client,
    then forward body bytes as they arrive. *)

type response_head = {
  h_status : int;
  h_headers : (string * string) list;  (** names lowercased *)
}

val read_response_head : reader -> response_head

(** Whether the head announced [Transfer-Encoding: chunked]. *)
val head_is_chunked : response_head -> bool

(** [iter_response_body ?max_body r head emit] streams the body that
    follows [head] to [emit] in blocks bounded by the reader's buffer
    — chunk framing is decoded, never forwarded.
    @raise Payload_too_large past [max_body] (default: unlimited)
    @raise Bad_request on malformed chunk framing
    @raise Closed on EOF before a complete chunked body. *)
val iter_response_body :
  ?max_body:int -> reader -> response_head -> (string -> unit) -> unit

(** {1 Encoding helpers} *)

(** Percent-decoding, with [+] as space (query components). *)
val url_decode : string -> string

(** Percent-decoding only — [+] stays a literal [+] (path component;
    [+] -> space is form encoding and applies to query strings only). *)
val path_decode : string -> string

val url_encode : string -> string

(** [parse_target t] splits a request-target into its decoded path and
    query parameters. *)
val parse_target : string -> string * (string * string) list
