(** A deliberately small HTTP/1.1 wire layer over [Unix] file
    descriptors: enough of RFC 9112 for the query service — request
    line, headers, [Content-Length] bodies, keep-alive — and nothing
    more (no chunked transfer encoding, no obsolete line folding, no
    trailers; requests using them are rejected cleanly).

    Both directions are here: the server side ({!read_request} /
    {!write_response}) and the client side ({!write_request} /
    {!read_response}), the latter shared by the test suite and the
    [bench serve] load generator, so the bytes the tests speak are
    produced by the same code they exercise. *)

(** A syntactically invalid request (malformed request line, bad
    header, unsupported transfer encoding, bad [Content-Length]).
    The server answers 400. *)
exception Bad_request of string

(** A body larger than the configured cap; the argument is the cap.
    The server answers 413. *)
exception Payload_too_large of int

(** The peer closed the connection (or a read timed out) before a full
    message was received.  Between keep-alive requests this is the
    normal end of a connection, not an error. *)
exception Closed

type request = {
  meth : string;  (** verb, as sent (["GET"], ["POST"], ...) *)
  target : string;  (** raw request-target, e.g. ["/query?jobs=4"] *)
  path : string;  (** decoded path component, e.g. ["/query"] *)
  query : (string * string) list;  (** decoded query parameters *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;
      (** names lowercased, in arrival order *)
  body : string;
}

(** A buffered reader over a file descriptor.  One reader per
    connection: leftover bytes after a request (pipelined requests)
    stay in the buffer for the next {!read_request}. *)
type reader

val reader : Unix.file_descr -> reader

(** [read_request ~max_body r] reads one full request.
    @raise Bad_request on syntax errors
    @raise Payload_too_large when [Content-Length] exceeds [max_body]
    @raise Closed on EOF before a complete request
    @raise Unix.Unix_error ([EAGAIN]/[EWOULDBLOCK]) when the socket's
    receive timeout fires mid-read. *)
val read_request : ?max_body:int -> reader -> request

(** [header req name] is the value of the (case-insensitive) header. *)
val header : request -> string -> string option

(** [param req name] is the value of a decoded query parameter. *)
val param : request -> string -> string option

(** Whether the client asked to keep the connection open: HTTP/1.1
    defaults to yes unless [Connection: close]; HTTP/1.0 defaults to
    no unless [Connection: keep-alive]. *)
val wants_keep_alive : request -> bool

(** The canonical reason phrase, e.g. [reason 503 = "Service
    Unavailable"]. *)
val reason : int -> string

(** [write_response fd ~status ~keep_alive body] writes a complete
    response with [Content-Length], a [Connection] header matching
    [keep_alive], [content_type] (default
    ["text/plain; charset=utf-8"]) and any extra [headers]. *)
val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  keep_alive:bool ->
  string ->
  unit

(** {1 Client side} *)

type response = {
  status : int;
  r_headers : (string * string) list;  (** names lowercased *)
  r_body : string;
}

(** [write_request fd ~meth ~target body] writes a complete request
    with [Content-Length] (and [Host], as HTTP/1.1 requires). *)
val write_request :
  Unix.file_descr ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  string ->
  unit

(** [read_response r] reads one full response (the body must carry
    [Content-Length], which this module's server side always sends).
    @raise Closed on EOF before a complete response
    @raise Bad_request on syntax errors. *)
val read_response : reader -> response

val response_header : response -> string -> string option

(** {1 Encoding helpers} *)

(** Percent-decoding, with [+] as space (query components). *)
val url_decode : string -> string

(** Percent-decoding only — [+] stays a literal [+] (path component;
    [+] -> space is form encoding and applies to query strings only). *)
val path_decode : string -> string

val url_encode : string -> string

(** [parse_target t] splits a request-target into its decoded path and
    query parameters. *)
val parse_target : string -> string * (string * string) list
