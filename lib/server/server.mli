(** The network query service: a concurrent HTTP/1.1 server over one
    {!Standoff_xquery.Engine}, built from [Unix] sockets, worker
    domains and a bounded admission queue — no dependencies beyond the
    stdlib.

    Endpoints:
    - [POST /query] — XQuery text in the body; knobs as query
      parameters: [?strategy=] pins the StandOff strategy,
      [?jobs=] overrides the engine parallelism for this run,
      [?cache=off] bypasses the result cache, [?timeout-ms=] sets the
      per-request deadline (clamped to the configured maximum),
      [?context=] names the context document.  Answers
      [200 text/plain] with the serialized result (byte-identical to
      {!Standoff_xquery.Engine.run} plus a trailing newline), [400] on
      static/dynamic query errors, [408] with a partial-trace JSON body
      when the deadline fires.  Every response carries [X-Request-Id]
      and [X-Standoff-Cache: hit|miss|off].  With [?stream=1] the
      result goes out via chunked transfer encoding, serialized item
      by item with bounded buffering (the response carries
      [X-Standoff-Stream: 1] and no [Content-Length]); the bytes are
      identical to the buffered form.  An error before the first
      emitted byte still produces the ordinary buffered error status;
      one mid-stream aborts the body without the terminating chunk, the
      standard truncation signal.
    - [POST /update] — in-place region updates:
      [?doc=NAME&pre=N&start=S&end=E] rewrites one annotation's region;
      [?doc=NAME&op=shift&from=F&by=B] shifts annotations.  Runs under
      the exclusive side of the server's readers–writer lock and ends
      in {!Standoff.Catalog.invalidate}, so concurrent queries can
      never observe a stale cached result.  When the server was created
      with a durability coordinator, the update's WAL record is on disk
      (per the fsync policy) before the 200 is written, and every
      [snapshot-every] updates a compacting snapshot is taken in-line.
    - [POST /admin/snapshot] — operator-triggered compaction: write a
      snapshot and reset the WAL, under the writer lock.  [409] when
      the server runs without a data directory.
    - [GET /explain?q=…] (or [POST /explain] with the query as body) —
      the optimized physical plan, evaluated nothing.
    - [GET /metrics] — the process-wide
      {!Standoff_obs.Metrics.expose} Prometheus text.
    - [GET /slow] — the slow-query log as JSON.
    - [GET /healthz] — liveness: 200 for as long as the process serves
      HTTP at all.  [GET /healthz?ready=1] — readiness: 503
      ["recovering"] while the store is being replayed (deferred boot,
      see {!create_deferred}), 503 ["draining"] during graceful
      shutdown, 200 ["ready"] otherwise.

    When [config.auth_token] is set, [POST /query], [/update],
    [/ingest] and everything under [/admin/] require
    [Authorization: Bearer <token>] and answer [401] (with
    [WWW-Authenticate: Bearer]) otherwise; the comparison is
    constant-time.  [/healthz] and [/metrics] stay open so probes and
    scrapers need no credentials.  A request with a chunked body is
    refused with [501] (bodies must carry [Content-Length]).

    Production behaviors: admission control (a bounded pending
    connection queue; the acceptor sheds load with
    [503] + [Retry-After] when it is full), per-request deadlines,
    socket read/write timeouts, a request body cap ([413]), keep-alive
    with a per-connection request bound, and graceful shutdown
    ({!stop}: stop accepting, drain queued and in-flight requests up
    to a grace period, then force-close).

    Queries run concurrently on worker domains under the shared side
    of a readers–writer lock; updates and node-constructing queries
    (see {!Standoff_xquery.Engine.prepared_constructs}) take the
    exclusive side, so a constructing run's checkpoint/rollback pair
    cannot truncate another run's scratch documents and updates never
    race an evaluation. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  workers : int;
      (** worker domains serving connections; [0] (the default) means
          auto — half the process domain budget
          ({!Standoff_util.Pool.domain_budget}), at least 1, leaving
          the other half for intra-query parallelism *)
  queue_capacity : int;
      (** pending connections admitted beyond the workers; the
          acceptor sheds with 503 past it *)
  max_body_bytes : int;  (** request body cap, 413 past it *)
  max_requests_per_connection : int;
      (** keep-alive bound; the response that hits it says
          [Connection: close] *)
  default_timeout_ms : float option;
      (** per-request deadline when the client sends no
          [?timeout-ms=]; [None] means no deadline *)
  max_timeout_ms : float;  (** upper clamp for client deadlines *)
  socket_timeout_s : float;  (** receive/send timeout on connections *)
  grace_s : float;  (** {!stop}'s default drain budget *)
  retry_after_s : int;  (** the [Retry-After] value on shed 503s *)
  auth_token : string option;
      (** when set, [/query], [/update], [/ingest] and [/admin/*]
          require [Authorization: Bearer <token>]; compared in
          constant time.  Default [None] (no authentication) *)
}

val default_config : config

type t

(** [create ?config ?durable engine] binds and listens (so {!port} is
    known), but serves nothing until {!start}.  When [durable] is
    given, the engine's update hook is pointed at
    {!Standoff.Durable.log} — acknowledged updates are durable per the
    coordinator's fsync policy — and [/admin/snapshot] plus periodic
    compaction are enabled.  The engine's collection must be the one
    the coordinator recovered.
    @raise Unix.Unix_error when binding fails. *)
val create :
  ?config:config -> ?durable:Standoff.Durable.t -> Standoff_xquery.Engine.t -> t

(** [create_deferred ?config ()] binds and listens like {!create}, but
    over a placeholder engine and with readiness off: after {!start},
    [/healthz] answers 200 while every engine-backed endpoint answers
    [503 Retry-After] and [/healthz?ready=1] says ["recovering"].  The
    caller performs store recovery (typically
    {!Standoff.Durable.recover}, which may replay a long WAL) and then
    calls {!install_engine} — so a shard stays observable through
    recovery instead of refusing connections.
    @raise Unix.Unix_error when binding fails. *)
val create_deferred : ?config:config -> unit -> t

(** [install_engine t ?durable engine] publishes the recovered engine
    and flips the server ready; pair of {!create_deferred}.  Wires the
    durability hook exactly as {!create} does.
    @raise Invalid_argument if an engine was already installed. *)
val install_engine :
  t -> ?durable:Standoff.Durable.t -> Standoff_xquery.Engine.t -> unit

(** Whether the server would answer [/healthz?ready=1] with 200: the
    engine is installed and no drain is in progress. *)
val ready : t -> bool

(** The bound port — the configured one, or the kernel-chosen one when
    the configuration said [0]. *)
val port : t -> int

(** The resolved worker-domain count — the configured one, or the
    auto-derived one when the configuration said [0]. *)
val workers : t -> int

val engine : t -> Standoff_xquery.Engine.t

(** [start t] spawns the acceptor and the worker domains and returns.
    The workers are registered against the process domain budget
    ({!Standoff_util.Pool.reserve_domains}) for as long as the server
    runs, so query-execution parallelism shrinks to what the budget
    has left rather than multiplying with the worker count.
    @raise Invalid_argument if the server was already started. *)
val start : t -> unit

(** [stop ?grace_s t] shuts down gracefully: stop accepting, let the
    workers drain queued and in-flight requests (keep-alive
    connections are told [Connection: close] on their next response),
    and after [grace_s] (default from the configuration) force-close
    whatever is still open.  Blocks until every worker has exited.
    Idempotent; safe to call from any thread, but not from a signal
    handler — have the handler set a flag instead. *)
val stop : ?grace_s:float -> t -> unit

(** Whether {!start} has run and {!stop} has not completed. *)
val running : t -> bool
