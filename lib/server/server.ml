module Engine = Standoff_xquery.Engine
module Err = Standoff_xquery.Err
module Lexer = Standoff_xquery.Lexer
module Timing = Standoff_util.Timing
module Metrics = Standoff_obs.Metrics
module Trace = Standoff_obs.Trace
module Slow_log = Standoff_obs.Slow_log
module Collection = Standoff_store.Collection
module Doc = Standoff_store.Doc
module Parser = Standoff_xml.Parser
module Serializer = Standoff_xml.Serializer
module Convert = Standoff_convert.Convert
module Config = Standoff.Config
module Catalog = Standoff.Catalog
module Durable = Standoff.Durable
module Region = Standoff_interval.Region
module Pool = Standoff_util.Pool

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let m_connections =
  Metrics.counter "standoff_server_connections_total"
    ~help:"Connections accepted (shed ones included)"

let m_shed =
  Metrics.counter "standoff_server_shed_total"
    ~help:"Connections shed with 503 because the admission queue was full"

let m_queue_depth =
  Metrics.gauge "standoff_server_queue_depth"
    ~help:"Connections waiting in the admission queue"

let m_in_flight =
  Metrics.gauge "standoff_server_in_flight"
    ~help:"Connections currently being served by a worker"

let m_request_seconds =
  Metrics.histogram "standoff_server_request_seconds"
    ~buckets:Metrics.duration_buckets
    ~help:"Wall-clock request latency (parse to response written)"

let m_streamed =
  Metrics.counter "standoff_server_streamed_total"
    ~help:"Responses delivered via chunked streaming"

let m_stream_truncated =
  Metrics.counter "standoff_server_stream_truncated_total"
    ~help:
      "Streamed responses aborted mid-body (no terminating chunk was sent)"

(* Registration is memoized by (name, labels), so calling this per
   response costs one lock + hashtable hit, not a new metric. *)
let count_response code =
  Metrics.incr
    (Metrics.counter "standoff_server_requests_total"
       ~labels:[ ("code", string_of_int code) ]
       ~help:"Responses by status code")

(* ------------------------------------------------------------------ *)
(* A writer-preferring readers-writer lock.  Queries take the shared
   side; updates and node-constructing queries the exclusive one.
   Writer preference keeps a stream of cheap cached queries from
   starving an update indefinitely. *)

module Rw_lock = struct
  type t = {
    m : Mutex.t;
    readable : Condition.t;
    writable : Condition.t;
    mutable readers : int;
    mutable writing : bool;
    mutable waiting_writers : int;
  }

  let create () =
    {
      m = Mutex.create ();
      readable = Condition.create ();
      writable = Condition.create ();
      readers = 0;
      writing = false;
      waiting_writers = 0;
    }

  let read t f =
    Mutex.lock t.m;
    while t.writing || t.waiting_writers > 0 do
      Condition.wait t.readable t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.signal t.writable;
        Mutex.unlock t.m)
      f

  let write t f =
    Mutex.lock t.m;
    t.waiting_writers <- t.waiting_writers + 1;
    while t.writing || t.readers > 0 do
      Condition.wait t.writable t.m
    done;
    t.waiting_writers <- t.waiting_writers - 1;
    t.writing <- true;
    Mutex.unlock t.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.writing <- false;
        Condition.broadcast t.readable;
        Condition.signal t.writable;
        Mutex.unlock t.m)
      f
end

(* ------------------------------------------------------------------ *)
(* The bounded admission queue.  [try_push] never blocks — a full
   queue is the load-shed signal; [pop] blocks until an item arrives
   or the queue is closed and drained. *)

module Bqueue = struct
  type 'a t = {
    m : Mutex.t;
    nonempty : Condition.t;
    items : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
  }

  let create capacity =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      items = Queue.create ();
      capacity;
      closed = false;
    }

  let try_push t x =
    Mutex.lock t.m;
    let ok = (not t.closed) && Queue.length t.items < t.capacity in
    if ok then begin
      Queue.add x t.items;
      Metrics.gauge_set m_queue_depth (Queue.length t.items);
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.m;
    ok

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.items && not t.closed do
      Condition.wait t.nonempty t.m
    done;
    let item =
      if Queue.is_empty t.items then None
      else begin
        let x = Queue.take t.items in
        Metrics.gauge_set m_queue_depth (Queue.length t.items);
        Some x
      end
    in
    Mutex.unlock t.m;
    item

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  max_body_bytes : int;
  max_requests_per_connection : int;
  default_timeout_ms : float option;
  max_timeout_ms : float;
  socket_timeout_s : float;
  grace_s : float;
  retry_after_s : int;
  auth_token : string option;
}

(* Half the domain budget goes to connection workers, the rest stays
   available for intra-query parallelism — the adaptive engine sizes
   its batches against what the reservation leaves
   ([Pool.max_parallelism]), so the two layers share the budget instead
   of multiplying (workers x jobs domains was the PR-5 inversion). *)
let auto_workers () = max 1 ((Pool.domain_budget () + 1) / 2)

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = 0;
    queue_capacity = 64;
    max_body_bytes = 1024 * 1024;
    max_requests_per_connection = 1000;
    default_timeout_ms = Some 30_000.0;
    max_timeout_ms = 300_000.0;
    socket_timeout_s = 30.0;
    grace_s = 10.0;
    retry_after_s = 1;
    auth_token = None;
  }

type state = Created | Running | Stopping | Stopped

type t = {
  cfg : config;
  mutable eng : Engine.t;
      (* replaced once by [install_engine] on a deferred boot; the
         [ready] atomic set after it provides the synchronization, so
         no worker dereferences the placeholder past installation *)
  mutable durable : Durable.t option;
      (* durability coordinator; [None] means purely in-memory (no
         --data-dir), in which case /admin/snapshot answers 409 *)
  ready : bool Atomic.t;
      (* readiness: false between [create_deferred] and
         [install_engine] — the WAL-replay window — during which
         engine-backed endpoints answer 503 and [/healthz?ready=1]
         reports "recovering" *)
  lock : Rw_lock.t;
  listen_fd : Unix.file_descr;
  (* Self-pipe waking the acceptor out of [select]: closing a listening
     socket does not reliably interrupt a thread already blocked in
     [accept], so the acceptor multiplexes over both. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  bound_port : int;
  queue : Unix.file_descr Bqueue.t;
  mutable acceptor : Thread.t option;
  mutable workers : unit Domain.t list;
  live_workers : int Atomic.t;
  (* One slot per worker: the connection it is serving, so [stop] can
     force-close stragglers after the grace period.  Guarded by
     [conn_m] so a shutdown can never race the worker's own close. *)
  conns : Unix.file_descr option array;
  conn_m : Mutex.t;
  stopping : bool Atomic.t;
  mutable state : state;
  state_m : Mutex.t;
  next_request : int Atomic.t;
}

let engine t = t.eng
let port t = t.bound_port
let workers t = t.cfg.workers

let running t =
  Mutex.lock t.state_m;
  let r = match t.state with Running | Stopping -> true | _ -> false in
  Mutex.unlock t.state_m;
  r

let make ?(config = default_config) ~ready eng =
  let config =
    {
      config with
      workers = (if config.workers <= 0 then auto_workers () else config.workers);
      queue_capacity = max 1 config.queue_capacity;
      max_requests_per_connection = max 1 config.max_requests_per_connection;
    }
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  {
    cfg = config;
    eng;
    durable = None;
    ready = Atomic.make ready;
    lock = Rw_lock.create ();
    listen_fd = fd;
    wake_r;
    wake_w;
    bound_port;
    queue = Bqueue.create config.queue_capacity;
    acceptor = None;
    workers = [];
    live_workers = Atomic.make 0;
    conns = Array.make config.workers None;
    conn_m = Mutex.create ();
    stopping = Atomic.make false;
    state = Created;
    state_m = Mutex.create ();
    next_request = Atomic.make 0;
  }

(* Point the engine's durability hook at the WAL: every successful
   in-place update flows through it, and under the Always policy the
   record is on disk before the HTTP response is written — so an
   acknowledged update survives any crash. *)
let wire_durability eng durable =
  match durable with
  | Some d ->
      Engine.set_on_update eng (Some (fun op -> ignore (Durable.log d op)))
  | None -> ()

let create ?config ?durable eng =
  wire_durability eng durable;
  let t = make ?config ~ready:true eng in
  t.durable <- durable;
  t

(* Deferred boot: bind and serve before the store is recovered.  Every
   engine-backed endpoint answers 503 and [/healthz?ready=1] says
   "recovering" until [install_engine] swaps the real engine in — this
   is how a shard stays observable (alive, not ready) through a long
   WAL replay instead of refusing connections. *)
let create_deferred ?config () =
  make ?config ~ready:false (Engine.create (Collection.create ()))

let install_engine t ?durable eng =
  if Atomic.get t.ready then
    invalid_arg "Standoff_server.Server.install_engine: already installed";
  wire_durability eng durable;
  t.eng <- eng;
  t.durable <- durable;
  (* The atomic store publishes the plain field writes above: a worker
     observing [ready = true] sees the installed engine. *)
  Atomic.set t.ready true

let ready t =
  Atomic.get t.ready && not (Atomic.get t.stopping)

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

(* A reply body is either fully materialized ([Full], written with a
   [Content-Length]) or a stream ([Stream], written with chunked
   transfer encoding as the producer emits).  A stream that fails
   before its first byte downgrades to the buffered error [on_error]
   maps the exception to; one that fails mid-body is aborted without
   the terminating chunk, which is the truncation signal on the
   wire. *)
type reply = {
  status : int;
  headers : (string * string) list;
  content_type : string;
  body : body;
}

and body = Full of string | Stream of stream

and stream = {
  sf : (string -> unit) -> unit;
  on_error : exn -> reply;  (** must be total and return a [Full] body *)
}

let text_reply ?(headers = []) status body =
  { status; headers; content_type = "text/plain; charset=utf-8"; body = Full body }

let json_reply ?(headers = []) status body =
  { status; headers; content_type = "application/json"; body = Full body }

let json_error ?request_id ?(extra = "") status msg =
  let rid =
    match request_id with
    | Some id -> Printf.sprintf ", \"request_id\": \"%s\"" id
    | None -> ""
  in
  json_reply status
    (Printf.sprintf "{\"error\": \"%s\"%s%s}\n" (Metrics.json_escape msg) rid
       extra)

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)

(* Raised by parameter parsing; turned into a 400. *)
exception Bad_param of string

let int_param req name =
  match Http.param req name with
  | None -> None
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n -> Some n
      | None -> raise (Bad_param (Printf.sprintf "malformed %s=%S" name v)))

let int64_param req name =
  match Http.param req name with
  | None -> None
  | Some v -> (
      match Int64.of_string_opt (String.trim v) with
      | Some n -> Some n
      | None -> raise (Bad_param (Printf.sprintf "malformed %s=%S" name v)))

let float_param req name =
  match Http.param req name with
  | None -> None
  | Some v -> (
      match float_of_string_opt (String.trim v) with
      | Some f -> Some f
      | None -> raise (Bad_param (Printf.sprintf "malformed %s=%S" name v)))

let require what = function
  | Some v -> v
  | None -> raise (Bad_param (Printf.sprintf "missing required %s" what))

let strategy_param req =
  match Http.param req "strategy" with
  | None -> None
  | Some v -> (
      try Some (Config.strategy_of_string v)
      with Invalid_argument m -> raise (Bad_param m))

(* [?cache=off] bypasses the result cache for this run (the engine's
   own caching level is server-wide configuration, not a per-request
   knob — per-request we can only opt out). *)
let use_cache_param req =
  match Http.param req "cache" with
  | None -> true
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "off" | "0" | "false" | "no" -> false
      | "on" | "1" | "true" | "yes" | "result" | "plan" -> true
      | v -> raise (Bad_param (Printf.sprintf "malformed cache=%S" v)))

(* [?dataguide=off] prepares this request without the DataGuide path
   index (no collapse rewrite, name-count statistics) — a pure
   performance knob, results are byte-identical either way. *)
let dataguide_param req =
  match Http.param req "dataguide" with
  | None -> None
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "off" | "0" | "false" | "no" -> Some false
      | "on" | "1" | "true" | "yes" -> Some true
      | v -> raise (Bad_param (Printf.sprintf "malformed dataguide=%S" v)))

(* [?stream=1] asks for the result via chunked transfer encoding,
   serialized item by item — bounded buffering however large the
   answer.  Bytes are identical to the buffered form. *)
let stream_param req =
  match Http.param req "stream" with
  | None -> false
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "off" | "0" | "false" | "no" -> false
      | "on" | "1" | "true" | "yes" -> true
      | v -> raise (Bad_param (Printf.sprintf "malformed stream=%S" v)))

let deadline_of t req =
  let requested = float_param req "timeout-ms" in
  let effective =
    match (requested, t.cfg.default_timeout_ms) with
    | Some ms, _ -> Some (Float.min ms t.cfg.max_timeout_ms)
    | None, Some ms -> Some ms
    | None, None -> None
  in
  match effective with
  | Some ms when ms > 0.0 -> (Timing.deadline_after (ms /. 1e3), Some ms)
  | Some _ -> (Timing.deadline_after 0.0, Some 0.0)
  | None -> (Timing.no_deadline, None)

let fresh_request_id t =
  Printf.sprintf "r-%d" (Atomic.fetch_and_add t.next_request 1)

let handle_query t req =
  let request_id = fresh_request_id t in
  let with_rid headers = ("X-Request-Id", request_id) :: headers in
  if String.trim req.Http.body = "" then
    json_error ~request_id 400 "empty query body"
  else
    let strategy = strategy_param req in
    let jobs = int_param req "jobs" in
    let use_cache = use_cache_param req in
    let dataguide = dataguide_param req in
    let stream = stream_param req in
    let context_doc = Http.param req "context" in
    let deadline, timeout_ms = deadline_of t req in
    let trace = Trace.create () in
    Trace.set_str (Trace.root trace) "request_id" request_id;
    (* Total error mapper, shared between the buffered path and a
       stream failing before its first emitted byte. *)
    let query_error = function
      | Timing.Deadline_exceeded ->
          (* The engine's cleanup finished the collector, so the partial
             trace is a well-formed span tree — and since the deadline is
             also checked during serialization, no half-written result
             ever reaches this point. *)
          let extra =
            Printf.sprintf ", \"timeout_ms\": %g, \"trace\": %s"
              (Option.value ~default:0.0 timeout_ms)
              (Trace.to_json trace)
          in
          json_error ~request_id ~extra 408 "deadline exceeded"
      | Err.Error msg -> json_error ~request_id 400 msg
      | Lexer.Syntax_error { line; col; msg } ->
          json_error ~request_id 400
            (Printf.sprintf "syntax error at line %d, col %d: %s" line col msg)
      | exn ->
          Printf.eprintf "standoff-server: internal error on %s: %s\n%!"
            req.Http.target (Printexc.to_string exn);
          json_error ~request_id 500 "internal server error"
    in
    try
      (* Prepare under the shared lock (it reads collection statistics),
         then decide which side the evaluation needs: a constructing
         run's checkpoint/rollback must not interleave with anything
         else, so it gets the exclusive side. *)
      let prepared =
        Rw_lock.read t.lock (fun () ->
            Engine.prepare t.eng ?strategy ?dataguide ~trace req.Http.body)
      in
      let constructs = Engine.prepared_constructs prepared in
      if stream then
        (* The run happens lazily inside the stream body, so evaluation
           errors raised before the first emitted byte still downgrade
           to ordinary buffered error replies via [on_error]; a failure
           after it aborts the chunk stream, which is the truncation
           signal.  The lock is held across the emit loop: region reads
           and constructed-node rollback must not interleave with
           updates, exactly as on the buffered path. *)
        let sf emit =
          let run () =
            ignore
              (Engine.run_prepared t.eng ~deadline ?context_doc
                 ~rollback_constructed:constructs ~use_cache ?jobs ~emit
                 ~trace prepared);
            (* The buffered path appends one newline; keep the bytes
               identical. *)
            emit "\n"
          in
          if constructs then Rw_lock.write t.lock run
          else Rw_lock.read t.lock run
        in
        {
          status = 200;
          headers = with_rid [ ("X-Standoff-Stream", "1") ];
          content_type = "text/plain; charset=utf-8";
          body = Stream { sf; on_error = query_error };
        }
      else
        let run () =
          Engine.run_prepared t.eng ~deadline ?context_doc
            ~rollback_constructed:constructs ~use_cache ?jobs ~trace prepared
        in
        let result =
          if constructs then Rw_lock.write t.lock run
          else Rw_lock.read t.lock run
        in
        let cache_attr =
          match result.Engine.trace with
          | Some root ->
              Option.value ~default:"off" (Trace.str_attr root "cache")
          | None -> "off"
        in
        text_reply 200
          ~headers:(with_rid [ ("X-Standoff-Cache", cache_attr) ])
          (result.Engine.serialized ^ "\n")
    with
    | (Timing.Deadline_exceeded | Err.Error _ | Lexer.Syntax_error _) as exn ->
        query_error exn

(* The update endpoint: the region mutations of [Standoff.Update],
   exposed over the wire.  Always exclusive: an in-place attribute
   rewrite must never race an evaluation reading the same document. *)
let handle_update t req =
  let request_id = fresh_request_id t in
  let doc_name = require "doc parameter" (Http.param req "doc") in
  (* The annotation vocabulary defaults to start=/end= attributes; the
     caller can rename via ?start-attr= / ?end-attr= / ?type-attr=. *)
  let config =
    List.fold_left
      (fun cfg (param, opt) ->
        match Http.param req param with
        | Some value -> Config.set_option cfg ~name:opt ~value
        | None -> cfg)
      Config.default
      [ ("start-attr", "start"); ("end-attr", "end"); ("type-attr", "type") ]
  in
  let op = Option.value ~default:"set-region" (Http.param req "op") in
  Rw_lock.write t.lock (fun () ->
      match Collection.doc_id_of_name (Engine.collection t.eng) doc_name with
      | None -> json_error ~request_id 404 ("document not found: " ^ doc_name)
      | Some doc_id -> (
          let doc = Collection.doc (Engine.collection t.eng) doc_id in
          let cat = Engine.catalog t.eng in
          try
            (* The engine wrappers apply the update and, on success,
               feed its WAL record to the durability hook — so by the
               time we build the 200 below, an [--fsync always] server
               has the record on disk. *)
            let detail =
              match op with
              | "set-region" | "set" ->
                  let pre = require "pre parameter" (int_param req "pre") in
                  let start =
                    require "start parameter" (int64_param req "start")
                  in
                  let end_ =
                    require "end parameter" (int64_param req "end")
                  in
                  Engine.set_region t.eng config doc ~pre
                    (Region.make start end_);
                  Printf.sprintf "\"op\": \"set-region\", \"pre\": %d" pre
              | "shift" ->
                  let from =
                    require "from parameter" (int64_param req "from")
                  in
                  let by = require "by parameter" (int64_param req "by") in
                  let moved =
                    Engine.shift_annotations t.eng config doc ~from ~by
                  in
                  Printf.sprintf "\"op\": \"shift\", \"moved\": %d" moved
              | op -> raise (Bad_param (Printf.sprintf "unknown op=%S" op))
            in
            (* Periodic compaction rides the update path: we already
               hold the writer lock, which [Durable.snapshot] requires. *)
            (match t.durable with
            | Some d ->
                ignore
                  (Durable.maybe_snapshot d ~generation:(Catalog.version cat))
            | None -> ());
            json_reply 200
              ~headers:[ ("X-Request-Id", request_id) ]
              (Printf.sprintf
                 "{\"ok\": true, %s, \"doc\": \"%s\", \"generation\": %d, \
                  \"version\": %d, \"durable\": %b}\n"
                 detail
                 (Metrics.json_escape doc_name)
                 (Catalog.generation cat doc_name)
                 (Catalog.version cat)
                 (t.durable <> None))
          with Invalid_argument msg -> json_error ~request_id 400 msg))

(* Bulk ingestion.  Body framing: with [?name=], the whole body is one
   XML document of that name; without it, the body is a sequence of
   frames, each a header line [<name> <decimal-length>] followed by
   exactly [length] bytes of XML (whitespace between frames is
   skipped).  The scan is a single forward cursor and each part is
   parsed, converted and shredded as it is encountered — all before
   the write lock is taken, so concurrent queries keep flowing while a
   batch is prepared.  The batch then goes through [Engine.ingest] in
   one exclusive section: one region-index and DataGuide build per
   document, one catalogue version bump, one WAL record. *)
let scan_frames body on_part =
  let n = String.length body in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n
      && match body.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  skip_ws ();
  if !pos >= n then raise (Bad_param "empty ingest body");
  while !pos < n do
    let nl =
      match String.index_from_opt body !pos '\n' with
      | Some i -> i
      | None -> raise (Bad_param "truncated ingest frame header")
    in
    let header = String.trim (String.sub body !pos (nl - !pos)) in
    let name, len =
      match String.rindex_opt header ' ' with
      | Some i -> (
          let name = String.trim (String.sub header 0 i) in
          let len_s =
            String.sub header (i + 1) (String.length header - i - 1)
          in
          match int_of_string_opt len_s with
          | Some l when l >= 0 && name <> "" -> (name, l)
          | _ ->
              raise
                (Bad_param
                   (Printf.sprintf "malformed ingest frame header %S" header)))
      | None ->
          raise
            (Bad_param
               (Printf.sprintf
                  "malformed ingest frame header %S (want \"<name> <length>\")"
                  header))
    in
    if nl + 1 + len > n then
      raise
        (Bad_param (Printf.sprintf "ingest frame %S: payload truncated" name));
    on_part name (String.sub body (nl + 1) len);
    pos := nl + 1 + len;
    skip_ws ()
  done

let handle_ingest t req =
  let request_id = fresh_request_id t in
  let convert =
    match Option.value ~default:"standoff" (Http.param req "convert") with
    | "standoff" -> `Standoff
    | "none" -> `None
    | v -> raise (Bad_param (Printf.sprintf "unknown convert=%S" v))
  in
  let docs = ref [] and blobs = ref [] in
  let add_part name payload =
    match convert with
    | `None -> docs := Doc.parse ~name payload :: !docs
    | `Standoff ->
        let conv = Convert.to_standoff (Parser.parse_string payload) in
        docs := Doc.of_dom ~name conv.Convert.doc :: !docs;
        blobs := (name ^ ".blob", conv.Convert.blob) :: !blobs
  in
  match
    (match Http.param req "name" with
    | Some name ->
        if String.trim req.Http.body = "" then
          raise (Bad_param "empty ingest body");
        add_part name req.Http.body
    | None -> scan_frames req.Http.body add_part)
  with
  | exception Parser.Parse_error { line; col; msg } ->
      json_error ~request_id 400
        (Printf.sprintf "parse error at line %d, col %d: %s" line col msg)
  | exception Invalid_argument msg -> json_error ~request_id 400 msg
  | () ->
      let docs = List.rev !docs and blobs = List.rev !blobs in
      Rw_lock.write t.lock (fun () ->
          let cat = Engine.catalog t.eng in
          try
            let n = Engine.ingest t.eng docs blobs in
            (match t.durable with
            | Some d ->
                ignore
                  (Durable.maybe_snapshot d ~generation:(Catalog.version cat))
            | None -> ());
            json_reply 200
              ~headers:[ ("X-Request-Id", request_id) ]
              (Printf.sprintf
                 "{\"ok\": true, \"ingested\": %d, \"docs\": [%s], \
                  \"version\": %d, \"durable\": %b}\n"
                 n
                 (String.concat ", "
                    (List.map
                       (fun (d : Doc.t) ->
                         Printf.sprintf "\"%s\""
                           (Metrics.json_escape d.Doc.doc_name))
                       docs))
                 (Catalog.version cat)
                 (t.durable <> None))
          with Invalid_argument msg ->
            (* Engine.ingest validates the whole batch before touching
               anything, so a name conflict rejects it atomically. *)
            json_error ~request_id 409 msg)

(* Operator-triggered compaction: snapshot now, under the writer lock.
   409 when the server runs without a data directory. *)
let handle_snapshot t _req =
  let request_id = fresh_request_id t in
  match t.durable with
  | None ->
      json_error ~request_id 409 "server is running without --data-dir"
  | Some d ->
      Rw_lock.write t.lock (fun () ->
          let generation = Catalog.version (Engine.catalog t.eng) in
          let path = Durable.snapshot d ~generation in
          json_reply 200
            ~headers:[ ("X-Request-Id", request_id) ]
            (Printf.sprintf
               "{\"ok\": true, \"snapshot\": \"%s\", \"generation\": %d}\n"
               (Metrics.json_escape path) generation))

let handle_explain t req =
  let text =
    match (req.Http.meth, Http.param req "q") with
    | "POST", _ when String.trim req.Http.body <> "" -> req.Http.body
    | _, Some q when String.trim q <> "" -> q
    | _ -> raise (Bad_param "missing query (?q= or POST body)")
  in
  let strategy = strategy_param req in
  let optimize =
    match Http.param req "optimize" with
    | Some ("false" | "0" | "no") -> Some false
    | _ -> None
  in
  let dataguide = dataguide_param req in
  try
    Rw_lock.read t.lock (fun () ->
        text_reply 200
          (Engine.explain t.eng ?strategy ?optimize ?dataguide text ^ "\n"))
  with
  | Err.Error msg -> json_error 400 msg
  | Lexer.Syntax_error { line; col; msg } ->
      json_error 400
        (Printf.sprintf "syntax error at line %d, col %d: %s" line col msg)

let known_paths =
  [
    ("/query", [ "POST" ]);
    ("/update", [ "POST" ]);
    ("/ingest", [ "POST" ]);
    ("/admin/snapshot", [ "POST" ]);
    ("/explain", [ "GET"; "POST" ]);
    ("/metrics", [ "GET" ]);
    ("/slow", [ "GET" ]);
    ("/healthz", [ "GET" ]);
  ]

(* Paths behind the bearer token when one is configured.  Health and
   metrics stay open — probes and scrapers don't carry credentials —
   and so does /explain, which never touches document content. *)
let protected_path path =
  match path with
  | "/query" | "/update" | "/ingest" -> true
  | _ ->
      String.length path >= 7 && String.sub path 0 7 = "/admin/"

let authorized t (req : Http.request) =
  match t.cfg.auth_token with
  | None -> true
  | Some token when protected_path req.Http.path -> (
      match Http.bearer_token req.Http.headers with
      | Some presented -> Http.const_time_eq token presented
      | None -> false)
  | Some _ -> true

let unauthorized =
  {
    (json_error 401 "missing or invalid bearer token") with
    headers = [ ("WWW-Authenticate", "Bearer") ];
  }

(* Endpoints that dereference the engine are gated on readiness: during
   a deferred boot's WAL replay (and during graceful drain) they answer
   503 so a load balancer retries elsewhere instead of hitting the
   placeholder engine. *)
let engine_backed path =
  match path with
  | "/query" | "/update" | "/ingest" | "/explain" -> true
  | _ -> String.length path >= 7 && String.sub path 0 7 = "/admin/"

let handle_healthz t req =
  (* Liveness (bare GET /healthz) answers 200 for as long as the
     process serves HTTP at all; readiness (?ready=1) is the signal a
     router or load balancer keys traffic on. *)
  let want_ready =
    match Http.param req "ready" with
    | None -> false
    | Some v -> (
        match String.lowercase_ascii (String.trim v) with
        | "off" | "0" | "false" | "no" -> false
        | _ -> true)
  in
  if not want_ready then text_reply 200 "ok\n"
  else if Atomic.get t.stopping then
    text_reply 503
      ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ]
      "draining\n"
  else if not (Atomic.get t.ready) then
    text_reply 503
      ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ]
      "recovering\n"
  else text_reply 200 "ready\n"

let route t (req : Http.request) =
  if not (authorized t req) then unauthorized
  else if engine_backed req.Http.path && not (Atomic.get t.ready) then
    {
      (json_error 503 "recovering: store replay in progress") with
      headers = [ ("Retry-After", string_of_int t.cfg.retry_after_s) ];
    }
  else
    match (req.Http.meth, req.Http.path) with
    | "GET", "/healthz" -> handle_healthz t req
    | "GET", "/metrics" ->
        {
          status = 200;
          headers = [];
          content_type = "text/plain; version=0.0.4; charset=utf-8";
          body = Full (Metrics.expose ());
        }
    | "GET", "/slow" -> json_reply 200 (Slow_log.to_json () ^ "\n")
    | ("GET" | "POST"), "/explain" -> handle_explain t req
    | "POST", "/query" -> handle_query t req
    | "POST", "/update" -> handle_update t req
    | "POST", "/ingest" -> handle_ingest t req
    | "POST", "/admin/snapshot" -> handle_snapshot t req
    | meth, path -> (
        match List.assoc_opt path known_paths with
        | Some allowed ->
            {
              (json_error 405 ("method not allowed: " ^ meth)) with
              headers = [ ("Allow", String.concat ", " allowed) ];
            }
        | None -> json_error 404 ("no such endpoint: " ^ path))

(* ------------------------------------------------------------------ *)
(* Connection serving                                                  *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Write a reply; returns whether the connection can be kept alive.
   [Full] bodies go out with a [Content-Length] as before.  [Stream]
   bodies commit to a chunked head lazily, on the producer's first
   emitted byte: a producer failing before then downgrades to the
   buffered reply [on_error] maps the exception to, while a failure
   after it aborts without the terminating chunk — truncation the
   client can detect — and forces the connection closed. *)
let rec send_reply fd ~keep_alive reply =
  match reply.body with
  | Full body ->
      count_response reply.status;
      Http.write_response fd ~status:reply.status ~headers:reply.headers
        ~content_type:reply.content_type ~keep_alive body;
      keep_alive
  | Stream { sf; on_error } -> (
      let writer = ref None in
      let force_writer () =
        match !writer with
        | Some w -> w
        | None ->
            Http.write_response_head fd ~status:reply.status
              ~headers:reply.headers ~content_type:reply.content_type
              ~keep_alive ();
            let w = Http.chunk_writer fd in
            writer := Some w;
            w
      in
      let emit s = Http.chunk (force_writer ()) s in
      match sf emit with
      | () ->
          (* An empty stream still owes the client a (zero-length)
             chunked body. *)
          Http.chunk_end (force_writer ());
          count_response reply.status;
          Metrics.incr m_streamed;
          keep_alive
      | exception exn -> (
          match !writer with
          | None -> send_reply fd ~keep_alive (on_error exn)
          | Some _ ->
              count_response reply.status;
              Metrics.incr m_streamed;
              Metrics.incr m_stream_truncated;
              (match exn with
              | Unix.Unix_error _ | Http.Closed ->
                  (* The client went away mid-stream; nothing to tell. *)
                  ()
              | exn ->
                  Printf.eprintf
                    "standoff-server: stream aborted mid-body: %s\n%!"
                    (Printexc.to_string exn));
              false))

(* Serve every request a connection carries.  Never closes [fd] — the
   worker loop owns the close (under [conn_m], so [stop]'s force-
   shutdown can't race it). *)
let serve_connection t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.socket_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.socket_timeout_s;
     (* Streamed replies go out as head + chunks in separate small
        writes; TCP_NODELAY keeps Nagle from stalling each on the
        peer's delayed ACK. *)
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let reader = Http.reader fd in
  let served = ref 0 in
  let continue = ref true in
  while !continue do
    continue := false;
    match Http.read_request ~max_body:t.cfg.max_body_bytes reader with
    | exception Http.Closed -> ()
    | exception
        Unix.Unix_error
          ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET | EPIPE | EBADF), _, _)
      ->
        (* Receive timeout or a peer/force-closed socket: just drop the
           connection; there is no request to answer. *)
        ()
    | exception Http.Bad_request msg -> (
        try ignore (send_reply fd ~keep_alive:false (json_error 400 msg))
        with Unix.Unix_error _ -> ())
    | exception Http.Not_implemented msg -> (
        (* Chunked request bodies: answer 501 instead of dropping the
           connection, so clients get a diagnosable refusal. *)
        try ignore (send_reply fd ~keep_alive:false (json_error 501 msg))
        with Unix.Unix_error _ -> ())
    | exception Http.Payload_too_large cap -> (
        try
          ignore
            (send_reply fd ~keep_alive:false
               (json_error 413
                  (Printf.sprintf "request body exceeds %d bytes" cap)))
        with Unix.Unix_error _ -> ())
    | req -> (
        incr served;
        let keep_alive =
          Http.wants_keep_alive req
          && !served < t.cfg.max_requests_per_connection
          && not (Atomic.get t.stopping)
        in
        let t0 = Timing.now () in
        let reply =
          try route t req with
          | Bad_param msg -> json_error 400 msg
          | Http.Bad_request msg -> json_error 400 msg
          | exn ->
              (* A handler bug must kill the request, not the worker. *)
              Printf.eprintf "standoff-server: internal error on %s %s: %s\n%!"
                req.Http.meth req.Http.target (Printexc.to_string exn);
              json_error 500 "internal server error"
        in
        Metrics.observe m_request_seconds (Timing.now () -. t0);
        match send_reply fd ~keep_alive reply with
        | ka -> continue := ka
        | exception Unix.Unix_error _ -> ())
  done

(* The 503 the acceptor sends without admitting the connection.  A
   short send timeout keeps a slow-reading client from stalling the
   accept loop. *)
let shed t fd =
  Metrics.incr m_shed;
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
     count_response 503;
     Http.write_response fd ~status:503
       ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ]
       ~content_type:"application/json" ~keep_alive:false
       "{\"error\": \"server overloaded, admission queue full\"}\n"
   with Unix.Unix_error _ | Http.Bad_request _ -> ());
  close_noerr fd

let rec accept_loop t =
  if Atomic.get t.stopping then ()
  else
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error ((EINTR | EAGAIN), _, _) -> accept_loop t
    | exception Unix.Unix_error (EBADF, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.wake_r ready then () (* [stop] woke us: done *)
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ((EBADF | EINVAL | ECONNABORTED | EINTR | EAGAIN), _, _) ->
              ()
          | fd, _ ->
              Metrics.incr m_connections;
              if Atomic.get t.stopping then close_noerr fd
              else if not (Bqueue.try_push t.queue fd) then shed t fd);
          accept_loop t
        end

let worker_loop t i =
  let rec go () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some fd ->
        Mutex.lock t.conn_m;
        t.conns.(i) <- Some fd;
        Mutex.unlock t.conn_m;
        Metrics.gauge_add m_in_flight 1;
        (try serve_connection t fd
         with exn ->
           Printf.eprintf "standoff-server: worker %d: %s\n%!" i
             (Printexc.to_string exn));
        Metrics.gauge_add m_in_flight (-1);
        Mutex.lock t.conn_m;
        t.conns.(i) <- None;
        close_noerr fd;
        Mutex.unlock t.conn_m;
        go ()
  in
  Atomic.incr t.live_workers;
  Fun.protect ~finally:(fun () -> Atomic.decr t.live_workers) go

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start t =
  Mutex.lock t.state_m;
  (match t.state with
  | Created -> t.state <- Running
  | _ ->
      Mutex.unlock t.state_m;
      invalid_arg "Standoff_server.Server.start: already started");
  Mutex.unlock t.state_m;
  (* A peer closing mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* Register the connection workers against the process domain budget:
     the scheduler spawns fewer pool workers while the server runs, and
     the engine's adaptive sizing sees the reduced
     [Pool.max_parallelism]. *)
  Pool.reserve_domains t.cfg.workers;
  t.workers <-
    List.init t.cfg.workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t.acceptor <- Some (Thread.create accept_loop t)

let stop ?grace_s t =
  let grace = Option.value ~default:t.cfg.grace_s grace_s in
  let proceed =
    Mutex.lock t.state_m;
    let p = t.state = Running in
    if p then t.state <- Stopping;
    Mutex.unlock t.state_m;
    p
  in
  if proceed then begin
    Atomic.set t.stopping true;
    (* Stop accepting: a byte down the self-pipe pops the acceptor out
       of [select]; only then is the listening socket closed. *)
    (try ignore (Unix.write_substring t.wake_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.acceptor with
    | Some th -> Thread.join th
    | None -> ());
    close_noerr t.listen_fd;
    close_noerr t.wake_r;
    close_noerr t.wake_w;
    (* Drain: workers keep serving queued and in-flight connections
       (keep-alive responses now say close); [close] lets them exit
       once the queue is empty. *)
    Bqueue.close t.queue;
    let deadline = Timing.now () +. grace in
    while Atomic.get t.live_workers > 0 && Timing.now () < deadline do
      Thread.delay 0.02
    done;
    if Atomic.get t.live_workers > 0 then begin
      (* Grace expired: force the stragglers' sockets shut.  Their
         reads return EOF / their writes fail, and the workers exit;
         the fds themselves are still closed by their owning worker. *)
      Mutex.lock t.conn_m;
      Array.iter
        (function
          | Some fd -> (
              try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ())
          | None -> ())
        t.conns;
      Mutex.unlock t.conn_m
    end;
    List.iter Domain.join t.workers;
    t.workers <- [];
    Pool.release_domains t.cfg.workers;
    Mutex.lock t.state_m;
    t.state <- Stopped;
    Mutex.unlock t.state_m
  end
