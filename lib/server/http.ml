exception Bad_request of string
exception Payload_too_large of int
exception Closed

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

(* Hard wire-format bounds, independent of the configurable body cap:
   a peer feeding an endless header section must run into a limit. *)
let max_line_bytes = 16 * 1024
let max_header_count = 128

(* ------------------------------------------------------------------ *)
(* Buffered reading                                                    *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (** next unread byte *)
  mutable len : int;  (** valid bytes in [buf] *)
}

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

let refill r =
  let n = Unix.read r.fd r.buf 0 (Bytes.length r.buf) in
  if n = 0 then raise Closed;
  r.pos <- 0;
  r.len <- n

let read_byte r =
  if r.pos >= r.len then refill r;
  let c = Bytes.get r.buf r.pos in
  r.pos <- r.pos + 1;
  c

(* One header/request line, CRLF- (or bare-LF-) terminated, terminator
   stripped. *)
let read_line r =
  let b = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | '\n' -> ()
    | c ->
        if Buffer.length b >= max_line_bytes then
          raise (Bad_request "header line too long");
        Buffer.add_char b c;
        go ()
  in
  go ();
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_exact r n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.pos >= r.len then refill r;
    let take = min (n - !filled) (r.len - r.pos) in
    Bytes.blit r.buf r.pos out !filled take;
    r.pos <- r.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* ------------------------------------------------------------------ *)
(* Encoding helpers                                                    *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Bad_request "invalid percent escape")

let decode ~plus_is_space s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '+' when plus_is_space -> Buffer.add_char b ' '
    | '%' ->
        if !i + 2 >= n then raise (Bad_request "truncated percent escape");
        Buffer.add_char b
          (Char.chr ((16 * hex_val s.[!i + 1]) + hex_val s.[!i + 2]));
        i := !i + 2
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

(* [+ -> space] is form encoding, which applies to query keys/values
   only; in the path component a literal [+] is just a [+]. *)
let url_decode s = decode ~plus_is_space:true s
let path_decode s = decode ~plus_is_space:false s

let url_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
          Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let parse_target target =
  let path_raw, query_raw =
    match String.index_opt target '?' with
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
    | None -> (target, "")
  in
  let params =
    if query_raw = "" then []
    else
      String.split_on_char '&' query_raw
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | Some i ->
                 ( url_decode (String.sub kv 0 i),
                   url_decode
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
             | None -> (url_decode kv, ""))
  in
  (path_decode path_raw, params)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let is_token_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
      true
  | _ -> false

let is_token s = s <> "" && String.for_all is_token_char s

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if not (is_token meth) then raise (Bad_request "malformed method");
      if target = "" || target.[0] <> '/' then
        raise (Bad_request "malformed request-target");
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        raise (Bad_request "unsupported HTTP version");
      (meth, target, version)
  | _ -> raise (Bad_request "malformed request line")

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request "malformed header (no colon)")
  | Some i ->
      let name = String.sub line 0 i in
      if not (is_token name) then raise (Bad_request "malformed header name");
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      (String.lowercase_ascii name, value)

let read_headers r =
  let rec go acc count =
    match read_line r with
    | "" -> List.rev acc
    | line ->
        if count >= max_header_count then
          raise (Bad_request "too many headers");
        (* Obsolete line folding (a continuation starting with
           whitespace) is a request smuggling vector; RFC 9112 lets a
           server reject it outright. *)
        if line.[0] = ' ' || line.[0] = '\t' then
          raise (Bad_request "obsolete header folding");
        go (parse_header_line line :: acc) (count + 1)
  in
  go [] 0

let assoc_header headers name = List.assoc_opt (String.lowercase_ascii name) headers

let body_length headers ~max_body =
  match assoc_header headers "transfer-encoding" with
  | Some _ -> raise (Bad_request "transfer-encoding not supported")
  | None -> (
      match assoc_header headers "content-length" with
      | None -> 0
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 ->
              if n > max_body then raise (Payload_too_large max_body);
              n
          | _ -> raise (Bad_request "malformed content-length")))

let read_request ?(max_body = 1024 * 1024) r =
  let meth, target, version = parse_request_line (read_line r) in
  let headers = read_headers r in
  let body = read_exact r (body_length headers ~max_body) in
  let path, query = parse_target target in
  { meth; target; path; query; version; headers; body }

let header req name = assoc_header req.headers name
let param req name = List.assoc_opt name req.query

let wants_keep_alive req =
  let connection =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match (req.version, connection) with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let write_response fd ~status ?(headers = [])
    ?(content_type = "text/plain; charset=utf-8") ~keep_alive body =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let write_request fd ~meth ~target ?(headers = []) body =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  if not (List.mem_assoc "Host" headers) then
    Buffer.add_string b "Host: localhost\r\n";
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)

let read_response r =
  let status_line = read_line r in
  let status =
    match String.split_on_char ' ' status_line with
    | version :: code :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> raise (Bad_request "malformed status code"))
    | _ -> raise (Bad_request "malformed status line")
  in
  let headers = read_headers r in
  let body =
    match assoc_header headers "content-length" with
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> read_exact r n
        | _ -> raise (Bad_request "malformed content-length"))
    | None ->
        (* Read-to-EOF fallback for peers that close to delimit. *)
        let b = Buffer.create 256 in
        (try
           while true do
             Buffer.add_char b (read_byte r)
           done
         with Closed -> ());
        Buffer.contents b
  in
  { status; r_headers = headers; r_body = body }

let response_header resp name = assoc_header resp.r_headers name
