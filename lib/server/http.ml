exception Bad_request of string
exception Payload_too_large of int
exception Not_implemented of string
exception Closed

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

(* Hard wire-format bounds, independent of the configurable body cap:
   a peer feeding an endless header section must run into a limit. *)
let max_line_bytes = 16 * 1024
let max_header_count = 128

(* ------------------------------------------------------------------ *)
(* Buffered reading                                                    *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (** next unread byte *)
  mutable len : int;  (** valid bytes in [buf] *)
}

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

let refill r =
  let n = Unix.read r.fd r.buf 0 (Bytes.length r.buf) in
  if n = 0 then raise Closed;
  r.pos <- 0;
  r.len <- n

let read_byte r =
  if r.pos >= r.len then refill r;
  let c = Bytes.get r.buf r.pos in
  r.pos <- r.pos + 1;
  c

(* One header/request line, CRLF- (or bare-LF-) terminated, terminator
   stripped. *)
let read_line r =
  let b = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | '\n' -> ()
    | c ->
        if Buffer.length b >= max_line_bytes then
          raise (Bad_request "header line too long");
        Buffer.add_char b c;
        go ()
  in
  go ();
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_exact r n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.pos >= r.len then refill r;
    let take = min (n - !filled) (r.len - r.pos) in
    Bytes.blit r.buf r.pos out !filled take;
    r.pos <- r.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

(* ------------------------------------------------------------------ *)
(* Encoding helpers                                                    *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Bad_request "invalid percent escape")

let decode ~plus_is_space s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '+' when plus_is_space -> Buffer.add_char b ' '
    | '%' ->
        if !i + 2 >= n then raise (Bad_request "truncated percent escape");
        Buffer.add_char b
          (Char.chr ((16 * hex_val s.[!i + 1]) + hex_val s.[!i + 2]));
        i := !i + 2
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

(* [+ -> space] is form encoding, which applies to query keys/values
   only; in the path component a literal [+] is just a [+]. *)
let url_decode s = decode ~plus_is_space:true s
let path_decode s = decode ~plus_is_space:false s

let url_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
          Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let parse_target target =
  let path_raw, query_raw =
    match String.index_opt target '?' with
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
    | None -> (target, "")
  in
  let params =
    if query_raw = "" then []
    else
      String.split_on_char '&' query_raw
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | Some i ->
                 ( url_decode (String.sub kv 0 i),
                   url_decode
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
             | None -> (url_decode kv, ""))
  in
  (path_decode path_raw, params)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let is_token_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
      true
  | _ -> false

let is_token s = s <> "" && String.for_all is_token_char s

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if not (is_token meth) then raise (Bad_request "malformed method");
      if target = "" || target.[0] <> '/' then
        raise (Bad_request "malformed request-target");
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        raise (Bad_request "unsupported HTTP version");
      (meth, target, version)
  | _ -> raise (Bad_request "malformed request line")

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request "malformed header (no colon)")
  | Some i ->
      let name = String.sub line 0 i in
      if not (is_token name) then raise (Bad_request "malformed header name");
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      (String.lowercase_ascii name, value)

let read_headers r =
  let rec go acc count =
    match read_line r with
    | "" -> List.rev acc
    | line ->
        if count >= max_header_count then
          raise (Bad_request "too many headers");
        (* Obsolete line folding (a continuation starting with
           whitespace) is a request smuggling vector; RFC 9112 lets a
           server reject it outright. *)
        if line.[0] = ' ' || line.[0] = '\t' then
          raise (Bad_request "obsolete header folding");
        go (parse_header_line line :: acc) (count + 1)
  in
  go [] 0

let assoc_header headers name = List.assoc_opt (String.lowercase_ascii name) headers

(* A request body framed with [Transfer-Encoding: chunked] is valid
   HTTP/1.1 that this server simply does not serve: answering 501 (and
   closing, since the body boundary is unknown) beats dropping the
   connection.  Any other transfer coding is a syntax-level reject. *)
let body_length headers ~max_body =
  match assoc_header headers "transfer-encoding" with
  | Some v when String.lowercase_ascii (String.trim v) = "chunked" ->
      raise (Not_implemented "chunked request bodies are not supported")
  | Some v ->
      raise (Bad_request (Printf.sprintf "unsupported transfer-encoding %S" v))
  | None -> (
      match assoc_header headers "content-length" with
      | None -> 0
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 ->
              if n > max_body then raise (Payload_too_large max_body);
              n
          | _ -> raise (Bad_request "malformed content-length")))

let read_request ?(max_body = 1024 * 1024) r =
  let meth, target, version = parse_request_line (read_line r) in
  let headers = read_headers r in
  let body = read_exact r (body_length headers ~max_body) in
  let path, query = parse_target target in
  { meth; target; path; query; version; headers; body }

let header req name = assoc_header req.headers name
let param req name = List.assoc_opt name req.query

let wants_keep_alive req =
  let connection =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match (req.version, connection) with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 401 -> "Unauthorized"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let write_response fd ~status ?(headers = [])
    ?(content_type = "text/plain; charset=utf-8") ~keep_alive body =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Chunked transfer encoding, write side.  The head announces
   [Transfer-Encoding: chunked] instead of a [Content-Length]; the
   body then streams through a [chunk_writer], which coalesces small
   emissions into chunks of about [threshold] bytes — the per-
   connection peak buffering is the threshold, never the whole
   response. *)

let write_response_head fd ~status ?(headers = [])
    ?(content_type = "text/plain; charset=utf-8") ~keep_alive () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b "Transfer-Encoding: chunked\r\n";
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  write_all fd (Buffer.contents b)

type chunk_writer = {
  cw_fd : Unix.file_descr;
  cw_buf : Buffer.t;
  cw_threshold : int;
  mutable cw_bytes : int;  (** payload bytes written so far *)
  mutable cw_chunks : int;  (** HTTP chunks emitted so far *)
}

let chunk_writer ?(threshold = 8192) fd =
  {
    cw_fd = fd;
    cw_buf = Buffer.create (min threshold 8192);
    cw_threshold = max 1 threshold;
    cw_bytes = 0;
    cw_chunks = 0;
  }

let chunk_flush w =
  let len = Buffer.length w.cw_buf in
  if len > 0 then begin
    write_all w.cw_fd (Printf.sprintf "%x\r\n" len);
    write_all w.cw_fd (Buffer.contents w.cw_buf);
    write_all w.cw_fd "\r\n";
    Buffer.clear w.cw_buf;
    w.cw_chunks <- w.cw_chunks + 1
  end

let chunk w s =
  Buffer.add_string w.cw_buf s;
  w.cw_bytes <- w.cw_bytes + String.length s;
  if Buffer.length w.cw_buf >= w.cw_threshold then chunk_flush w

(* The last-chunk terminator: its presence is what lets a client
   distinguish a complete chunked response from a truncated one. *)
let chunk_end w =
  chunk_flush w;
  write_all w.cw_fd "0\r\n\r\n"

let chunk_writer_bytes w = w.cw_bytes
let chunk_writer_chunks w = w.cw_chunks

(* ------------------------------------------------------------------ *)
(* Chunked transfer encoding, read side (responses only: requests
   framed this way are answered 501 above).  [iter] hands the payload
   to [emit] in blocks no larger than the reader's buffer, so piping a
   chunked body (the router's job) never materializes it. *)

module Chunked = struct
  let chunk_size r =
    let line = read_line r in
    let size_str =
      match String.index_opt line ';' with
      | Some i -> String.sub line 0 i (* chunk extensions: ignored *)
      | None -> line
    in
    let size_str = String.trim size_str in
    let is_hex = function
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
      | _ -> false
    in
    if size_str = "" || not (String.for_all is_hex size_str) then
      raise (Bad_request "malformed chunk size");
    match int_of_string_opt ("0x" ^ size_str) with
    | Some n when n >= 0 -> n
    | _ -> raise (Bad_request "malformed chunk size")

  (* Stream [size] payload bytes to [emit] without assembling them. *)
  let blocks r size emit =
    let remaining = ref size in
    while !remaining > 0 do
      if r.pos >= r.len then refill r;
      let take = min !remaining (r.len - r.pos) in
      emit (Bytes.sub_string r.buf r.pos take);
      r.pos <- r.pos + take;
      remaining := !remaining - take
    done

  let iter ?(max_body = max_int) r emit =
    let total = ref 0 in
    let rec go () =
      let size = chunk_size r in
      if size = 0 then begin
        (* Trailer section: drop until the blank line. *)
        let rec drop () = if read_line r <> "" then drop () in
        drop ()
      end
      else begin
        total := !total + size;
        if !total > max_body then raise (Payload_too_large max_body);
        blocks r size emit;
        (match read_line r with
        | "" -> ()
        | _ -> raise (Bad_request "missing chunk terminator"));
        go ()
      end
    in
    go ()
end

(* ------------------------------------------------------------------ *)
(* Bearer-token authentication helpers, shared by the server and the
   router.  The comparison is constant-time in the length of the
   presented token: every byte is folded into the accumulator whether
   or not an earlier byte already mismatched, so timing reveals
   nothing about how long a prefix matched. *)

let const_time_eq a b =
  let la = String.length a and lb = String.length b in
  let acc = ref (la lxor lb) in
  for i = 0 to la - 1 do
    acc :=
      !acc
      lor (Char.code a.[i] lxor Char.code b.[if lb = 0 then 0 else i mod lb])
  done;
  lb > 0 && !acc = 0

let bearer_token headers =
  match assoc_header headers "authorization" with
  | None -> None
  | Some v -> (
      let v = String.trim v in
      match String.index_opt v ' ' with
      | Some i
        when String.lowercase_ascii (String.sub v 0 i) = "bearer" ->
          Some (String.trim (String.sub v (i + 1) (String.length v - i - 1)))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let write_request fd ~meth ~target ?(headers = []) body =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  if not (List.mem_assoc "Host" headers) then
    Buffer.add_string b "Host: localhost\r\n";
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)

type response_head = {
  h_status : int;
  h_headers : (string * string) list;
}

let read_response_head r =
  let status_line = read_line r in
  let status =
    match String.split_on_char ' ' status_line with
    | version :: code :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> raise (Bad_request "malformed status code"))
    | _ -> raise (Bad_request "malformed status line")
  in
  { h_status = status; h_headers = read_headers r }

let head_is_chunked head =
  match assoc_header head.h_headers "transfer-encoding" with
  | Some v -> String.lowercase_ascii (String.trim v) = "chunked"
  | None -> false

(* Stream a response body to [emit] in bounded blocks — chunked,
   [Content-Length]-delimited, or close-delimited, whichever the head
   announced.  This is the router's pipe: it forwards shard bytes to
   the client as they arrive, holding at most one reader buffer. *)
let iter_response_body ?(max_body = max_int) r head emit =
  if head_is_chunked head then Chunked.iter ~max_body r emit
  else
    match assoc_header head.h_headers "content-length" with
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 ->
            if n > max_body then raise (Payload_too_large max_body);
            Chunked.blocks r n emit
        | _ -> raise (Bad_request "malformed content-length"))
    | None -> (
        (* Read-to-EOF fallback for peers that close to delimit. *)
        let total = ref 0 in
        try
          while true do
            if r.pos >= r.len then refill r;
            let take = r.len - r.pos in
            total := !total + take;
            if !total > max_body then raise (Payload_too_large max_body);
            emit (Bytes.sub_string r.buf r.pos take);
            r.pos <- r.len
          done
        with Closed -> ())

let read_response r =
  let head = read_response_head r in
  let b = Buffer.create 256 in
  iter_response_body r head (Buffer.add_string b);
  {
    status = head.h_status;
    r_headers = head.h_headers;
    r_body = Buffer.contents b;
  }

let response_header resp name = assoc_header resp.r_headers name
