type entry = {
  config : Config.t;
  annots : Annots.t;
}

type t = {
  lock : Mutex.t;
  table : (string, entry list ref) Hashtbl.t;
      (* Keyed on document name, which collections keep unique; the
         handful of configurations per document live in a short
         list. *)
}

let create () = { lock = Mutex.create (); table = Hashtbl.create 8 }

let find_entry cat key config doc =
  match Hashtbl.find_opt cat.table key with
  | None -> None
  | Some entries ->
      Option.map
        (fun e -> e.annots)
        (List.find_opt
           (fun e ->
             Config.equal e.config config && e.annots.Annots.doc == doc)
           !entries)

let annots ?pool cat config doc =
  let key = doc.Standoff_store.Doc.doc_name in
  Mutex.lock cat.lock;
  let hit = find_entry cat key config doc in
  Mutex.unlock cat.lock;
  match hit with
  | Some a -> a
  | None ->
      (* Extraction runs outside the lock: it may itself use the pool,
         and holding a lock across pool tasks could deadlock.  Two
         domains racing on the same (doc, config) at worst both
         extract; the second insert wins the check below and the loser
         result is dropped. *)
      let a = Annots.extract ?pool config doc in
      Mutex.lock cat.lock;
      let result =
        match find_entry cat key config doc with
        | Some other ->
            other (* someone beat us to it; keep theirs for stability *)
        | None ->
            let entries =
              match Hashtbl.find_opt cat.table key with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add cat.table key r;
                  r
            in
            entries := { config; annots = a } :: !entries;
            a
      in
      Mutex.unlock cat.lock;
      result

let invalidate cat doc =
  Mutex.lock cat.lock;
  Hashtbl.remove cat.table doc.Standoff_store.Doc.doc_name;
  Mutex.unlock cat.lock
