type entry = {
  config : Config.t;
  annots : Annots.t;
}

type t = {
  lock : Mutex.t;
  table : (string, entry list ref) Hashtbl.t;
      (* Keyed on document name, which collections keep unique; the
         handful of configurations per document live in a short
         list. *)
  gens : (string, int) Hashtbl.t;
      (* Per-document generation counters, monotonic, never removed:
         they outlive the cached entries on purpose, so a cache keyed
         on (doc, generation) stays invalid across an
         invalidate/rebuild cycle. *)
  mutable version : int;
      (* Catalogue-wide version: the sum of all per-document bumps.
         Monotonic, so an equal reading before and after some interval
         proves no invalidation happened in between — the stamp the
         engine's result cache relies on. *)
}

(* The unlock sits in a [Fun.protect] finaliser so no exception raised
   under the lock can leave the catalogue poisoned for other domains. *)
let locked cat f =
  Mutex.lock cat.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cat.lock) f

let create () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 8;
    gens = Hashtbl.create 8;
    version = 0;
  }

let find_entry cat key config doc =
  match Hashtbl.find_opt cat.table key with
  | None -> None
  | Some entries ->
      Option.map
        (fun e -> e.annots)
        (List.find_opt
           (fun e ->
             Config.equal e.config config && e.annots.Annots.doc == doc)
           !entries)

let annots ?pool cat config doc =
  let key = doc.Standoff_store.Doc.doc_name in
  let hit = locked cat (fun () -> find_entry cat key config doc) in
  match hit with
  | Some a -> a
  | None ->
      (* Extraction runs outside the lock: it may itself use the pool,
         and holding a lock across pool tasks could deadlock.  Two
         domains racing on the same (doc, config) at worst both
         extract; the second insert wins the check below and the loser
         result is dropped. *)
      let a = Annots.extract ?pool config doc in
      locked cat (fun () ->
          match find_entry cat key config doc with
          | Some other ->
              other (* someone beat us to it; keep theirs for stability *)
          | None ->
              let entries =
                match Hashtbl.find_opt cat.table key with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add cat.table key r;
                    r
              in
              entries := { config; annots = a } :: !entries;
              a)

let invalidate cat doc =
  let name = doc.Standoff_store.Doc.doc_name in
  locked cat (fun () ->
      Hashtbl.remove cat.table name;
      Hashtbl.replace cat.gens name
        (1 + Option.value ~default:0 (Hashtbl.find_opt cat.gens name));
      cat.version <- cat.version + 1)

let bump cat = locked cat (fun () -> cat.version <- cat.version + 1)

let generation cat name =
  locked cat (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt cat.gens name))

let version cat = locked cat (fun () -> cat.version)
