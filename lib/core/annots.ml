module Vec = Standoff_util.Vec
module Search = Standoff_util.Search
module Doc = Standoff_store.Doc
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area

exception Invalid_region of { pre : int; msg : string }

module Lru = Standoff_cache.Lru

(* Restricted-index cache: keyed structurally on the candidate array,
   so structurally equal candidate sets from separate [prepare] calls
   hit, and bounded so it cannot grow without limit.  [Lru] holds its
   mutex under [Fun.protect], so sharing one [Annots.t] across pool
   domains is safe even on exception paths — the hand-rolled
   predecessor could leak its lock and deadlock every later lookup.
   Hits and misses surface as [standoff_cache_*{cache="restricted"}]. *)
type restricted_cache = (int array, Region_index.t) Lru.t

let restricted_cache_capacity = 8

let cache_create () =
  Lru.create ~name:"restricted" ~max_entries:restricted_cache_capacity
    ~weight:(fun idx -> (Region_index.row_count idx * 24) + 64)
    ()

type t = {
  doc : Doc.t;
  ids : int array;
  areas : Area.t array;
  index : Region_index.t;
  max_regions_per_area : int;
  restricted_cache : restricted_cache;
}

let fail pre fmt = Printf.ksprintf (fun msg -> raise (Invalid_region { pre; msg })) fmt

let parse_pos pre what s =
  match Int64.of_string_opt (String.trim s) with
  | Some v -> v
  | None -> fail pre "%s position %S is not an integer" what s

let region_of pre start_s end_s =
  let s = parse_pos pre "start" start_s and e = parse_pos pre "end" end_s in
  if Int64.compare s e > 0 then fail pre "start %Ld exceeds end %Ld" s e;
  Region.make s e

(* Attribute representation: an element is an area-annotation iff both
   attributes are present; one without the other is malformed. *)
let area_from_attributes config doc pre =
  let start_attr = Doc.attribute doc pre config.Config.start_name in
  let end_attr = Doc.attribute doc pre config.Config.end_name in
  match (start_attr, end_attr) with
  | None, None -> None
  | Some s, Some e -> Some (Area.of_region (region_of pre s e))
  | Some _, None -> fail pre "attribute %S without %S" config.Config.start_name config.Config.end_name
  | None, Some _ -> fail pre "attribute %S without %S" config.Config.end_name config.Config.start_name

(* Element representation: region children carry start/end child
   elements whose text content is the position. *)
let area_from_region_elements config doc region_name pre =
  let child_named el_pre name =
    let found = ref None in
    Doc.iter_children doc el_pre (fun c ->
        if
          Doc.kind_of doc c = Doc.Element
          && Option.fold ~none:false ~some:(String.equal name) (Doc.name_of doc c)
        then found := Some c);
    !found
  in
  let regions = ref [] in
  Doc.iter_children doc pre (fun c ->
      if
        Doc.kind_of doc c = Doc.Element
        && Option.fold ~none:false ~some:(String.equal region_name) (Doc.name_of doc c)
      then begin
        let start_el = child_named c config.Config.start_name in
        let end_el = child_named c config.Config.end_name in
        match (start_el, end_el) with
        | Some s, Some e ->
            regions :=
              region_of pre (Doc.string_value doc s) (Doc.string_value doc e)
              :: !regions
        | None, _ -> fail pre "region element without <%s>" config.Config.start_name
        | _, None -> fail pre "region element without <%s>" config.Config.end_name
      end);
  match !regions with [] -> None | rs -> Some (Area.make (List.rev rs))

let extract ?pool config doc =
  let area_of_pre =
    match config.Config.region_name with
    | None -> area_from_attributes config doc
    | Some region_name -> area_from_region_elements config doc region_name
  in
  let ids = Vec.create () and areas = Vec.create () in
  let max_regions = ref 1 in
  for pre = 0 to Doc.node_count doc - 1 do
    if Doc.kind_of doc pre = Doc.Element then
      match area_of_pre pre with
      | None -> ()
      | Some area ->
          Vec.push ids pre;
          Vec.push areas area;
          max_regions := max !max_regions (Area.region_count area)
  done;
  let ids = Vec.to_array ids and areas = Vec.to_array areas in
  let annots = Array.to_list (Array.map2 (fun id a -> (id, a)) ids areas) in
  {
    doc;
    ids;
    areas;
    index = Region_index.build ?pool annots;
    max_regions_per_area = !max_regions;
    restricted_cache = cache_create ();
  }

let annotation_count t = Array.length t.ids

let find_slot t pre =
  let i = Search.lower_bound_int t.ids pre in
  if i < Array.length t.ids && t.ids.(i) = pre then Some i else None

let area_of t pre = Option.map (fun i -> t.areas.(i)) (find_slot t pre)
let is_annotation t pre = find_slot t pre <> None

let restrict_ids t ~candidates =
  let out = Vec.create () in
  Array.iter
    (fun pre -> if is_annotation t pre then Vec.push out pre)
    candidates;
  Vec.to_array out

let candidate_index_scan ?pool t ~candidates =
  match candidates with
  | None -> t.index
  | Some ids -> Region_index.restrict ?pool t.index ~ids

let candidate_index ?pool t ~candidates =
  match candidates with
  | None -> t.index
  | Some ids -> (
      match Lru.find t.restricted_cache ids with
      | Some idx -> idx
      | None ->
          (* §4.3 index intersection on node-id, done from the
             candidate side: each candidate's regions are already
             known, so the restricted index is built in
             O(|candidates| log |candidates|) instead of scanning the
             full region index. *)
          let pairs = ref [] in
          Array.iter
            (fun pre ->
              match find_slot t pre with
              | Some slot -> pairs := (pre, t.areas.(slot)) :: !pairs
              | None -> ())
            ids;
          let idx = Region_index.build ?pool !pairs in
          Lru.add t.restricted_cache ids idx;
          idx)
