(** Per-document annotation catalogues.

    The region index is part of the document's stored representation
    in the paper ("we added a region index to the relational
    representation of XML documents", §4.3).  This module gives each
    (document, configuration) pair exactly one extracted
    {!Annots.t}, built on first use. *)

type t

(** [create ()] is an empty catalogue. *)
val create : unit -> t

(** [annots ?pool cat config doc] is the cached annotation table of
    [doc] under [config], extracting it on first request.  Lookups and
    inserts are mutex-protected (extraction itself runs outside the
    lock), so the catalogue may be shared across pool domains. *)
val annots :
  ?pool:Standoff_util.Pool.t -> t -> Config.t -> Standoff_store.Doc.t -> Annots.t

(** [invalidate cat doc] drops cached entries for [doc] (all
    configurations) — for callers that rebuild documents. *)
val invalidate : t -> Standoff_store.Doc.t -> unit
