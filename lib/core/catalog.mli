(** Per-document annotation catalogues.

    The region index is part of the document's stored representation
    in the paper ("we added a region index to the relational
    representation of XML documents", §4.3).  This module gives each
    (document, configuration) pair exactly one extracted
    {!Annots.t}, built on first use. *)

type t

(** [create ()] is an empty catalogue. *)
val create : unit -> t

(** [annots ?pool cat config doc] is the cached annotation table of
    [doc] under [config], extracting it on first request.  Lookups and
    inserts are mutex-protected (extraction itself runs outside the
    lock), so the catalogue may be shared across pool domains. *)
val annots :
  ?pool:Standoff_util.Pool.t -> t -> Config.t -> Standoff_store.Doc.t -> Annots.t

(** [invalidate cat doc] drops cached entries for [doc] (all
    configurations) and bumps both [doc]'s generation counter and the
    catalogue-wide {!version}.  Every in-place mutation
    ([Update.set_region], [Update.shift_annotations]) ends here, which
    is what makes generation-stamped caches update-safe: a result
    cached before the update carries an older version stamp and can
    never be served again. *)
val invalidate : t -> Standoff_store.Doc.t -> unit

(** [bump cat] advances the catalogue-wide version without touching
    any per-document entry or generation — the right invalidation for
    a change to the *document set* (bulk ingestion): new documents
    have no cached state to expire, existing documents' caches stay
    warm, and the single version bump expires whole-collection results
    exactly once per batch. *)
val bump : t -> unit

(** [generation cat name] is the number of times the document called
    [name] has been invalidated.  Monotonic; [0] for never-invalidated
    (including unknown) names, and the counter survives the cached
    entries — invalidation must outlive the rebuild. *)
val generation : t -> string -> int

(** [version cat] is the catalogue-wide invalidation counter: the sum
    of every per-document generation bump.  Monotonic, so two equal
    readings bracket an interval with no invalidation at all — the
    stamp the engine's result cache uses. *)
val version : t -> int
