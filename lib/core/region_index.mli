(** The region index (paper §4.3): [start|end|id] rows kept clustered
    on [start], the access path of the StandOff merge joins.

    Non-contiguous areas repeat their node id across several rows, one
    per region; [region_rank] says which of the area's regions a row
    carries so that the multi-region containment post-processing can
    count coverage. *)

type t = private {
  starts : int64 array;
  ends : int64 array;
  ids : int array;          (** annotation node ids (pre ranks) *)
  region_ranks : int array; (** index of the region within its area *)
}
(** Invariant: rows sorted on [(start asc, end desc, id asc, rank asc)]
    — a total order, so the sorted form of a given row multiset is
    unique regardless of how (or how parallel) it was sorted. *)

(** [build ?pool annots] indexes [(id, area)] pairs.  With a [pool] of
    more than one job and enough rows, the sort runs as parallel chunk
    sorts followed by a pairwise merge; the result is identical to the
    sequential build. *)
val build : ?pool:Standoff_util.Pool.t -> (int * Standoff_interval.Area.t) list -> t

(** [row_count idx] is the number of region rows. *)
val row_count : t -> int

(** [annotation_ids idx] is the sorted, duplicate-free array of node
    ids appearing in the index. *)
val annotation_ids : t -> int array

(** [restrict ?pool idx ~ids] performs the index intersection of §4.3:
    keeps only rows whose id occurs in the sorted array [ids],
    preserving the [start] clustering.  Membership tests use a bitmap
    over the candidate ids (one sweep, O(1) per row); with a [pool] the
    sweep is partitioned and chunk outputs land in contiguous slices,
    so the result is identical to the sequential sweep. *)
val restrict : ?pool:Standoff_util.Pool.t -> t -> ids:int array -> t

(** [region idx row] is the region of row [row]. *)
val region : t -> int -> Standoff_interval.Region.t

(** [pp fmt idx] dumps the rows, for debugging. *)
val pp : Format.formatter -> t -> unit
