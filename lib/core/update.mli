(** Region updates on stored annotation documents.

    The paper's §3.3 argues for per-document region indexes partly on
    update grounds (a collection-global index "may cause needless
    transaction conflicts among documents in case of updates").  This
    module provides the update primitive that discussion presupposes:
    changing an annotation's region in place and invalidating exactly
    the owning document's derived indexes, which are rebuilt lazily on
    the next StandOff step.

    Only the attribute representation is updatable in place (regions
    are attribute values); element-representation regions are document
    structure and require re-loading the document.

    Every update ends in {!Catalog.invalidate}, which besides dropping
    the cached annotation tables bumps the document's generation
    counter and the catalogue-wide {!Catalog.version} — the stamp that
    makes generation-keyed caches (the engine's result cache, see
    {!Standoff_cache.Lru}) update-safe: a result cached before the
    update can never be served after it. *)

(** [set_region cat config doc ~pre region] rewrites the [start]/[end]
    attributes of annotation [pre] under [config]'s names and drops the
    document's cached annotation tables.
    @raise Invalid_argument if [config] uses the element
    representation, or if [pre] is not an element carrying both region
    attributes. *)
val set_region :
  Catalog.t ->
  Config.t ->
  Standoff_store.Doc.t ->
  pre:int ->
  Standoff_interval.Region.t ->
  unit

(** [shift_annotations cat config doc ~from ~by] moves every annotation
    whose region starts at or after position [from] by [by] positions —
    the standard maintenance operation after inserting or deleting BLOB
    content.  Returns the number of annotations moved.
    @raise Invalid_argument as {!set_region}, or when a shifted region
    would become negative. *)
val shift_annotations :
  Catalog.t ->
  Config.t ->
  Standoff_store.Doc.t ->
  from:int64 ->
  by:int64 ->
  int
