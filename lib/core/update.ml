module Doc = Standoff_store.Doc
module Region = Standoff_interval.Region

(* Locate the attribute rows of [pre] holding the configured start/end
   names; the attribute table is mutable (plain arrays), so rewriting
   the values is an in-place update. *)
let region_attr_rows config doc ~pre =
  if Config.representation config <> Config.Attributes then
    invalid_arg "Update: only the attribute representation is updatable";
  if Doc.kind_of doc pre <> Doc.Element then
    invalid_arg (Printf.sprintf "Update: node %d is not an element" pre);
  let lo = doc.Doc.attr_first.(pre) and hi = doc.Doc.attr_first.(pre + 1) in
  let find name =
    let rec scan i =
      if i >= hi then None
      else
        let attr = doc.Doc.attr_name.(i) in
        if String.equal (Standoff_store.Name_pool.name doc.Doc.names attr) name
        then Some i
        else scan (i + 1)
    in
    scan lo
  in
  match (find config.Config.start_name, find config.Config.end_name) with
  | Some s, Some e -> (s, e)
  | _ ->
      invalid_arg
        (Printf.sprintf "Update: node %d is not an area-annotation" pre)

let set_region cat config doc ~pre region =
  let s_row, e_row = region_attr_rows config doc ~pre in
  doc.Doc.attr_value.(s_row) <- Int64.to_string (Region.start_pos region);
  doc.Doc.attr_value.(e_row) <- Int64.to_string (Region.end_pos region);
  (* Invalidate also bumps the document generation and the catalogue
     version, which is what expires any generation-stamped cache entry
     (restricted indexes, engine results) derived from the old regions. *)
  Catalog.invalidate cat doc

let shift_annotations cat config doc ~from ~by =
  let annots = Annots.extract config doc in
  (* Two passes: validate every shift (including locating the attribute
     rows) before touching any row.  A single interleaved pass would
     leave earlier annotations rewritten when a later one raises —
     with no invalidation or WAL record, so generation-stamped caches
     would keep serving pre-update answers over a mutated store. *)
  let pending = ref [] in
  Array.iteri
    (fun slot pre ->
      let area = annots.Annots.areas.(slot) in
      let extent = Standoff_interval.Area.extent area in
      if Int64.compare (Region.start_pos extent) from >= 0 then begin
        let start_ = Int64.add (Region.start_pos extent) by in
        let end_ = Int64.add (Region.end_pos extent) by in
        if Int64.compare start_ 0L < 0 then
          invalid_arg "Update.shift_annotations: region would become negative";
        let s_row, e_row = region_attr_rows config doc ~pre in
        pending := (s_row, e_row, start_, end_) :: !pending
      end)
    annots.Annots.ids;
  let moved = List.length !pending in
  List.iter
    (fun (s_row, e_row, start_, end_) ->
      doc.Doc.attr_value.(s_row) <- Int64.to_string start_;
      doc.Doc.attr_value.(e_row) <- Int64.to_string end_)
    !pending;
  if moved > 0 then Catalog.invalidate cat doc;
  moved
