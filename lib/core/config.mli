(** StandOff configuration (paper §2).

    The names under which regions are attached to annotation elements,
    and the representation (attributes vs. [<region>] child elements),
    are application choices, declared per query with

    {v
    declare option standoff-type   "qualified-name"
    declare option standoff-start  "qualified-name"
    declare option standoff-end    "qualified-name"
    declare option standoff-region "qualified-name"
    v}

    When [standoff-region] is set, the element representation is used
    and [standoff-start]/[standoff-end] name {e elements}; otherwise
    they name {e attributes}. *)

type representation =
  | Attributes       (** [<foo start="1" end="10"/>] — compact, one region *)
  | Region_elements  (** [<foo><region><start>1</start>...</region></foo>] —
                         supports non-contiguous areas *)

type t = {
  start_name : string;          (** default ["start"] *)
  end_name : string;            (** default ["end"] *)
  region_name : string option;  (** [Some n] selects {!Region_elements} *)
  position_type : string;       (** default ["xs:integer"]; informational —
                                    this implementation requires positions
                                    representable as 64-bit integers, as
                                    the paper's does *)
}

(** [default] is attribute representation with names
    ["start"]/["end"] and type ["xs:integer"]. *)
val default : t

(** [representation t] is derived from [region_name]. *)
val representation : t -> representation

(** [with_region_elements ?region_name t] switches to the element
    representation (default element name ["region"]). *)
val with_region_elements : ?region_name:string -> t -> t

(** [set_option t ~name ~value] applies one [declare option standoff-*]
    declaration; [name] is the part after ["standoff-"] (["type"],
    ["start"], ["end"] or ["region"]).
    @raise Invalid_argument on unknown option names or invalid QNames. *)
val set_option : t -> name:string -> value:string -> t

(** [equal a b] compares configurations (used as cache key). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Evaluation strategy for the StandOff steps — the implementations
    compared in the paper's Figure 6. *)
type strategy =
  | Udf_no_candidates
      (** Figure 2: nested-loop against {e all} area-annotations of the
          document; node tests apply after the join.  DNF at any
          realistic size in the paper. *)
  | Udf_candidates
      (** Figure 3: nested-loop against a candidate sequence restricted
          by the step's name test. *)
  | Basic_merge
      (** §4.4: StandOff MergeJoin, invoked once per loop iteration —
          each invocation scans the region index. *)
  | Loop_lifted
      (** §4.5 / Listing 1: loop-lifted StandOff MergeJoin — one scan
          for all iterations. *)

(** [strategy_of_string s] parses ["udf-nocand" | "udf-cand" | "basic" |
    "loop-lifted"].
    @raise Invalid_argument otherwise. *)
val strategy_of_string : string -> strategy

(** [strategy_to_string s] is the inverse of {!strategy_of_string}. *)
val strategy_to_string : strategy -> string

(** [all_strategies] in the order of the paper's comparison. *)
val all_strategies : strategy list

(** [default_jobs ()] is the default parallelism for query execution:
    the [STANDOFF_JOBS] environment variable when set to an integer
    >= 0, else [0] — which the engine interprets as {e adaptive}
    (size each run from its plan cost, within the process domain
    budget).  [1] forces the fully sequential path. *)
val default_jobs : unit -> int
