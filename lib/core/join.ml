module Vec = Standoff_util.Vec
module Timing = Standoff_util.Timing
module Search = Standoff_util.Search
module Pool = Standoff_util.Pool
module Area = Standoff_interval.Area

(* ------------------------------------------------------------------ *)
(* Post-processing: match rows -> unique (iter, node-id) in document
   order (paper §4.4: "some post-processing occurs that maps these
   into node-ids (unique and in document order per iter)").          *)

(* Pairs are packed into single integers (iter in the high bits, node
   id in the low 31) so sorting uses the unboxed int fast path; node
   ids are pre ranks and iteration numbers are row counts, so both fit
   comfortably. *)
let pack iter pre = (iter lsl 31) lor pre
let unpack_iter key = key asr 31
let unpack_pre key = key land 0x7FFFFFFF

let sort_dedup_pairs pairs =
  let arr = Vec.to_array pairs in
  let n = Array.length arr in
  (* Nested annotations cluster the index like the tree, so matches
     usually emerge already sorted and duplicate-free; detect that in
     one pass before paying for a sort. *)
  let strictly_sorted = ref true in
  for i = 1 to n - 1 do
    if arr.(i - 1) >= arr.(i) then strictly_sorted := false
  done;
  if !strictly_sorted then
    (Array.map unpack_iter arr, Array.map unpack_pre arr)
  else begin
    Array.sort (fun (a : int) b -> compare a b) arr;
    let iters = Vec.create () and pres = Vec.create () in
    Array.iteri
      (fun i key ->
        if i = 0 || arr.(i - 1) <> key then begin
          Vec.push iters (unpack_iter key);
          Vec.push pres (unpack_pre key)
        end)
      arr;
    (Vec.to_array iters, Vec.to_array pres)
  end

let region_count annots pre =
  match Annots.area_of annots pre with
  | Some area -> Area.region_count area
  | None -> 0

(* Containment between areas requires every candidate region inside
   the same context annotation: count the distinct matched regions per
   (iter, context, candidate) group and keep full covers (§3.1). *)
let finalize_narrow_multi annots (matches : Merge_join_ll.match_row Vec.t) =
  let quads =
    Vec.map
      (fun m ->
        (m.Merge_join_ll.m_iter, m.Merge_join_ll.m_ctx, m.Merge_join_ll.m_cand,
         m.Merge_join_ll.m_rank))
      matches
  in
  let arr = Vec.to_array quads in
  Array.sort compare arr;
  let pairs = Vec.create () in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let iter, ctx, cand, _ = arr.(!i) in
    let covered = ref 0 in
    let j = ref !i in
    let prev_rank = ref (-1) in
    while
      !j < n
      && (fun (it, cx, cd, _) -> it = iter && cx = ctx && cd = cand) arr.(!j)
    do
      let _, _, _, rank = arr.(!j) in
      if rank <> !prev_rank then begin
        incr covered;
        prev_rank := rank
      end;
      incr j
    done;
    if !covered = region_count annots cand then Vec.push pairs (pack iter cand);
    i := !j
  done;
  sort_dedup_pairs pairs

let finalize_select op annots ~single_region matches =
  if (not single_region) && Op.is_narrow op then
    finalize_narrow_multi annots matches
  else
    sort_dedup_pairs
      (Vec.map
         (fun m -> pack m.Merge_join_ll.m_iter m.Merge_join_ll.m_cand)
         matches)

(* The anti-joins return, per live iteration, the candidates that the
   corresponding semi-join did not match.  The loop relation supplies
   iterations with an empty context, which reject all of nothing and
   therefore return every candidate. *)
let complement ~loop ~candidate_ids (matched_iters, matched_pres) =
  let iters = Vec.create () and pres = Vec.create () in
  let n = Array.length matched_iters in
  let row = ref 0 in
  Array.iter
    (fun iter ->
      while !row < n && matched_iters.(!row) < iter do
        incr row
      done;
      let m = ref !row in
      Array.iter
        (fun cand ->
          while
            !m < n && matched_iters.(!m) = iter && matched_pres.(!m) < cand
          do
            incr m
          done;
          let is_matched =
            !m < n && matched_iters.(!m) = iter && matched_pres.(!m) = cand
          in
          if not is_matched then begin
            Vec.push iters iter;
            Vec.push pres cand
          end)
        candidate_ids)
    loop;
  (Vec.to_array iters, Vec.to_array pres)

(* ------------------------------------------------------------------ *)
(* Merge-join execution for one already-built context.                *)

let merge_join_lifted op annots ~active_set ~deadline ~loop ?candidate_ids ctx
    cand_index =
  let single_region = annots.Annots.max_regions_per_area = 1 in
  let sweep =
    match Op.select_of op with
    | Op.Select_narrow -> Merge_join_ll.select_narrow
    | Op.Select_wide | Op.Reject_narrow | Op.Reject_wide ->
        Merge_join_ll.select_wide
  in
  let matches = sweep ~active_set ~deadline ~single_region ctx cand_index in
  let selected =
    finalize_select (Op.select_of op) annots ~single_region matches
  in
  if Op.is_select op then selected
  else
    let candidate_ids =
      match candidate_ids with
      | Some ids -> ids
      | None -> Region_index.annotation_ids cand_index
    in
    complement ~loop ~candidate_ids selected

(* ------------------------------------------------------------------ *)
(* Sorted-array intersection, for the post-join name-test filtering
   of the Figure 2 baseline.                                          *)

let intersect_sorted a b =
  let out = Vec.create () in
  Array.iter (fun x -> if Search.mem_sorted_int b x then Vec.push out x) a;
  Vec.to_array out

(* ------------------------------------------------------------------ *)
(* Instrumentation and per-call strategy resolution.                  *)

module Metrics = Standoff_obs.Metrics

(* Per-strategy join counters, registered at module init so exposition
   lists every strategy from the start (at zero). *)
let m_joins_by_strategy =
  List.map
    (fun s ->
      ( s,
        Metrics.counter "standoff_joins_total"
          ~labels:[ ("strategy", Config.strategy_to_string s) ]
          ~help:"StandOff join invocations, by resolved strategy" ))
    Config.all_strategies

let m_join_of_strategy s = List.assoc s m_joins_by_strategy

let m_index_rows_total =
  Metrics.counter "standoff_join_index_rows_total"
    ~help:"Region-index rows handed to join sweeps"

let m_sweep_chunks_total =
  Metrics.counter "standoff_join_sweep_chunks_total"
    ~help:"Parallel merge-sweep chunks joins fanned out"

type stats = {
  mutable s_invocations : int;
  mutable s_index_rows : int;
  mutable s_chunks : int;
}

let fresh_stats () = { s_invocations = 0; s_index_rows = 0; s_chunks = 0 }

(* [chunks] counts parallel sweep chunks only: the per-iteration and
   UDF paths contribute 0, a sequential loop-lifted sweep 1, so the
   counter is > 1 exactly when a join actually fanned out.  The
   process-wide metrics bump on every call; [stats] feeds per-query
   tracing and is only threaded when a trace is attached. *)
let record ?(chunks = 0) stats ~strategy ~index_rows =
  Metrics.incr (m_join_of_strategy strategy);
  Metrics.add m_index_rows_total index_rows;
  Metrics.add m_sweep_chunks_total chunks;
  match stats with
  | None -> ()
  | Some s ->
      s.s_invocations <- s.s_invocations + 1;
      s.s_index_rows <- s.s_index_rows + index_rows;
      s.s_chunks <- s.s_chunks + chunks

(* The strategies are result-equivalent, so picking one per operator
   is purely a cost decision: for tiny context x candidate products
   the quadratic UDF beats building a merge-join context (Figure 6's
   left edge); everything else wants the loop-lifted sweep. *)
let auto_strategy annots ~context_rows ~candidate_rows =
  let cands =
    match candidate_rows with
    | Some n -> n
    | None -> Annots.annotation_count annots
  in
  if context_rows * cands <= 512 then Config.Udf_candidates
  else Config.Loop_lifted

let run_sequence op strategy annots ?(active_set = Active_set.Sorted_list)
    ?(deadline = Timing.no_deadline) ?stats ~context ~candidates () =
  match strategy with
  | Config.Udf_no_candidates ->
      (* Figure 2: join against everything, then apply the node test to
         the join result. *)
      let joined = Udf_join.join op annots ~deadline ~context ~candidates:None in
      record stats ~strategy ~index_rows:0;
      (match candidates with
      | None -> joined
      | Some ids -> intersect_sorted joined ids)
  | Config.Udf_candidates ->
      record stats ~strategy ~index_rows:0;
      Udf_join.join op annots ~deadline ~context ~candidates
  | Config.Basic_merge | Config.Loop_lifted ->
      let ctx =
        Merge_join_ll.context_of_annotations annots
          ~iters:(Array.map (fun _ -> 0) context)
          ~pres:context
      in
      (* A per-sequence invocation recomputes the candidate sequence by
         scanning the region index, as the paper's engine does; only
         the loop-lifted entry point amortises this across iterations
         (§4.6). *)
      let cand_index = Annots.candidate_index_scan annots ~candidates in
      record stats ~strategy ~index_rows:(Region_index.row_count cand_index);
      let _, pres =
        merge_join_lifted op annots ~active_set ~deadline ~loop:[| 0 |] ctx
          cand_index
      in
      pres

let run_lifted op strategy annots ?pool ?(active_set = Active_set.Sorted_list)
    ?(deadline = Timing.no_deadline) ?stats ~loop ~context_iters ~context_pres
    ~candidates () =
  match strategy with
  | Config.Loop_lifted -> (
      let cand_index = Annots.candidate_index ?pool annots ~candidates in
      let n_loop = Array.length loop in
      let chunks =
        match pool with
        | Some p when Pool.jobs p > 1 && n_loop > 1 ->
            Pool.chunk_count p ~n:n_loop ()
        | _ -> 1
      in
      record stats ~chunks ~strategy ~index_rows:(Region_index.row_count cand_index);
      if chunks = 1 then
        let ctx =
          Merge_join_ll.context_of_annotations annots ~iters:context_iters
            ~pres:context_pres
        in
        merge_join_lifted op annots ~active_set ~deadline ~loop ctx cand_index
      else begin
        (* Iterations are independent by construction (§4 Listing 1),
           so the loop relation is split on iteration boundaries and
           one sweep runs per chunk against the shared immutable
           candidate index.  Each chunk's output is per-iteration
           duplicate-free and sorted by (iter, pre); chunks cover
           ascending disjoint iteration ranges, so concatenating them
           in chunk order reproduces the sequential output exactly. *)
        let pool = Option.get pool in
        let candidate_ids =
          if Op.is_select op then [||]
          else Region_index.annotation_ids cand_index
        in
        let pieces =
          Pool.parallel_chunks pool ~n:n_loop (fun ~chunk:_ ~lo ~hi ->
              let loop_slice = Array.sub loop lo (hi - lo) in
              (* Context rows are sorted by iter: the rows of this
                 chunk's iterations form a contiguous slice. *)
              let clo = Search.lower_bound_int context_iters loop_slice.(0) in
              let chi =
                Search.lower_bound_int context_iters
                  (loop_slice.(Array.length loop_slice - 1) + 1)
              in
              let ctx =
                Merge_join_ll.context_of_annotations annots
                  ~iters:(Array.sub context_iters clo (chi - clo))
                  ~pres:(Array.sub context_pres clo (chi - clo))
              in
              merge_join_lifted op annots ~active_set ~deadline
                ~loop:loop_slice ~candidate_ids ctx cand_index)
        in
        let total =
          Array.fold_left
            (fun acc (it, _) -> acc + Array.length it)
            0 pieces
        in
        let iters = Array.make total 0 and pres = Array.make total 0 in
        let off = ref 0 in
        Array.iter
          (fun (it, pr) ->
            Array.blit it 0 iters !off (Array.length it);
            Array.blit pr 0 pres !off (Array.length pr);
            off := !off + Array.length it)
          pieces;
        (iters, pres)
      end)
  | Config.Udf_no_candidates | Config.Udf_candidates | Config.Basic_merge ->
      (* The paper's pre-loop-lifting behaviour: the single-sequence
         algorithm runs once per iteration, re-scanning the candidate
         index (or, for the UDFs, re-running the nested loop) each
         time. *)
      let iters = Vec.create () and pres = Vec.create () in
      let n = Array.length context_iters in
      let row = ref 0 in
      Array.iter
        (fun iter ->
          Timing.checkpoint deadline;
          while !row < n && context_iters.(!row) < iter do
            incr row
          done;
          let lo = !row in
          while !row < n && context_iters.(!row) = iter do
            incr row
          done;
          let context = Array.sub context_pres lo (!row - lo) in
          let result =
            run_sequence op strategy annots ~deadline ?stats ~context
              ~candidates ()
          in
          Array.iter
            (fun pre ->
              Vec.push iters iter;
              Vec.push pres pre)
            result)
        loop;
      (Vec.to_array iters, Vec.to_array pres)
