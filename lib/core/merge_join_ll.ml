module Vec = Standoff_util.Vec
module Timing = Standoff_util.Timing
module Area = Standoff_interval.Area
module Region = Standoff_interval.Region
module Metrics = Standoff_obs.Metrics

(* Per-sweep totals, bumped once per sweep (never per row). *)
let m_sweeps_narrow =
  Metrics.counter "standoff_merge_sweeps_total"
    ~labels:[ ("kind", "narrow") ]
    ~help:"Merge-join sweeps executed"

let m_sweeps_wide =
  Metrics.counter "standoff_merge_sweeps_total"
    ~labels:[ ("kind", "wide") ]
    ~help:"Merge-join sweeps executed"

let m_sweep_matches =
  Metrics.counter "standoff_merge_match_rows_total"
    ~help:"Match rows emitted by merge-join sweeps"

type context = {
  iters : int array;
  ids : int array;
  starts : int64 array;
  ends : int64 array;
}

let context_of_annotations annots ~iters ~pres =
  let rows = Vec.create () in
  Array.iteri
    (fun i pre ->
      match Annots.area_of annots pre with
      | None -> ()
      | Some area ->
          List.iter
            (fun r ->
              Vec.push rows
                (Region.start_pos r, Region.end_pos r, iters.(i), pre))
            (Area.regions area))
    pres;
  let in_order (s1, e1, _, _) (s2, e2, _, _) =
    let c = Int64.compare s1 s2 in
    if c <> 0 then c < 0 else Int64.compare e2 e1 <= 0
  in
  (* Context nodes arrive in document order; when annotation regions
     nest like the tree (the common case) that already is the sweep
     order, so check before sorting. *)
  let sorted = ref true in
  for i = 1 to Vec.length rows - 1 do
    if not (in_order (Vec.get rows (i - 1)) (Vec.get rows i)) then
      sorted := false
  done;
  if not !sorted then
    Vec.sort
      (fun (s1, e1, _, _) (s2, e2, _, _) ->
        let c = Int64.compare s1 s2 in
        if c <> 0 then c else Int64.compare e2 e1)
      rows;
  let n = Vec.length rows in
  let iters = Array.make n 0
  and ids = Array.make n 0
  and starts = Array.make n 0L
  and ends = Array.make n 0L in
  Vec.iteri
    (fun i (s, e, iter, id) ->
      starts.(i) <- s;
      ends.(i) <- e;
      iters.(i) <- iter;
      ids.(i) <- id)
    rows;
  { iters; ids; starts; ends }

let context_row_count c = Array.length c.ids

type match_row = {
  m_iter : int;
  m_ctx : int;
  m_cand : int;
  m_rank : int;
}

type trace_event =
  | Add_active of { iter : int; ctx : int }
  | Skip_covered of { iter : int; ctx : int }
  | Replace_active of { iter : int; removed : int; by : int }
  | Trim_active of { iter : int; ctx : int }
  | Emit of { iter : int; ctx : int; cand : int }
  | Skip_candidates of { from_row : int; to_row : int }

(* The active context set lives in [Active_set]; the paper's sorted
   list is the default, the lazy heap (§5's suggested improvement) is
   selectable per sweep. *)

let no_trace (_ : trace_event) = ()

let make_active kind ~single_region ~trace =
  Active_set.create kind ~single_region
    ~callbacks:
      {
        Active_set.on_add = (fun ~iter ~ctx -> trace (Add_active { iter; ctx }));
        on_skip = (fun ~iter ~ctx -> trace (Skip_covered { iter; ctx }));
        on_replace =
          (fun ~iter ~removed ~by -> trace (Replace_active { iter; removed; by }));
        on_trim = (fun ~iter ~ctx -> trace (Trim_active { iter; ctx }));
      }

let select_narrow ?(active_set = Active_set.Sorted_list) ?(trace = no_trace)
    ?(deadline = Timing.no_deadline) ~single_region (ctx : context)
    (cands : Region_index.t) =
  let nctx = context_row_count ctx in
  let ncand = Region_index.row_count cands in
  let act = make_active active_set ~single_region ~trace in
  let out = Vec.create () in
  let i = ref 0 and j = ref 0 in
  let quit = ref false in
  while (not !quit) && !j < ncand do
    if !j land 4095 = 0 then Timing.checkpoint deadline;
    let cand_start = cands.Region_index.starts.(!j) in
    (* Activate every context region starting at or before the
       candidate. *)
    while !i < nctx && Int64.compare ctx.starts.(!i) cand_start <= 0 do
      Active_set.add act ~iter:ctx.iters.(!i) ~ctx:ctx.ids.(!i)
        ~end_:ctx.ends.(!i);
      incr i
    done;
    Active_set.trim act ~start:cand_start;
    if Active_set.size act = 0 then
      if !i >= nctx then quit := true
      else begin
        (* Fast-forward over candidates that fall in the gap before
           the next context region (Listing 1 lines 21-24). *)
        let next_start = ctx.starts.(!i) in
        let lo = ref !j and hi = ref ncand in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if Int64.compare cands.Region_index.starts.(mid) next_start < 0 then
            lo := mid + 1
          else hi := mid
        done;
        trace (Skip_candidates { from_row = !j; to_row = !lo });
        j := !lo
      end
    else begin
      (* Every active region reaching past the candidate's end
         contains it (its start is <= the candidate's start by sweep
         order). *)
      let cand_end = cands.Region_index.ends.(!j) in
      let row = !j in
      Active_set.iter_end_ge act cand_end (fun ~iter ~ctx ->
          trace (Emit { iter; ctx; cand = cands.Region_index.ids.(row) });
          Vec.push out
            {
              m_iter = iter;
              m_ctx = ctx;
              m_cand = cands.Region_index.ids.(row);
              m_rank = cands.Region_index.region_ranks.(row);
            });
      incr j
    end
  done;
  Metrics.incr m_sweeps_narrow;
  Metrics.add m_sweep_matches (Vec.length out);
  out

let select_wide ?(active_set = Active_set.Sorted_list) ?(trace = no_trace)
    ?(deadline = Timing.no_deadline) ~single_region (ctx : context)
    (cands : Region_index.t) =
  let nctx = context_row_count ctx in
  let ncand = Region_index.row_count cands in
  let act = make_active active_set ~single_region ~trace in
  let out = Vec.create () in
  (* Pending candidates: regions whose end lies ahead of the sweep, so
     a later-starting context region may still overlap them.  Sorted
     on end descending like the paper's active list. *)
  let pend_ends = Vec.create () and pend_rows = Vec.create () in
  let pending_insert e row =
    let lo = ref 0 and hi = ref (Vec.length pend_ends) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.compare (Vec.get pend_ends mid) e >= 0 then lo := mid + 1
      else hi := mid
    done;
    Vec.insert pend_ends !lo e;
    Vec.insert pend_rows !lo row
  in
  let emit ~iter ~ctx_id ~row =
    trace (Emit { iter; ctx = ctx_id; cand = cands.Region_index.ids.(row) });
    Vec.push out
      {
        m_iter = iter;
        m_ctx = ctx_id;
        m_cand = cands.Region_index.ids.(row);
        m_rank = cands.Region_index.region_ranks.(row);
      }
  in
  let i = ref 0 and j = ref 0 in
  let steps = ref 0 in
  let quit = ref false in
  while (not !quit) && (!i < nctx || !j < ncand) do
    incr steps;
    if !steps land 4095 = 0 then Timing.checkpoint deadline;
    let context_turn =
      !i < nctx
      && (!j >= ncand
         || Int64.compare ctx.starts.(!i) cands.Region_index.starts.(!j) <= 0)
    in
    if context_turn then begin
      let c_start = ctx.starts.(!i)
      and c_end = ctx.ends.(!i)
      and c_iter = ctx.iters.(!i)
      and c_id = ctx.ids.(!i) in
      (* A covered region is skipped entirely: the covering region of
         the same iteration was active at or before this start, so it
         already matched every pending candidate this one would. *)
      if Active_set.covered act ~iter:c_iter ~end_:c_end then
        trace (Skip_covered { iter = c_iter; ctx = c_id })
      else begin
        (* Pending candidates reaching to this region's start overlap
           it. *)
        let k = ref 0 in
        while
          !k < Vec.length pend_ends
          && Int64.compare (Vec.get pend_ends !k) c_start >= 0
        do
          emit ~iter:c_iter ~ctx_id:c_id ~row:(Vec.get pend_rows !k);
          incr k
        done;
        (* What the scan did not reach is dead for every future
           context region as well (their starts only grow). *)
        while Vec.length pend_ends > !k do
          ignore (Vec.pop pend_ends);
          ignore (Vec.pop pend_rows)
        done;
        Active_set.add act ~iter:c_iter ~ctx:c_id ~end_:c_end
      end;
      incr i
    end
    else begin
      let cand_start = cands.Region_index.starts.(!j) in
      Active_set.trim act ~start:cand_start;
      if Active_set.size act = 0 && !i >= nctx then quit := true
      else begin
        (* Every active region overlaps the candidate: it starts at or
           before it and ends at or after its start. *)
        let row = !j in
        Active_set.iter_all act (fun ~iter ~ctx ->
            emit ~iter ~ctx_id:ctx ~row);
        pending_insert cands.Region_index.ends.(!j) !j;
        incr j
      end
    end
  done;
  Metrics.incr m_sweeps_wide;
  Metrics.add m_sweep_matches (Vec.length out);
  out
