module Collection = Standoff_store.Collection
module Doc = Standoff_store.Doc
module Wal = Standoff_store.Wal
module Snapshot = Standoff_store.Snapshot
module Persist = Standoff_store.Persist
module Region = Standoff_interval.Region
module Failpoint = Standoff_util.Failpoint

exception Recovery_error of string

let wal_name = "wal.log"

type recovery = {
  rec_snapshot : (int * string) option;
  rec_replayed : int;
  rec_torn : string option;
}

type t = {
  dir : string;
  wal_path : string;
  mutable wal : Wal.t;
  coll : Collection.t;
  policy : Wal.fsync_policy;
  snapshot_every : int;  (* take a snapshot every n logged updates; 0 = only on demand *)
  keep : int;
  lock : Mutex.t;
  mutable last_snapshot_lsn : int;
  mutable since_snapshot : int;
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Updates are applied first and logged only if they validated — so a
   WAL record is an operation that *did* succeed against this store,
   and replay failing to apply one means the on-disk state has drifted
   from the log (e.g. the server was restarted over a different
   document set).  That is not recoverable-by-truncation; refuse. *)
let config_of_record ~start_attr ~end_attr ~ptype =
  {
    Config.start_name = start_attr;
    end_name = end_attr;
    region_name = None;
    position_type = ptype;
  }

let resolve_doc coll doc_name =
  match Collection.doc_id_of_name coll doc_name with
  | Some id -> Collection.doc coll id
  | None ->
      raise
        (Recovery_error
           (Printf.sprintf
              "WAL names document %S, which the store does not contain"
              doc_name))

let apply_op cat coll op =
  try
    match op with
    | Wal.Set_region { doc; start_attr; end_attr; ptype; pre; start_pos; end_pos }
      ->
        let doc = resolve_doc coll doc in
        let config = config_of_record ~start_attr ~end_attr ~ptype in
        Update.set_region cat config doc ~pre (Region.make start_pos end_pos)
    | Wal.Shift { doc; start_attr; end_attr; ptype; from; by } ->
        let doc = resolve_doc coll doc in
        let config = config_of_record ~start_attr ~end_attr ~ptype in
        ignore (Update.shift_annotations cat config doc ~from ~by)
    | Wal.Ingest { docs; blobs } ->
        (* Replaying an Ingest over a snapshot that already folded it
           in is filtered by the LSN check; the name check is a second
           belt over externally assembled directories. *)
        List.iter
          (fun (name, payload) ->
            if Collection.doc_id_of_name coll name = None then
              ignore (Collection.add coll (Persist.doc_of_string payload)))
          docs;
        List.iter
          (fun (name, contents) ->
            if Collection.blob coll name = None then
              Collection.add_blob coll
                (Standoff_store.Blob.of_string ~name contents))
          blobs
  with
  | Invalid_argument msg ->
      raise
        (Recovery_error (Printf.sprintf "WAL record does not apply: %s" msg))
  | Persist.Corrupt msg ->
      raise
        (Recovery_error
           (Printf.sprintf "WAL ingest payload does not decode: %s" msg))

let open_dir ?(policy = Wal.Always) ?(snapshot_every = 0) ?(keep = 2) ?seed dir
    =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Durable.open_dir: %s is not a directory" dir);
  let wal_path = Filename.concat dir wal_name in
  (* 1. Newest intact snapshot, if any, is the base state.  When one
     exists it *is* the collection — a seed is only consulted on first
     boot of an empty data directory. *)
  let coll, snapshot_lsn, rec_snapshot =
    match Snapshot.load_latest ~dir with
    | Some (lsn, _generation, coll, path) -> (coll, lsn, Some (lsn, path))
    | None ->
        let coll =
          match seed with Some f -> f () | None -> Collection.create ()
        in
        (coll, 0, None)
  in
  (* 2. Replay the WAL suffix.  Records at or below the snapshot LSN
     are already folded in; the monotonic filter also drops duplicated
     frames, which can only appear through external tampering. *)
  let replayed = Wal.replay wal_path in
  let cat = Catalog.create () in
  let applied = ref 0 in
  let last =
    List.fold_left
      (fun last (lsn, op) ->
        if lsn > last then begin
          apply_op cat coll op;
          incr applied;
          lsn
        end
        else last)
      snapshot_lsn replayed.Wal.r_ops
  in
  let applied = !applied in
  (* 3. Probe: the recovered columns must still satisfy every
     structural invariant of the shredded form. *)
  Collection.fold_docs
    (fun () _ d ->
      try Doc.check_invariants d
      with Failure msg ->
        raise
          (Recovery_error
             (Printf.sprintf "recovered document %S fails invariants: %s"
                d.Doc.doc_name msg)))
    () coll;
  let wal =
    Wal.open_append ~policy ~valid_bytes:replayed.Wal.r_valid_bytes
      ~next_lsn:(last + 1) wal_path
  in
  let t =
    {
      dir;
      wal_path;
      wal;
      coll;
      policy;
      snapshot_every;
      keep;
      lock = Mutex.create ();
      last_snapshot_lsn = snapshot_lsn;
      (* Replayed records are not yet covered by any snapshot: count
         them, so a clean shutdown right after recovery compacts. *)
      since_snapshot = applied;
      closed = false;
    }
  in
  ( t,
    {
      rec_snapshot;
      rec_replayed = applied;
      rec_torn = replayed.Wal.r_torn;
    } )

let collection t = t.coll
let dir t = t.dir
let fsync_policy t = t.policy

let log t op =
  locked t (fun () ->
      if t.closed then invalid_arg "Durable.log: store is closed";
      let lsn = Wal.append t.wal op in
      t.since_snapshot <- t.since_snapshot + 1;
      lsn)

(* Snapshot + WAL reset.  The caller must hold whatever writer
   exclusion protects the collection (the server's write lock): the
   collection is encoded here and must not move underneath us. *)
let snapshot t ~generation =
  locked t (fun () ->
      if t.closed then invalid_arg "Durable.snapshot: store is closed";
      Wal.flush t.wal;
      let lsn = Wal.next_lsn t.wal - 1 in
      let path = Snapshot.write ~dir:t.dir ~lsn ~generation t.coll in
      (* The snapshot is durable under its final name; anything the WAL
         still holds is now redundant.  A crash between the rename and
         this truncation merely replays records the snapshot already
         covers — the LSN filter in [open_dir] makes that idempotent. *)
      Failpoint.hit "snapshot.before_truncate";
      Wal.close t.wal;
      t.wal <- Wal.create ~policy:t.policy ~next_lsn:(lsn + 1) t.wal_path;
      t.last_snapshot_lsn <- lsn;
      t.since_snapshot <- 0;
      ignore (Snapshot.prune ~dir:t.dir ~keep:t.keep);
      path)

let maybe_snapshot t ~generation =
  let due =
    locked t (fun () ->
        (not t.closed) && t.snapshot_every > 0
        && t.since_snapshot >= t.snapshot_every)
  in
  if due then Some (snapshot t ~generation) else None

let dirty t = locked t (fun () -> t.since_snapshot > 0)

let close ?generation t =
  let want_snapshot =
    locked t (fun () -> (not t.closed) && t.since_snapshot > 0)
    && generation <> None
  in
  (match generation with
  | Some g when want_snapshot -> ignore (snapshot t ~generation:g)
  | _ -> ());
  locked t (fun () ->
      if not t.closed then begin
        Wal.close t.wal;
        t.closed <- true
      end)
