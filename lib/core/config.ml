type representation =
  | Attributes
  | Region_elements

type t = {
  start_name : string;
  end_name : string;
  region_name : string option;
  position_type : string;
}

let default =
  {
    start_name = "start";
    end_name = "end";
    region_name = None;
    position_type = "xs:integer";
  }

let representation t =
  match t.region_name with None -> Attributes | Some _ -> Region_elements

let with_region_elements ?(region_name = "region") t =
  { t with region_name = Some region_name }

let check_qname what value =
  if not (Standoff_xml.Dom.valid_name value) then
    invalid_arg
      (Printf.sprintf "standoff-%s: %S is not a valid qualified name" what
         value)

let set_option t ~name ~value =
  match name with
  | "type" -> { t with position_type = value }
  | "start" ->
      check_qname "start" value;
      { t with start_name = value }
  | "end" ->
      check_qname "end" value;
      { t with end_name = value }
  | "region" ->
      check_qname "region" value;
      { t with region_name = Some value }
  | other ->
      invalid_arg (Printf.sprintf "unknown option standoff-%s" other)

let equal a b =
  String.equal a.start_name b.start_name
  && String.equal a.end_name b.end_name
  && Option.equal String.equal a.region_name b.region_name
  && String.equal a.position_type b.position_type

let pp fmt t =
  Format.fprintf fmt "standoff{start=%s end=%s%s type=%s}" t.start_name
    t.end_name
    (match t.region_name with None -> "" | Some r -> " region=" ^ r)
    t.position_type

type strategy =
  | Udf_no_candidates
  | Udf_candidates
  | Basic_merge
  | Loop_lifted

let strategy_of_string = function
  | "udf-nocand" -> Udf_no_candidates
  | "udf-cand" -> Udf_candidates
  | "basic" -> Basic_merge
  | "loop-lifted" -> Loop_lifted
  | s -> invalid_arg (Printf.sprintf "Config.strategy_of_string: %S" s)

let strategy_to_string = function
  | Udf_no_candidates -> "udf-nocand"
  | Udf_candidates -> "udf-cand"
  | Basic_merge -> "basic"
  | Loop_lifted -> "loop-lifted"

let all_strategies = [ Udf_no_candidates; Udf_candidates; Basic_merge; Loop_lifted ]

(* The execution-parallelism knob rides along with the configuration
   module so every layer (engine, CLI, bench) agrees on its default:
   the STANDOFF_JOBS environment variable, else 1 (sequential). *)
let default_jobs () = Standoff_util.Pool.default_jobs ()
