(** Durable store coordinator: snapshot + WAL recovery and logging.

    A data directory holds one append-only WAL ([wal.log]) and a small
    set of {!Standoff_store.Snapshot} files.  Boot-time recovery loads
    the newest intact snapshot, replays the WAL records past its LSN
    through {!Update}, and verifies the recovered documents' structural
    invariants before handing the collection out.

    Ordering contract with callers: apply the update to the in-memory
    collection first, then {!log} it — so every WAL record is an
    operation that validated against this store, and replay cannot hit
    an [Invalid_argument] that the live path did not. *)

exception Recovery_error of string
(** The WAL and the base state disagree (record names an unknown
    document, or no longer applies) or a recovered document fails its
    invariants.  Distinct from torn-tail truncation, which is handled
    silently, and from {!Standoff_store.Wal.Corrupt}. *)

type t

type recovery = {
  rec_snapshot : (int * string) option;  (** (lsn, path) loaded, if any *)
  rec_replayed : int;  (** WAL records applied past the snapshot *)
  rec_torn : string option;  (** torn-tail reason, when replay stopped early *)
}

val open_dir :
  ?policy:Standoff_store.Wal.fsync_policy ->
  ?snapshot_every:int ->
  ?keep:int ->
  ?seed:(unit -> Standoff_store.Collection.t) ->
  string ->
  t * recovery
(** [open_dir dir] recovers (or initialises) the store in [dir],
    creating the directory if needed.  [seed] builds the initial
    collection for a data directory with no snapshot — once a snapshot
    exists it takes precedence and [seed] is not called.
    [snapshot_every] enables automatic compaction via
    {!maybe_snapshot} every n logged updates (0 = manual only).
    [keep] is how many snapshot files {!snapshot} retains.
    @raise Standoff_store.Wal.Corrupt on inexplicable WAL damage.
    @raise Recovery_error when replay does not fit the base state. *)

val collection : t -> Standoff_store.Collection.t
val dir : t -> string
val fsync_policy : t -> Standoff_store.Wal.fsync_policy

val log : t -> Standoff_store.Wal.op -> int
(** Appends one already-applied update to the WAL and returns its LSN.
    Under the [Always] policy the record is on disk on return — the
    caller may acknowledge the update. *)

val snapshot : t -> generation:int -> string
(** Writes a snapshot of the current collection, resets the WAL, and
    prunes old snapshot files; returns the new snapshot's path.
    [generation] is the catalog version stamp.  The caller must hold
    its writer lock: the collection is encoded in place. *)

val maybe_snapshot : t -> generation:int -> string option
(** Runs {!snapshot} iff [snapshot_every] updates have been logged
    since the last one. *)

val dirty : t -> bool
(** Updates logged since the last snapshot? *)

val close : ?generation:int -> t -> unit
(** Flushes and closes the WAL.  When [generation] is given and the
    store is dirty, a final shutdown snapshot is written first so the
    next boot replays nothing. *)
