(** The StandOff join dispatcher: strategy selection, per-iteration
    vs. loop-lifted invocation, anti-join complements, and the paper's
    post-processing to unique node ids in document order (§4.4–4.5).

    The two entry points mirror how an XQuery engine calls axis steps:

    - {!run_sequence} evaluates one operator for a single context
      node sequence, like the non-lifted Staircase Join;
    - {!run_lifted} evaluates it for a whole [iter|item] table at
      once.  Under the {!Config.Loop_lifted} strategy this is a single
      merge-join sweep; under every other strategy the engine behaviour
      of the paper is reproduced faithfully: the single-sequence
      algorithm is re-invoked {e per iteration}, re-scanning the
      candidate index each time — which is exactly why Basic StandOff
      MergeJoin DNFs on XMark Q2 (Figure 6). *)

(** Per-call instrumentation, accumulated across join invocations:
    how many times the underlying algorithm ran (once for a
    loop-lifted sweep, once {e per iteration} otherwise) and how many
    candidate region-index rows those runs built or scanned.  The
    EXPLAIN ANALYZE output surfaces both, making the per-iteration
    rescan cost of the non-lifted strategies visible. *)
type stats = {
  mutable s_invocations : int;
  mutable s_index_rows : int;
  mutable s_chunks : int;
      (** parallel sweep chunks across invocations: loop-lifted sweeps
          contribute their chunk count (1 when sequential), the
          per-iteration and UDF paths 0 — so [> 1] means a join really
          fanned out *)
}

val fresh_stats : unit -> stats

(** [auto_strategy annots ~context_rows ~candidate_rows] picks a
    strategy for one operator invocation from its input sizes
    ([candidate_rows = None] means all area-annotations are
    candidates).  All strategies are result-equivalent, so this is
    purely a cost decision. *)
val auto_strategy :
  Annots.t -> context_rows:int -> candidate_rows:int option -> Config.strategy

(** [run_sequence op strategy annots ?deadline ~context ~candidates]
    evaluates one operator between a context pre array and candidate
    pres ([None] = no restriction, i.e. all area-annotations).
    Returns sorted duplicate-free pres.
    @raise Standoff_util.Timing.Deadline_exceeded on timeout. *)
val run_sequence :
  Op.t ->
  Config.strategy ->
  Annots.t ->
  ?active_set:Active_set.kind ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?stats:stats ->
  context:int array ->
  candidates:int array option ->
  unit ->
  int array

(** [run_lifted op strategy annots ?deadline ~loop ~context_iters
    ~context_pres ~candidates ()] evaluates one operator for every
    iteration of [loop].  [context_iters]/[context_pres] are parallel
    arrays sorted by [(iter, pre)]; [loop] lists every live iteration
    (iterations without context rows matter to the reject operators,
    which return {e all} candidates for them).  The result is parallel
    [(iters, pres)] arrays, per-iteration duplicate-free and in
    document order.

    With a [pool] of more than one job, the {!Config.Loop_lifted}
    strategy partitions the loop relation on iteration boundaries
    (iterations are independent by construction, §4 Listing 1) and
    runs one merge sweep per chunk against the shared immutable
    candidate index; chunk outputs are concatenated in chunk order, so
    the result is identical to the sequential sweep.  The [deadline]
    is honoured inside every chunk. *)
val run_lifted :
  Op.t ->
  Config.strategy ->
  Annots.t ->
  ?pool:Standoff_util.Pool.t ->
  ?active_set:Active_set.kind ->
  ?deadline:Standoff_util.Timing.deadline ->
  ?stats:stats ->
  loop:int array ->
  context_iters:int array ->
  context_pres:int array ->
  candidates:int array option ->
  unit ->
  int array * int array
