module Vec = Standoff_util.Vec
module Pool = Standoff_util.Pool
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area
module Metrics = Standoff_obs.Metrics

let m_builds_total =
  Metrics.counter "standoff_index_builds_total"
    ~help:"Region indexes built (full and restricted)"

let m_rows_built_total =
  Metrics.counter "standoff_index_rows_built_total"
    ~help:"Rows written into region indexes"

let m_restricts_total =
  Metrics.counter "standoff_index_restricts_total"
    ~help:"Candidate restrictions applied to a region index"

type t = {
  starts : int64 array;
  ends : int64 array;
  ids : int array;
  region_ranks : int array;
}

type row = {
  row_start : int64;
  row_end : int64;
  row_id : int;
  row_rank : int;
}

(* Total order: [row_rank] breaks the remaining tie, so sorting any
   permutation of the same rows yields the same array — which is what
   lets the chunked parallel sort + merge below match the sequential
   sort byte for byte. *)
let compare_row a b =
  let c = Int64.compare a.row_start b.row_start in
  if c <> 0 then c
  else
    let c = Int64.compare b.row_end a.row_end in
    if c <> 0 then c
    else
      let c = compare a.row_id b.row_id in
      if c <> 0 then c else compare a.row_rank b.row_rank

let of_sorted_rows rows n =
  let starts = Array.make n 0L
  and ends = Array.make n 0L
  and ids = Array.make n 0
  and region_ranks = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = rows.(i) in
    starts.(i) <- r.row_start;
    ends.(i) <- r.row_end;
    ids.(i) <- r.row_id;
    region_ranks.(i) <- r.row_rank
  done;
  { starts; ends; ids; region_ranks }

(* Merge sorted [rows.(lo, mid)] and [rows.(mid, hi)] through [tmp].
   Stable, though stability is moot under a total order. *)
let merge_runs rows tmp lo mid hi =
  Array.blit rows lo tmp lo (hi - lo);
  let i = ref lo and j = ref mid in
  for k = lo to hi - 1 do
    if !i >= mid then begin
      rows.(k) <- tmp.(!j);
      incr j
    end
    else if !j >= hi then begin
      rows.(k) <- tmp.(!i);
      incr i
    end
    else if compare_row tmp.(!j) tmp.(!i) < 0 then begin
      rows.(k) <- tmp.(!j);
      incr j
    end
    else begin
      rows.(k) <- tmp.(!i);
      incr i
    end
  done

(* Below this many rows a parallel sort costs more than it saves. *)
let parallel_sort_threshold = 4096

let build ?pool annots =
  let rows_vec = Vec.create () in
  List.iter
    (fun (id, area) ->
      List.iteri
        (fun rank r ->
          Vec.push rows_vec
            {
              row_start = Region.start_pos r;
              row_end = Region.end_pos r;
              row_id = id;
              row_rank = rank;
            })
        (Area.regions area))
    annots;
  let n = Vec.length rows_vec in
  Metrics.incr m_builds_total;
  Metrics.add m_rows_built_total n;
  if n = 0 then
    { starts = [||]; ends = [||]; ids = [||]; region_ranks = [||] }
  else begin
    let rows = Array.make n (Vec.get rows_vec 0) in
    Vec.iteri (fun i r -> rows.(i) <- r) rows_vec;
    (match pool with
    | Some p when Pool.jobs p > 1 && n >= parallel_sort_threshold ->
        (* Chunked parallel sort, then a log-depth pairwise merge.  The
           total order on rows makes the result identical to a single
           sequential sort. *)
        let min_chunk = parallel_sort_threshold / 4 in
        let chunks = Pool.chunk_count p ~min_chunk ~n () in
        if chunks = 1 then Array.sort compare_row rows
        else begin
          let boundaries =
            Pool.parallel_chunks p ~min_chunk ~n (fun ~chunk:_ ~lo ~hi ->
                let sub = Array.sub rows lo (hi - lo) in
                Array.sort compare_row sub;
                Array.blit sub 0 rows lo (hi - lo);
                (lo, hi))
          in
          let tmp = Array.make n rows.(0) in
          let rec merge_level runs =
            match runs with
            | [] | [ _ ] -> ()
            | _ ->
                let next = ref [] in
                let rec pair = function
                  | (lo1, hi1) :: (lo2, hi2) :: rest ->
                      assert (hi1 = lo2);
                      merge_runs rows tmp lo1 lo2 hi2;
                      next := (lo1, hi2) :: !next;
                      pair rest
                  | [ last ] -> next := last :: !next
                  | [] -> ()
                in
                pair runs;
                merge_level (List.rev !next)
          in
          merge_level (Array.to_list boundaries)
        end
    | _ -> Array.sort compare_row rows);
    of_sorted_rows rows n
  end

let row_count idx = Array.length idx.starts

let max_id idx =
  let m = ref (-1) in
  Array.iter (fun id -> if id > !m then m := id) idx.ids;
  !m

let annotation_ids idx =
  let n = Array.length idx.ids in
  if n = 0 then [||]
  else begin
    (* Ids are clustered on start position, not sorted, but they are
       dense small ints: mark presence in a bitmap sized by the max id
       and read the survivors back out in ascending order — no copy,
       no polymorphic sort. *)
    let m = max_id idx in
    let seen = Bytes.make (m + 1) '\000' in
    let distinct = ref 0 in
    Array.iter
      (fun id ->
        if Bytes.unsafe_get seen id = '\000' then begin
          Bytes.unsafe_set seen id '\001';
          incr distinct
        end)
      idx.ids;
    let out = Array.make !distinct 0 in
    let k = ref 0 in
    for id = 0 to m do
      if Bytes.unsafe_get seen id = '\001' then begin
        out.(!k) <- id;
        incr k
      end
    done;
    out
  end

let restrict ?pool idx ~ids =
  Metrics.incr m_restricts_total;
  let n_rows = Array.length idx.ids in
  let n_ids = Array.length ids in
  if n_rows = 0 || n_ids = 0 then
    { starts = [||]; ends = [||]; ids = [||]; region_ranks = [||] }
  else begin
    (* [idx.ids] is clustered on start position, not on id, so a
       two-pointer merge with the sorted [ids] is impossible; instead
       build a bitmap over the candidate ids once and sweep the rows
       with O(1) membership tests. *)
    let max_cand = ids.(n_ids - 1) in
    let member = Bytes.make (max_cand + 1) '\000' in
    Array.iter (fun id -> Bytes.unsafe_set member id '\001') ids;
    let mem id = id <= max_cand && Bytes.unsafe_get member id = '\001' in
    let count_range lo hi =
      let c = ref 0 in
      for row = lo to hi - 1 do
        if mem (Array.unsafe_get idx.ids row) then incr c
      done;
      !c
    in
    let fill_range dst ~dst_off lo hi =
      let { starts; ends; ids = out_ids; region_ranks } = dst in
      let k = ref dst_off in
      for row = lo to hi - 1 do
        if mem (Array.unsafe_get idx.ids row) then begin
          starts.(!k) <- idx.starts.(row);
          ends.(!k) <- idx.ends.(row);
          out_ids.(!k) <- idx.ids.(row);
          region_ranks.(!k) <- idx.region_ranks.(row);
          incr k
        end
      done
    in
    match pool with
    | Some p when Pool.jobs p > 1 && n_rows >= parallel_sort_threshold ->
        (* Two partitioned sweeps: count survivors per chunk, then fill
           each chunk's contiguous output slice — chunk order keeps the
           start clustering. *)
        let min_chunk = parallel_sort_threshold / 4 in
        let counts =
          Pool.parallel_chunks p ~min_chunk ~n:n_rows
            (fun ~chunk:_ ~lo ~hi -> (lo, hi, count_range lo hi))
        in
        let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 counts in
        let dst =
          {
            starts = Array.make total 0L;
            ends = Array.make total 0L;
            ids = Array.make total 0;
            region_ranks = Array.make total 0;
          }
        in
        let offsets = Array.make (Array.length counts) 0 in
        let acc = ref 0 in
        Array.iteri
          (fun i (_, _, c) ->
            offsets.(i) <- !acc;
            acc := !acc + c)
          counts;
        Pool.run_all p
          (Array.init (Array.length counts) (fun i () ->
               let lo, hi, _ = counts.(i) in
               fill_range dst ~dst_off:offsets.(i) lo hi));
        dst
    | _ ->
        let total = count_range 0 n_rows in
        let dst =
          {
            starts = Array.make total 0L;
            ends = Array.make total 0L;
            ids = Array.make total 0;
            region_ranks = Array.make total 0;
          }
        in
        fill_range dst ~dst_off:0 0 n_rows;
        dst
  end

let region idx row = Region.make idx.starts.(row) idx.ends.(row)

let pp fmt idx =
  Format.fprintf fmt "@[<v>start|end|id|rank@,";
  for i = 0 to row_count idx - 1 do
    Format.fprintf fmt "%Ld|%Ld|%d|%d@," idx.starts.(i) idx.ends.(i)
      idx.ids.(i) idx.region_ranks.(i)
  done;
  Format.fprintf fmt "@]"
