(** Extraction of area-annotations from a shredded document, under a
    given {!Config} (paper §2).

    In the attribute representation, an element is an area-annotation
    when it carries both the start and the end attribute; in the
    element representation, when it has at least one region child
    element.  Descendants of an area-annotation may freely be
    area-annotations themselves, with no containment restriction. *)

exception Invalid_region of { pre : int; msg : string }
(** Raised when an element has region markup that cannot be
    interpreted — one of the two names missing, a position that is not
    an integer, or [start > end]. *)

type restricted_cache
(** A small LRU ({!Standoff_cache.Lru}) of candidate restrictions,
    keyed structurally on the candidate id array — structurally equal
    candidate sets from separate [prepare] calls hit, and the bound
    keeps it from growing without limit.  Safe to share across domains
    (the lock is held under [Fun.protect], so exception paths cannot
    poison it); hit/miss/eviction counts are exported as
    [standoff_cache_*{cache="restricted"}]. *)

type t = private {
  doc : Standoff_store.Doc.t;
  ids : int array;  (** area-annotation pres, sorted *)
  areas : Standoff_interval.Area.t array;  (** parallel to [ids] *)
  index : Region_index.t;
  max_regions_per_area : int;
      (** [1] enables the single-region fast paths of the joins *)
  restricted_cache : restricted_cache;
}

(** [extract ?pool config doc] scans the document once and builds the
    annotation table and region index (index sort parallelised when a
    [pool] is given). *)
val extract : ?pool:Standoff_util.Pool.t -> Config.t -> Standoff_store.Doc.t -> t

(** [annotation_count t] is the number of area-annotations. *)
val annotation_count : t -> int

(** [area_of t pre] is the area of annotation [pre], if [pre] is an
    area-annotation. *)
val area_of : t -> int -> Standoff_interval.Area.t option

(** [is_annotation t pre] tests membership in constant-ish time
    (binary search). *)
val is_annotation : t -> int -> bool

(** [restrict_ids t ~candidates] intersects the sorted candidate pre
    array with the annotation ids, returning the sorted pres that are
    both candidates and area-annotations. *)
val restrict_ids : t -> candidates:int array -> int array

(** [candidate_index t ~candidates] is the §4.3 candidate sequence: the
    region index restricted to [candidates] ([None] means the entire
    index).  Built from the candidate side in O(|candidates| log
    |candidates|) and cached per candidate set (structural key, small
    LRU), so a loop-lifted query pays for it once. *)
val candidate_index :
  ?pool:Standoff_util.Pool.t -> t -> candidates:int array option -> Region_index.t

(** [candidate_index_scan t ~candidates] is the same restriction
    computed the way the paper's pre-loop-lifting engine computes it on
    {e every} invocation: one full scan of the region index,
    intersecting on node id (§4.3).  The per-iteration strategies use
    this — "repeated full scans of the region index" is precisely why
    Basic StandOff MergeJoin does not finish XMark Q2 (§4.6). *)
val candidate_index_scan :
  ?pool:Standoff_util.Pool.t -> t -> candidates:int array option -> Region_index.t
