(* Inline ⇄ stand-off conversion: round-trip byte identity, layered
   output, overlap splitting, tie-breaking, containment consistency
   with the inline descendant axis, and bulk ingestion through the
   engine. *)

module Dom = Standoff_xml.Dom
module Parser = Standoff_xml.Parser
module Serializer = Standoff_xml.Serializer
module Convert = Standoff_convert.Convert
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Catalog = Standoff.Catalog
module Engine = Standoff_xquery.Engine
module Wal = Standoff_store.Wal

let canon dom = Serializer.to_string dom

let roundtrip dom =
  let conv = Convert.to_standoff dom in
  Convert.to_inline ~blob:conv.Convert.blob [ conv.Convert.doc ]

(* ------------------------------------------------------------ *)
(* Hand-crafted round-trip                                       *)

let tei_snippet =
  "<TEI><teiHeader><title>A tiny sample</title></teiHeader><body><p \
   n=\"1\">The <w pos=\"adj\">quick</w> fox<!-- really a dog --> \
   jumps.</p><p n=\"2\"><w>Over</w><pb/>and out.</p><?page 2?></body></TEI>"

let test_tei_roundtrip () =
  let dom = Parser.parse_string tei_snippet in
  let conv = Convert.to_standoff dom in
  (* every element and every comment/PI wrapper owns one separator *)
  let rec count_nodes n = function
    | Dom.Element e ->
        List.fold_left count_nodes (n + 1) e.Dom.children
    | Dom.Comment _ | Dom.Pi _ -> n + 1
    | Dom.Text _ -> n
  in
  let seps =
    String.fold_left
      (fun n c -> if c = '\n' then n + 1 else n)
      0 conv.Convert.blob
  in
  Alcotest.(check int)
    "one separator per element and comment/PI"
    (count_nodes 0 (Dom.Element dom.Dom.root))
    seps;
  Alcotest.(check string) "round-trip is byte-identical" (canon dom)
    (canon (Convert.to_inline ~blob:conv.Convert.blob [ conv.Convert.doc ]))

let test_collisions_rejected () =
  let dom = Parser.parse_string "<a><b start=\"3\"/></a>" in
  Alcotest.check_raises "extent attribute collision"
    (Invalid_argument
       "Convert.to_standoff: element <b> already carries a \"start\" \
        attribute") (fun () -> ignore (Convert.to_standoff dom));
  let dom = Parser.parse_string "<a><so-node/></a>" in
  Alcotest.check_raises "node-wrapper tag collision"
    (Invalid_argument
       "Convert.to_standoff: element named \"so-node\" collides with the \
        node wrapper") (fun () -> ignore (Convert.to_standoff dom));
  (* both are fine under the historical On_empty policy, which neither
     wraps nodes nor needs reconstructible extents *)
  ignore
    (Convert.to_standoff ~start_name:"s" ~end_name:"e"
       ~separator:Convert.On_empty
       (Parser.parse_string "<a><so-node start=\"3\"/></a>"))

(* ------------------------------------------------------------ *)
(* Random round-trips (generators as in test_persist)            *)

let gen_tree =
  let open QCheck.Gen in
  let rec node depth =
    if depth = 0 then map (fun s -> Dom.text s) (oneofl [ "x"; "y&z"; " " ])
    else
      frequency
        [
          (2, map (fun s -> Dom.text s) (oneofl [ "t"; "<>&" ]));
          (1, return (Dom.Comment "c"));
          ( 4,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              (oneofl [ "a"; "b"; "c" ])
              (map
                 (fun vs -> List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vs)
                 (list_size (0 -- 2) (oneofl [ "1"; "two" ])))
              (list_size (0 -- 3) (node (depth - 1))) );
        ]
  in
  map
    (fun children -> Dom.document (Dom.element "root" children))
    (list_size (0 -- 4) (node 3))

let odd_names =
  [ "a"; "ns:b"; "_x"; "\xc3\xa9"; "\xe5\xb1\x9e\xe6\x80\xa7"; "a-b.c"; "xml:lang"; "A.B" ]

let odd_values =
  [ ""; " "; "\t"; "\xc3\xbc"; "\xf0\x9f\x98\x80"; "line\nbreak"; "&<>\"'"; "\x00\x01" ]

let gen_hostile_tree =
  let open QCheck.Gen in
  let name = oneofl odd_names in
  let value = oneofl odd_values in
  let attrs =
    map
      (fun kvs -> List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs)
      (list_size (0 -- 3) (pair name value))
  in
  let rec node depth =
    if depth = 0 then map Dom.text (oneofl [ "t"; "\xe2\x98\x83"; " " ])
    else
      frequency
        [
          (1, map Dom.text (oneofl [ "x"; "\xc3\xa9t\xc3\xa9" ]));
          ( 4,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              name attrs
              (list_size (0 -- 2) (node (depth - 1))) );
        ]
  in
  frequency
    [
      (1, return (Dom.document (Dom.element "root" [])));
      ( 6,
        map2
          (fun attrs children ->
            Dom.document (Dom.element ~attrs "root" children))
          attrs
          (list_size (0 -- 3) (node 2)) );
    ]

let qcheck_roundtrip =
  QCheck.Test.make ~name:"stand-off round-trip on random documents"
    ~count:300
    (QCheck.make ~print:canon gen_tree)
    (fun dom -> String.equal (canon dom) (canon (roundtrip dom)))

let qcheck_hostile_roundtrip =
  QCheck.Test.make ~name:"stand-off round-trip on hostile documents"
    ~count:300
    (QCheck.make ~print:canon gen_hostile_tree)
    (fun dom -> String.equal (canon dom) (canon (roundtrip dom)))

(* select-narrow containment over the converted extents answers
   exactly the descendant axis of the inline original: Per_element
   separators make extents strictly nested, so region containment and
   tree descent coincide. *)
let qcheck_narrow_matches_descendant =
  QCheck.Test.make ~name:"select-narrow agrees with inline descendant"
    ~count:60
    (QCheck.make ~print:canon gen_tree)
    (fun dom ->
      let conv = Convert.to_standoff dom in
      let coll = Collection.create () in
      ignore (Collection.add coll (Doc.of_dom ~name:"in.xml" dom));
      ignore (Collection.add coll (Doc.of_dom ~name:"so.xml" conv.Convert.doc));
      let eng = Engine.create coll in
      let run q = (Engine.run eng ~rollback_constructed:true q).Engine.serialized in
      let names = [ "a"; "b"; "c" ] in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              let narrow =
                run
                  (Printf.sprintf
                     "count(doc(\"so.xml\")//%s/select-narrow::%s)" x y)
              in
              let inline =
                if String.equal x y then
                  (* every region contains itself, so the deduplicated
                     narrow join over x = x is just the x nodes *)
                  run (Printf.sprintf "count(doc(\"in.xml\")//%s)" x)
                else
                  run (Printf.sprintf "count(doc(\"in.xml\")//%s//%s)" x y)
              in
              String.equal narrow inline)
            names)
        names)

(* ------------------------------------------------------------ *)
(* Layers                                                        *)

let test_layers () =
  let dom =
    Parser.parse_string
      "<body><p><w>one</w> <w>two</w></p><p><w>three</w></p></body>"
  in
  let conv =
    Convert.to_standoff
      ~layers:[ ("words", [ "w" ]); ("paras", [ "p" ]) ]
      dom
  in
  let layer name = List.assoc name conv.Convert.layers in
  let count_children d = List.length d.Dom.root.Dom.children in
  Alcotest.(check int) "three word annotations" 3 (count_children (layer "words"));
  Alcotest.(check int) "two paragraph annotations" 2 (count_children (layer "paras"));
  List.iter
    (function
      | Dom.Element e ->
          Alcotest.(check string) "layer element name" "w" e.Dom.tag;
          Alcotest.(check (list string)) "flat: children dropped" []
            (List.map (fun _ -> "child") e.Dom.children);
          Alcotest.(check bool) "extents kept" true
            (Dom.attr e "start" <> None && Dom.attr e "end" <> None)
      | _ -> Alcotest.fail "layer child is not an element")
    (layer "words").Dom.root.Dom.children;
  (* a single layer re-inlines against the shared blob on its own *)
  let words_only =
    Convert.to_inline ~blob:conv.Convert.blob [ layer "words" ]
  in
  Alcotest.(check string) "synthetic root" "text" words_only.Dom.root.Dom.tag;
  let texts =
    List.filter_map
      (function
        | Dom.Element e when String.equal e.Dom.tag "w" ->
            Some (Dom.text_content (Dom.Element e))
        | _ -> None)
      words_only.Dom.root.Dom.children
  in
  Alcotest.(check (list string)) "word contents survive alone"
    [ "one"; "two"; "three" ] texts

(* ------------------------------------------------------------ *)
(* Placement semantics on hand-built annotations                 *)

let ann name s e =
  Dom.element
    ~attrs:[ ("start", string_of_int s); ("end", string_of_int e) ]
    name []

let anns_doc nodes = Dom.document (Dom.element "anns" nodes)

let test_overlap_split () =
  (* y crosses x's right boundary: it is split there into two y tags *)
  let inlined =
    Convert.to_inline ~consume_separator:false ~root_name:"r" ~blob:"abcdefgh"
      [ anns_doc [ ann "x" 0 4; ann "y" 3 7 ] ]
  in
  let expected =
    Dom.document
      (Dom.element "r"
         [
           Dom.element "x"
             [ Dom.text "abc"; Dom.element "y" [ Dom.text "de" ] ];
           Dom.element "y" [ Dom.text "fgh" ];
         ])
  in
  Alcotest.(check string) "split at the open annotation's boundary"
    (canon expected) (canon inlined)

let test_tiebreak_deterministic () =
  (* identical extents: input order decides nesting *)
  let nested order =
    canon
      (Convert.to_inline ~consume_separator:false ~root_name:"r" ~blob:"abcd"
         [ anns_doc order ])
  in
  Alcotest.(check string) "first listed wraps the second"
    (canon
       (Dom.document
          (Dom.element "one" [ Dom.element "two" [ Dom.text "abcd" ] ])))
    (nested [ ann "one" 0 3; ann "two" 0 3 ]);
  Alcotest.(check string) "swapped input, swapped nesting"
    (canon
       (Dom.document
          (Dom.element "two" [ Dom.element "one" [ Dom.text "abcd" ] ])))
    (nested [ ann "two" 0 3; ann "one" 0 3 ]);
  (* shared start, different ends: the longer one opens first no
     matter how the input lists them — and, covering the whole blob
     alone, it becomes the root without a synthetic wrapper *)
  let expect_outer =
    canon
      (Dom.document
         (Dom.element "long"
            [ Dom.element "short" [ Dom.text "ab" ]; Dom.text "cd" ]))
  in
  Alcotest.(check string) "longest-first at a shared start" expect_outer
    (nested [ ann "short" 0 1; ann "long" 0 3 ])

let test_bad_extents_rejected () =
  let check msg nodes =
    match
      Convert.to_inline ~blob:"abcd" [ anns_doc nodes ]
    with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail msg
  in
  check "start > end" [ ann "x" 3 1 ];
  check "outside the blob" [ ann "x" 0 9 ];
  check "negative start" [ ann "x" (-1) 2 ];
  check "one-sided extent"
    [ Dom.element ~attrs:[ ("start", "0") ] "x" [] ];
  check "non-integer extent"
    [ Dom.element ~attrs:[ ("start", "zero"); ("end", "3") ] "x" [] ]

(* ------------------------------------------------------------ *)
(* Bulk ingestion through the engine                             *)

let converted name xml =
  let conv = Convert.to_standoff (Parser.parse_string xml) in
  (Doc.of_dom ~name conv.Convert.doc, (name ^ ".blob", conv.Convert.blob))

let test_engine_ingest () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"base.xml" "<a><b/></a>");
  let eng = Engine.create coll in
  let ops = ref [] in
  Engine.set_on_update eng (Some (fun op -> ops := op :: !ops));
  let d1, b1 = converted "d1.xml" "<p><w>alpha</w></p>" in
  let d2, b2 = converted "d2.xml" "<p><w>beta</w> and <w>gamma</w></p>" in
  let v0 = Catalog.version (Engine.catalog eng) in
  let n = Engine.ingest eng [ d1; d2 ] [ b1; b2 ] in
  Alcotest.(check int) "two documents ingested" 2 n;
  Alcotest.(check int) "one version bump for the whole batch" (v0 + 1)
    (Catalog.version (Engine.catalog eng));
  (match !ops with
  | [ Wal.Ingest { docs; blobs } ] ->
      Alcotest.(check (list string)) "one batched WAL record, both docs"
        [ "d1.xml"; "d2.xml" ] (List.map fst docs);
      Alcotest.(check (list string)) "both blobs"
        [ "d1.xml.blob"; "d2.xml.blob" ] (List.map fst blobs)
  | _ -> Alcotest.fail "expected exactly one Ingest record");
  Alcotest.(check string) "ingested documents answer queries" "2"
    (Engine.run eng ~rollback_constructed:true
       "count(doc(\"d2.xml\")//p/select-narrow::w)")
      .Engine.serialized

let test_engine_ingest_conflict_atomic () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"base.xml" "<a/>");
  let eng = Engine.create coll in
  let ops = ref 0 in
  Engine.set_on_update eng (Some (fun _ -> incr ops));
  let d1, b1 = converted "new.xml" "<p>x</p>" in
  let dup, bdup = converted "base.xml" "<p>y</p>" in
  (* a conflicting name anywhere in the batch rejects the whole batch
     before anything is mutated *)
  (match Engine.ingest eng [ d1; dup ] [ b1; bdup ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting batch must raise");
  Alcotest.(check int) "nothing ingested" 1 (Collection.doc_count coll);
  Alcotest.(check int) "nothing logged" 0 !ops;
  (* in-batch duplicates reject too *)
  (match Engine.ingest eng [ d1; d1 ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "in-batch duplicate must raise");
  Alcotest.(check int) "still nothing ingested" 1 (Collection.doc_count coll)

let () =
  Alcotest.run "convert"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "tei snippet" `Quick test_tei_roundtrip;
          Alcotest.test_case "collisions rejected" `Quick
            test_collisions_rejected;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_hostile_roundtrip;
        ] );
      ( "containment",
        [ QCheck_alcotest.to_alcotest qcheck_narrow_matches_descendant ] );
      ( "layers", [ Alcotest.test_case "projection" `Quick test_layers ] );
      ( "placement",
        [
          Alcotest.test_case "overlap split" `Quick test_overlap_split;
          Alcotest.test_case "deterministic tie-break" `Quick
            test_tiebreak_deterministic;
          Alcotest.test_case "bad extents rejected" `Quick
            test_bad_extents_rejected;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "batched" `Quick test_engine_ingest;
          Alcotest.test_case "conflicts are atomic" `Quick
            test_engine_ingest_conflict_atomic;
        ] );
    ]
