(* Core StandOff join tests: configuration, extraction, the region
   index, the paper's §3.1 multimedia example, and the central
   agreement property — all four strategies equal the executable
   formal semantics on random annotation documents, in both
   representations. *)

module Doc = Standoff_store.Doc
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area
module Config = Standoff.Config
module Op = Standoff.Op
module Annots = Standoff.Annots
module Region_index = Standoff.Region_index
module Spec = Standoff.Spec
module Join = Standoff.Join
module Catalog = Standoff.Catalog
module Engine = Standoff_xquery.Engine

(* ------------------------------------------------------------ *)
(* Configuration                                                 *)

let test_config_defaults () =
  Alcotest.(check string) "start" "start" Config.default.Config.start_name;
  Alcotest.(check string) "end" "end" Config.default.Config.end_name;
  Alcotest.(check bool) "attribute representation" true
    (Config.representation Config.default = Config.Attributes)

let test_config_options () =
  let c = Config.set_option Config.default ~name:"start" ~value:"from" in
  let c = Config.set_option c ~name:"end" ~value:"to" in
  let c = Config.set_option c ~name:"region" ~value:"span" in
  Alcotest.(check string) "start renamed" "from" c.Config.start_name;
  Alcotest.(check bool) "element representation" true
    (Config.representation c = Config.Region_elements);
  Alcotest.check_raises "bad option" (Invalid_argument "unknown option standoff-foo")
    (fun () -> ignore (Config.set_option c ~name:"foo" ~value:"x"));
  Alcotest.(check bool) "bad qname rejected" true
    (match Config.set_option c ~name:"start" ~value:"1bad" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_strategy_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Config.strategy_to_string s)
        true
        (Config.strategy_of_string (Config.strategy_to_string s) = s))
    Config.all_strategies

(* ------------------------------------------------------------ *)
(* Extraction                                                    *)

let test_extract_attributes () =
  let d =
    Doc.parse ~name:"t"
      "<t><a start=\"1\" end=\"10\"><b start=\"20\" end=\"5\"/></a></t>"
  in
  (* b has start > end: extraction must reject the document. *)
  Alcotest.(check bool) "invalid region" true
    (match Annots.extract Config.default d with
    | exception Annots.Invalid_region _ -> true
    | _ -> false)

let test_extract_nested_unrestricted () =
  (* Descendant annotations need not be contained in their ancestors'
     regions (paper §2). *)
  let d =
    Doc.parse ~name:"t"
      "<t><a start=\"10\" end=\"20\"><b start=\"100\" end=\"200\"/></a></t>"
  in
  let annots = Annots.extract Config.default d in
  Alcotest.(check int) "two annotations" 2 (Annots.annotation_count annots)

let test_extract_partial_attrs_rejected () =
  let d = Doc.parse ~name:"t" "<t><a start=\"1\"/></t>" in
  Alcotest.(check bool) "start without end" true
    (match Annots.extract Config.default d with
    | exception Annots.Invalid_region _ -> true
    | _ -> false)

let test_extract_non_integer_rejected () =
  let d = Doc.parse ~name:"t" "<t><a start=\"x\" end=\"10\"/></t>" in
  Alcotest.(check bool) "non-integer" true
    (match Annots.extract Config.default d with
    | exception Annots.Invalid_region _ -> true
    | _ -> false)

let test_extract_renamed () =
  let config =
    Config.set_option
      (Config.set_option Config.default ~name:"start" ~value:"from")
      ~name:"end" ~value:"to"
  in
  let d = Doc.parse ~name:"t" "<t><a from=\"1\" to=\"10\" start=\"9\" end=\"99\"/></t>" in
  let annots = Annots.extract config d in
  Alcotest.(check int) "one annotation" 1 (Annots.annotation_count annots);
  match Annots.area_of annots 2 with
  | Some area ->
      Alcotest.(check string) "renamed attrs win" "{[1,10]}" (Area.to_string area)
  | None -> Alcotest.fail "annotation missing"

let test_extract_region_elements () =
  let config = Config.with_region_elements Config.default in
  let d =
    Doc.parse ~name:"t"
      "<t><file><region><start>0</start><end>9</end></region>\
       <region><start>100</start><end>199</end></region></file>\
       <plain/></t>"
  in
  let annots = Annots.extract config d in
  Alcotest.(check int) "one annotation" 1 (Annots.annotation_count annots);
  Alcotest.(check int) "multi-region mode" 2 annots.Annots.max_regions_per_area;
  match Annots.area_of annots 2 with
  | Some area ->
      Alcotest.(check string) "area" "{[0,9];[100,199]}" (Area.to_string area)
  | None -> Alcotest.fail "annotation missing"

let test_extract_attr_mode_ignores_region_elements () =
  let d =
    Doc.parse ~name:"t"
      "<t><file><region><start>0</start><end>9</end></region></file></t>"
  in
  let annots = Annots.extract Config.default d in
  Alcotest.(check int) "no annotations in attribute mode" 0
    (Annots.annotation_count annots)

(* ------------------------------------------------------------ *)
(* Region index                                                  *)

let test_index_clustering () =
  let idx =
    Region_index.build
      [
        (10, Area.of_region (Region.make_int 5 9));
        (11, Area.of_region (Region.make_int 0 100));
        (12, Area.make [ Region.make_int 5 20; Region.make_int 50 60 ]);
      ]
  in
  Alcotest.(check int) "rows (multi-region repeats id)" 4
    (Region_index.row_count idx);
  Alcotest.(check (list int64)) "clustered on start" [ 0L; 5L; 5L; 50L ]
    (Array.to_list idx.Region_index.starts);
  (* Equal starts: wider region first. *)
  Alcotest.(check (list int)) "ids" [ 11; 12; 10; 12 ]
    (Array.to_list idx.Region_index.ids);
  Alcotest.(check (list int)) "annotation ids" [ 10; 11; 12 ]
    (Array.to_list (Region_index.annotation_ids idx))

let test_restrict_ids () =
  let d =
    Doc.parse ~name:"t"
      "<t><a start=\"0\" end=\"9\"/><plain/><b start=\"5\" end=\"7\"/></t>"
  in
  let annots = Annots.extract Config.default d in
  (* Pres: t=1, a=2, plain=3, b=4; only a and b are annotations. *)
  Alcotest.(check (array int)) "keeps annotations only" [| 2; 4 |]
    (Annots.restrict_ids annots ~candidates:[| 1; 2; 3; 4 |]);
  Alcotest.(check bool) "is_annotation" true (Annots.is_annotation annots 4);
  Alcotest.(check bool) "plain is not" false (Annots.is_annotation annots 3)

let test_index_restrict () =
  let idx =
    Region_index.build
      [
        (10, Area.of_region (Region.make_int 5 9));
        (11, Area.of_region (Region.make_int 0 100));
        (12, Area.make [ Region.make_int 5 20; Region.make_int 50 60 ]);
      ]
  in
  let r = Region_index.restrict idx ~ids:[| 10; 12 |] in
  Alcotest.(check int) "restricted rows" 3 (Region_index.row_count r);
  Alcotest.(check (list int64)) "start order preserved" [ 5L; 5L; 50L ]
    (Array.to_list r.Region_index.starts)

(* ------------------------------------------------------------ *)
(* The §3.1 multimedia example (Figure 1)                        *)

let figure1 =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

let figure1_setup () =
  let d = Doc.parse ~name:"figure1" figure1 in
  let annots = Annots.extract Config.default d in
  let u2 =
    Array.of_list
      (List.filter
         (fun pre -> Doc.attribute d pre "artist" = Some "U2")
         (Array.to_list (Doc.elements_named d "music")))
  in
  let shots = Doc.elements_named d "shot" in
  (d, annots, u2, shots)

let shot_ids d pres =
  List.filter_map (fun pre -> Doc.attribute d pre "id") (Array.to_list pres)

let check_table_3_1 run =
  let d, annots, u2, shots = figure1_setup () in
  let result op = shot_ids d (run op annots ~context:u2 ~candidates:shots) in
  Alcotest.(check (list string)) "select-narrow" [ "Intro" ]
    (result Op.Select_narrow);
  Alcotest.(check (list string)) "select-wide" [ "Intro"; "Interview" ]
    (result Op.Select_wide);
  Alcotest.(check (list string)) "reject-narrow" [ "Interview"; "Outro" ]
    (result Op.Reject_narrow);
  Alcotest.(check (list string)) "reject-wide" [ "Outro" ]
    (result Op.Reject_wide)

let test_table_3_1_spec () =
  check_table_3_1 (fun op annots ~context ~candidates ->
      Spec.join op annots ~context ~candidates)

let test_table_3_1_strategies () =
  List.iter
    (fun strategy ->
      check_table_3_1 (fun op annots ~context ~candidates ->
          Join.run_sequence op strategy annots ~context
            ~candidates:(Some candidates) ()))
    Config.all_strategies

(* ------------------------------------------------------------ *)
(* Catalog                                                       *)

let test_catalog_caches () =
  let cat = Catalog.create () in
  let d = Doc.parse ~name:"figure1" figure1 in
  let a1 = Catalog.annots cat Config.default d in
  let a2 = Catalog.annots cat Config.default d in
  Alcotest.(check bool) "same extraction object" true (a1 == a2);
  let other = Config.set_option Config.default ~name:"type" ~value:"xs:long" in
  let a3 = Catalog.annots cat other d in
  Alcotest.(check bool) "different config, different entry" true (a1 != a3);
  Catalog.invalidate cat d;
  let a4 = Catalog.annots cat Config.default d in
  Alcotest.(check bool) "invalidated" true (a1 != a4)

(* ------------------------------------------------------------ *)
(* Updates                                                       *)

let test_update_set_region () =
  let d = Doc.parse ~name:"figure1" figure1 in
  let cat = Catalog.create () in
  let engine_query () =
    (* The U2 track's narrow shots, via the core API with cached
       annotations. *)
    let annots = Catalog.annots cat Config.default d in
    let music =
      Array.of_list
        (List.filter
           (fun pre -> Doc.attribute d pre "artist" = Some "U2")
           (Array.to_list (Doc.elements_named d "music")))
    in
    shot_ids d
      (Join.run_sequence Op.Select_narrow Config.Loop_lifted annots
         ~context:music
         ~candidates:(Some (Doc.elements_named d "shot"))
         ())
  in
  Alcotest.(check (list string)) "before" [ "Intro" ] (engine_query ());
  (* Stretch the U2 track to cover the interview too. *)
  let u2 =
    List.find
      (fun pre -> Doc.attribute d pre "artist" = Some "U2")
      (Array.to_list (Doc.elements_named d "music"))
  in
  Standoff.Update.set_region cat Config.default d ~pre:u2
    (Standoff_interval.Region.make_int 0 64);
  Alcotest.(check (list string)) "after stretch" [ "Intro"; "Interview" ]
    (engine_query ());
  Alcotest.(check (option string)) "attribute rewritten" (Some "64")
    (Doc.attribute d u2 "end")

let test_update_rejects_bad_targets () =
  let d = Doc.parse ~name:"f" "<t><a start=\"0\" end=\"5\"/><plain/></t>" in
  let cat = Catalog.create () in
  let check_invalid name f =
    Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  check_invalid "non-annotation" (fun () ->
      Standoff.Update.set_region cat Config.default d ~pre:3
        (Standoff_interval.Region.make_int 0 1));
  check_invalid "element representation" (fun () ->
      Standoff.Update.set_region cat
        (Config.with_region_elements Config.default)
        d ~pre:2
        (Standoff_interval.Region.make_int 0 1))

let test_update_shift () =
  let d =
    Doc.parse ~name:"s"
      "<t><a start=\"0\" end=\"9\"/><b start=\"10\" end=\"19\"/>\
       <c start=\"20\" end=\"29\"/></t>"
  in
  let cat = Catalog.create () in
  (* Insert 5 positions of BLOB content at position 10: b and c move. *)
  let moved =
    Standoff.Update.shift_annotations cat Config.default d ~from:10L ~by:5L
  in
  Alcotest.(check int) "two moved" 2 moved;
  Alcotest.(check (option string)) "a untouched" (Some "9")
    (Doc.attribute d 2 "end");
  Alcotest.(check (option string)) "b start" (Some "15")
    (Doc.attribute d 3 "start");
  Alcotest.(check (option string)) "c end" (Some "34")
    (Doc.attribute d 4 "end");
  (* Negative shift past zero is refused. *)
  Alcotest.(check bool) "negative refused" true
    (match
       Standoff.Update.shift_annotations cat Config.default d ~from:0L ~by:(-100L)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* A failed shift must leave no trace: the shift validates every
   annotation before rewriting any row, so a mid-batch refusal cannot
   leave earlier annotations moved with no invalidation — which would
   let generation-stamped caches serve pre-update answers over a
   mutated store. *)
let test_update_shift_failure_is_atomic () =
  let coll = Standoff_store.Collection.create () in
  ignore
    (Standoff_store.Collection.load_string coll ~name:"s.xml"
       "<t><a start=\"10\" end=\"19\"/><b start=\"0\" end=\"9\"/></t>");
  let eng = Engine.create coll in
  let d =
    Standoff_store.Collection.doc coll
      (Option.get (Standoff_store.Collection.doc_id_of_name coll "s.xml"))
  in
  let q = "count(doc(\"s.xml\")//t/select-wide::a)" in
  let run () = (Engine.run eng ~rollback_constructed:true q).Engine.serialized in
  let before = run () in
  let v0 = Catalog.version (Engine.catalog eng) in
  (* Shifting everything from 0 by -5 moves <a> (10 -> 5) fine but
     would drive <b> negative.  In document order <a> precedes <b>, so
     a single-pass shift has already rewritten <a> when it refuses. *)
  Alcotest.(check bool) "shift refused" true
    (match
       Engine.shift_annotations eng Config.default d ~from:0L ~by:(-5L)
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check (option string)) "a untouched after failed shift"
    (Some "10")
    (Doc.attribute d 2 "start");
  Alcotest.(check (option string)) "b untouched after failed shift"
    (Some "0")
    (Doc.attribute d 3 "start");
  Alcotest.(check int) "no invalidation for a no-op" v0
    (Catalog.version (Engine.catalog eng));
  Alcotest.(check string) "queries still answer the pre-shift state"
    before (run ())

(* ------------------------------------------------------------ *)
(* Agreement on random documents                                 *)

(* Build a flat annotation document: in attribute mode each <ann> has a
   single region; in element mode each has 1-3 region children. *)
let build_attr_doc regions =
  let body =
    List.map
      (fun (s, e) -> Printf.sprintf "<ann start=\"%d\" end=\"%d\"/>" s e)
      regions
    |> String.concat ""
  in
  Doc.parse ~name:"rand" ("<t>" ^ body ^ "</t>")

let build_region_doc areas =
  let body =
    List.map
      (fun regs ->
        let inner =
          List.map
            (fun (s, e) ->
              Printf.sprintf
                "<region><start>%d</start><end>%d</end></region>" s e)
            regs
          |> String.concat ""
        in
        "<ann>" ^ inner ^ "</ann>")
      areas
    |> String.concat ""
  in
  Doc.parse ~name:"rand" ("<t>" ^ body ^ "</t>")

let gen_region =
  QCheck.Gen.(
    map2
      (fun s w -> (s, s + w))
      (int_bound 60) (int_bound 25))

let gen_attr_case =
  QCheck.Gen.(
    triple
      (list_size (1 -- 14) gen_region)
      (list_size (0 -- 8) (int_bound 20))
      (list_size (0 -- 8) (int_bound 20)))

let print_attr_case (regions, ctx, cand) =
  Printf.sprintf "regions=%s ctx=%s cand=%s"
    (String.concat ";"
       (List.map (fun (s, e) -> Printf.sprintf "[%d,%d]" s e) regions))
    (String.concat "," (List.map string_of_int ctx))
    (String.concat "," (List.map string_of_int cand))

let subset_pres annots picks =
  let n = Array.length annots.Annots.ids in
  if n = 0 then [||]
  else
    Array.of_list
      (List.sort_uniq compare
         (List.map (fun p -> annots.Annots.ids.(p mod n)) picks))

let agreement_property ~config ~doc_of_case (case, ctx_picks, cand_picks) =
  let d = doc_of_case case in
  let annots = Annots.extract config d in
  let context = subset_pres annots ctx_picks in
  let candidates = subset_pres annots cand_picks in
  List.for_all
    (fun op ->
      let expected = Spec.join op annots ~context ~candidates in
      List.for_all
        (fun strategy ->
          let got =
            Join.run_sequence op strategy annots ~context
              ~candidates:(Some candidates) ()
          in
          got = expected)
        Config.all_strategies)
    Op.all

let qcheck_agreement_attr =
  QCheck.Test.make
    ~name:"all strategies = spec, all 4 ops (attribute representation)"
    ~count:400
    (QCheck.make ~print:print_attr_case gen_attr_case)
    (agreement_property ~config:Config.default ~doc_of_case:build_attr_doc)

let gen_multi_case =
  QCheck.Gen.(
    triple
      (list_size (1 -- 8) (list_size (1 -- 3) gen_region))
      (list_size (0 -- 6) (int_bound 20))
      (list_size (0 -- 6) (int_bound 20)))

let print_multi_case (areas, ctx, cand) =
  Printf.sprintf "areas=%s ctx=%s cand=%s"
    (String.concat "|"
       (List.map
          (fun regs ->
            String.concat ";"
              (List.map (fun (s, e) -> Printf.sprintf "[%d,%d]" s e) regs))
          areas))
    (String.concat "," (List.map string_of_int ctx))
    (String.concat "," (List.map string_of_int cand))

let qcheck_agreement_multi =
  QCheck.Test.make
    ~name:"all strategies = spec, all 4 ops (element representation)"
    ~count:400
    (QCheck.make ~print:print_multi_case gen_multi_case)
    (agreement_property
       ~config:(Config.with_region_elements Config.default)
       ~doc_of_case:build_region_doc)

(* Loop-lifted agreement: the lifted result per iteration must equal the
   per-sequence spec result of that iteration, including empty-context
   iterations for the reject operators. *)
let gen_lifted_case =
  QCheck.Gen.(
    triple
      (list_size (1 -- 12) gen_region)
      (list_size (0 -- 12) (pair (int_bound 4) (int_bound 15)))
      (list_size (0 -- 8) (int_bound 15)))

let print_lifted_case (regions, ctx, cand) =
  Printf.sprintf "regions=%s ctx=%s cand=%s"
    (String.concat ";"
       (List.map (fun (s, e) -> Printf.sprintf "[%d,%d]" s e) regions))
    (String.concat ","
       (List.map (fun (i, p) -> Printf.sprintf "%d:%d" i p) ctx))
    (String.concat "," (List.map string_of_int cand))

let qcheck_lifted_agreement =
  QCheck.Test.make
    ~name:"run_lifted (loop-lifted) = per-iteration spec" ~count:400
    (QCheck.make ~print:print_lifted_case gen_lifted_case)
    (fun (regions, ctx_rows, cand_picks) ->
      let d = build_attr_doc regions in
      let annots = Annots.extract Config.default d in
      let n = Array.length annots.Annots.ids in
      if n = 0 then true
      else begin
        let loop = [| 0; 1; 2; 3; 4 |] in
        let rows =
          List.sort_uniq compare
            (List.map
               (fun (it, p) -> (it, annots.Annots.ids.(p mod n)))
               ctx_rows)
        in
        let context_iters = Array.of_list (List.map fst rows) in
        let context_pres = Array.of_list (List.map snd rows) in
        let candidates = subset_pres annots cand_picks in
        List.for_all
          (fun op ->
            let iters, pres =
              Join.run_lifted op Config.Loop_lifted annots ~loop ~context_iters
                ~context_pres ~candidates:(Some candidates) ()
            in
            Array.for_all
              (fun it ->
                let per_iter_context =
                  rows
                  |> List.filter (fun (i, _) -> i = it)
                  |> List.map snd |> Array.of_list
                in
                let expected =
                  Spec.join op annots ~context:per_iter_context ~candidates
                in
                let got =
                  Array.to_list
                    (Array.of_list
                       (List.filteri
                          (fun r _ -> iters.(r) = it)
                          (Array.to_list pres)))
                in
                got = Array.to_list expected)
              loop)
          Op.all
      end)

(* The candidate-side restriction (cached fast path used by the
   loop-lifted strategy) must equal the paper's full-index-scan
   intersection used by the per-iteration strategies. *)
let qcheck_candidate_index_paths_agree =
  QCheck.Test.make
    ~name:"candidate_index = candidate_index_scan" ~count:300
    (QCheck.make ~print:print_attr_case gen_attr_case)
    (fun (regions, _, cand_picks) ->
      let d = build_attr_doc regions in
      let annots = Annots.extract Config.default d in
      let candidates = subset_pres annots cand_picks in
      let dump idx =
        ( Array.to_list idx.Region_index.starts,
          Array.to_list idx.Region_index.ends,
          Array.to_list idx.Region_index.ids,
          Array.to_list idx.Region_index.region_ranks )
      in
      dump (Annots.candidate_index annots ~candidates:(Some candidates))
      = dump (Annots.candidate_index_scan annots ~candidates:(Some candidates)))

(* Udf_no_candidates applies the node test after the join; with the
   candidate set equal to all annotations the two UDF variants must
   coincide. *)
let qcheck_udf_variants_coincide =
  QCheck.Test.make ~name:"UDF variants coincide on full candidate set"
    ~count:200
    (QCheck.make ~print:print_attr_case gen_attr_case)
    (fun (regions, ctx_picks, _) ->
      let d = build_attr_doc regions in
      let annots = Annots.extract Config.default d in
      let context = subset_pres annots ctx_picks in
      List.for_all
        (fun op ->
          Join.run_sequence op Config.Udf_no_candidates annots ~context
            ~candidates:None ()
          = Join.run_sequence op Config.Udf_candidates annots ~context
              ~candidates:(Some annots.Annots.ids) ())
        Op.all)

(* Select/reject partition the candidate annotations. *)
let qcheck_select_reject_partition =
  QCheck.Test.make ~name:"select + reject partition the candidates"
    ~count:300
    (QCheck.make ~print:print_attr_case gen_attr_case)
    (fun (regions, ctx_picks, cand_picks) ->
      let d = build_attr_doc regions in
      let annots = Annots.extract Config.default d in
      let context = subset_pres annots ctx_picks in
      let candidates = subset_pres annots cand_picks in
      let run op =
        Array.to_list
          (Join.run_sequence op Config.Loop_lifted annots ~context
             ~candidates:(Some candidates) ())
      in
      let merge a b = List.sort_uniq compare (a @ b) in
      merge (run Op.Select_narrow) (run Op.Reject_narrow)
      = Array.to_list candidates
      && merge (run Op.Select_wide) (run Op.Reject_wide)
         = Array.to_list candidates
      &&
      (* narrow results are a subset of wide results *)
      List.for_all
        (fun p -> List.mem p (run Op.Select_wide))
        (run Op.Select_narrow))

let () =
  Alcotest.run "standoff"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "declare option" `Quick test_config_options;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ( "extract",
        [
          Alcotest.test_case "invalid region" `Quick test_extract_attributes;
          Alcotest.test_case "nested unrestricted" `Quick
            test_extract_nested_unrestricted;
          Alcotest.test_case "partial attributes" `Quick
            test_extract_partial_attrs_rejected;
          Alcotest.test_case "non-integer" `Quick test_extract_non_integer_rejected;
          Alcotest.test_case "renamed attributes" `Quick test_extract_renamed;
          Alcotest.test_case "region elements" `Quick test_extract_region_elements;
          Alcotest.test_case "representation isolation" `Quick
            test_extract_attr_mode_ignores_region_elements;
        ] );
      ( "region-index",
        [
          Alcotest.test_case "clustering" `Quick test_index_clustering;
          Alcotest.test_case "restrict" `Quick test_index_restrict;
          Alcotest.test_case "restrict_ids" `Quick test_restrict_ids;
        ] );
      ( "table-3.1",
        [
          Alcotest.test_case "spec" `Quick test_table_3_1_spec;
          Alcotest.test_case "all strategies" `Quick test_table_3_1_strategies;
        ] );
      ( "catalog",
        [ Alcotest.test_case "caching" `Quick test_catalog_caches ] );
      ( "update",
        [
          Alcotest.test_case "set_region" `Quick test_update_set_region;
          Alcotest.test_case "bad targets" `Quick test_update_rejects_bad_targets;
          Alcotest.test_case "shift" `Quick test_update_shift;
          Alcotest.test_case "failed shift is atomic" `Quick
            test_update_shift_failure_is_atomic;
        ] );
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest qcheck_agreement_attr;
          QCheck_alcotest.to_alcotest qcheck_agreement_multi;
          QCheck_alcotest.to_alcotest qcheck_lifted_agreement;
          QCheck_alcotest.to_alcotest qcheck_candidate_index_paths_agree;
          QCheck_alcotest.to_alcotest qcheck_udf_variants_coincide;
          QCheck_alcotest.to_alcotest qcheck_select_reject_partition;
        ] );
    ]
