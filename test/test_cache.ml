(* Tests for the engine-wide caching layer: the Standoff_cache.Lru
   primitive (recency order, size accounting, generation staleness,
   domain safety) and its two engine wirings (prepared-plan cache,
   result cache with update-driven invalidation). *)

module Lru = Standoff_cache.Lru
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Catalog = Standoff.Catalog
module Update = Standoff.Update
module Region = Standoff_interval.Region
module Engine = Standoff_xquery.Engine

let mk ?max_entries ?max_bytes ?(name = "test") () =
  Lru.create ?max_entries ?max_bytes ~name ~weight:String.length ()

(* ---------------- LRU primitive ---------------- *)

let test_eviction_order () =
  let c = mk ~max_entries:3 () in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  Lru.add c 3 "three";
  (* Touch 1 so it becomes MRU; inserting 4 must evict 2 (the LRU). *)
  Alcotest.(check (option string)) "touch 1" (Some "one") (Lru.find c 1);
  Lru.add c 4 "four";
  Alcotest.(check (option string)) "2 evicted" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "one") (Lru.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "three") (Lru.find c 3);
  Alcotest.(check (option string)) "4 kept" (Some "four") (Lru.find c 4);
  Alcotest.(check int) "length" 3 (Lru.length c);
  Alcotest.(check int) "one eviction" 1 (Lru.stats c).Lru.evictions

let test_replace_same_key () =
  let c = mk ~max_entries:2 () in
  Lru.add c 1 "a";
  Lru.add c 1 "bb";
  Alcotest.(check (option string)) "replaced" (Some "bb") (Lru.find c 1);
  Alcotest.(check int) "no duplicate entry" 1 (Lru.length c);
  (* Replacement is not an eviction. *)
  Alcotest.(check int) "no eviction" 0 (Lru.stats c).Lru.evictions

let test_size_accounting () =
  let c = mk ~max_bytes:10 () in
  Lru.add c 1 "aaaa";
  (* weight 4 *)
  Lru.add c 2 "bbbb";
  Alcotest.(check int) "bytes" 8 (Lru.stats c).Lru.bytes;
  (* 4 more bytes exceed the budget: the LRU entry (1) must go. *)
  Lru.add c 3 "cccc";
  Alcotest.(check (option string)) "1 evicted" None (Lru.find c 1);
  Alcotest.(check int) "bytes after eviction" 8 (Lru.stats c).Lru.bytes;
  (* A value over the whole budget is not admitted (and evicts
     nothing). *)
  let before = Lru.stats c in
  Lru.add c 9 (String.make 64 'x');
  Alcotest.(check (option string)) "oversized skipped" None (Lru.find c 9);
  Alcotest.(check int) "no collateral eviction" before.Lru.evictions
    (Lru.stats c).Lru.evictions;
  Alcotest.(check (option string)) "2 survives" (Some "bbbb") (Lru.find c 2)

let test_remove_clear () =
  let c = mk () in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  Lru.remove c 1;
  Alcotest.(check (option string)) "removed" None (Lru.find c 1);
  Alcotest.(check int) "length" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check int) "bytes zero" 0 (Lru.stats c).Lru.bytes

let test_generation_staleness () =
  let c = mk () in
  Lru.add c ~generation:7 1 "v@7";
  (* Same generation: served. *)
  Alcotest.(check (option string))
    "exact generation hit" (Some "v@7")
    (Lru.find c ~generation:7 1);
  (* Any other generation: the entry is stale — dropped, counted as a
     miss and an eviction, and gone for good. *)
  Alcotest.(check (option string))
    "newer generation misses" None
    (Lru.find c ~generation:8 1);
  Alcotest.(check (option string))
    "entry dropped" None
    (Lru.find c ~generation:7 1);
  let s = Lru.stats c in
  Alcotest.(check int) "stale drop counts as eviction" 1 s.Lru.evictions;
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses

let test_concurrent_hits () =
  let c = mk ~max_entries:64 () in
  for i = 0 to 7 do
    Lru.add c i (string_of_int i)
  done;
  let per_domain = 1000 in
  let worker d () =
    for i = 1 to per_domain do
      let k = (d + i) mod 8 in
      match Lru.find c k with
      | Some v -> assert (v = string_of_int k)
      | None -> assert false
    done
  in
  let domains = List.init 8 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let s = Lru.stats c in
  Alcotest.(check int) "every find was a hit" (8 * per_domain) s.Lru.hits;
  Alcotest.(check int) "no misses" 0 s.Lru.misses;
  Alcotest.(check int) "all entries intact" 8 s.Lru.entries

(* ---------------- catalogue generations ---------------- *)

let region_doc () =
  Doc.parse ~name:"upd.xml"
    "<t><p start=\"0\" end=\"10\"/><c start=\"2\" end=\"8\"/></t>"

let test_catalog_generation_bumps () =
  let cat = Catalog.create () in
  let d = region_doc () in
  Alcotest.(check int) "initial generation" 0 (Catalog.generation cat "upd.xml");
  let v0 = Catalog.version cat in
  let pre_c = (Doc.elements_named d "c").(0) in
  Update.set_region cat Config.default d ~pre:pre_c (Region.make_int 3 9);
  Alcotest.(check int) "set_region bumps generation" 1
    (Catalog.generation cat "upd.xml");
  Alcotest.(check bool) "version bumped" true (Catalog.version cat > v0);
  let moved = Update.shift_annotations cat Config.default d ~from:0L ~by:5L in
  Alcotest.(check bool) "some annotations moved" true (moved > 0);
  Alcotest.(check int) "shift bumps generation" 2
    (Catalog.generation cat "upd.xml");
  (* Unknown documents sit at generation 0, not an error. *)
  Alcotest.(check int) "unknown doc" 0 (Catalog.generation cat "nope.xml")

(* ---------------- engine wiring ---------------- *)

let engine_with_region_doc cache =
  let coll = Collection.create () in
  let d = region_doc () in
  ignore (Collection.add coll d);
  (Engine.create ~jobs:1 ~cache coll, d)

let narrow_count = "count(doc(\"upd.xml\")//p/select-narrow::c)"

let test_stale_read_regression () =
  (* The bug this PR fixes at the design level: query, cache the
     result, update an annotation region, repeat the query.  The repeat
     must see the post-update answer, never the cached pre-update
     one. *)
  let engine, d = engine_with_region_doc Engine.Cache_result in
  let r1 = (Engine.run engine ~rollback_constructed:true narrow_count).Engine.serialized in
  Alcotest.(check string) "before update: c inside p" "1" (String.trim r1);
  (* Make sure the repeat actually comes from the cache... *)
  let hits0 = (Engine.result_cache_stats engine).Lru.hits in
  let r1' = (Engine.run engine ~rollback_constructed:true narrow_count).Engine.serialized in
  Alcotest.(check string) "repeat identical" r1 r1';
  Alcotest.(check bool) "repeat was a cache hit" true
    ((Engine.result_cache_stats engine).Lru.hits > hits0);
  (* ...then invalidate by moving c outside p. *)
  let pre_c = (Doc.elements_named d "c").(0) in
  Update.set_region (Engine.catalog engine) Config.default d ~pre:pre_c
    (Region.make_int 50 60);
  let r2 = (Engine.run engine ~rollback_constructed:true narrow_count).Engine.serialized in
  Alcotest.(check string) "after update: post-update answer" "0"
    (String.trim r2)

let test_plan_cache_hits () =
  let engine, _ = engine_with_region_doc Engine.Cache_plan in
  ignore (Engine.run engine ~rollback_constructed:true narrow_count);
  let s0 = Engine.plan_cache_stats engine in
  ignore (Engine.run engine ~rollback_constructed:true narrow_count);
  let s1 = Engine.plan_cache_stats engine in
  Alcotest.(check bool) "repeat run reuses the prepared plan" true
    (s1.Lru.hits > s0.Lru.hits);
  (* Cache_plan alone never consults the result cache. *)
  let rs = Engine.result_cache_stats engine in
  Alcotest.(check int) "result cache untouched" 0 (rs.Lru.hits + rs.Lru.misses)

(* Regression: the plan-cache key must separate dataguide-on plans
   from dataguide-off plans.  Before the flag joined the key, a
   guide-off request could be served a cached guide-on plan (wrong
   operators, just not wrong bytes) — and this check would see a hit
   where it demands a miss. *)
let test_plan_cache_dataguide_key () =
  let engine, _ = engine_with_region_doc Engine.Cache_plan in
  let q = narrow_count in
  ignore (Engine.prepare engine ~dataguide:true q);
  let s0 = Engine.plan_cache_stats engine in
  (* Same text, other dataguide flag: must miss and prepare afresh. *)
  ignore (Engine.prepare engine ~dataguide:false q);
  let s1 = Engine.plan_cache_stats engine in
  Alcotest.(check int) "flipped flag misses" (s0.Lru.misses + 1) s1.Lru.misses;
  Alcotest.(check int) "flipped flag never hits" s0.Lru.hits s1.Lru.hits;
  (* Each flag value keeps its own entry: repeats on both sides hit. *)
  ignore (Engine.prepare engine ~dataguide:true q);
  ignore (Engine.prepare engine ~dataguide:false q);
  let s2 = Engine.plan_cache_stats engine in
  Alcotest.(check int) "both repeats hit" (s1.Lru.hits + 2) s2.Lru.hits;
  Alcotest.(check int) "no further misses" s1.Lru.misses s2.Lru.misses

let test_result_cache_byte_identical () =
  let engine, _ = engine_with_region_doc Engine.Cache_result in
  let q = "doc(\"upd.xml\")//p/select-narrow::c" in
  let r1 = Engine.run engine ~rollback_constructed:true q in
  let hits0 = (Engine.result_cache_stats engine).Lru.hits in
  let r2 = Engine.run engine ~rollback_constructed:true q in
  Alcotest.(check bool) "second run hit" true
    ((Engine.result_cache_stats engine).Lru.hits > hits0);
  Alcotest.(check string) "byte-identical serialization"
    r1.Engine.serialized r2.Engine.serialized;
  Alcotest.(check int) "same item count" (List.length r1.Engine.items)
    (List.length r2.Engine.items)

let test_cache_off_never_hits () =
  let engine, _ = engine_with_region_doc Engine.Cache_off in
  ignore (Engine.run engine ~rollback_constructed:true narrow_count);
  ignore (Engine.run engine ~rollback_constructed:true narrow_count);
  let ps = Engine.plan_cache_stats engine in
  let rs = Engine.result_cache_stats engine in
  Alcotest.(check int) "plan cache idle" 0 (ps.Lru.hits + ps.Lru.misses);
  Alcotest.(check int) "result cache idle" 0 (rs.Lru.hits + rs.Lru.misses)

let test_rollback_readd_fresh_answer () =
  (* Rolling a document back and re-adding different content under the
     SAME name must not revive the old cached answer: document identity
     is the uid, not the name. *)
  let coll = Collection.create () in
  let mark = Collection.checkpoint coll in
  ignore
    (Collection.add coll
       (Doc.parse ~name:"upd.xml"
          "<t><p start=\"0\" end=\"10\"/><c start=\"2\" end=\"8\"/></t>"));
  let engine = Engine.create ~jobs:1 ~cache:Engine.Cache_result coll in
  let r1 = (Engine.run engine ~rollback_constructed:true narrow_count).Engine.serialized in
  Alcotest.(check string) "original content" "1" (String.trim r1);
  Collection.rollback coll mark;
  ignore
    (Collection.add coll
       (Doc.parse ~name:"upd.xml"
          "<t><p start=\"0\" end=\"10\"/><c start=\"50\" end=\"60\"/></t>"));
  let r2 = (Engine.run engine ~rollback_constructed:true narrow_count).Engine.serialized in
  Alcotest.(check string) "re-added content answered fresh" "0"
    (String.trim r2)

let test_cache_mode_strings () =
  List.iter
    (fun (s, m) ->
      Alcotest.(check string)
        (Printf.sprintf "parse %S" s)
        (Engine.cache_mode_to_string m)
        (Engine.cache_mode_to_string (Engine.cache_mode_of_string s)))
    [
      ("off", Engine.Cache_off);
      ("none", Engine.Cache_off);
      ("plan", Engine.Cache_plan);
      ("result", Engine.Cache_result);
      ("on", Engine.Cache_result);
    ];
  match Engine.cache_mode_of_string "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted bogus cache mode"

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "replace same key" `Quick test_replace_same_key;
          Alcotest.test_case "size accounting" `Quick test_size_accounting;
          Alcotest.test_case "remove and clear" `Quick test_remove_clear;
          Alcotest.test_case "generation staleness" `Quick
            test_generation_staleness;
          Alcotest.test_case "concurrent hits from 8 domains" `Quick
            test_concurrent_hits;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "updates bump generations" `Quick
            test_catalog_generation_bumps;
        ] );
      ( "engine",
        [
          Alcotest.test_case "stale read regression (query-update-query)"
            `Quick test_stale_read_regression;
          Alcotest.test_case "plan cache hits" `Quick test_plan_cache_hits;
          Alcotest.test_case "plan cache keys on the dataguide flag" `Quick
            test_plan_cache_dataguide_key;
          Alcotest.test_case "result cache byte-identical" `Quick
            test_result_cache_byte_identical;
          Alcotest.test_case "cache off never consults" `Quick
            test_cache_off_never_hits;
          Alcotest.test_case "rollback + re-add same name" `Quick
            test_rollback_readd_fresh_answer;
          Alcotest.test_case "cache mode strings" `Quick
            test_cache_mode_strings;
        ] );
    ]
