(* Strong DataGuide unit tests: construction against a naive
   pre/parent-array reference, child vs descendant lookup semantics,
   per-path count accuracy, generation-driven rebuild, and the
   concurrent lazy build (one winner, everyone shares the published
   guide).  The byte-level equivalence of guide-backed query plans is
   covered by the differential suite. *)

module Doc = Standoff_store.Doc
module Dataguide = Standoff_store.Dataguide
module Pool = Standoff_util.Pool
module Catalog = Standoff.Catalog

(* ------------------------------------------------------------------ *)
(* Naive reference: evaluate a downward name path straight off the
   parent array, one linear document scan per step.                    *)

let naive d steps =
  let n = Doc.node_count d in
  let step set (desc, name) =
    let in_set p = List.mem p set in
    let rec ancestor_in_set p =
      match Doc.parent_of d p with
      | None -> false
      | Some q -> in_set q || ancestor_in_set q
    in
    let out = ref [] in
    for pre = n - 1 downto 0 do
      if Doc.kind_of d pre = Doc.Element && Doc.name_of d pre = Some name then
        let selected =
          if desc then ancestor_in_set pre
          else
            match Doc.parent_of d pre with
            | Some q -> in_set q
            | None -> false
        in
        if selected then out := pre :: !out
    done;
    !out
  in
  List.fold_left step [ 0 ] steps

(* Distinct root-to-node label paths, off the parent array. *)
let naive_path_count d =
  let tbl = Hashtbl.create 64 in
  let rec label_path pre =
    match Doc.parent_of d pre with
    | None -> ""
    | Some q ->
        label_path q ^ "/" ^ Option.value ~default:"" (Doc.name_of d pre)
  in
  for pre = 0 to Doc.node_count d - 1 do
    if Doc.kind_of d pre = Doc.Element then
      Hashtbl.replace tbl (label_path pre) ()
  done;
  Hashtbl.length tbl

let docs =
  [
    ("single", "<a/>");
    ("tiny", "<a><b/></a>");
    ( "xmark-ish",
      "<site><regions><europe><item/><item/></europe><asia><item/></asia>\
       </regions><people><person><name>n</name></person></people></site>" );
    (* Recursive nesting: the same names recur at different depths, so
       child and descendant steps genuinely diverge. *)
    ("recursive", "<a><b><a><b><a/></b></a></b><b/><c><a><c/></a></c></a>");
    (* Non-element nodes interleaved: text and comments must neither
       appear in the guide nor break the level-stack scan. *)
    ( "mixed",
      "<a>t1<b>t2<!--x--><c/>t3</b><?pi d?><b><c>deep</c></b>tail</a>" );
    (* Many same-named siblings: one guide node, many pres. *)
    ( "wide",
      "<r>" ^ String.concat "" (List.init 40 (fun _ -> "<x><y/></x>")) ^ "</r>"
    );
  ]

(* Every step list over a small alphabet up to length 3 — exhaustive
   enough to cover child-after-descendant, repeated names, and absent
   names on every document above. *)
let all_paths =
  let names = [ "a"; "b"; "c"; "site"; "item"; "x"; "y"; "nope" ] in
  let steps = List.concat_map (fun n -> [ (false, n); (true, n) ]) names in
  let shorter = List.concat_map (fun s -> List.map (fun t -> [ s; t ]) steps) steps in
  List.map (fun s -> [ s ]) steps
  @ shorter
  @ List.concat_map
      (fun pair -> List.map (fun t -> pair @ [ t ]) [ (false, "a"); (true, "item"); (true, "y") ])
      shorter

let test_lookup_vs_naive () =
  List.iter
    (fun (label, xml) ->
      let d = Doc.parse ~name:(label ^ ".xml") xml in
      let g = Dataguide.build ~generation:0 d in
      Alcotest.(check int)
        (label ^ ": path count")
        (naive_path_count d)
        (Dataguide.path_count g);
      List.iter
        (fun steps ->
          let expected = naive d steps in
          let got = Array.to_list (Dataguide.lookup d g steps) in
          let path =
            String.concat ""
              (List.map
                 (fun (desc, n) -> (if desc then "//" else "/") ^ n)
                 steps)
          in
          Alcotest.(check (list int))
            (label ^ ": lookup " ^ path)
            expected got;
          Alcotest.(check int)
            (label ^ ": count " ^ path)
            (List.length expected)
            (Dataguide.count d g steps))
        all_paths)
    docs

(* Descendant steps can reach the same element through several guide
   branches; the result must still be duplicate-free and sorted. *)
let test_sorted_dedup () =
  let d =
    Doc.parse ~name:"dd.xml" "<a><b><c/><b><c/></b></b><b><c/></b></a>"
  in
  let g = Dataguide.build ~generation:0 d in
  let pres = Dataguide.lookup d g [ (true, "b"); (true, "c") ] in
  let l = Array.to_list pres in
  Alcotest.(check (list int)) "sorted dedup" (List.sort_uniq compare l) l;
  Alcotest.(check (list int))
    "matches naive"
    (naive d [ (true, "b"); (true, "c") ])
    l

(* ------------------------------------------------------------------ *)
(* Parallel chunked construction agrees with the sequential build      *)

let test_parallel_build () =
  (* Big enough that an 8-way build really splits (min chunk 4096). *)
  let xml =
    "<site><regions>"
    ^ String.concat ""
        (List.init 6000 (fun i ->
             Printf.sprintf "<item><name>n%d</name><payload/></item>" i))
    ^ "</regions><people><person/></people></site>"
  in
  let d = Doc.parse ~name:"big.xml" xml in
  let sequential = Dataguide.build ~generation:0 d in
  let pool = Pool.create ~jobs:8 in
  let parallel = Dataguide.build ~pool ~generation:0 d in
  Alcotest.(check int)
    "same path count"
    (Dataguide.path_count sequential)
    (Dataguide.path_count parallel);
  List.iter
    (fun steps ->
      Alcotest.(check (list int))
        "same pres"
        (Array.to_list (Dataguide.lookup d sequential steps))
        (Array.to_list (Dataguide.lookup d parallel steps)))
    [
      [ (false, "site"); (false, "regions"); (false, "item") ];
      [ (true, "item"); (false, "name") ];
      [ (true, "name") ];
      [ (true, "payload") ];
      [ (false, "site"); (true, "person") ];
    ]

(* ------------------------------------------------------------------ *)
(* Generation-driven rebuild                                           *)

let test_generation_rebuild () =
  let d = Doc.parse ~name:"gen.xml" "<a><b/><b/></a>" in
  let g0 = Dataguide.get ~generation:0 d in
  (* Same generation: the cached guide is served, physically. *)
  Alcotest.(check bool) "cached hit is physical" true
    (g0 == Dataguide.get ~generation:0 d);
  (* A catalogue invalidation bumps the generation; the next probe must
     rebuild rather than serve the stale stamp. *)
  let cat = Catalog.create () in
  let gen_before = Catalog.generation cat "gen.xml" in
  Catalog.invalidate cat d;
  let gen_after = Catalog.generation cat "gen.xml" in
  Alcotest.(check bool) "invalidate bumps generation" true
    (gen_after <> gen_before);
  let g1 = Dataguide.get ~generation:gen_after d in
  Alcotest.(check bool) "stale guide not reused" true (not (g1 == g0));
  Alcotest.(check int) "rebuilt under new stamp" gen_after
    g1.Doc.guide_generation;
  (* The rebuilt guide answers identically (structure unchanged). *)
  Alcotest.(check (list int))
    "same answer after rebuild"
    (Array.to_list (Dataguide.lookup d g0 [ (true, "b") ]))
    (Array.to_list (Dataguide.lookup d g1 [ (true, "b") ]))

(* ------------------------------------------------------------------ *)
(* Concurrent lazy build: one winner, everyone shares its guide        *)

let test_concurrent_get () =
  let xml =
    "<r>" ^ String.concat "" (List.init 2000 (fun _ -> "<x><y/></x>")) ^ "</r>"
  in
  let d = Doc.parse ~name:"conc.xml" xml in
  let barrier = Atomic.make 0 in
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < 8 do
              Domain.cpu_relax ()
            done;
            Dataguide.get ~generation:7 d))
  in
  let guides = List.map Domain.join domains in
  let first = List.hd guides in
  List.iteri
    (fun i g ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d shares the published guide" i)
        true (g == first))
    guides;
  Alcotest.(check int) "published stamp" 7 first.Doc.guide_generation;
  Alcotest.(check bool) "cache slot holds it" true
    (match Doc.dataguide_cache d with Some g -> g == first | None -> false);
  Alcotest.(check (list int))
    "built guide answers correctly"
    (naive d [ (false, "r"); (false, "x"); (false, "y") ])
    (Array.to_list
       (Dataguide.lookup d first [ (false, "r"); (false, "x"); (false, "y") ]))

let () =
  Alcotest.run "dataguide"
    [
      ( "dataguide",
        [
          Alcotest.test_case "lookup/count vs naive reference" `Quick
            test_lookup_vs_naive;
          Alcotest.test_case "descendant results sorted and dedup'd" `Quick
            test_sorted_dedup;
          Alcotest.test_case "parallel build agrees with sequential" `Quick
            test_parallel_build;
          Alcotest.test_case "generation change forces rebuild" `Quick
            test_generation_rebuild;
          Alcotest.test_case "concurrent lazy build from 8 domains" `Quick
            test_concurrent_get;
        ] );
    ]
