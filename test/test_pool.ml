(* The process-wide work-stealing scheduler: one domain budget shared
   by every handle.  Covers the regressions this design fixed — the
   teardown/submission race and the per-jobs-count worker-set leak —
   plus cap inheritance for nested batches, budget reservation, and
   exception propagation. *)

module Pool = Standoff_util.Pool

(* Every test leaves the scheduler parked and the budget restored, so
   tests cannot leak domains (or configuration) into each other. *)
let with_budget n f =
  let saved = Pool.domain_budget () in
  Pool.set_domain_budget n;
  Fun.protect
    ~finally:(fun () ->
      Pool.park ();
      Pool.set_domain_budget saved)
    f

(* ------------------------------------------------------------------ *)
(* Correctness of the batch machinery                                  *)

let test_run_all_runs_each_task_once () =
  with_budget 4 (fun () ->
      let t = Pool.create ~jobs:4 in
      let n = 200 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.run_all t (Array.init n (fun i () -> Atomic.incr hits.(i)));
      Array.iteri
        (fun i a ->
          Alcotest.(check int)
            (Printf.sprintf "task %d ran exactly once" i)
            1 (Atomic.get a))
        hits)

let test_map_reduce_matches_sequential () =
  with_budget 4 (fun () ->
      let n = 10_000 in
      let expected = n * (n - 1) / 2 in
      List.iter
        (fun jobs ->
          let t = Pool.create ~jobs in
          let sum =
            Pool.map_reduce t ~n
              ~map:(fun ~lo ~hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
              ~reduce:( + ) 0
          in
          Alcotest.(check int)
            (Printf.sprintf "sum at jobs=%d" jobs)
            expected sum)
        [ 1; 2; 4; 8 ])

let test_zero_worker_budget_completes () =
  (* budget=1 means no workers may ever spawn: the submitting domain
     must drain its batches alone, whatever the handle asks for. *)
  with_budget 1 (fun () ->
      let t = Pool.create ~jobs:8 in
      let count = Atomic.make 0 in
      Pool.run_all t (Array.init 50 (fun _ () -> Atomic.incr count));
      Alcotest.(check int) "all tasks ran" 50 (Atomic.get count);
      Alcotest.(check int) "no workers spawned" 0 (Pool.worker_count ()))

let test_error_propagation () =
  with_budget 4 (fun () ->
      let t = Pool.create ~jobs:4 in
      let ran = Atomic.make 0 in
      let tasks =
        Array.init 20 (fun i () ->
            Atomic.incr ran;
            if i = 7 then failwith "seven";
            if i = 13 then failwith "thirteen")
      in
      (match Pool.run_all t tasks with
      | () -> Alcotest.fail "expected the task failure to re-raise"
      | exception Failure msg ->
          (* Lowest task index wins when several fail. *)
          Alcotest.(check string) "first error by index" "seven" msg);
      Alcotest.(check int) "every task still ran" 20 (Atomic.get ran))

(* ------------------------------------------------------------------ *)
(* Cap inheritance (nested batches share the submitter's cap)          *)

let test_cap_inheritance () =
  with_budget 8 (fun () ->
      let outer = Pool.create ~jobs:2 in
      let inner = Pool.create ~jobs:8 in
      let observed = Array.make 4 None in
      let nested_obs = Array.make 4 None in
      Pool.run_all outer
        (Array.init 4 (fun i () ->
             observed.(i) <- Pool.current_cap ();
             (* A nested batch through a jobs=8 handle must clamp to
                the enclosing batch's cap of 2, not fan out to 8. *)
             Pool.run_all inner
               (Array.init 3 (fun _ () -> nested_obs.(i) <- Pool.current_cap ()))));
      Array.iteri
        (fun i c ->
          Alcotest.(check (option int))
            (Printf.sprintf "outer task %d sees cap 2" i)
            (Some 2) c)
        observed;
      Array.iteri
        (fun i c ->
          Alcotest.(check (option int))
            (Printf.sprintf "nested task under outer %d clamped to 2" i)
            (Some 2) c)
        nested_obs;
      Alcotest.(check (option int)) "no cap outside any batch" None
        (Pool.current_cap ()))

(* ------------------------------------------------------------------ *)
(* One worker set for the whole process (the shared-pool leak)         *)

let test_budget_bounds_workers () =
  with_budget 4 (fun () ->
      (* Drive batches through handles with different jobs counts: the
         historic per-jobs-count pools would have kept 3 + 7 worker
         domains; the shared scheduler never exceeds budget - 1. *)
      List.iter
        (fun jobs ->
          let t = Pool.create ~jobs in
          Pool.run_all t (Array.init 32 (fun _ () -> ignore (Sys.opaque_identity 0))))
        [ 2; 4; 8 ];
      Alcotest.(check bool)
        (Printf.sprintf "workers (%d) <= budget - 1 (3)" (Pool.worker_count ()))
        true
        (Pool.worker_count () <= 3))

let test_reservation_shrinks_workers () =
  with_budget 4 (fun () ->
      Pool.reserve_domains 2;
      Fun.protect
        ~finally:(fun () -> Pool.release_domains 2)
        (fun () ->
          Alcotest.(check int) "max_parallelism = budget - reserved" 2
            (Pool.max_parallelism ());
          Pool.park ();
          let t = Pool.create ~jobs:8 in
          Pool.run_all t (Array.init 32 (fun _ () -> ()));
          Alcotest.(check bool)
            (Printf.sprintf "workers (%d) <= budget - 1 - reserved (1)"
               (Pool.worker_count ()))
            true
            (Pool.worker_count () <= 1));
      Alcotest.(check int) "release restores max_parallelism" 4
        (Pool.max_parallelism ()))

(* ------------------------------------------------------------------ *)
(* The teardown/submission race (regression)                           *)

let test_park_concurrent_with_submission () =
  (* A thread parking the scheduler in a loop while the main domain
     keeps submitting batches: every batch must complete with every
     task run exactly once — a submission landing mid-teardown just
     runs on the submitting domain — and the process must not deadlock
     or crash.  This raced before the scheduler serialized
     [ensure_workers] against [park]. *)
  with_budget 4 (fun () ->
      let stop = Atomic.make false in
      let parker =
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              Pool.park ();
              Thread.yield ()
            done)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Thread.join parker)
        (fun () ->
          let t = Pool.create ~jobs:4 in
          for _round = 1 to 50 do
            let count = Atomic.make 0 in
            Pool.run_all t (Array.init 64 (fun _ () -> Atomic.incr count));
            Alcotest.(check int) "batch complete despite racing park" 64
              (Atomic.get count)
          done))

let test_park_idempotent_and_respawn () =
  with_budget 4 (fun () ->
      let t = Pool.create ~jobs:4 in
      Pool.run_all t (Array.init 16 (fun _ () -> ()));
      Pool.park ();
      Alcotest.(check int) "parked: no workers" 0 (Pool.worker_count ());
      Pool.park ();
      (* Workers respawn on the next submission. *)
      let count = Atomic.make 0 in
      Pool.run_all t (Array.init 16 (fun _ () -> Atomic.incr count));
      Alcotest.(check int) "respawned batch ran" 16 (Atomic.get count))

let () =
  Alcotest.run "pool"
    [
      ( "batches",
        [
          Alcotest.test_case "each task runs once" `Quick
            test_run_all_runs_each_task_once;
          Alcotest.test_case "map_reduce matches sequential" `Quick
            test_map_reduce_matches_sequential;
          Alcotest.test_case "zero-worker budget completes" `Quick
            test_zero_worker_budget_completes;
          Alcotest.test_case "error propagation" `Quick test_error_propagation;
        ] );
      ( "caps",
        [ Alcotest.test_case "nested batches inherit the cap" `Quick
            test_cap_inheritance ] );
      ( "budget",
        [
          Alcotest.test_case "one worker set, bounded by budget" `Quick
            test_budget_bounds_workers;
          Alcotest.test_case "reservation shrinks the worker target" `Quick
            test_reservation_shrinks_workers;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "park racing submissions" `Quick
            test_park_concurrent_with_submission;
          Alcotest.test_case "park idempotent; workers respawn" `Quick
            test_park_idempotent_and_respawn;
        ] );
    ]
