(* Crash-recovery harness for the durable store (WAL + snapshots).

   The crash model is process death: a crash can abandon buffers and
   tear the write in flight, but bytes already written to the file
   descriptor survive.  [Failpoint.arm] + [Injected_crash] simulate
   exactly that in-process — the store handle is abandoned (never
   closed, never flushed) at the armed point, leaving the files
   byte-identical to a SIGKILL there — and recovery then runs against
   the same directory.

   The property under test, at every failpoint: the recovered state is
   the state produced by an exact *prefix* of the submitted updates,
   that prefix covers every acknowledged update, and queries over the
   recovered store are byte-identical to an in-memory reference under
   all four strategies.  Never a torn, reordered, or partial-update
   state. *)

module Collection = Standoff_store.Collection
module Doc = Standoff_store.Doc
module Wal = Standoff_store.Wal
module Snapshot = Standoff_store.Snapshot
module Codec = Standoff_util.Codec
module Failpoint = Standoff_util.Failpoint
module Config = Standoff.Config
module Catalog = Standoff.Catalog
module Update = Standoff.Update
module Durable = Standoff.Durable
module Region = Standoff_interval.Region
module Engine = Standoff_xquery.Engine

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)

let ctr = ref 0

let fresh_dir () =
  incr ctr;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "standoff-wal-test-%d-%d" (Unix.getpid ()) !ctr)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)
(* The store under test: one document, fixed [word] annotations and
   updatable [sent] annotations.                                       *)

let n_words = 20
let n_sents = 5

let doc_xml =
  let b = Buffer.create 1024 in
  Buffer.add_string b "<doc>";
  for i = 0 to n_words - 1 do
    Buffer.add_string b
      (Printf.sprintf "<word start=\"%d\" end=\"%d\"/>" (i * 10) ((i * 10) + 9))
  done;
  for j = 0 to n_sents - 1 do
    Buffer.add_string b
      (Printf.sprintf "<sent start=\"%d\" end=\"%d\"/>" (j * 40) ((j * 40) + 39))
  done;
  Buffer.add_string b "</doc>";
  Buffer.contents b

let seed () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"d.xml" doc_xml);
  coll

let the_doc coll =
  Collection.doc coll (Option.get (Collection.doc_id_of_name coll "d.xml"))

(* Update number [k] (1-based), deterministic: move one sentence to a
   k-dependent region, so every distinct update count yields a distinct
   state. *)
let update_region k =
  let s = k * 13 mod 120 in
  Region.make_int s (s + 30 + (k mod 3))

let update_pre doc k =
  let pres = Doc.elements_named doc "sent" in
  pres.(k mod Array.length pres)

let apply_direct cat coll k =
  let doc = the_doc coll in
  Update.set_region cat Config.default doc ~pre:(update_pre doc k)
    (update_region k)

let apply_via_engine eng k =
  let doc = the_doc (Engine.collection eng) in
  Engine.set_region eng Config.default doc ~pre:(update_pre doc k)
    (update_region k)

let fingerprint coll =
  let doc = the_doc coll in
  Doc.elements_named doc "sent" |> Array.to_list
  |> List.map (fun pre ->
         Printf.sprintf "%s:%s"
           (Option.value ~default:"?" (Doc.attribute doc pre "start"))
           (Option.value ~default:"?" (Doc.attribute doc pre "end")))
  |> String.concat " "

(* In-memory reference: seed + the first [ks] updates, no durability. *)
let reference ks =
  let coll = seed () in
  let cat = Catalog.create () in
  List.iter (fun k -> apply_direct cat coll k) ks;
  coll

let rec range a b = if a > b then [] else a :: range (a + 1) b

let probe_query =
  "for $s in doc(\"d.xml\")//sent return count($s/select-narrow::word)"

let run_probe ?strategy eng = (Engine.run eng ?strategy probe_query).Engine.serialized

(* ------------------------------------------------------------------ *)
(* The full stack, wired the way the server wires it                   *)

let open_stack ?policy ?snapshot_every dir =
  let d, recovery = Durable.open_dir ?policy ?snapshot_every ~seed dir in
  let eng = Engine.create ~jobs:1 (Durable.collection d) in
  Engine.set_on_update eng (Some (fun op -> ignore (Durable.log d op)));
  (d, eng, recovery)

(* Submit [total] updates, with [failpoint] armed to fire during update
   number [crash_on].  Returns how many were acknowledged (completed
   without the crash). *)
let submit_until_crash eng ~failpoint ~crash_on ~total =
  Failpoint.arm ~after:crash_on failpoint;
  let acked = ref 0 in
  (try
     for k = 1 to total do
       apply_via_engine eng k;
       incr acked
     done;
     Failpoint.clear ();
     Alcotest.failf "failpoint %s never fired" failpoint
   with Failpoint.Injected_crash _ -> ());
  Failpoint.clear ();
  !acked

(* ------------------------------------------------------------------ *)
(* The crash matrix: every WAL failpoint x several crash positions     *)

let check_recovered ~ctx ~expected ~acked eng2 recovery =
  Alcotest.(check int)
    (ctx ^ ": recovered update count")
    expected recovery.Durable.rec_replayed;
  Alcotest.(check bool)
    (ctx ^ ": acknowledged prefix covered")
    true
    (expected >= acked);
  let ref_coll = reference (range 1 expected) in
  Alcotest.(check string)
    (ctx ^ ": recovered state is the exact prefix state")
    (fingerprint ref_coll)
    (fingerprint (Engine.collection eng2));
  (* Query byte-identity over the recovered store, all four strategies
     against the in-memory reference. *)
  let ref_eng = Engine.create ~jobs:1 ref_coll in
  let want = run_probe ref_eng in
  List.iter
    (fun strategy ->
      Alcotest.(check string)
        (Printf.sprintf "%s: probe bytes (%s)" ctx
           (Config.strategy_to_string strategy))
        want
        (run_probe ~strategy eng2))
    Config.all_strategies

let test_crash_matrix () =
  let cases =
    [
      (* A crash mid-append tears the record: it must be discarded, so
         exactly the updates *before* it survive. *)
      ("wal.mid_append", (fun c -> c - 1), true);
      (* A crash after the full write but before fsync: under the
         process-crash model the bytes are already with the kernel, so
         the record survives — more than was acknowledged, which the
         prefix property allows. *)
      ("wal.before_fsync", (fun c -> c), false);
      (* After append + fsync but before the response: durable, not yet
         acknowledged.  Survives. *)
      ("wal.after_append", (fun c -> c), false);
    ]
  in
  List.iter
    (fun (failpoint, expect, expect_torn) ->
      List.iter
        (fun crash_on ->
          let total = 6 in
          let ctx = Printf.sprintf "%s@%d" failpoint crash_on in
          let dir = fresh_dir () in
          let _d, eng, _ = open_stack dir in
          let acked = submit_until_crash eng ~failpoint ~crash_on ~total in
          Alcotest.(check int) (ctx ^ ": acked") (crash_on - 1) acked;
          (* [_d]/[eng] abandoned un-closed, as a killed process. *)
          let d2, eng2, recovery = open_stack dir in
          Alcotest.(check bool)
            (ctx ^ ": torn tail detected")
            expect_torn
            (recovery.Durable.rec_torn <> None);
          check_recovered ~ctx ~expected:(expect crash_on) ~acked eng2 recovery;
          Durable.close d2;
          rm_rf dir)
        [ 1; 3; 6 ])
    cases

(* After a crash + recovery the store must keep working: new updates
   append cleanly after the truncated tail, and a clean shutdown
   snapshot makes the next boot replay nothing. *)
let test_continue_after_recovery () =
  let dir = fresh_dir () in
  let _d, eng, _ = open_stack dir in
  let _acked = submit_until_crash eng ~failpoint:"wal.mid_append" ~crash_on:3 ~total:6 in
  let d2, eng2, recovery = open_stack dir in
  Alcotest.(check int) "recovered 2" 2 recovery.Durable.rec_replayed;
  apply_via_engine eng2 3;
  apply_via_engine eng2 4;
  (* Clean shutdown: compacting snapshot. *)
  Durable.close ~generation:(Catalog.version (Engine.catalog eng2)) d2;
  let d3, eng3, recovery3 = open_stack dir in
  Alcotest.(check bool)
    "rebooted from a snapshot" true
    (recovery3.Durable.rec_snapshot <> None);
  Alcotest.(check int) "nothing to replay" 0 recovery3.Durable.rec_replayed;
  Alcotest.(check string) "final state"
    (fingerprint (reference [ 1; 2; 3; 4 ]))
    (fingerprint (Engine.collection eng3));
  Durable.close d3;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Snapshot failpoints                                                 *)

let test_snapshot_crashes () =
  (* A crash inside the snapshot write (tmp file torn or complete but
     not renamed) must leave recovery to the WAL alone; a crash after
     the rename but before the WAL reset must not double-apply. *)
  List.iter
    (fun (failpoint, expect_snapshot, expect_replayed) ->
      let dir = fresh_dir () in
      let d, eng, _ = open_stack dir in
      List.iter (fun k -> apply_via_engine eng k) (range 1 4);
      Failpoint.arm failpoint;
      (match Durable.snapshot d ~generation:0 with
      | _path -> Alcotest.failf "failpoint %s never fired" failpoint
      | exception Failpoint.Injected_crash _ -> ());
      Failpoint.clear ();
      let d2, eng2, recovery = open_stack dir in
      Alcotest.(check bool)
        (failpoint ^ ": snapshot visibility")
        expect_snapshot
        (recovery.Durable.rec_snapshot <> None);
      Alcotest.(check int)
        (failpoint ^ ": replayed")
        expect_replayed recovery.Durable.rec_replayed;
      Alcotest.(check string)
        (failpoint ^ ": state")
        (fingerprint (reference (range 1 4)))
        (fingerprint (Engine.collection eng2));
      (* The store still compacts cleanly afterwards (prune also sweeps
         any leftover tmp file from the torn write). *)
      ignore (Durable.snapshot d2 ~generation:0);
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (failpoint ^ ": no tmp leftovers after snapshot")
            false
            (Filename.check_suffix f ".tmp"))
        (Sys.readdir dir);
      Durable.close d2;
      rm_rf dir)
    [
      ("snapshot.mid_write", false, 4);
      ("snapshot.before_rename", false, 4);
      ("snapshot.before_truncate", true, 0);
    ]

(* ------------------------------------------------------------------ *)
(* Corrupt-WAL table tests (raw Wal layer)                             *)

let sample_ops =
  [
    Wal.Set_region
      {
        doc = "d.xml";
        start_attr = "start";
        end_attr = "end";
        ptype = "xs:integer";
        pre = 22;
        start_pos = 5L;
        end_pos = 17L;
      };
    Wal.Shift
      {
        doc = "d.xml";
        start_attr = "s";
        end_attr = "e";
        ptype = "xs:integer";
        from = 100L;
        by = -3L;
      };
    Wal.Set_region
      {
        doc = "other.xml";
        start_attr = "from";
        end_attr = "to";
        ptype = "xs:decimal";
        pre = 1;
        start_pos = 0L;
        end_pos = Int64.max_int;
      };
  ]

let write_sample_wal path =
  let w = Wal.create ~next_lsn:1 path in
  List.iter (fun op -> ignore (Wal.append w op)) sample_ops;
  Wal.close w

let wal_header_len = 6 (* "SOWAL" + version byte *)

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let test_corrupt_wal_table () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal.log" in
  write_sample_wal path;
  let intact = read_file path in
  (* Byte boundary of record 3: the file length after writing only the
     first two records. *)
  let two_records =
    let p2 = Filename.concat dir "two.log" in
    let w = Wal.create ~next_lsn:1 p2 in
    List.iteri (fun i op -> if i < 2 then ignore (Wal.append w op)) sample_ops;
    Wal.close w;
    let s = read_file p2 in
    Sys.remove p2;
    String.length s
  in

  (* Baseline: all three records replay, in order, with their LSNs. *)
  let r = Wal.replay path in
  Alcotest.(check int) "baseline count" 3 (List.length r.Wal.r_ops);
  Alcotest.(check (list int)) "baseline lsns" [ 1; 2; 3 ]
    (List.map fst r.Wal.r_ops);
  Alcotest.(check bool) "baseline ops" true
    (List.map snd r.Wal.r_ops = sample_ops);
  Alcotest.(check bool) "baseline clean" true (r.Wal.r_torn = None);
  Alcotest.(check int) "baseline valid_bytes" (String.length intact)
    r.Wal.r_valid_bytes;

  (* Truncated tail: the torn record is dropped, the prefix survives. *)
  write_file path (String.sub intact 0 (String.length intact - 3));
  let r = Wal.replay path in
  Alcotest.(check int) "truncated: prefix" 2 (List.length r.Wal.r_ops);
  Alcotest.(check bool) "truncated: torn" true (r.Wal.r_torn <> None);
  Alcotest.(check int) "truncated: valid_bytes" two_records r.Wal.r_valid_bytes;

  (* Bit flip inside the last record's payload: checksum rejects it. *)
  write_file path (flip_byte intact (String.length intact - 1));
  let r = Wal.replay path in
  Alcotest.(check int) "flip last: prefix" 2 (List.length r.Wal.r_ops);
  Alcotest.(check (option string))
    "flip last: reason" (Some "checksum mismatch") r.Wal.r_torn;

  (* Bit flip inside a *middle* record: replay keeps the prefix before
     the damage and refuses to skip over it. *)
  write_file path (flip_byte intact (two_records - 2));
  let r = Wal.replay path in
  Alcotest.(check int) "flip middle: prefix" 1 (List.length r.Wal.r_ops);
  Alcotest.(check bool) "flip middle: stopped" true (r.Wal.r_torn <> None);

  (* Garbage magic: not a WAL at all — loud failure, not quiet reset. *)
  write_file path ("XXXXX" ^ String.sub intact 5 (String.length intact - 5));
  Alcotest.(check bool) "bad magic raises Corrupt" true
    (match Wal.replay path with
    | exception Wal.Corrupt _ -> true
    | _ -> false);

  (* A checksummed record that does not decode is corruption, not a
     torn tail: craft a frame with a valid checksum and a bad op tag. *)
  let bogus =
    let w = Codec.Writer.create () in
    Codec.Writer.varint w 1;
    Codec.Writer.byte w 99;
    let payload = Codec.Writer.contents w in
    let le32 v =
      String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))
    in
    String.sub intact 0 wal_header_len
    ^ le32 (String.length payload)
    ^ le32 (Codec.fletcher32 payload)
    ^ payload
  in
  write_file path bogus;
  Alcotest.(check bool) "undecodable record raises Corrupt" true
    (match Wal.replay path with
    | exception Wal.Corrupt _ -> true
    | _ -> false);

  (* Zero-length file: clean empty replay (a crash before the header
     write acknowledged nothing). *)
  write_file path "";
  let r = Wal.replay path in
  Alcotest.(check int) "empty: none" 0 (List.length r.Wal.r_ops);
  Alcotest.(check bool) "empty: clean" true (r.Wal.r_torn = None);

  (* Missing file: same. *)
  Sys.remove path;
  let r = Wal.replay path in
  Alcotest.(check int) "missing: none" 0 (List.length r.Wal.r_ops);

  (* Duplicated records (the whole body twice): every frame is intact,
     so raw replay surfaces all of them — deduplication is the
     recovery layer's job (next test). *)
  let body = String.sub intact wal_header_len (String.length intact - wal_header_len) in
  write_file path (String.sub intact 0 wal_header_len ^ body ^ body);
  let r = Wal.replay path in
  Alcotest.(check (list int)) "duplicate: lsns surface" [ 1; 2; 3; 1; 2; 3 ]
    (List.map fst r.Wal.r_ops);
  rm_rf dir

(* Durable recovery over a WAL with duplicated frames: the monotonic
   LSN filter must apply each update once, in order. *)
let test_duplicate_records_filtered () =
  let dir = fresh_dir () in
  let _d, eng, _ = open_stack dir in
  List.iter (fun k -> apply_via_engine eng k) (range 1 3);
  (* Abandon the stack un-closed; then duplicate the record body, as
     tampering or a buggy copy might. *)
  let path = Filename.concat dir "wal.log" in
  let s = read_file path in
  let body = String.sub s wal_header_len (String.length s - wal_header_len) in
  write_file path (String.sub s 0 wal_header_len ^ body ^ body);
  let d2, eng2, recovery = open_stack dir in
  Alcotest.(check int) "applied once each" 3 recovery.Durable.rec_replayed;
  Alcotest.(check string) "state"
    (fingerprint (reference (range 1 3)))
    (fingerprint (Engine.collection eng2));
  Durable.close d2;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Bulk ingestion                                                      *)

(* The batched Ingest record survives the codec and the file format. *)
let test_ingest_record_roundtrip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "wal.log" in
  let op =
    Wal.Ingest
      {
        docs = [ ("a.xml", "payload-a"); ("b \xc3\xa9.xml", "payload \x00 b") ];
        blobs = [ ("a.xml.blob", "text\nwith\nnewlines"); ("empty", "") ];
      }
  in
  let w = Wal.create ~next_lsn:1 path in
  ignore (Wal.append w op);
  Wal.close w;
  (match (Wal.replay path).Wal.r_ops with
  | [ (1, op') ] -> Alcotest.(check bool) "decodes identically" true (op = op')
  | _ -> Alcotest.fail "expected exactly one record");
  rm_rf dir

let converted name xml =
  let conv =
    Standoff_convert.Convert.to_standoff (Standoff_xml.Parser.parse_string xml)
  in
  ( Doc.of_dom ~name conv.Standoff_convert.Convert.doc,
    (name ^ ".blob", conv.Standoff_convert.Convert.blob) )

(* A batch ingested through the engine is one WAL record, and comes
   back whole — documents, converted extents, blobs — after a crash
   (stack abandoned un-closed, no snapshot).  A snapshot then absorbs
   it like any other update. *)
let test_ingest_recovery () =
  let dir = fresh_dir () in
  let _d, eng, _ = open_stack dir in
  let d1, b1 = converted "i1.xml" "<p><w>one</w> <w>two</w></p>" in
  let d2, b2 = converted "i2.xml" "<p><w>three</w></p>" in
  ignore (Engine.ingest eng [ d1; d2 ] [ b1; b2 ]);
  (* a post-ingest in-place update rides the same log *)
  apply_via_engine eng 1;
  let dur2, eng2, recovery = open_stack dir in
  Alcotest.(check int) "one batch record + one update record" 2
    recovery.Durable.rec_replayed;
  let coll = Engine.collection eng2 in
  Alcotest.(check bool) "documents recovered" true
    (Collection.doc_id_of_name coll "i1.xml" <> None
    && Collection.doc_id_of_name coll "i2.xml" <> None);
  Alcotest.(check bool) "blobs recovered" true
    (Collection.blob coll "i1.xml.blob" <> None
    && Collection.blob coll "i2.xml.blob" <> None);
  Alcotest.(check string) "recovered extents answer containment" "2"
    (Engine.run eng2 "count(doc(\"i1.xml\")//p/select-narrow::w)")
      .Engine.serialized;
  Alcotest.(check string) "post-ingest update recovered"
    (fingerprint (reference [ 1 ]))
    (fingerprint coll);
  ignore
    (Durable.snapshot dur2 ~generation:(Catalog.version (Engine.catalog eng2)));
  Durable.close dur2;
  let dur3, eng3, recovery3 = open_stack dir in
  Alcotest.(check int) "snapshot absorbed the batch" 0
    recovery3.Durable.rec_replayed;
  Alcotest.(check string) "still answering after compaction" "2"
    (Engine.run eng3 "count(doc(\"i1.xml\")//p/select-narrow::w)")
      .Engine.serialized;
  Durable.close dur3;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Fsync policies                                                      *)

let test_fsync_policy_parse () =
  Alcotest.(check bool) "always" true (Wal.fsync_policy_of_string "always" = Wal.Always);
  Alcotest.(check bool) "never" true (Wal.fsync_policy_of_string "never" = Wal.Never);
  Alcotest.(check bool) "off" true (Wal.fsync_policy_of_string "off" = Wal.Never);
  Alcotest.(check bool) "batch" true
    (match Wal.fsync_policy_of_string "batch" with Wal.Batch n -> n > 0 | _ -> false);
  Alcotest.(check bool) "batch:8" true (Wal.fsync_policy_of_string "Batch:8" = Wal.Batch 8);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (match Wal.fsync_policy_of_string s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ "sometimes"; "batch:0"; "batch:x"; "" ];
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Wal.fsync_policy_to_string p ^ " roundtrips")
        true
        (Wal.fsync_policy_of_string (Wal.fsync_policy_to_string p) = p))
    [ Wal.Always; Wal.Never; Wal.Batch 64; Wal.Batch 7 ]

(* Batch and Never policies: a cleanly closed store recovers fully
   (close flushes), and even an abandoned store recovers fully under
   the process-crash model (writes reached the kernel). *)
let test_policies_recover () =
  List.iter
    (fun policy ->
      let name = Wal.fsync_policy_to_string policy in
      let dir = fresh_dir () in
      let d, eng, _ = open_stack ~policy dir in
      List.iter (fun k -> apply_via_engine eng k) (range 1 5);
      Durable.close d;
      let d2, eng2, recovery = open_stack ~policy dir in
      Alcotest.(check int) (name ^ ": recovered") 5 recovery.Durable.rec_replayed;
      Alcotest.(check string) (name ^ ": state")
        (fingerprint (reference (range 1 5)))
        (fingerprint (Engine.collection eng2));
      Durable.close d2;
      rm_rf dir)
    [ Wal.Batch 2; Wal.Never ]

(* Periodic compaction through the update path: snapshot_every=3 over
   7 updates must leave at most (7 mod 3) + a snapshot behind. *)
let test_snapshot_every () =
  let dir = fresh_dir () in
  let d, eng, _ = open_stack ~snapshot_every:3 dir in
  List.iter
    (fun k ->
      apply_via_engine eng k;
      ignore (Durable.maybe_snapshot d ~generation:k))
    (range 1 7);
  (* Abandon (crash): the snapshot already covers 6 of the 7. *)
  let d2, eng2, recovery = open_stack dir in
  Alcotest.(check bool) "snapshot present" true
    (recovery.Durable.rec_snapshot <> None);
  Alcotest.(check int) "only the suffix replayed" 1
    recovery.Durable.rec_replayed;
  Alcotest.(check string) "state"
    (fingerprint (reference (range 1 7)))
    (fingerprint (Engine.collection eng2));
  Durable.close d2;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Op encoding round-trip under qcheck                                 *)

let gen_op =
  QCheck.Gen.(
    let str = string_size ~gen:(char_range '\000' '\255') (0 -- 12) in
    let pos = map Int64.of_int small_signed_int in
    let pairs = list_size (0 -- 4) (pair str str) in
    int_range 0 2 >>= fun kind ->
    str >>= fun doc ->
    str >>= fun start_attr ->
    str >>= fun end_attr ->
    str >>= fun ptype ->
    match kind with
    | 0 ->
        small_nat >>= fun pre ->
        pos >>= fun start_pos ->
        pos >>= fun end_pos ->
        return
          (Wal.Set_region
             { doc; start_attr; end_attr; ptype; pre; start_pos; end_pos })
    | 1 ->
        pos >>= fun from ->
        pos >>= fun by ->
        return (Wal.Shift { doc; start_attr; end_attr; ptype; from; by })
    | _ ->
        pairs >>= fun docs ->
        pairs >>= fun blobs -> return (Wal.Ingest { docs; blobs }))

let qcheck_wal_roundtrip =
  QCheck.Test.make ~name:"WAL append/replay round-trips arbitrary ops"
    ~count:60
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) gen_op))
    (fun ops ->
      let dir = fresh_dir () in
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~next_lsn:1 path in
      List.iter (fun op -> ignore (Wal.append w op)) ops;
      Wal.close w;
      let r = Wal.replay path in
      rm_rf dir;
      r.Wal.r_torn = None
      && List.map snd r.Wal.r_ops = ops
      && List.map fst r.Wal.r_ops = List.mapi (fun i _ -> i + 1) ops)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wal"
    [
      ( "crash-recovery",
        [
          Alcotest.test_case "failpoint matrix: acked prefix recovered" `Quick
            test_crash_matrix;
          Alcotest.test_case "recovery then new updates then snapshot" `Quick
            test_continue_after_recovery;
          Alcotest.test_case "snapshot failpoints" `Quick test_snapshot_crashes;
        ] );
      ( "corrupt-wal",
        [
          Alcotest.test_case "damage table" `Quick test_corrupt_wal_table;
          Alcotest.test_case "duplicate records filtered" `Quick
            test_duplicate_records_filtered;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "batched record roundtrip" `Quick
            test_ingest_record_roundtrip;
          Alcotest.test_case "batch recovery + compaction" `Quick
            test_ingest_recovery;
        ] );
      ( "policies",
        [
          Alcotest.test_case "fsync policy parsing" `Quick
            test_fsync_policy_parse;
          Alcotest.test_case "batch/never recover after clean close" `Quick
            test_policies_recover;
          Alcotest.test_case "periodic compaction (snapshot-every)" `Quick
            test_snapshot_every;
        ] );
      ( "encoding",
        [ QCheck_alcotest.to_alcotest qcheck_wal_roundtrip ] );
    ]
