(* Tests for the network query service: HTTP parsing (malformed input
   answered with 400/413, never a crash), result bodies byte-identical
   to direct Engine runs across strategies, query/update interleaving
   through the readers-writer lock, load shedding on a full admission
   queue, keep-alive bounds, graceful drain on stop — plus the engine
   regression the server depends on: a deadline firing during result
   serialization raises cleanly instead of leaking partial output. *)

module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Region = Standoff_interval.Region
module Engine = Standoff_xquery.Engine
module Timing = Standoff_util.Timing
module Trace = Standoff_obs.Trace
module Http = Standoff_server.Http
module Server = Standoff_server.Server
module Pool = Standoff_util.Pool

(* ---------------- fixtures ---------------- *)

let region_doc_xml =
  "<t><p start=\"0\" end=\"10\"/><c start=\"2\" end=\"8\"/>\
   <w start=\"1\" end=\"3\"/><w start=\"4\" end=\"6\"/>\
   <w start=\"7\" end=\"9\"/></t>"

let fresh_collection () =
  let coll = Collection.create () in
  ignore (Collection.add coll (Doc.parse ~name:"upd.xml" region_doc_xml));
  coll

let narrow_count = "count(doc(\"upd.xml\")//p/select-narrow::c)"
let narrow_words = "doc(\"upd.xml\")//p/select-narrow::w"

let default_test_config =
  {
    Server.default_config with
    port = 0;
    workers = 2;
    queue_capacity = 8;
    socket_timeout_s = 5.0;
    grace_s = 5.0;
    default_timeout_ms = Some 10_000.0;
  }

let with_server ?(config = default_test_config) ?engine f =
  let engine =
    match engine with
    | Some e -> e
    | None -> Engine.create ~jobs:1 ~cache:Engine.Cache_off (fresh_collection ())
  in
  let server = Server.create ~config engine in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

(* ---------------- tiny client ---------------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One request over an existing connection (keep-alive reuse). *)
let request ?headers reader fd ~meth ~target body =
  Http.write_request fd ~meth ~target ?headers body;
  Http.read_response reader

(* Connect, one request, close. *)
let oneshot port ~meth ~target body =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> close_noerr fd)
    (fun () -> request (Http.reader fd) fd ~meth ~target body)

(* Raw bytes in, one response out (for malformed-request tests). *)
let raw_roundtrip port bytes =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> close_noerr fd)
    (fun () ->
      let len = String.length bytes in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring fd bytes !off (len - !off)
      done;
      Http.read_response (Http.reader fd))

let check_status msg expected (resp : Http.response) =
  Alcotest.(check int) msg expected resp.Http.status

(* ---------------- request parsing ---------------- *)

let test_malformed_request_line () =
  with_server (fun srv ->
      let p = Server.port srv in
      check_status "garbage line" 400 (raw_roundtrip p "NOT A VALID LINE\r\n\r\n");
      check_status "two tokens" 400 (raw_roundtrip p "GET /healthz\r\n\r\n");
      check_status "bad version" 400
        (raw_roundtrip p "GET /healthz HTTP1.1\r\n\r\n");
      check_status "relative target" 400
        (raw_roundtrip p "GET healthz HTTP/1.1\r\n\r\n"))

let test_malformed_headers () =
  with_server (fun srv ->
      let p = Server.port srv in
      check_status "header without colon" 400
        (raw_roundtrip p "GET /healthz HTTP/1.1\r\nbogus header\r\n\r\n");
      check_status "header folding rejected" 400
        (raw_roundtrip p
           "GET /healthz HTTP/1.1\r\nA: b\r\n folded\r\n\r\n");
      check_status "bad content-length" 400
        (raw_roundtrip p
           "POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
      (* Chunked request bodies are unimplemented, not malformed: the
         answer is a diagnosable 501, never a dropped connection. *)
      check_status "chunked request body answers 501" 501
        (raw_roundtrip p
           "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"))

let test_body_cap () =
  let config = { default_test_config with max_body_bytes = 64 } in
  with_server ~config (fun srv ->
      let big = String.make 100 'x' in
      check_status "oversized body" 413
        (oneshot (Server.port srv) ~meth:"POST" ~target:"/query" big))

let test_routing () =
  with_server (fun srv ->
      let p = Server.port srv in
      let r = oneshot p ~meth:"GET" ~target:"/healthz" "" in
      check_status "healthz" 200 r;
      Alcotest.(check string) "healthz body" "ok\n" r.Http.r_body;
      check_status "unknown path" 404 (oneshot p ~meth:"GET" ~target:"/nope" "");
      let r = oneshot p ~meth:"DELETE" ~target:"/query" "" in
      check_status "wrong method" 405 r;
      Alcotest.(check (option string))
        "Allow header" (Some "POST")
        (Http.response_header r "allow");
      check_status "empty query body" 400
        (oneshot p ~meth:"POST" ~target:"/query" "");
      let r = oneshot p ~meth:"GET" ~target:"/metrics" "" in
      check_status "metrics" 200 r;
      Alcotest.(check bool)
        "metrics exposition contains the server counters" true
        (let rex = "standoff_server_requests_total" in
         let n = String.length rex and m = String.length r.Http.r_body in
         let rec scan i =
           i + n <= m && (String.sub r.Http.r_body i n = rex || scan (i + 1))
         in
         scan 0);
      let r = oneshot p ~meth:"GET" ~target:"/slow" "" in
      check_status "slow log" 200 r)

(* ---------------- query results ---------------- *)

let test_bodies_byte_identical_across_strategies () =
  (* The served body must be exactly what a direct Engine.run
     serializes (plus the trailing newline), for every strategy. *)
  let reference = Engine.create ~jobs:1 (fresh_collection ()) in
  with_server (fun srv ->
      let p = Server.port srv in
      List.iter
        (fun strategy ->
          let s = Config.strategy_to_string strategy in
          let expected =
            (Engine.run reference ~strategy ~rollback_constructed:true
               narrow_words)
              .Engine.serialized
          in
          let r =
            oneshot p ~meth:"POST"
              ~target:("/query?strategy=" ^ Http.url_encode s)
              narrow_words
          in
          check_status (s ^ " status") 200 r;
          Alcotest.(check string)
            (s ^ " body byte-identical") (expected ^ "\n") r.Http.r_body;
          Alcotest.(check bool)
            (s ^ " has request id") true
            (Http.response_header r "x-request-id" <> None))
        Config.all_strategies)

let test_query_knobs () =
  with_server (fun srv ->
      let p = Server.port srv in
      (* jobs override parses and answers the same result. *)
      let r =
        oneshot p ~meth:"POST" ~target:"/query?jobs=2&cache=off" narrow_count
      in
      check_status "jobs=2" 200 r;
      Alcotest.(check string) "jobs=2 answer" "1\n" r.Http.r_body;
      check_status "malformed jobs" 400
        (oneshot p ~meth:"POST" ~target:"/query?jobs=many" narrow_count);
      check_status "unknown strategy" 400
        (oneshot p ~meth:"POST" ~target:"/query?strategy=quantum" narrow_count);
      check_status "malformed timeout" 400
        (oneshot p ~meth:"POST" ~target:"/query?timeout-ms=soon" narrow_count);
      (* context document routing *)
      let r =
        oneshot p ~meth:"POST" ~target:"/query?context=upd.xml"
          "count(//p/select-narrow::c)"
      in
      check_status "context" 200 r;
      Alcotest.(check string) "context answer" "1\n" r.Http.r_body)

let test_explain () =
  with_server (fun srv ->
      let p = Server.port srv in
      let r =
        oneshot p ~meth:"GET"
          ~target:("/explain?q=" ^ Http.url_encode narrow_count)
          ""
      in
      check_status "explain get" 200 r;
      Alcotest.(check bool)
        "mentions standoff-join" true
        (let body = r.Http.r_body in
         let rex = "standoff-join" in
         let n = String.length rex and m = String.length body in
         let rec scan i =
           i + n <= m && (String.sub body i n = rex || scan (i + 1))
         in
         scan 0);
      let r2 = oneshot p ~meth:"POST" ~target:"/explain" narrow_count in
      check_status "explain post" 200 r2;
      Alcotest.(check string) "same plan both ways" r.Http.r_body r2.Http.r_body;
      check_status "explain without query" 400
        (oneshot p ~meth:"GET" ~target:"/explain" ""))

let test_deadline_408_partial_trace () =
  (* timeout-ms=0 must fire at the first checkpoint and produce a 408
     whose body carries the partial trace, never partial output. *)
  with_server (fun srv ->
      let r =
        oneshot (Server.port srv) ~meth:"POST"
          ~target:"/query?timeout-ms=0&cache=off" narrow_count
      in
      check_status "deadline" 408 r;
      let contains needle hay =
        let n = String.length needle and m = String.length hay in
        let rec scan i =
          i + n <= m && (String.sub hay i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        "error named" true
        (contains "deadline exceeded" r.Http.r_body);
      Alcotest.(check bool)
        "trace attached" true
        (contains "\"trace\"" r.Http.r_body))

(* ---------------- streaming ---------------- *)

let test_stream_byte_identical () =
  (* ?stream=1 switches the reply to chunked transfer-encoding whose
     reassembled bytes are exactly the buffered reply's body. *)
  with_server (fun srv ->
      let p = Server.port srv in
      let buffered = oneshot p ~meth:"POST" ~target:"/query" narrow_words in
      check_status "buffered" 200 buffered;
      let streamed =
        oneshot p ~meth:"POST" ~target:"/query?stream=1" narrow_words
      in
      check_status "streamed" 200 streamed;
      Alcotest.(check (option string))
        "streamed reply is chunked" (Some "chunked")
        (Http.response_header streamed "transfer-encoding");
      Alcotest.(check (option string))
        "marked as a stream" (Some "1")
        (Http.response_header streamed "x-standoff-stream");
      Alcotest.(check string) "bodies byte-identical" buffered.Http.r_body
        streamed.Http.r_body;
      (* Keep-alive survives a chunked reply: same connection, two
         streamed requests. *)
      let fd = connect p in
      let reader = Http.reader fd in
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          let r1 =
            request reader fd ~meth:"POST" ~target:"/query?stream=1"
              narrow_words
          in
          let r2 =
            request reader fd ~meth:"POST" ~target:"/query?stream=1"
              narrow_words
          in
          Alcotest.(check string) "keep-alive reuse" r1.Http.r_body
            r2.Http.r_body);
      (* An error before the first byte downgrades to a buffered error
         reply, not a broken chunk stream. *)
      let bad =
        oneshot p ~meth:"POST" ~target:"/query?stream=1" "count(((("
      in
      check_status "pre-stream error is a plain reply" 400 bad;
      Alcotest.(check (option string))
        "no chunking on the error path" None
        (Http.response_header bad "transfer-encoding"))

(* ---------------- bearer auth ---------------- *)

let test_auth_token () =
  let config = { default_test_config with auth_token = Some "sesame" } in
  with_server ~config (fun srv ->
      let p = Server.port srv in
      let r = oneshot p ~meth:"POST" ~target:"/query" narrow_count in
      check_status "no token" 401 r;
      Alcotest.(check bool)
        "challenge present" true
        (Http.response_header r "www-authenticate" <> None);
      let with_token tok =
        let fd = connect p in
        Fun.protect
          ~finally:(fun () -> close_noerr fd)
          (fun () ->
            request (Http.reader fd) fd
              ~headers:[ ("Authorization", "Bearer " ^ tok) ]
              ~meth:"POST" ~target:"/query" narrow_count)
      in
      check_status "wrong token" 401 (with_token "sesamee");
      check_status "prefix token" 401 (with_token "sesam");
      (* liveness stays open; the protected surface opens with the
         right token *)
      check_status "healthz unauthenticated" 200
        (oneshot p ~meth:"GET" ~target:"/healthz" "");
      let r = with_token "sesame" in
      check_status "right token" 200 r;
      Alcotest.(check string) "answer" "1\n" r.Http.r_body)

(* ---------------- readiness ---------------- *)

let test_readiness_split () =
  (* A deferred server accepts connections before its engine is
     installed: alive (200 on /healthz), not ready (503 on ?ready=1),
     engine endpoints 503 — then everything opens on install. *)
  let config = default_test_config in
  let server = Server.create_deferred ~config () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let p = Server.port server in
      check_status "alive while recovering" 200
        (oneshot p ~meth:"GET" ~target:"/healthz" "");
      let r = oneshot p ~meth:"GET" ~target:"/healthz?ready=1" "" in
      check_status "not ready while recovering" 503 r;
      let q = oneshot p ~meth:"POST" ~target:"/query" narrow_count in
      check_status "query parked during recovery" 503 q;
      Alcotest.(check bool)
        "retry-after present" true
        (Http.response_header q "retry-after" <> None);
      Alcotest.(check bool) "not ready" false (Server.ready server);
      let engine =
        Engine.create ~jobs:1 ~cache:Engine.Cache_off (fresh_collection ())
      in
      Server.install_engine server engine;
      Alcotest.(check bool) "ready after install" true (Server.ready server);
      check_status "ready probe opens" 200
        (oneshot p ~meth:"GET" ~target:"/healthz?ready=1" "");
      let r = oneshot p ~meth:"POST" ~target:"/query" narrow_count in
      check_status "query served after install" 200 r;
      Alcotest.(check string) "answer" "1\n" r.Http.r_body)

(* ---------------- query/update interleave ---------------- *)

let move_c_outside p =
  oneshot p ~meth:"POST"
    ~target:"/update?doc=upd.xml&pre=2&start=50&end=60" ""

let test_update_then_query () =
  let engine =
    Engine.create ~jobs:1 ~cache:Engine.Cache_result (fresh_collection ())
  in
  with_server ~engine (fun srv ->
      let p = Server.port srv in
      let ask () = oneshot p ~meth:"POST" ~target:"/query" narrow_count in
      let r1 = ask () in
      check_status "first query" 200 r1;
      Alcotest.(check string) "c inside p" "1\n" r1.Http.r_body;
      (* Prime the result cache and prove the repeat is served from
         it... *)
      let r1' = ask () in
      Alcotest.(check string) "repeat identical" r1.Http.r_body r1'.Http.r_body;
      Alcotest.(check (option string))
        "repeat was a cache hit" (Some "hit")
        (Http.response_header r1' "x-standoff-cache");
      (* ...then update through the server and observe invalidation. *)
      let u = move_c_outside p in
      check_status "update" 200 u;
      let r2 = ask () in
      check_status "post-update query" 200 r2;
      Alcotest.(check string) "post-update answer" "0\n" r2.Http.r_body;
      check_status "unknown document" 404
        (oneshot p ~meth:"POST" ~target:"/update?doc=ghost.xml&pre=1&start=0&end=1" "");
      check_status "missing params" 400
        (oneshot p ~meth:"POST" ~target:"/update?doc=upd.xml" ""))

let test_ingest_endpoint () =
  let engine =
    Engine.create ~jobs:1 ~cache:Engine.Cache_off (fresh_collection ())
  in
  with_server ~engine (fun srv ->
      let p = Server.port srv in
      let contains needle hay =
        let n = String.length needle and m = String.length hay in
        let rec scan i =
          i + n <= m && (String.sub hay i n = needle || scan (i + 1))
        in
        scan 0
      in
      let frame name xml =
        Printf.sprintf "%s %d\n%s\n" name (String.length xml) xml
      in
      let body =
        frame "t1.xml" "<p>The <w>quick</w> <w>fox</w></p>"
        ^ frame "t2.xml" "<p><w>jumps</w></p>"
      in
      let r = oneshot p ~meth:"POST" ~target:"/ingest" body in
      check_status "bulk ingest" 200 r;
      Alcotest.(check bool) "both documents counted" true
        (contains "\"ingested\": 2" r.Http.r_body);
      let q =
        oneshot p ~meth:"POST" ~target:"/query"
          "count(doc(\"t1.xml\")//p/select-narrow::w)"
      in
      check_status "query an ingested document" 200 q;
      Alcotest.(check string) "converted extents answer containment" "2\n"
        q.Http.r_body;
      (* the extracted text rides along as <name>.blob *)
      Alcotest.(check bool) "blob stored" true
        (Collection.blob (Engine.collection engine) "t2.xml.blob" <> None);
      (* conflicts reject the whole batch atomically *)
      check_status "duplicate batch conflicts" 409
        (oneshot p ~meth:"POST" ~target:"/ingest" body);
      check_status "fresh batch after conflict still works" 200
        (oneshot p ~meth:"POST" ~target:"/ingest"
           (frame "t3.xml" "<p><w>over</w></p>"));
      (* ?name= ingests the raw body as one document, unconverted *)
      check_status "raw single-document ingest" 200
        (oneshot p ~meth:"POST" ~target:"/ingest?name=raw.xml&convert=none"
           region_doc_xml);
      let q2 =
        oneshot p ~meth:"POST" ~target:"/query"
          "count(doc(\"raw.xml\")//p/select-narrow::c)"
      in
      Alcotest.(check string) "raw ingest queryable" "1\n" q2.Http.r_body;
      check_status "malformed frame header" 400
        (oneshot p ~meth:"POST" ~target:"/ingest" "nonsense");
      check_status "empty body" 400 (oneshot p ~meth:"POST" ~target:"/ingest" "");
      check_status "unknown convert mode" 400
        (oneshot p ~meth:"POST" ~target:"/ingest?convert=wat" "x 1\ny");
      check_status "GET not allowed" 405
        (oneshot p ~meth:"GET" ~target:"/ingest" ""))

let test_concurrent_interleave () =
  (* Queries hammering from several threads while an update lands in
     the middle: every response is one of the two valid answers, and
     after the update only the post-update one. *)
  let engine =
    Engine.create ~jobs:1 ~cache:Engine.Cache_result (fresh_collection ())
  in
  let config = { default_test_config with workers = 4 } in
  with_server ~engine ~config (fun srv ->
      let p = Server.port srv in
      let errors = Atomic.make 0 in
      let updated = Atomic.make false in
      let bad_order = Atomic.make 0 in
      let client () =
        let fd = connect p in
        let reader = Http.reader fd in
        Fun.protect
          ~finally:(fun () -> close_noerr fd)
          (fun () ->
            for _ = 1 to 25 do
              let r =
                request reader fd ~meth:"POST" ~target:"/query" narrow_count
              in
              (match (r.Http.status, r.Http.r_body) with
              | 200, "1\n" ->
                  (* The pre-update answer is only valid before the
                     update response was observed. *)
                  if Atomic.get updated then Atomic.incr bad_order
              | 200, "0\n" -> ()
              | _ -> Atomic.incr errors);
              Thread.yield ()
            done)
      in
      let clients = List.init 4 (fun _ -> Thread.create client ()) in
      Thread.delay 0.05;
      let u = move_c_outside p in
      check_status "interleaved update" 200 u;
      Atomic.set updated true;
      List.iter Thread.join clients;
      Alcotest.(check int) "no failed responses" 0 (Atomic.get errors);
      Alcotest.(check int) "no stale post-update answers" 0
        (Atomic.get bad_order);
      let r = oneshot p ~meth:"POST" ~target:"/query" narrow_count in
      Alcotest.(check string) "settled answer" "0\n" r.Http.r_body)

let test_concurrent_mixed_jobs_identical () =
  (* Concurrent requests at every parallelism cap {1, 2, 4, 8} against
     an adaptive engine: all of them, interleaved on several worker
     domains, must answer the one byte-identical body.  The forced
     budget makes the caps real even on a single-core machine, and the
     final check pins the tentpole invariant: connection workers and
     query parallelism draw on one domain budget, so the worker set
     never exceeds it. *)
  let saved = Pool.domain_budget () in
  Pool.set_domain_budget 8;
  Fun.protect
    ~finally:(fun () ->
      Pool.park ();
      Pool.set_domain_budget saved)
    (fun () ->
      let engine =
        Engine.create ~jobs:0 ~cache:Engine.Cache_off (fresh_collection ())
      in
      let expected =
        (Engine.run engine ~rollback_constructed:true narrow_words)
          .Engine.serialized
        ^ "\n"
      in
      let config = { default_test_config with workers = 3 } in
      with_server ~engine ~config (fun srv ->
          let p = Server.port srv in
          let caps = [| 1; 2; 4; 8 |] in
          let mismatches = Atomic.make 0 in
          let errors = Atomic.make 0 in
          let client c () =
            let fd = connect p in
            let reader = Http.reader fd in
            Fun.protect
              ~finally:(fun () -> close_noerr fd)
              (fun () ->
                for i = 0 to 19 do
                  let jobs = caps.((c + i) mod Array.length caps) in
                  let r =
                    request reader fd ~meth:"POST"
                      ~target:(Printf.sprintf "/query?jobs=%d" jobs)
                      narrow_words
                  in
                  if r.Http.status <> 200 then Atomic.incr errors
                  else if r.Http.r_body <> expected then
                    Atomic.incr mismatches
                done)
          in
          let clients = List.init 4 (fun c -> Thread.create (client c) ()) in
          List.iter Thread.join clients;
          Alcotest.(check int) "no failed responses" 0 (Atomic.get errors);
          Alcotest.(check int) "every cap byte-identical" 0
            (Atomic.get mismatches);
          Alcotest.(check bool) "pool workers within the shared budget" true
            (Pool.worker_count () <= Pool.domain_budget () - 1)))

(* ---------------- admission control ---------------- *)

let test_load_shed_503 () =
  (* One worker, queue of one: a connection pinning the worker plus a
     queued one exhaust admission; the third must be shed with 503 and
     Retry-After. *)
  let config =
    {
      default_test_config with
      workers = 1;
      queue_capacity = 1;
      socket_timeout_s = 10.0;
    }
  in
  with_server ~config (fun srv ->
      let p = Server.port srv in
      let pin = connect p in
      Thread.delay 0.2;
      (* worker now blocked reading [pin] *)
      let queued = connect p in
      Thread.delay 0.2;
      (* admission queue now holds [queued] *)
      Fun.protect
        ~finally:(fun () ->
          close_noerr pin;
          close_noerr queued)
        (fun () ->
          let shed = connect p in
          let resp =
            Fun.protect
              ~finally:(fun () -> close_noerr shed)
              (fun () -> Http.read_response (Http.reader shed))
          in
          check_status "shed" 503 resp;
          Alcotest.(check bool)
            "retry-after present" true
            (Http.response_header resp "retry-after" <> None);
          (* Freeing the worker lets the queued connection be served. *)
          close_noerr pin;
          let r =
            request (Http.reader queued) queued ~meth:"GET" ~target:"/healthz"
              ""
          in
          check_status "queued connection served after drain" 200 r))

(* ---------------- keep-alive ---------------- *)

let test_keep_alive_reuse_and_bound () =
  let config = { default_test_config with max_requests_per_connection = 2 } in
  with_server ~config (fun srv ->
      let fd = connect (Server.port srv) in
      let reader = Http.reader fd in
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          let r1 = request reader fd ~meth:"GET" ~target:"/healthz" "" in
          check_status "first on connection" 200 r1;
          Alcotest.(check (option string))
            "first keeps alive" (Some "keep-alive")
            (Http.response_header r1 "connection");
          let r2 = request reader fd ~meth:"GET" ~target:"/healthz" "" in
          check_status "second on same connection" 200 r2;
          Alcotest.(check (option string))
            "bound reached: connection closes" (Some "close")
            (Http.response_header r2 "connection");
          (* The server must actually close: the probe sees EOF, or a
             reset/broken pipe when the RST beats our write — either
             way, never a served response. *)
          Alcotest.(check bool) "closed after bound" true
            (match
               Http.write_request fd ~meth:"GET" ~target:"/healthz" "";
               Http.read_response (Http.reader fd)
             with
            | _ -> false
            | exception Http.Closed -> true
            | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> true)))

let test_connection_close_honored () =
  with_server (fun srv ->
      let fd = connect (Server.port srv) in
      let reader = Http.reader fd in
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          let r =
            request reader fd
              ~headers:[ ("Connection", "close") ]
              ~meth:"GET" ~target:"/healthz" ""
          in
          check_status "request" 200 r;
          Alcotest.(check (option string))
            "close echoed" (Some "close")
            (Http.response_header r "connection")))

(* ---------------- graceful shutdown ---------------- *)

let test_graceful_drain () =
  let engine = Engine.create ~jobs:1 (fresh_collection ()) in
  let config = { default_test_config with workers = 1 } in
  let server = Server.create ~config engine in
  Server.start server;
  let p = Server.port server in
  let fd = connect p in
  Fun.protect
    ~finally:(fun () ->
      close_noerr fd;
      Server.stop server)
    (fun () ->
      (* Half a request: the worker is now mid-read, i.e. in flight. *)
      let head = "POST /query HTTP/1.1\r\nContent-Length: " in
      ignore (Unix.write_substring fd head 0 (String.length head));
      Thread.delay 0.2;
      let stopper = Thread.create (fun () -> Server.stop server) () in
      Thread.delay 0.2;
      Alcotest.(check bool) "still draining" true (Server.running server);
      (* Finish the request during the drain: it must be answered. *)
      let rest =
        Printf.sprintf "%d\r\n\r\n%s" (String.length narrow_count) narrow_count
      in
      ignore (Unix.write_substring fd rest 0 (String.length rest));
      let resp = Http.read_response (Http.reader fd) in
      check_status "in-flight request answered during drain" 200 resp;
      Alcotest.(check string) "drained answer" "1\n" resp.Http.r_body;
      Alcotest.(check (option string))
        "drain says close" (Some "close")
        (Http.response_header resp "connection");
      Thread.join stopper;
      Alcotest.(check bool) "stopped" false (Server.running server);
      (* New connections are refused once stopped. *)
      Alcotest.(check bool)
        "listener gone" true
        (match connect p with
        | fd2 ->
            (* Accepted by a dead listener is impossible; a connect that
               sneaks in before the close still gets EOF. *)
            let got_eof =
              match Http.read_response (Http.reader fd2) with
              | exception Http.Closed -> true
              | exception Unix.Unix_error _ -> true
              | _ -> false
            in
            close_noerr fd2;
            got_eof
        | exception Unix.Unix_error _ -> true))

let test_stop_idempotent () =
  with_server (fun srv ->
      Server.stop srv;
      Server.stop srv;
      Alcotest.(check bool) "stopped" false (Server.running srv))

(* ---------------- engine regression: deadline during serialization - *)

let test_deadline_during_serialization () =
  (* Fuel deadlines fire on an exact checkpoint, making the failure
     point deterministic.  Serialization checkpoints once per result
     item, and those checkpoints are the last ones of a run — so the
     largest failing fuel value fails *during serialization*, and must
     raise cleanly rather than return partial output. *)
  (* Cache pinned off: a result-cache hit returns before the first
     checkpoint, which would defeat the fuel search (and does, when
     STANDOFF_CACHE=result is in the environment). *)
  let engine =
    Engine.create ~jobs:1 ~cache:Engine.Cache_off (fresh_collection ())
  in
  let expected =
    (Engine.run engine ~rollback_constructed:true narrow_words)
      .Engine.serialized
  in
  Alcotest.(check bool)
    "several items to serialize" true
    (String.contains expected '\n');
  let run_with_fuel n trace =
    Engine.run engine ~deadline:(Timing.deadline_with_fuel n)
      ~rollback_constructed:true ?trace narrow_words
  in
  (* Find the least fuel that lets the run finish. *)
  let rec least n =
    if n > 100_000 then Alcotest.fail "no fuel value finishes the query"
    else
      match run_with_fuel n None with
      | r -> (n, r)
      | exception Timing.Deadline_exceeded -> least (n + 1)
  in
  let n_min, full = least 0 in
  Alcotest.(check bool) "some checkpoints consumed" true (n_min > 0);
  Alcotest.(check string) "full run byte-identical" expected
    full.Engine.serialized;
  (* One checkpoint short: the deadline fires on the final
     serialization checkpoint. *)
  let trace = Trace.create () in
  (match run_with_fuel (n_min - 1) (Some trace) with
  | _ -> Alcotest.fail "expected Deadline_exceeded one checkpoint short"
  | exception Timing.Deadline_exceeded -> ());
  (* The partial trace is well-formed and shows serialization had
     started when the deadline hit. *)
  let root = Trace.root trace in
  Alcotest.(check bool) "trace fully closed" true (Trace.all_closed root);
  Alcotest.(check bool)
    "serialize span present" true
    (Trace.find_all (fun sp -> Trace.name sp = "serialize") root <> []);
  (* The engine is fully usable afterwards. *)
  let again =
    (Engine.run engine ~rollback_constructed:true narrow_words)
      .Engine.serialized
  in
  Alcotest.(check string) "engine unharmed" expected again

(* ---------------- http unit bits ---------------- *)

let test_url_codec () =
  Alcotest.(check string)
    "decode" "a b/c=d&"
    (Http.url_decode "a+b%2Fc%3Dd%26");
  Alcotest.(check string)
    "roundtrip" "count(doc(\"x\")//a)"
    (Http.url_decode (Http.url_encode "count(doc(\"x\")//a)"));
  let path, params = Http.parse_target "/query?strategy=loop-lifted&jobs=4" in
  Alcotest.(check string) "path" "/query" path;
  Alcotest.(check (option string))
    "param" (Some "loop-lifted")
    (List.assoc_opt "strategy" params);
  Alcotest.(check (option string)) "param2" (Some "4")
    (List.assoc_opt "jobs" params);
  (* [+ -> space] is form encoding: it applies to query keys/values
     only, never to the path — a document named "a+b.xml" must stay
     routable. *)
  Alcotest.(check string) "path keeps +" "/docs/a+b.xml"
    (Http.path_decode "/docs/a+b.xml");
  Alcotest.(check string) "path percent-decodes" "/docs/a b%.xml"
    (Http.path_decode "/docs/a%20b%25.xml");
  let path, params = Http.parse_target "/docs/a+b.xml?q=x+y%2B" in
  Alcotest.(check string) "target path keeps +" "/docs/a+b.xml" path;
  Alcotest.(check (option string))
    "query still form-decodes" (Some "x y+")
    (List.assoc_opt "q" params)

let () =
  Alcotest.run "server"
    [
      ( "http",
        [
          Alcotest.test_case "malformed request line" `Quick
            test_malformed_request_line;
          Alcotest.test_case "malformed headers" `Quick test_malformed_headers;
          Alcotest.test_case "body cap 413" `Quick test_body_cap;
          Alcotest.test_case "routing + metrics + healthz" `Quick test_routing;
          Alcotest.test_case "url codec" `Quick test_url_codec;
        ] );
      ( "query",
        [
          Alcotest.test_case "bodies byte-identical across strategies" `Quick
            test_bodies_byte_identical_across_strategies;
          Alcotest.test_case "knobs (jobs, strategy, timeout, context)" `Quick
            test_query_knobs;
          Alcotest.test_case "explain endpoint" `Quick test_explain;
          Alcotest.test_case "deadline 408 with partial trace" `Quick
            test_deadline_408_partial_trace;
          Alcotest.test_case "?stream=1 chunked and byte-identical" `Quick
            test_stream_byte_identical;
        ] );
      ( "auth",
        [ Alcotest.test_case "bearer token gate" `Quick test_auth_token ] );
      ( "readiness",
        [
          Alcotest.test_case "liveness vs readiness during deferred boot"
            `Quick test_readiness_split;
        ] );
      ( "interleave",
        [
          Alcotest.test_case "bulk ingest over HTTP" `Quick
            test_ingest_endpoint;
          Alcotest.test_case "query-update-query over HTTP" `Quick
            test_update_then_query;
          Alcotest.test_case "concurrent clients vs update" `Quick
            test_concurrent_interleave;
          Alcotest.test_case "concurrent mixed ?jobs= byte-identical" `Quick
            test_concurrent_mixed_jobs_identical;
        ] );
      ( "admission",
        [ Alcotest.test_case "load shed 503" `Quick test_load_shed_503 ] );
      ( "keep-alive",
        [
          Alcotest.test_case "reuse and per-connection bound" `Quick
            test_keep_alive_reuse_and_bound;
          Alcotest.test_case "connection: close honored" `Quick
            test_connection_close_honored;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
          Alcotest.test_case "stop idempotent" `Quick test_stop_idempotent;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deadline during serialization raises cleanly"
            `Quick test_deadline_during_serialization;
        ] );
    ]
