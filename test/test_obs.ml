(* The observability layer: metrics registry semantics (monotonic
   counters, log-bucket histograms, exact sums under concurrent
   increments), Prometheus exposition well-formedness, span-tree shape
   of traced query runs (including partial traces after a deadline
   kill, at jobs 1 and 4), the slow-query log threshold, and the
   STANDOFF_TRACE forcing switch. *)

module Metrics = Standoff_obs.Metrics
module Trace = Standoff_obs.Trace
module Slow_log = Standoff_obs.Slow_log
module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Timing = Standoff_util.Timing
module Setup = Standoff_xmark.Setup
module Queries = Standoff_xmark.Queries

let figure1_doc =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

let figure1_coll () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"figure1.xml" figure1_doc);
  coll

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)

let test_counter_monotonic () =
  let c = Metrics.counter "test_obs_monotonic_total" in
  let before = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" (before + 42) (Metrics.counter_value c);
  Metrics.add c 0;
  Alcotest.(check int) "add 0 is a no-op" (before + 42)
    (Metrics.counter_value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1));
  (* Registration is memoizing: the same name returns the same cells. *)
  let c' = Metrics.counter "test_obs_monotonic_total" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same counter" (before + 43)
    (Metrics.counter_value c);
  (* And kind-inconsistent re-registration is an error. *)
  Alcotest.check_raises "counter name cannot become a gauge"
    (Invalid_argument "Metrics: test_obs_monotonic_total is not a gauge")
    (fun () -> ignore (Metrics.gauge "test_obs_monotonic_total"))

let test_histogram_buckets () =
  let h =
    Metrics.histogram "test_obs_bounds_seconds" ~buckets:[| 1.0; 2.0; 4.0 |]
  in
  (* le semantics: an observation exactly on a bound lands in that
     bound's bucket; past the last bound it lands in +Inf only. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.0; 4.1 ];
  let cum = Metrics.histogram_cumulative h in
  Alcotest.(check (array int)) "cumulative per-bound counts"
    [| 2; 4; 5; 6 |] cum;
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  (* The sum is kept in integer nanoseconds; 13.1 s to within 1 ns
     per observation. *)
  let sum = Metrics.histogram_sum h in
  Alcotest.(check bool) "sum ~ 13.1" true (Float.abs (sum -. 13.1) < 1e-6)

let test_log_buckets () =
  let b = Metrics.log_buckets ~start:1e-3 ~factor:10.0 ~count:4 in
  Alcotest.(check int) "count" 4 (Array.length b);
  Array.iteri
    (fun i expect ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d" i)
        true
        (Float.abs (b.(i) -. expect) /. expect < 1e-9))
    [| 1e-3; 1e-2; 1e-1; 1.0 |]

let test_concurrent_increments () =
  let c = Metrics.counter "test_obs_concurrent_total" in
  let before = Metrics.counter_value c in
  let per_domain = 50_000 and domains = 8 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join workers;
  (* Sharded cells use fetch_and_add, so the sum is exact, not
     approximate. *)
  Alcotest.(check int) "8 domains x 50k increments sum exactly"
    (before + (domains * per_domain))
    (Metrics.counter_value c)

let test_enable_switch () =
  let c = Metrics.counter "test_obs_switch_total" in
  let before = Metrics.counter_value c in
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.incr c;
      Metrics.add c 7);
  Alcotest.(check int) "updates dropped while disabled" before
    (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "updates resume" (before + 1) (Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)

let test_expose_parses () =
  (* Touch a few engine metrics so the exposition is non-trivial. *)
  let coll = figure1_coll () in
  let e = Engine.create coll in
  ignore
    (Engine.run e ~rollback_constructed:true
       "count(doc(\"figure1.xml\")//music/select-wide::shot)");
  let text = Metrics.expose () in
  let lines = String.split_on_char '\n' text in
  let typed = Hashtbl.create 16 in
  let seen_sample = ref 0 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: ("HELP" | "TYPE") :: name :: _rest ->
            Hashtbl.replace typed name ()
        | _ -> Alcotest.failf "bad comment line: %s" line
      end
      else begin
        (* name{labels} value | name value — the value must parse as a
           float and the name must have been declared by a # TYPE. *)
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "bad sample line: %s" line
        | Some i ->
            let name_part = String.sub line 0 i in
            let value = String.sub line (i + 1) (String.length line - i - 1) in
            (match float_of_string_opt value with
            | Some _ -> ()
            | None -> Alcotest.failf "unparseable value in: %s" line);
            let base =
              match String.index_opt name_part '{' with
              | Some j -> String.sub name_part 0 j
              | None -> name_part
            in
            (* Histogram series carry the _bucket/_sum/_count suffix. *)
            let strip suffix s =
              if Filename.check_suffix s suffix then
                String.sub s 0 (String.length s - String.length suffix)
              else s
            in
            let base =
              base |> strip "_bucket" |> strip "_sum" |> strip "_count"
            in
            if not (Hashtbl.mem typed base) then
              Alcotest.failf "sample without # TYPE: %s" line;
            incr seen_sample
      end)
    lines;
  Alcotest.(check bool) "some samples present" true (!seen_sample > 10);
  (* The tentpole metrics all show up. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exposed") true
        (Hashtbl.mem typed name))
    [
      "standoff_queries_total";
      "standoff_query_seconds";
      "standoff_joins_total";
      "standoff_join_index_rows_total";
      "standoff_cache_hits_total";
      "standoff_pool_tasks_total";
      "standoff_pool_queue_depth";
      "standoff_pool_queue_wait_seconds";
      "standoff_collection_docs";
      "standoff_index_builds_total";
      "standoff_merge_sweeps_total";
      "standoff_slow_queries_total";
    ]

let test_joins_by_strategy_labelled () =
  let coll = figure1_coll () in
  let e = Engine.create coll in
  let q = "count(doc(\"figure1.xml\")//music/select-wide::shot)" in
  List.iter
    (fun s -> ignore (Engine.run e ~strategy:s ~rollback_constructed:true q))
    Config.all_strategies;
  let text = Metrics.expose () in
  List.iter
    (fun s ->
      let needle =
        Printf.sprintf "standoff_joins_total{strategy=\"%s\"}"
          (Config.strategy_to_string s)
      in
      let found =
        List.exists
          (fun line -> String.length line >= String.length needle
                       && String.sub line 0 (String.length needle) = needle)
          (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) (needle ^ " present") true found)
    Config.all_strategies

(* ------------------------------------------------------------------ *)
(* Span trees                                                          *)

let test_trace_shape_flwor () =
  let coll = figure1_coll () in
  let e = Engine.create coll in
  let trace = Trace.create () in
  let q =
    "for $m in doc(\"figure1.xml\")//music \
     return <r>{for $s in $m/select-wide::shot return string($s/@id)}</r>"
  in
  let r = Engine.run e ~trace ~rollback_constructed:true q in
  let root =
    match r.Engine.trace with
    | Some root -> root
    | None -> Alcotest.fail "traced run returned no span tree"
  in
  Alcotest.(check bool) "root closed, no dangling spans" true
    (Trace.all_closed root);
  let phases = List.map Trace.name (Trace.children root) in
  Alcotest.(check (list string)) "phase spans in order"
    [ "parse"; "optimize"; "eval"; "serialize" ]
    phases;
  (* The eval phase contains the operator tree: a for-loop span with
     the join somewhere below it, each tagged with a plan-node id. *)
  let eval_span =
    List.find (fun sp -> Trace.name sp = "eval") (Trace.children root)
  in
  let fors =
    Trace.find_all
      (fun sp ->
        Trace.node sp >= 0
        && String.length (Trace.name sp) >= 3
        && String.sub (Trace.name sp) 0 3 = "for")
      eval_span
  in
  Alcotest.(check bool) "nested FLWOR: two for-operator spans" true
    (List.length fors >= 2);
  let joins =
    Trace.find_all
      (fun sp ->
        Trace.node sp >= 0
        && String.length (Trace.name sp) >= 13
        && String.sub (Trace.name sp) 0 13 = "standoff-join")
      eval_span
  in
  (match joins with
  | [] -> Alcotest.fail "no standoff-join span"
  | sp :: _ ->
      Alcotest.(check bool) "join span has rows_out" true
        (Trace.int_attr sp "rows_out" <> None);
      Alcotest.(check bool) "join span has rows_in" true
        (Trace.int_attr sp "rows_in" <> None);
      Alcotest.(check bool) "join span has a resolved strategy" true
        (Trace.str_attr sp "strategy" <> None));
  (* The inner for's span is a descendant of the outer for's span. *)
  let outer = List.hd fors in
  let inner_inside =
    Trace.find_all
      (fun sp ->
        sp != outer
        && String.length (Trace.name sp) >= 3
        && String.sub (Trace.name sp) 0 3 = "for")
      outer
    <> []
  in
  Alcotest.(check bool) "inner for nests under outer for" true inner_inside;
  (* JSON emission at least round-trips the structural characters. *)
  let json = Trace.span_to_json root in
  Alcotest.(check bool) "json mentions phases" true
    (List.for_all
       (fun n ->
         let needle = Printf.sprintf "\"name\":\"%s\"" n in
         let rec contains i =
           i + String.length needle <= String.length json
           && (String.sub json i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0)
       [ "parse"; "optimize"; "eval"; "serialize" ])

let test_trace_rows_out_matches_result () =
  let coll = figure1_coll () in
  let e = Engine.create coll in
  let trace = Trace.create () in
  let r =
    Engine.run e ~trace ~rollback_constructed:true
      "doc(\"figure1.xml\")//music/select-wide::shot"
  in
  let root = Option.get r.Engine.trace in
  let eval_span =
    List.find (fun sp -> Trace.name sp = "eval") (Trace.children root)
  in
  (* The outermost operator span's rows_out is the result cardinality. *)
  match Trace.children eval_span with
  | [ top ] ->
      Alcotest.(check (option int)) "top operator rows_out = |items|"
        (Some (List.length r.Engine.items))
        (Trace.int_attr top "rows_out")
  | other ->
      Alcotest.failf "expected one top operator span, got %d"
        (List.length other)

let test_deadline_partial_trace () =
  (* A query killed by Deadline_exceeded must still leave a well-formed
     trace: every span closed, phases present — at jobs 1 and jobs 4. *)
  let setup = Setup.build ~with_standard:false ~scale:0.01 () in
  Engine.shutdown setup.Setup.engine;
  let text = Queries.q2.Queries.standoff setup.Setup.standoff_doc in
  List.iter
    (fun jobs ->
      let e = Engine.create ~jobs setup.Setup.coll in
      Fun.protect
        ~finally:(fun () -> Engine.shutdown e)
        (fun () ->
          let trace = Trace.create () in
          let deadline = Timing.deadline_after 1e-6 in
          (match
             Engine.run e ~strategy:Config.Basic_merge ~deadline ~trace
               ~rollback_constructed:true text
           with
          | _ -> Alcotest.failf "jobs=%d: expected Deadline_exceeded" jobs
          | exception Timing.Deadline_exceeded -> ());
          let root = Trace.root trace in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: partial trace fully closed" jobs)
            true (Trace.all_closed root);
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: spans were recorded" jobs)
            true
            (Trace.span_count trace > 1);
          (* The kill happened mid-eval: the eval phase span exists and
             is closed even though eval never returned. *)
          let names = List.map Trace.name (Trace.children root) in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: eval phase present" jobs)
            true
            (List.mem "eval" names)))
    [ 1; 4 ]

let test_trace_forced_by_env () =
  (* STANDOFF_TRACE=1 makes untraced runs produce a span tree. *)
  let coll = figure1_coll () in
  let e = Engine.create coll in
  Unix.putenv "STANDOFF_TRACE" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "STANDOFF_TRACE" "")
    (fun () ->
      let r =
        Engine.run e ~rollback_constructed:true
          "count(doc(\"figure1.xml\")//shot)"
      in
      match r.Engine.trace with
      | Some root -> Alcotest.(check bool) "closed" true (Trace.all_closed root)
      | None -> Alcotest.fail "STANDOFF_TRACE=1 did not force a trace");
  let r =
    Engine.run e ~rollback_constructed:true "count(doc(\"figure1.xml\")//shot)"
  in
  Alcotest.(check bool) "unset again: no trace" true (r.Engine.trace = None)

(* ------------------------------------------------------------------ *)
(* Slow-query log                                                      *)

let test_slow_log_threshold () =
  Slow_log.clear ();
  let coll = figure1_coll () in
  let e = Engine.create coll in
  let q = "count(doc(\"figure1.xml\")//shot)" in
  (* Threshold far above any conceivable runtime: nothing fires. *)
  Engine.set_slow_ms e (Some 1e9);
  ignore (Engine.run e ~rollback_constructed:true q);
  Alcotest.(check int) "fast query not logged" 0
    (List.length (Slow_log.recent ()));
  (* Threshold zero: everything fires, with the query text recorded. *)
  Engine.set_slow_ms e (Some 0.0);
  ignore (Engine.run e ~rollback_constructed:true q);
  (match Slow_log.recent () with
  | [ entry ] ->
      Alcotest.(check string) "query text recorded" q entry.Slow_log.e_query;
      (* The engine defaults to adaptive sizing ([jobs e = 0]); the log
         records the jobs the run actually resolved to, always >= 1. *)
      Alcotest.(check bool) "jobs recorded (resolved >= 1)" true
        (entry.Slow_log.e_jobs >= 1);
      Alcotest.(check string) "strategy recorded" "auto"
        entry.Slow_log.e_strategy;
      Alcotest.(check bool) "duration non-negative" true
        (entry.Slow_log.e_seconds >= 0.0)
  | entries -> Alcotest.failf "expected 1 slow entry, got %d"
                 (List.length entries));
  (* Disabled again: no further entries. *)
  Engine.set_slow_ms e None;
  ignore (Engine.run e ~rollback_constructed:true q);
  Alcotest.(check int) "disabled: still 1 entry" 1
    (List.length (Slow_log.recent ()));
  Slow_log.clear ()

let test_slow_log_sink_and_summary () =
  Slow_log.clear ();
  let coll = figure1_coll () in
  let e = Engine.create coll in
  Engine.set_slow_ms e (Some 0.0);
  let hits = ref [] in
  Slow_log.set_sink (Some (fun entry -> hits := entry :: !hits));
  Fun.protect
    ~finally:(fun () -> Slow_log.set_sink None)
    (fun () ->
      let trace = Trace.create () in
      ignore
        (Engine.run e ~trace ~strategy:Config.Loop_lifted
           ~rollback_constructed:true
           "count(doc(\"figure1.xml\")//music/select-narrow::shot)"));
  (match !hits with
  | [ entry ] ->
      Alcotest.(check string) "pinned strategy recorded" "loop-lifted"
        entry.Slow_log.e_strategy;
      (* Traced runs carry the span digest into the log entry. *)
      Alcotest.(check bool) "summary mentions spans" true
        (String.length entry.Slow_log.e_summary >= 6
        && String.sub entry.Slow_log.e_summary 0 6 = "spans=");
      let line = Slow_log.entry_to_string entry in
      Alcotest.(check bool) "rendered entry mentions the query" true
        (String.length line > String.length entry.Slow_log.e_query)
  | entries ->
      Alcotest.failf "expected 1 sink hit, got %d" (List.length entries));
  Slow_log.clear ()

let test_slow_log_env_threshold () =
  Unix.putenv "STANDOFF_SLOW_MS" "250";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "STANDOFF_SLOW_MS" "")
    (fun () ->
      Alcotest.(check (option (float 1e-9))) "parsed" (Some 250.0)
        (Slow_log.env_threshold_ms ());
      let coll = figure1_coll () in
      let e = Engine.create coll in
      Alcotest.(check (option (float 1e-9))) "engine default picks it up"
        (Some 250.0) (Engine.slow_ms e));
  Alcotest.(check (option (float 1e-9))) "unset: disabled" None
    (Slow_log.env_threshold_ms ())

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotonicity" `Quick
            test_counter_monotonic;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "log-scale bucket ladder" `Quick test_log_buckets;
          Alcotest.test_case "concurrent increments sum exactly" `Quick
            test_concurrent_increments;
          Alcotest.test_case "enable switch drops updates" `Quick
            test_enable_switch;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus text parses line-by-line" `Quick
            test_expose_parses;
          Alcotest.test_case "per-strategy join counters" `Quick
            test_joins_by_strategy_labelled;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "span tree of a nested FLWOR" `Quick
            test_trace_shape_flwor;
          Alcotest.test_case "rows_out equals result cardinality" `Quick
            test_trace_rows_out_matches_result;
          Alcotest.test_case "deadline leaves well-formed partial trace" `Slow
            test_deadline_partial_trace;
          Alcotest.test_case "STANDOFF_TRACE forces collection" `Quick
            test_trace_forced_by_env;
        ] );
      ( "slow-log",
        [
          Alcotest.test_case "fires at threshold, not below" `Quick
            test_slow_log_threshold;
          Alcotest.test_case "sink and trace summary" `Quick
            test_slow_log_sink_and_summary;
          Alcotest.test_case "STANDOFF_SLOW_MS threshold" `Quick
            test_slow_log_env_threshold;
        ] );
    ]
