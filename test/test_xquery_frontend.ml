(* White-box tests of the XQuery front end: tokenizer, parser AST
   shapes, and result serialization. *)

module L = Standoff_xquery.Lexer
module Ast = Standoff_xquery.Ast
module Parse = Standoff_xquery.Parse
module Serialize = Standoff_xquery.Serialize
module Item = Standoff_relalg.Item
module Collection = Standoff_store.Collection

(* ------------------------------------------------------------ *)
(* Lexer                                                         *)

let tokens src =
  let lx = L.create src in
  let rec loop acc =
    match L.next lx with
    | L.Eof -> List.rev acc
    | tok -> loop (tok :: acc)
  in
  loop []

let token_strings src = List.map L.token_to_string (tokens src)

let test_lexer_basic () =
  Alcotest.(check (list string))
    "symbols"
    [ "("; ")"; "["; "]"; "{"; "}"; ","; ";"; "@"; "*"; "+"; "-"; "|" ]
    (token_strings "( ) [ ] { } , ; @ * + - |");
  Alcotest.(check (list string))
    "composites"
    [ ":="; "//"; "/"; "::"; ".."; "."; "!="; "<="; ">="; "<"; ">"; "=" ]
    (token_strings ":= // / :: .. . != <= >= < > =")

let test_lexer_names () =
  Alcotest.(check (list string))
    "plain and qualified"
    [ "foo"; "select-narrow"; "xs:integer"; "local:f"; "a.b" ]
    (token_strings "foo select-narrow xs:integer local:f a.b");
  (* '::' must not be folded into a QName. *)
  Alcotest.(check (list string))
    "axis separator survives" [ "child"; "::"; "shot" ]
    (token_strings "child::shot")

let test_lexer_numbers () =
  Alcotest.(check (list string)) "ints and floats"
    [ "42"; "2.5"; "0.125"; "1000000" ]
    (token_strings "42 2.5 0.125 1e6" |> List.map (fun s ->
         (* 1e6 prints as "1000000." via string_of_float; normalise *)
         match float_of_string_opt s with
         | Some f when Float.is_integer f -> Printf.sprintf "%.0f" f
         | _ -> s))

let test_lexer_strings () =
  Alcotest.(check (list string)) "escaped quotes"
    [ "\"say \\\"hi\\\"\"" ]
    (token_strings {|"say ""hi"""|});
  Alcotest.(check (list string)) "apos string" [ "\"it's\"" ]
    (token_strings "'it''s'")

let test_lexer_vars () =
  Alcotest.(check (list string)) "variables" [ "$x"; "$long-name" ]
    (token_strings "$x $long-name")

let test_lexer_comments () =
  Alcotest.(check (list string)) "nested comment skipped" [ "1"; "+"; "2" ]
    (token_strings "1 + (: a (: nested :) comment :) 2")

let expect_syntax_error src =
  match tokens src with
  | exception L.Syntax_error _ -> ()
  | _ -> Alcotest.failf "lexer accepted %S" src

let test_lexer_errors () =
  expect_syntax_error "\"unterminated";
  expect_syntax_error "(: unterminated";
  expect_syntax_error "$ x";
  expect_syntax_error "!x";
  expect_syntax_error "#"

(* ------------------------------------------------------------ *)
(* Parser: AST shapes                                            *)

let parse = Parse.parse_expr

let test_parse_precedence () =
  (match parse "1 + 2 * 3" with
  | Ast.Binop (Ast.Op_add, Ast.Literal (Ast.Lit_int 1L), Ast.Binop (Ast.Op_mul, _, _))
    ->
      ()
  | _ -> Alcotest.fail "addition should be outermost");
  (match parse "1 = 2 or 3 = 4 and 5 = 6" with
  | Ast.Binop (Ast.Op_or, _, Ast.Binop (Ast.Op_and, _, _)) -> ()
  | _ -> Alcotest.fail "or should be outermost, and binds tighter");
  match parse "-1 + 2" with
  | Ast.Binop (Ast.Op_add, Ast.Unary_minus _, _) -> ()
  | _ -> Alcotest.fail "unary minus binds tighter than +"

let test_parse_flwor_shape () =
  match parse "for $x in (1, 2) where $x > 1 order by $x descending return $x" with
  | Ast.For
      {
        var = "x";
        pos_var = None;
        order_by = [ { Ast.descending = true; _ } ];
        body = Ast.Where { body = Ast.Var "x"; _ };
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected FLWOR shape"

let test_parse_nested_fors_share_order_by () =
  (* order by attaches to the innermost for only. *)
  match parse "for $x in (1), $y in (2) order by $y return $x" with
  | Ast.For
      { var = "x"; order_by = []; body = Ast.For { var = "y"; order_by = [ _ ]; _ }; _ }
    ->
      ()
  | _ -> Alcotest.fail "order by should attach to the innermost for"

let test_parse_path_shapes () =
  (match parse "doc(\"a\")//shot" with
  | Ast.Step
      {
        axis = Ast.Std Standoff_xpath.Axes.Child;
        test = Standoff_xpath.Node_test.Name "shot";
        input =
          Ast.Step
            { axis = Ast.Std Standoff_xpath.Axes.Descendant_or_self; _ };
      } ->
      ()
  | _ -> Alcotest.fail "// should desugar to descendant-or-self::node()/");
  (match parse "$m/select-narrow::shot" with
  | Ast.Step
      { axis = Ast.Standoff Standoff.Op.Select_narrow; input = Ast.Var "m"; _ }
    ->
      ()
  | _ -> Alcotest.fail "standoff axis step expected");
  (match parse "$m/@id" with
  | Ast.Step { axis = Ast.Attribute; _ } -> ()
  | _ -> Alcotest.fail "attribute step expected");
  match parse "$m/.." with
  | Ast.Step { axis = Ast.Std Standoff_xpath.Axes.Parent; _ } -> ()
  | _ -> Alcotest.fail ".. should be parent::node()"

let test_parse_predicate_desugaring () =
  (* A predicated axis step becomes a per-context for-loop under #ddo. *)
  match parse "$b/bidder[1]" with
  | Ast.Call
      {
        name = "#ddo";
        args = [ Ast.For { source = Ast.Var "b"; body = Ast.Filter _; _ } ];
      } ->
      ()
  | _ -> Alcotest.fail "predicated step should desugar to #ddo(for ...)"

let test_parse_constructor_shape () =
  match parse "<out n=\"x{1}\">text{2}<inner/></out>" with
  | Ast.Elem_ctor
      {
        tag = "out";
        attrs = [ ("n", [ Ast.Fixed "x"; Ast.Enclosed _ ]) ];
        content =
          [
            Ast.Fixed "text";
            Ast.Enclosed (Ast.Literal (Ast.Lit_int 2L));
            Ast.Enclosed (Ast.Elem_ctor { tag = "inner"; _ });
          ];
      } ->
      ()
  | _ -> Alcotest.fail "unexpected constructor shape"

let test_parse_quantified_shape () =
  match parse "every $x in (1, 2) satisfies $x > 0" with
  | Ast.Quantified { universal = true; var = "x"; _ } -> ()
  | _ -> Alcotest.fail "quantified shape"

let test_parse_prolog () =
  let q =
    Parse.parse_query
      "declare namespace so = \"http://example.org\";\n\
       declare option standoff-start \"from\";\n\
       declare variable $n := 3;\n\
       declare function local:f($x) { $x };\n\
       $n"
  in
  Alcotest.(check int) "four declarations" 4 (List.length q.Ast.prolog);
  match q.Ast.prolog with
  | [
   Ast.Decl_namespace { prefix = "so"; _ };
   Ast.Decl_option { name = "standoff-start"; value = "from" };
   Ast.Decl_variable { var = "n"; _ };
   Ast.Decl_function { fn_name = "local:f"; fn_params = [ "x" ]; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected prolog shape"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parse.parse_query src with
      | exception L.Syntax_error _ -> ()
      | _ -> Alcotest.failf "parser accepted %S" src)
    [
      "for $x in";
      "for $x in (1) order by return $x";
      "if (1) then 2";
      "1 +";
      "$";
      "<a>{1}</b>";
      "<a x=1/>";
      "doc(\"x\"//y";
      "let $x := 1";
      "declare option foo;1";
      "child::";
      "(1, 2";
    ]

let test_free_vars () =
  let fv src = Ast.free_vars (parse src) in
  Alcotest.(check (list string)) "simple" [ "y" ] (fv "for $x in $y return $x");
  Alcotest.(check (list string)) "let binds" [ "z" ]
    (fv "let $x := $z return $x");
  Alcotest.(check (list string)) "order by keys counted" [ "k"; "s" ]
    (fv "for $x in $s order by $k return $x");
  Alcotest.(check (list string)) "pos var bound" []
    (fv "for $x at $p in (1) return $p")

(* ------------------------------------------------------------ *)
(* Pretty-printer: explain output and the print/parse fixpoint    *)

module Pp_ast = Standoff_xquery.Pp_ast

let corpus =
  [
    "1 + 2 * 3";
    "(1, 2.5, \"s\")";
    "for $x at $i in (1, 2) where $x > 1 order by $x descending return ($i, $x)";
    "let $y := 3 return $y + 1";
    "some $x in (1, 2) satisfies $x = 2";
    "if (1 < 2) then \"a\" else \"b\"";
    "doc(\"d.xml\")//a/b[2]/@id";
    "$m/select-narrow::shot[@id = \"x\"]";
    "doc(\"d\")//a | doc(\"d\")//b intersect doc(\"d\")//c";
    "count(//x) + sum((1, 2))";
    "<out n=\"v{1}\">txt{2}<in/></out>";
    "-(3 to 5)";
    "//a/../following-sibling::b/text()";
    "normalize-space(\" x \")";
    "$a except $b";
  ]

(* Printing is a fixpoint from the second round: parse/print may
   normalise once (abbreviations, #ddo), after which it is stable. *)
let test_print_parse_stable () =
  List.iter
    (fun src ->
      let printed = Pp_ast.expr_to_string (Parse.parse_expr src) in
      let reprinted = Pp_ast.expr_to_string (Parse.parse_expr printed) in
      Alcotest.(check string)
        (Printf.sprintf "stable: %s" src)
        printed reprinted)
    corpus

let test_explain () =
  (* Explain needs no documents: the plan prints against an empty
     collection. *)
  let engine = Standoff_xquery.Engine.create (Collection.create ()) in
  let query =
    "declare option standoff-start \"from\";\n\
     for $b in doc(\"a\")//open_auction return $b/bidder[1]"
  in
  let contains out sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length out && (String.sub out i n = sub || scan (i + 1))
    in
    scan 0
  in
  (* Default: the DataGuide collapse turns doc(…)//name into one
     path-lookup; the variable-rooted step stays a step. *)
  let out = Standoff_xquery.Engine.explain engine query in
  Alcotest.(check bool) "prolog survives" true
    (String.length out > 0
    && contains out "declare option standoff-start"
    && contains out "path-lookup //open_auction"
    && contains out "child::bidder");
  (* Guide off: the structural expansion of // is visible again. *)
  let out = Standoff_xquery.Engine.explain engine ~dataguide:false query in
  Alcotest.(check bool) "dataguide off keeps the steps" true
    (contains out "descendant-or-self::node()"
    && contains out "child::open_auction"
    && not (contains out "path-lookup"))

(* ------------------------------------------------------------ *)
(* Serialization                                                 *)

let test_serialize_items () =
  let coll = Collection.create () in
  let id = Collection.load_string coll ~name:"s" "<a><b k=\"v\">t</b></a>" in
  let node pre = Item.Node { Collection.doc_id = id; pre } in
  Alcotest.(check string) "node as markup" "<b k=\"v\">t</b>"
    (Serialize.item coll (node 2));
  Alcotest.(check string) "attribute" "k=\"v\""
    (Serialize.item coll (Item.Attribute ({ Collection.doc_id = id; pre = 2 }, "k", "v")));
  Alcotest.(check string) "atomics spaced" "1 x true"
    (Serialize.sequence coll [ Item.Int 1L; Item.Str "x"; Item.Bool true ]);
  Alcotest.(check string) "nodes on lines" "<b k=\"v\">t</b>\n1"
    (Serialize.sequence coll [ node 2; Item.Int 1L ])

let () =
  Alcotest.run "xquery-frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "symbols" `Quick test_lexer_basic;
          Alcotest.test_case "names" `Quick test_lexer_names;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "variables" `Quick test_lexer_vars;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "flwor shape" `Quick test_parse_flwor_shape;
          Alcotest.test_case "order-by placement" `Quick
            test_parse_nested_fors_share_order_by;
          Alcotest.test_case "path shapes" `Quick test_parse_path_shapes;
          Alcotest.test_case "predicate desugaring" `Quick
            test_parse_predicate_desugaring;
          Alcotest.test_case "constructor shape" `Quick
            test_parse_constructor_shape;
          Alcotest.test_case "quantified shape" `Quick
            test_parse_quantified_shape;
          Alcotest.test_case "prolog" `Quick test_parse_prolog;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "free variables" `Quick test_free_vars;
        ] );
      ( "pretty-printer",
        [
          Alcotest.test_case "print/parse stable" `Quick
            test_print_parse_stable;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "serialize",
        [ Alcotest.test_case "items" `Quick test_serialize_items ] );
    ]
