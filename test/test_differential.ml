(* Cross-strategy differential harness: the paper's four evaluation
   strategies are result-equivalent by construction (§4), and parallel
   execution must be invisible.  This suite generates random
   annotation documents and random StandOff queries (axis form,
   function form, FLWOR) and insists that all 4 strategies x jobs {1, 4}
   produce byte-identical serialized results — and that the traced
   rows_out of the join operators agrees across strategies.  Each
   strategy x jobs point also runs under the result cache, twice (a
   cold miss then a warm hit): both runs must be byte-identical to the
   cache-off reference, so a caching bug can never masquerade as a
   strategy difference.  QCheck prints the failing document and query;
   the qcheck random seed is printed at startup for replay. *)

module Collection = Standoff_store.Collection
module Persist = Standoff_store.Persist
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Trace = Standoff_obs.Trace

let ops = [ "select-narrow"; "select-wide"; "reject-narrow"; "reject-wide" ]
let jobs_sweep = [ 1; 4 ]

(* The DataGuide path index is a pure performance knob: the collapse
   rewrite and the probe-based evaluation must be invisible in the
   bytes, so every strategy x jobs point runs both ways. *)
let dataguide_sweep = [ false; true ]

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

type case = {
  layers : (string * (int * int) list) list;  (* name -> (start, width) *)
  query : string;
}

let doc_of_layers layers =
  let b = Buffer.create 256 in
  Buffer.add_string b "<t>";
  List.iter
    (fun (name, regions) ->
      List.iter
        (fun (s, w) ->
          Buffer.add_string b
            (Printf.sprintf "<%s start=\"%d\" end=\"%d\"/>" name s (s + w)))
        regions)
    layers;
  Buffer.add_string b "</t>";
  Buffer.contents b

let query_shapes =
  [
    (fun op from_n to_n ->
      Printf.sprintf
        "for $x in doc(\"r.xml\")//%s return <g>{count($x/%s::%s)}</g>" from_n
        op to_n);
    (fun op from_n to_n ->
      Printf.sprintf "count(%s(doc(\"r.xml\")//%s, doc(\"r.xml\")//%s))" op
        from_n to_n);
    (fun op from_n to_n ->
      Printf.sprintf
        "count(for $x in doc(\"r.xml\")//%s where count($x/%s::%s) > 0 \
         return $x)"
        from_n op to_n);
    (fun op from_n to_n ->
      (* Two chained joins stress per-operator strategy resolution. *)
      Printf.sprintf
        "for $x in doc(\"r.xml\")//%s return \
         <g>{count($x/%s::%s/select-narrow::%s)}</g>"
        from_n op to_n from_n);
  ]

let gen_case =
  QCheck.Gen.(
    let layer = list_size (0 -- 10) (pair (int_bound 80) (int_bound 30)) in
    let* a = layer and* b = layer and* c = layer in
    let* op = oneofl ops in
    let* shape = oneofl query_shapes in
    let* from_n = oneofl [ "a"; "b"; "c" ] in
    let* to_n = oneofl [ "a"; "b"; "c" ] in
    return
      {
        layers = [ ("a", a); ("b", b); ("c", c) ];
        query = shape op from_n to_n;
      })

let print_case case =
  Printf.sprintf "doc=%s\nquery=%s" (doc_of_layers case.layers) case.query

let coll_of_case case =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"r.xml" (doc_of_layers case.layers));
  coll

(* The persistence dimension: a collection that went through the
   binary codec (the same round-trip a snapshot + recovery performs)
   must be indistinguishable from the in-memory one at the bytes level,
   under every strategy/jobs/cache/dataguide point. *)
let reload coll = Persist.collection_of_string (Persist.collection_to_string coll)

let run_case coll ?trace ~strategy ~jobs ~dataguide case =
  let e =
    Engine.create ~strategy ~jobs ~cache:Engine.Cache_off ~dataguide coll
  in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      (Engine.run e ?trace ~rollback_constructed:true case.query)
        .Engine.serialized)

(* One engine with the result cache on, the query run twice: the first
   run misses and fills, the second must be served back byte-identical.
   Returns both serializations. *)
let run_case_cached coll ~strategy ~jobs ~dataguide case =
  let e =
    Engine.create ~strategy ~jobs ~cache:Engine.Cache_result ~dataguide coll
  in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      let once () =
        (Engine.run e ~rollback_constructed:true case.query).Engine.serialized
      in
      let cold = once () in
      (cold, once ()))

(* ------------------------------------------------------------------ *)
(* Byte-identical serialization across all strategies and jobs         *)

let qcheck_strategies_identical =
  QCheck.Test.make
    ~name:"all strategies x jobs {1,4} x dataguide x cache byte-identical"
    ~count:30
    (QCheck.make ~print:print_case gen_case)
    (fun case ->
      let coll = coll_of_case case in
      let reloaded = reload coll in
      let reference =
        run_case coll ~strategy:Config.Udf_no_candidates ~jobs:1
          ~dataguide:false case
      in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun jobs ->
              List.for_all
                (fun dataguide ->
                  let out = run_case coll ~strategy ~jobs ~dataguide case in
                  if not (String.equal out reference) then
                    QCheck.Test.fail_reportf
                      "strategy=%s jobs=%d dataguide=%b diverged:\n\
                       %s\n  vs reference:\n%s"
                      (Config.strategy_to_string strategy)
                      jobs dataguide out reference
                  else
                    let cold, warm =
                      run_case_cached coll ~strategy ~jobs ~dataguide case
                    in
                    if not (String.equal cold reference) then
                      QCheck.Test.fail_reportf
                        "strategy=%s jobs=%d dataguide=%b cache-on cold run \
                         diverged:\n%s\n  vs reference:\n%s"
                        (Config.strategy_to_string strategy)
                        jobs dataguide cold reference
                    else if not (String.equal warm reference) then
                      QCheck.Test.fail_reportf
                        "strategy=%s jobs=%d dataguide=%b cached repeat \
                         diverged:\n%s\n  vs reference:\n%s"
                        (Config.strategy_to_string strategy)
                        jobs dataguide warm reference
                    else
                      let persisted =
                        run_case reloaded ~strategy ~jobs ~dataguide case
                      in
                      if not (String.equal persisted reference) then
                        QCheck.Test.fail_reportf
                          "strategy=%s jobs=%d dataguide=%b reloaded \
                           collection diverged:\n%s\n  vs reference:\n%s"
                          (Config.strategy_to_string strategy)
                          jobs dataguide persisted reference
                      else true)
                dataguide_sweep)
            jobs_sweep)
        Config.all_strategies)

(* ------------------------------------------------------------------ *)
(* Traced rows_out agrees across strategies                            *)

let join_rows_out root =
  (* Total rows flowing out of every standoff-join operator span.  The
     per-span rows_out is the node's output cardinality, which
     result-equivalent strategies must agree on. *)
  Trace.find_all
    (fun sp ->
      Trace.node sp >= 0
      && String.length (Trace.name sp) >= 13
      && String.sub (Trace.name sp) 0 13 = "standoff-join")
    root
  |> List.fold_left
       (fun acc sp ->
         acc + Option.value ~default:0 (Trace.int_attr sp "rows_out"))
       0

let qcheck_trace_rows_agree =
  QCheck.Test.make ~name:"traced join rows_out equal across strategies"
    ~count:25
    (QCheck.make ~print:print_case gen_case)
    (fun case ->
      let coll = coll_of_case case in
      let rows_of strategy =
        let trace = Trace.create () in
        ignore (run_case coll ~trace ~strategy ~jobs:1 ~dataguide:false case);
        join_rows_out (Trace.root trace)
      in
      let reference = rows_of Config.Udf_no_candidates in
      List.for_all
        (fun strategy ->
          let rows = rows_of strategy in
          if rows = reference then true
          else
            QCheck.Test.fail_reportf
              "strategy=%s: join rows_out %d, reference %d"
              (Config.strategy_to_string strategy)
              rows reference)
        Config.all_strategies)

(* ------------------------------------------------------------------ *)
(* Deterministic corner cases the generator may miss                   *)

let test_corner_cases () =
  let cases =
    [
      (* Empty layers: joins over nothing. *)
      { layers = [ ("a", []); ("b", []); ("c", []) ];
        query = "count(select-wide(doc(\"r.xml\")//a, doc(\"r.xml\")//b))" };
      (* Identical regions in both layers: ties on every boundary. *)
      { layers = [ ("a", [ (0, 10); (0, 10) ]); ("b", [ (0, 10) ]); ("c", []) ];
        query =
          "for $x in doc(\"r.xml\")//a return \
           <g>{count($x/select-narrow::b)}</g>" };
      (* Zero-width regions. *)
      { layers = [ ("a", [ (5, 0) ]); ("b", [ (5, 0); (4, 2) ]); ("c", []) ];
        query =
          "for $x in doc(\"r.xml\")//a return \
           <g>{count($x/reject-narrow::b)}</g>" };
      (* Nested and chained: all three layers involved. *)
      { layers =
          [
            ("a", [ (0, 50); (10, 10) ]);
            ("b", [ (5, 10); (20, 5); (40, 20) ]);
            ("c", [ (0, 100); (21, 2) ]);
          ];
        query =
          "for $x in doc(\"r.xml\")//a return \
           <g>{count($x/select-wide::b/select-narrow::c)}</g>" };
    ]
  in
  List.iter
    (fun case ->
      let coll = coll_of_case case in
      let reloaded = reload coll in
      let reference =
        run_case coll ~strategy:Config.Udf_no_candidates ~jobs:1
          ~dataguide:false case
      in
      List.iter
        (fun strategy ->
          List.iter
            (fun jobs ->
              List.iter
                (fun dataguide ->
                  (* Each point runs over the in-memory collection and
                     over its persisted round-trip: plain, cache-on
                     cold, and cached repeat must all match the one
                     reference. *)
                  List.iter
                    (fun (label, coll) ->
                      Alcotest.(check string)
                        (Printf.sprintf "%s @ %s jobs=%d dataguide=%b%s"
                           case.query
                           (Config.strategy_to_string strategy)
                           jobs dataguide label)
                        reference
                        (run_case coll ~strategy ~jobs ~dataguide case);
                      let cold, warm =
                        run_case_cached coll ~strategy ~jobs ~dataguide case
                      in
                      Alcotest.(check string)
                        (Printf.sprintf
                           "%s @ %s jobs=%d dataguide=%b%s cache-on cold"
                           case.query
                           (Config.strategy_to_string strategy)
                           jobs dataguide label)
                        reference cold;
                      Alcotest.(check string)
                        (Printf.sprintf
                           "%s @ %s jobs=%d dataguide=%b%s cached repeat"
                           case.query
                           (Config.strategy_to_string strategy)
                           jobs dataguide label)
                        reference warm)
                    [ ("", coll); (" reloaded", reloaded) ])
                dataguide_sweep)
            jobs_sweep)
        Config.all_strategies)
    cases

let () =
  Alcotest.run "differential"
    [
      ( "cross-strategy",
        [
          Alcotest.test_case "deterministic corner cases" `Quick
            test_corner_cases;
          QCheck_alcotest.to_alcotest qcheck_strategies_identical;
          QCheck_alcotest.to_alcotest qcheck_trace_rows_agree;
        ] );
    ]
