(* Tests for the shard router: consistent-hash placement (determinism,
   balance, ~1/n movement on topology change), routed queries
   byte-identical to a single-process server across every strategy,
   framed-ingest splitting with per-document partial-failure reporting,
   bearer-token auth at the front, readiness tracking of shard health,
   and end-to-end streaming through the proxy.  Shards here are
   in-process [Server] instances attached as external specs — process
   supervision (spawn, kill -9, restart with backoff) is exercised by
   scripts/router_smoke.sh against real child processes. *)

module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Http = Standoff_server.Http
module Server = Standoff_server.Server
module Router = Standoff_router.Router
module Chash = Standoff_router.Chash

(* ---------------- tiny client (same shape as test_server) -------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let request ?headers reader fd ~meth ~target body =
  Http.write_request fd ~meth ~target ?headers body;
  Http.read_response reader

let oneshot ?headers port ~meth ~target body =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> close_noerr fd)
    (fun () -> request ?headers (Http.reader fd) fd ~meth ~target body)

let check_status msg expected (resp : Http.response) =
  Alcotest.(check int) msg expected resp.Http.status

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec scan i = i + n <= m && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* ---------------- fixtures ---------------- *)

let shard_doc_xml =
  "<t><p start=\"0\" end=\"10\"/><c start=\"2\" end=\"8\"/>\
   <w start=\"1\" end=\"3\"/><w start=\"4\" end=\"6\"/>\
   <w start=\"7\" end=\"9\"/></t>"

let frame name xml = Printf.sprintf "%s %d\n%s\n" name (String.length xml) xml
let words_query name = Printf.sprintf "doc(\"%s\")//p/select-narrow::w" name
let count_query name = Printf.sprintf "count(doc(\"%s\")//p/select-narrow::c)" name

(* An in-process shard: an ordinary [Server] over an empty collection,
   filled through /ingest like a real deployment would be. *)
let start_shard ?auth_token () =
  let engine =
    Engine.create ~jobs:1 ~cache:Engine.Cache_off (Collection.create ())
  in
  let config =
    {
      Server.default_config with
      port = 0;
      workers = 2;
      socket_timeout_s = 5.0;
      grace_s = 5.0;
      auth_token;
    }
  in
  let server = Server.create ~config engine in
  Server.start server;
  server

let spec_of name server =
  {
    Router.sp_name = name;
    sp_host = "127.0.0.1";
    sp_port = Server.port server;
    sp_spawn = None;
  }

let wait_router_ready ?(timeout_s = 10.0) r =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if Router.ready r then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* Two in-process shards behind a router, torn down in order. *)
let with_routed ?router_auth ?shard_token ?shard_auth f =
  let s0 = start_shard ?auth_token:shard_auth () in
  let s1 = start_shard ?auth_token:shard_auth () in
  let config =
    {
      Router.default_config with
      port = 0;
      auth_token = router_auth;
      shard_token;
    }
  in
  let router =
    Router.create ~config [ spec_of "sh0" s0; spec_of "sh1" s1 ]
  in
  Router.start router;
  Fun.protect
    ~finally:(fun () ->
      Router.stop ~grace_s:2.0 router;
      Server.stop s0;
      Server.stop s1)
    (fun () ->
      Alcotest.(check bool) "router ready" true (wait_router_ready router);
      f router)

(* ---------------- consistent hashing ---------------- *)

let keys n = List.init n (fun i -> Printf.sprintf "doc-%04d.xml" i)

let test_chash_determinism_and_balance () =
  let names = [ "s0"; "s1"; "s2"; "s3" ] in
  let a = Chash.create names and b = Chash.create names in
  let ks = keys 800 in
  List.iter
    (fun k ->
      Alcotest.(check string)
        ("placement of " ^ k ^ " deterministic")
        (Chash.shard a k) (Chash.shard b k))
    ks;
  let counts = Hashtbl.create 4 in
  List.iter
    (fun k ->
      let s = Chash.shard a k in
      Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    ks;
  List.iter
    (fun s ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      (* 160 vnodes keep the arcs smooth: no shard should stray far
         from the 200-key average on 800 keys. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s holds a fair share (%d)" s c)
        true
        (c > 80 && c < 400))
    names

let test_chash_stability () =
  let four = Chash.create [ "s0"; "s1"; "s2"; "s3" ] in
  let five = Chash.create [ "s0"; "s1"; "s2"; "s3"; "s4" ] in
  let ks = keys 2000 in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let before = Chash.shard four k and after = Chash.shard five k in
      if before <> after then begin
        incr moved;
        (* Growth only moves keys *onto* the new shard — a key that
           changes hands but lands on an old shard would mean the ring
           reshuffled. *)
        Alcotest.(check string) ("moved key lands on the new shard: " ^ k)
          "s4" after
      end)
    ks;
  let frac = float_of_int !moved /. 2000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "about 1/5 of keys move on growth (%.3f)" frac)
    true
    (frac > 0.08 && frac < 0.35);
  (* Removal is the mirror image: keys not on the removed shard stay
     exactly where they were. *)
  let three = Chash.create [ "s0"; "s1"; "s2" ] in
  List.iter
    (fun k ->
      let before = Chash.shard four k in
      if before <> "s3" then
        Alcotest.(check string)
          ("survivor keeps its shard: " ^ k)
          before (Chash.shard three k))
    ks

(* ---------------- routed vs single-process ---------------- *)

let test_routed_byte_identical () =
  (* The same corpus ingested through the router (split across two
     shards) and into one single-process server must answer every
     query byte-identically, whichever strategy runs it. *)
  let single = start_shard () in
  Fun.protect
    ~finally:(fun () -> Server.stop single)
    (fun () ->
      with_routed (fun router ->
          let rp = Router.port router and sp = Server.port single in
          let names = List.init 12 (fun i -> Printf.sprintf "doc-%c.xml" (Char.chr (Char.code 'a' + i))) in
          let batch =
            String.concat "" (List.map (fun n -> frame n shard_doc_xml) names)
          in
          let r = oneshot rp ~meth:"POST" ~target:"/ingest?convert=none" batch in
          check_status "routed ingest" 200 r;
          Alcotest.(check bool) "every document reported ok" false
            (contains "\"ok\": false" r.Http.r_body);
          check_status "single ingest" 200
            (oneshot sp ~meth:"POST" ~target:"/ingest?convert=none" batch);
          (* The split actually used both shards. *)
          let used =
            List.sort_uniq compare (List.map (Router.shard_of_doc router) names)
          in
          Alcotest.(check int) "both shards hold documents" 2 (List.length used);
          (* Every document, default strategy. *)
          List.iter
            (fun n ->
              let routed = oneshot rp ~meth:"POST" ~target:"/query" (words_query n) in
              let direct = oneshot sp ~meth:"POST" ~target:"/query" (words_query n) in
              check_status (n ^ " routed") 200 routed;
              Alcotest.(check string) (n ^ " byte-identical") direct.Http.r_body
                routed.Http.r_body;
              Alcotest.(check (option string))
                (n ^ " names its shard")
                (Some (Router.shard_of_doc router n))
                (Http.response_header routed "x-standoff-shard"))
            names;
          (* A few documents, every strategy. *)
          List.iter
            (fun n ->
              List.iter
                (fun strategy ->
                  let s = Config.strategy_to_string strategy in
                  let target = "/query?strategy=" ^ Http.url_encode s in
                  let routed = oneshot rp ~meth:"POST" ~target (words_query n) in
                  let direct = oneshot sp ~meth:"POST" ~target (words_query n) in
                  check_status (s ^ " " ^ n) 200 routed;
                  Alcotest.(check string)
                    (s ^ " " ^ n ^ " byte-identical")
                    direct.Http.r_body routed.Http.r_body)
                Config.all_strategies)
            [ "doc-a.xml"; "doc-b.xml"; "doc-c.xml" ];
          (* Streaming end-to-end: the proxy re-chunks the shard's
             chunked reply without changing a byte. *)
          let buffered = oneshot rp ~meth:"POST" ~target:"/query" (words_query "doc-a.xml") in
          let streamed =
            oneshot rp ~meth:"POST" ~target:"/query?stream=1" (words_query "doc-a.xml")
          in
          check_status "streamed routed" 200 streamed;
          Alcotest.(check (option string))
            "chunked through the router" (Some "chunked")
            (Http.response_header streamed "transfer-encoding");
          Alcotest.(check string) "streamed byte-identical" buffered.Http.r_body
            streamed.Http.r_body;
          (* Updates route by ?doc= and are visible to later queries. *)
          let n = "doc-a.xml" in
          check_status "routed update" 200
            (oneshot rp ~meth:"POST"
               ~target:(Printf.sprintf "/update?doc=%s&pre=2&start=50&end=60" n)
               "");
          let q = oneshot rp ~meth:"POST" ~target:"/query" (count_query n) in
          Alcotest.(check string) "update visible through the router" "0\n"
            q.Http.r_body;
          (* Aggregated metrics carry the shard label and up-gauges. *)
          let m = oneshot rp ~meth:"GET" ~target:"/metrics" "" in
          check_status "metrics" 200 m;
          Alcotest.(check bool) "shard label injected" true
            (contains "shard=\"sh0\"" m.Http.r_body);
          Alcotest.(check bool) "up gauge synthesized" true
            (contains "standoff_router_shard_up" m.Http.r_body)))

let test_routing_rules () =
  with_routed (fun router ->
      let p = Router.port router in
      check_status "ingest seed" 200
        (oneshot p ~meth:"POST" ~target:"/ingest?convert=none"
           (frame "a.xml" shard_doc_xml ^ frame "b.xml" shard_doc_xml));
      (* ?context= pins placement without a doc() reference. *)
      let r =
        oneshot p ~meth:"POST" ~target:"/query?context=a.xml"
          "count(//p/select-narrow::c)"
      in
      check_status "context-routed" 200 r;
      Alcotest.(check string) "context answer" "1\n" r.Http.r_body;
      (* A reference-free query cannot be placed on two shards. *)
      check_status "unroutable query" 400
        (oneshot p ~meth:"POST" ~target:"/query" "1 + 1");
      (* Two documents on different shards in one query: refused. *)
      let a = Router.shard_of_doc router "a.xml" in
      let rec other i =
        let n = Printf.sprintf "x%d.xml" i in
        if Router.shard_of_doc router n <> a then n else other (i + 1)
      in
      let b = other 0 in
      check_status "cross-shard query refused" 400
        (oneshot p ~meth:"POST" ~target:"/query"
           (Printf.sprintf "count(doc(\"a.xml\")//p) + count(doc(%S)//p)" b));
      (* Plumbing: 404 off the map, 405 with Allow on a wrong method. *)
      check_status "unknown path" 404 (oneshot p ~meth:"GET" ~target:"/nope" "");
      let m = oneshot p ~meth:"DELETE" ~target:"/query" "" in
      check_status "wrong method" 405 m;
      Alcotest.(check (option string))
        "Allow header" (Some "POST")
        (Http.response_header m "allow");
      (* Update without ?doc= has nowhere to go. *)
      check_status "update without doc" 400
        (oneshot p ~meth:"POST" ~target:"/update?pre=2&start=0&end=1" ""))

(* ---------------- ingest splitting and partial failure ----------- *)

let test_ingest_partial_failure () =
  with_routed (fun router ->
      let p = Router.port router in
      (* Two documents on different shards, one of them invalid: its
         shard's sub-batch fails, the other lands — and the per-doc
         report says exactly that. *)
      let good = "good.xml" in
      let gshard = Router.shard_of_doc router good in
      let rec find_other i =
        let n = Printf.sprintf "bad%d.xml" i in
        if Router.shard_of_doc router n <> gshard then n else find_other (i + 1)
      in
      let bad = find_other 0 in
      let invalid = "<t><p start=\"0\"/></t>" in
      let r =
        oneshot p ~meth:"POST" ~target:"/ingest?convert=none"
          (frame good shard_doc_xml ^ frame bad invalid)
      in
      check_status "mixed batch answers 502" 502 r;
      Alcotest.(check bool) "failing document reported" true
        (contains
           (Printf.sprintf "{\"name\": \"%s\", \"shard\": \"%s\", \"ok\": false"
              bad
              (Router.shard_of_doc router bad))
           r.Http.r_body);
      Alcotest.(check bool) "landed document reported" true
        (contains
           (Printf.sprintf "{\"name\": \"%s\", \"shard\": \"%s\", \"ok\": true"
              good gshard)
           r.Http.r_body);
      (* The good document really is queryable afterwards. *)
      let q = oneshot p ~meth:"POST" ~target:"/query" (count_query good) in
      check_status "landed document queryable" 200 q;
      Alcotest.(check string) "answer" "1\n" q.Http.r_body;
      (* ?name= routes the raw body whole. *)
      check_status "named single-document ingest" 200
        (oneshot p ~meth:"POST" ~target:"/ingest?name=whole.xml&convert=none"
           shard_doc_xml);
      Alcotest.(check string) "whole document queryable" "1\n"
        (oneshot p ~meth:"POST" ~target:"/query" (count_query "whole.xml"))
          .Http.r_body;
      (* Broadcast: every shard snapshots (in-memory shards have no
         durability, but the fan-out and aggregation still answer). *)
      let s = oneshot p ~meth:"POST" ~target:"/admin/snapshot" "" in
      Alcotest.(check bool) "snapshot names both shards" true
        (contains "\"sh0\"" s.Http.r_body && contains "\"sh1\"" s.Http.r_body))

(* ---------------- auth ---------------- *)

let test_auth () =
  (* Interior and exterior both token-protected: the client presents
     the router's token, the router presents the shard token. *)
  with_routed ~router_auth:"outer" ~shard_token:"inner" ~shard_auth:"inner"
    (fun router ->
      let p = Router.port router in
      let r = oneshot p ~meth:"POST" ~target:"/query" "1" in
      check_status "no token" 401 r;
      Alcotest.(check bool) "challenge present" true
        (Http.response_header r "www-authenticate" <> None);
      check_status "wrong token" 401
        (oneshot p
           ~headers:[ ("Authorization", "Bearer outerr") ]
           ~meth:"POST" ~target:"/query" "1");
      check_status "liveness stays open" 200
        (oneshot p ~meth:"GET" ~target:"/healthz" "");
      check_status "admin surface gated" 401
        (oneshot p ~meth:"POST" ~target:"/admin/snapshot" "");
      let auth = [ ("Authorization", "Bearer outer") ] in
      check_status "authorized ingest crosses both hops" 200
        (oneshot p ~headers:auth ~meth:"POST"
           ~target:"/ingest?name=auth.xml&convert=none" shard_doc_xml);
      let q =
        oneshot p ~headers:auth ~meth:"POST" ~target:"/query"
          (count_query "auth.xml")
      in
      check_status "authorized query" 200 q;
      Alcotest.(check string) "answer" "1\n" q.Http.r_body)

(* ---------------- readiness ---------------- *)

let test_readiness_tracks_shards () =
  (* One healthy shard, one address nobody listens on: the router is
     alive but not ready, requests routed to the dead shard answer 503
     with Retry-After — and readiness arrives when a server appears on
     that address. *)
  let s0 = start_shard () in
  let dead_port =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_noerr fd)
      (fun () ->
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false)
  in
  let specs =
    [
      spec_of "sh0" s0;
      { Router.sp_name = "sh1"; sp_host = "127.0.0.1"; sp_port = dead_port;
        sp_spawn = None };
    ]
  in
  let router =
    Router.create ~config:{ Router.default_config with port = 0 } specs
  in
  Router.start router;
  let late = ref None in
  Fun.protect
    ~finally:(fun () ->
      Router.stop ~grace_s:2.0 router;
      Server.stop s0;
      Option.iter Server.stop !late)
    (fun () ->
      let p = Router.port router in
      Thread.delay 0.6 (* a couple of probe rounds *);
      Alcotest.(check bool) "not ready with a dead shard" false
        (Router.ready router);
      check_status "alive regardless" 200
        (oneshot p ~meth:"GET" ~target:"/healthz" "");
      let r = oneshot p ~meth:"GET" ~target:"/healthz?ready=1" "" in
      check_status "readiness says 503" 503 r;
      Alcotest.(check bool) "laggard named" true (contains "sh1" r.Http.r_body);
      (* A request owned by the dead shard parks with Retry-After; the
         healthy shard keeps serving. *)
      let rec owned_by shard i =
        let n = Printf.sprintf "r%d.xml" i in
        if Router.shard_of_doc router n = shard then n else owned_by shard (i + 1)
      in
      let on_dead = owned_by "sh1" 0 and on_live = owned_by "sh0" 0 in
      let r =
        oneshot p ~meth:"POST" ~target:"/query" (count_query on_dead)
      in
      check_status "dead shard's documents answer 503" 503 r;
      Alcotest.(check bool) "retry-after present" true
        (Http.response_header r "retry-after" <> None);
      check_status "healthy shard still serves" 200
        (oneshot p ~meth:"POST"
           ~target:(Printf.sprintf "/ingest?name=%s&convert=none" on_live)
           shard_doc_xml);
      (* The shard comes up on the dead address: readiness follows. *)
      let s1 =
        let engine =
          Engine.create ~jobs:1 ~cache:Engine.Cache_off (Collection.create ())
        in
        let config =
          { Server.default_config with port = dead_port; workers = 2 }
        in
        let server = Server.create ~config engine in
        Server.start server;
        server
      in
      late := Some s1;
      Alcotest.(check bool) "ready once the shard appears" true
        (wait_router_ready router);
      check_status "recovered shard serves its documents" 200
        (oneshot p ~meth:"POST"
           ~target:(Printf.sprintf "/ingest?name=%s&convert=none" on_dead)
           shard_doc_xml))

let () =
  Alcotest.run "router"
    [
      ( "chash",
        [
          Alcotest.test_case "determinism and balance" `Quick
            test_chash_determinism_and_balance;
          Alcotest.test_case "~1/n movement on growth and removal" `Quick
            test_chash_stability;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "routed bodies byte-identical to one process"
            `Quick test_routed_byte_identical;
          Alcotest.test_case "routing rules (context, refs, 400s)" `Quick
            test_routing_rules;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "split batches, partial failure per document"
            `Quick test_ingest_partial_failure;
        ] );
      ( "auth", [ Alcotest.test_case "bearer on both hops" `Quick test_auth ] );
      ( "readiness",
        [
          Alcotest.test_case "readiness tracks shard health" `Quick
            test_readiness_tracks_shards;
        ] );
    ]
