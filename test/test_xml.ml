(* XML parser/serializer tests: conformance on hand-picked documents,
   error reporting, and a qcheck roundtrip over generated trees. *)

module Dom = Standoff_xml.Dom
module Parser = Standoff_xml.Parser
module Serializer = Standoff_xml.Serializer

let parse = Parser.parse_string

let test_minimal () =
  let d = parse "<a/>" in
  Alcotest.(check string) "tag" "a" d.Dom.root.Dom.tag;
  Alcotest.(check int) "no children" 0 (List.length d.Dom.root.Dom.children)

let test_attributes () =
  let d = parse {|<shot id="Intro" start="0" end="8"/>|} in
  Alcotest.(check (option string)) "id" (Some "Intro") (Dom.attr d.Dom.root "id");
  Alcotest.(check (option string)) "start" (Some "0") (Dom.attr d.Dom.root "start");
  Alcotest.(check (option string)) "missing" None (Dom.attr d.Dom.root "nope")

let test_single_quotes () =
  let d = parse "<a x='1 \"2\"'/>" in
  Alcotest.(check (option string)) "value" (Some "1 \"2\"") (Dom.attr d.Dom.root "x")

let test_text_and_nesting () =
  let d = parse "<a>hello <b>world</b>!</a>" in
  match d.Dom.root.Dom.children with
  | [ Dom.Text "hello "; Dom.Element b; Dom.Text "!" ] ->
      Alcotest.(check string) "inner tag" "b" b.Dom.tag;
      Alcotest.(check string) "inner text" "world" (Dom.text_content (Dom.Element b))
  | _ -> Alcotest.fail "unexpected shape"

let test_entities () =
  let d = parse "<a>&lt;&amp;&gt;&apos;&quot;</a>" in
  Alcotest.(check string) "decoded" "<&>'\"" (Dom.text_content (Dom.Element d.Dom.root))

let test_char_refs () =
  let d = parse "<a>&#65;&#x42;&#x263A;</a>" in
  Alcotest.(check string) "decoded" "AB\xE2\x98\xBA"
    (Dom.text_content (Dom.Element d.Dom.root))

let test_cdata () =
  let d = parse "<a><![CDATA[<not><markup> & such]]></a>" in
  Alcotest.(check string) "raw" "<not><markup> & such"
    (Dom.text_content (Dom.Element d.Dom.root))

let test_comments_pis () =
  let d = parse "<!-- hi --><?style x=1?><a><!--in--><?p d?></a><!--bye-->" in
  Alcotest.(check int) "prolog" 2 (List.length d.Dom.prolog);
  Alcotest.(check int) "epilog" 1 (List.length d.Dom.epilog);
  match d.Dom.root.Dom.children with
  | [ Dom.Comment "in"; Dom.Pi ("p", "d") ] -> ()
  | _ -> Alcotest.fail "unexpected children"

let test_xml_declaration_and_doctype () =
  let d =
    parse
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
       <!DOCTYPE sample [ <!ELEMENT sample ANY> ]>\n\
       <sample/>"
  in
  Alcotest.(check string) "root" "sample" d.Dom.root.Dom.tag

let check_error input =
  match parse input with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "accepted malformed input %S" input)

let test_errors () =
  List.iter check_error
    [
      "";
      "<a>";
      "<a></b>";
      "<a";
      "<a x=1/>";
      "<a x=\"1\" x=\"2\"/>";
      "<a>&unknown;</a>";
      "<a>&#xD800;</a>";
      "<a/><b/>";
      "<a><!-- -- --></a>";
      "<1tag/>";
      "<a>]]></a>";
      "<a x=\"<\"/>";
    ]

let test_error_position () =
  match parse "<a>\n  <b>\n</a>" with
  | exception Parser.Parse_error { line; _ } ->
      Alcotest.(check int) "line of mismatch" 3 line
  | _ -> Alcotest.fail "accepted mismatched tags"

let test_mixed_content_roundtrip () =
  let src = "<p>one <em>two</em> three<br/>four</p>" in
  let d = parse src in
  Alcotest.(check string) "exact" src
    (Serializer.node_to_string (Dom.Element d.Dom.root))

let test_escaping_roundtrip () =
  let d = Dom.document (Dom.element "a" ~attrs:[ ("k", "a\"b<c&d\ne") ] [ Dom.text "x < y & z" ]) in
  let s = Serializer.to_string d in
  let d' = parse s in
  Alcotest.(check bool) "roundtrip equal" true (Dom.equal d d')

let test_strip_whitespace () =
  let d = parse "<a>\n  <b> x </b>\n  <c/>\n</a>" in
  let s = Dom.strip_whitespace d in
  Alcotest.(check int) "children" 2 (List.length s.Dom.root.Dom.children);
  (* Text with non-whitespace survives untouched. *)
  Alcotest.(check string) "inner" " x " (Dom.text_content (Dom.Element s.Dom.root))

let test_count_nodes () =
  let d = parse "<a>t<b><c/></b><!--x--></a>" in
  Alcotest.(check int) "count" 5 (Dom.count_nodes (Dom.Element d.Dom.root))

let test_parse_fragment () =
  match Parser.parse_fragment "<a/>text<b/>" with
  | [ Dom.Element _; Dom.Text "text"; Dom.Element _ ] -> ()
  | _ -> Alcotest.fail "unexpected fragment shape"

let test_valid_name () =
  Alcotest.(check bool) "simple" true (Dom.valid_name "foo");
  Alcotest.(check bool) "qualified" true (Dom.valid_name "xs:integer");
  Alcotest.(check bool) "dashes" true (Dom.valid_name "select-narrow");
  Alcotest.(check bool) "leading digit" false (Dom.valid_name "1x");
  Alcotest.(check bool) "space" false (Dom.valid_name "a b");
  Alcotest.(check bool) "empty" false (Dom.valid_name "")

(* --------------------------------------------------------------- *)
(* Random document roundtrip                                        *)

let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "data"; "x-y" ] in
  let text_chunk = oneofl [ "hello"; "a<b"; "x & y"; "\"quoted\""; "  "; "]]" ] in
  let rec node depth =
    if depth = 0 then map (fun t -> Dom.Text t) text_chunk
    else
      frequency
        [
          (3, map (fun t -> Dom.Text t) text_chunk);
          (1, map (fun c -> Dom.Comment c) (oneofl [ "c"; "note"; "x y" ]));
          ( 3,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              tag
              (map
                 (fun vals ->
                   (* Distinct attribute names. *)
                   List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vals)
                 (list_size (0 -- 3) text_chunk))
              (list_size (0 -- 3) (node (depth - 1))) );
        ]
  in
  map3
    (fun tag attrs children -> Dom.document (Dom.element ~attrs tag children))
    tag
    (map (fun v -> [ ("id", v) ]) text_chunk)
    (list_size (0 -- 4) (node 3))

let arbitrary_doc = QCheck.make ~print:(fun d -> Serializer.to_string d) gen_doc

(* Adjacent text nodes merge during parsing, so compare text-normalised
   trees. *)
let rec normalise_node n =
  match n with
  | Dom.Element e ->
      let children =
        List.fold_right
          (fun c acc ->
            match (normalise_node c, acc) with
            | Dom.Text a, Dom.Text b :: rest -> Dom.Text (a ^ b) :: rest
            | c, acc -> c :: acc)
          e.Dom.children []
        |> List.filter (function Dom.Text "" -> false | _ -> true)
      in
      Dom.Element { e with children }
  | n -> n

let normalise d =
  match normalise_node (Dom.Element d.Dom.root) with
  | Dom.Element root -> { d with Dom.root = root }
  | _ -> assert false

(* The parser must never crash on arbitrary bytes — anything malformed
   raises Parse_error, nothing else. *)
let qcheck_parser_total =
  QCheck.Test.make ~name:"parser is total (Parse_error or a document)"
    ~count:2000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      match Parser.parse_string s with
      | _ -> true
      | exception Parser.Parse_error _ -> true)

(* Mutating a valid document's bytes must also stay within
   Parse_error. *)
let qcheck_parser_total_mutated =
  QCheck.Test.make ~name:"parser survives mutations of valid documents"
    ~count:1000
    QCheck.(pair (int_bound 200) (int_bound 255))
    (fun (pos, byte) ->
      let base =
        "<a x=\"1\"><b>text &amp; more</b><!--c--><?p d?><c/><![CDATA[x]]></a>"
      in
      let b = Bytes.of_string base in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match Parser.parse_string (Bytes.to_string b) with
      | _ -> true
      | exception Parser.Parse_error _ -> true)

let test_indented_output () =
  let d = parse "<a><b><c/></b><d>mixed <e/> text</d></a>" in
  let s = Serializer.to_string ~indent:2 d in
  (* Element-only content breaks over lines; mixed content stays
     verbatim. *)
  Alcotest.(check bool) "has newlines" true (String.contains s '\n');
  Alcotest.(check bool) "mixed content intact" true
    (let sub = "mixed <e/> text" in
     let n = String.length sub in
     let rec scan i =
       i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
     in
     scan 0);
  (* Indented output reparses to the same tree modulo whitespace-only
     text nodes. *)
  let d' = Dom.strip_whitespace (parse s) in
  Alcotest.(check bool) "reparses equal" true
    (Dom.equal (Dom.strip_whitespace d) d')

let qcheck_roundtrip =
  QCheck.Test.make ~name:"parse (serialize d) = d (text-normalised)"
    ~count:300 arbitrary_doc (fun d ->
      let s = Serializer.to_string d in
      Dom.equal (normalise d) (normalise (Parser.parse_string s)))

let qcheck_roundtrip_stable =
  QCheck.Test.make ~name:"serialize is stable after one roundtrip"
    ~count:300 arbitrary_doc (fun d ->
      let s = Serializer.to_string d in
      let s' = Serializer.to_string (Parser.parse_string s) in
      String.equal s s')

(* A generator that deliberately includes DOM values with no faithful
   XML spelling: empty text nodes, comments containing "--" or ending
   in "-", PI data with leading whitespace or "?>".  The serializer
   must canonicalise these rather than emit unparseable or unstable
   bytes: serialize must be total, its output must parse, and
   serialize ∘ parse ∘ serialize = serialize (byte-keyed result
   caching depends on exactly this idempotence). *)
let gen_hostile_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let text_chunk =
    oneofl [ ""; "hello"; "a<b"; "x & y"; "]]>"; "\ttab"; "\r\n" ]
  in
  let comment = oneofl [ "c"; "--"; "a--b"; "x-"; "-"; "a---b"; "" ] in
  let pi_data = oneofl [ ""; "d"; "  lead"; "\tlead"; "x?>y"; "?>"; "d " ] in
  let rec node depth =
    if depth = 0 then map (fun t -> Dom.Text t) text_chunk
    else
      frequency
        [
          (3, map (fun t -> Dom.Text t) text_chunk);
          (2, map (fun c -> Dom.Comment c) comment);
          (2, map (fun d -> Dom.Pi ("pi", d)) pi_data);
          ( 3,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              tag
              (map
                 (fun vals ->
                   List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vals)
                 (list_size (0 -- 2)
                    (oneofl [ "v"; "a\nb"; "a\rb"; "a\tb"; "\"q\"" ])))
              (list_size (0 -- 3) (node (depth - 1))) );
        ]
  in
  map2
    (fun tag children -> Dom.document (Dom.element tag children))
    tag
    (list_size (0 -- 4) (node 3))

let arbitrary_hostile_doc =
  QCheck.make ~print:(fun d -> Serializer.to_string d) gen_hostile_doc

let qcheck_hostile_parses =
  QCheck.Test.make
    ~name:"serialization of unrepresentable DOMs still parses" ~count:500
    arbitrary_hostile_doc (fun d ->
      match Parser.parse_string (Serializer.to_string d) with
      | _ -> true
      | exception Parser.Parse_error _ -> false)

let qcheck_hostile_idempotent =
  QCheck.Test.make
    ~name:"serialize . parse . serialize = serialize (canonical bytes)"
    ~count:500 arbitrary_hostile_doc (fun d ->
      let s = Serializer.to_string d in
      let s' = Serializer.to_string (Parser.parse_string s) in
      String.equal s s')

(* The concrete shapes the hardening is for, pinned as unit tests. *)

let test_attr_control_chars_roundtrip () =
  (* Literal newline/CR/tab in attribute values must survive our own
     parse ∘ serialize exactly (XML parsers normalise raw whitespace in
     attributes, so they must leave as character references). *)
  let d =
    Dom.document (Dom.element "a" ~attrs:[ ("k", "x\ny\rz\tw") ] [])
  in
  let d' = parse (Serializer.to_string d) in
  Alcotest.(check (option string))
    "attr value" (Some "x\ny\rz\tw") (Dom.attr d'.Dom.root "k")

let test_cdata_end_in_text_roundtrip () =
  let d = Dom.document (Dom.element "a" [ Dom.text "a]]>b" ]) in
  let d' = parse (Serializer.to_string d) in
  Alcotest.(check string)
    "text" "a]]>b"
    (Dom.text_content (Dom.Element d'.Dom.root))

let test_empty_text_canonical () =
  (* <t></t> with only empty text reparses as <t/>; the serializer must
     pick the self-closing form up front so bytes are stable. *)
  let d = Dom.document (Dom.element "t" [ Dom.text "" ]) in
  let s = Serializer.to_string d in
  Alcotest.(check string) "self-closing" "<t/>" s;
  Alcotest.(check string) "stable" s
    (Serializer.to_string (parse s))

let test_comment_dashes_canonical () =
  List.iter
    (fun c ->
      let d = Dom.document (Dom.element "r" [ Dom.Comment c ]) in
      let s = Serializer.to_string d in
      let d' = parse s in
      Alcotest.(check string)
        (Printf.sprintf "comment %S stable" c)
        s
        (Serializer.to_string d'))
    [ "--"; "a--b"; "x-"; "-"; "a---b" ]

let test_pi_data_canonical () =
  List.iter
    (fun data ->
      let d = Dom.document (Dom.element "r" [ Dom.Pi ("pi", data) ]) in
      let s = Serializer.to_string d in
      let d' = parse s in
      Alcotest.(check string)
        (Printf.sprintf "pi data %S stable" data)
        s
        (Serializer.to_string d'))
    [ "  lead"; "\tlead"; "x?>y"; "?>"; "" ]

let () =
  Alcotest.run "xml"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_minimal;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "single quotes" `Quick test_single_quotes;
          Alcotest.test_case "text and nesting" `Quick test_text_and_nesting;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "char refs" `Quick test_char_refs;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_comments_pis;
          Alcotest.test_case "declaration and doctype" `Quick
            test_xml_declaration_and_doctype;
          Alcotest.test_case "malformed inputs" `Quick test_errors;
          Alcotest.test_case "error position" `Quick test_error_position;
          Alcotest.test_case "fragment" `Quick test_parse_fragment;
          QCheck_alcotest.to_alcotest qcheck_parser_total;
          QCheck_alcotest.to_alcotest qcheck_parser_total_mutated;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "mixed content roundtrip" `Quick
            test_mixed_content_roundtrip;
          Alcotest.test_case "escaping roundtrip" `Quick test_escaping_roundtrip;
          Alcotest.test_case "indented output" `Quick test_indented_output;
          Alcotest.test_case "attr control chars roundtrip" `Quick
            test_attr_control_chars_roundtrip;
          Alcotest.test_case "]]> in text roundtrip" `Quick
            test_cdata_end_in_text_roundtrip;
          Alcotest.test_case "empty text canonical form" `Quick
            test_empty_text_canonical;
          Alcotest.test_case "comment dashes canonical" `Quick
            test_comment_dashes_canonical;
          Alcotest.test_case "pi data canonical" `Quick test_pi_data_canonical;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_roundtrip_stable;
          QCheck_alcotest.to_alcotest qcheck_hostile_parses;
          QCheck_alcotest.to_alcotest qcheck_hostile_idempotent;
        ] );
      ( "dom",
        [
          Alcotest.test_case "strip whitespace" `Quick test_strip_whitespace;
          Alcotest.test_case "count nodes" `Quick test_count_nodes;
          Alcotest.test_case "valid_name" `Quick test_valid_name;
        ] );
    ]
