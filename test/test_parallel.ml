(* Parallel execution must be invisible in results: for every query,
   every jobs count produces byte-identical serialized output to the
   sequential (jobs=1) run.  The suite sweeps jobs over {1, 2, 3, 8}
   for the XMark queries, all four StandOff operators, the paper's
   §3.1 example document, empty-context reject iterations, and
   multi-document collections; checks that figure-6-style deadlines
   still fire with jobs>1; and hammers the equivalence with random
   annotation documents. *)

module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Setup = Standoff_xmark.Setup
module Queries = Standoff_xmark.Queries
module Timing = Standoff_util.Timing
module Pool = Standoff_util.Pool

let jobs_sweep = [ 2; 3; 4; 8 ]

(* CI containers may expose a single core, which would size the domain
   budget to 1 and quietly turn every "parallel" run sequential.  Force
   a budget of 8 so the sweeps exercise real worker domains and
   work stealing regardless of the machine. *)
let () = Pool.set_domain_budget 8

(* The §3.1 video/audio example (Figure 1). *)
let figure1_doc =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

(* Run [q] against [coll] once per jobs count and insist every result
   serializes identically to the sequential one.  Every engine is shut
   down before the next is created: domains are a bounded resource. *)
let check_jobs_equal ?strategy ?context_doc what coll q =
  let run jobs =
    let e = Engine.create ?strategy ~jobs coll in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown e)
      (fun () ->
        (Engine.run e ?context_doc ~rollback_constructed:true q)
          .Engine.serialized)
  in
  let sequential = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s: jobs=%d = jobs=1" what jobs)
        sequential (run jobs))
    jobs_sweep;
  sequential

(* ------------------------------------------------------------------ *)
(* §3.1 example document, all four operators                           *)

let figure1_coll () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"figure1.xml" figure1_doc);
  coll

let test_figure1_operators () =
  let coll = figure1_coll () in
  List.iter
    (fun op ->
      let q =
        Printf.sprintf
          "for $m in doc(\"figure1.xml\")//music return <r>{count($m/%s::shot)}</r>"
          op
      in
      ignore (check_jobs_equal ("figure1 " ^ op) coll q))
    [ "select-narrow"; "select-wide"; "reject-narrow"; "reject-wide" ]

let test_figure1_strategies () =
  (* A pinned strategy must give the same answer at any jobs count —
     in particular Loop_lifted, the only strategy with a parallel
     sweep. *)
  let coll = figure1_coll () in
  List.iter
    (fun strategy ->
      let q =
        "for $s in doc(\"figure1.xml\")//shot \
         return <r>{count($s/select-wide::music)}</r>"
      in
      ignore
        (check_jobs_equal ~strategy
           ("figure1 " ^ Config.strategy_to_string strategy)
           coll q))
    Config.all_strategies

let test_empty_context_rejects () =
  (* Iterations whose context is empty matter to the reject operators:
     they reject nothing, so every candidate comes back.  The [if]
     gives half the iterations an empty context. *)
  let coll = figure1_coll () in
  List.iter
    (fun op ->
      let q =
        Printf.sprintf
          "for $i in (1, 2, 3, 4) return <r>{count((if ($i mod 2 = 0) \
           then doc(\"figure1.xml\")//music else ())/%s::shot)}</r>"
          op
      in
      ignore (check_jobs_equal ("empty-context " ^ op) coll q))
    [ "reject-narrow"; "reject-wide" ]

(* ------------------------------------------------------------------ *)
(* Multi-document collections                                          *)

let test_multi_document () =
  let coll = Collection.create () in
  for d = 1 to 6 do
    let parts =
      List.init (3 * d) (fun i ->
          Printf.sprintf "<a start=\"%d\" end=\"%d\"/><b start=\"%d\" end=\"%d\"/>"
            (i * 5) ((i * 5) + 8) ((i * 5) + 2) ((i * 5) + 4))
    in
    ignore
      (Collection.load_string coll
         ~name:(Printf.sprintf "d%d.xml" d)
         ("<t>" ^ String.concat "" parts ^ "</t>"))
  done;
  (* A context sequence drawn from every document at once makes the
     per-document shards of the StandOff step really fan out. *)
  let union =
    String.concat ", "
      (List.init 6 (fun d -> Printf.sprintf "doc(\"d%d.xml\")//a" (d + 1)))
  in
  let q =
    Printf.sprintf "for $x in (%s) return <g>{count($x/select-wide::b)}</g>"
      union
  in
  ignore (check_jobs_equal "multi-doc sharding" coll q)

(* ------------------------------------------------------------------ *)
(* XMark Q1/Q2/Q6/Q7, StandOff form                                    *)

let test_xmark_queries () =
  let setup = Setup.build ~with_standard:false ~scale:0.003 () in
  Engine.shutdown setup.Setup.engine;
  List.iter
    (fun q ->
      let text = q.Queries.standoff setup.Setup.standoff_doc in
      ignore
        (check_jobs_equal ("xmark " ^ q.Queries.id) setup.Setup.coll text))
    Queries.all

let test_xmark_sharded_run () =
  (* The engine-level fan-out merges per-document results in
     collection order; on a single-document collection it must agree
     with the plain run, at every jobs count. *)
  let setup = Setup.build ~with_standard:false ~scale:0.003 () in
  Engine.shutdown setup.Setup.engine;
  let q = Queries.q1 in
  let text = q.Queries.standoff setup.Setup.standoff_doc in
  let run jobs =
    let e = Engine.create ~jobs setup.Setup.coll in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown e)
      (fun () ->
        let prepared = Engine.prepare e text in
        (Engine.run_prepared_sharded e ~rollback_constructed:true prepared)
          .Engine.serialized)
  in
  let sequential = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "sharded Q1: jobs=%d = jobs=1" jobs)
        sequential (run jobs))
    jobs_sweep

let test_nested_cap_inheritance () =
  (* Sharded fan-out over a multi-document collection nests batches:
     the outer per-document batch caps at the engine's jobs, and each
     shard's evaluation submits its own chunked sweeps, which must
     inherit that cap rather than multiply it (8 docs x jobs 8 would
     ask for 64 domains).  The observable contract is byte-identical
     output at every cap. *)
  let coll = Collection.create () in
  for d = 1 to 8 do
    let parts =
      List.init 40 (fun i ->
          Printf.sprintf
            "<a start=\"%d\" end=\"%d\"/><b start=\"%d\" end=\"%d\"/>"
            (i * 7) ((i * 7) + 10) ((i * 7) + 3) ((i * 7) + 5))
    in
    ignore
      (Collection.load_string coll
         ~name:(Printf.sprintf "n%d.xml" d)
         ("<t>" ^ String.concat "" parts ^ "</t>"))
  done;
  let q = "for $x in //a return <g>{count($x/select-wide::b)}</g>" in
  let run jobs =
    let e = Engine.create ~strategy:Config.Loop_lifted ~jobs coll in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown e)
      (fun () ->
        let prepared = Engine.prepare e q in
        (Engine.run_prepared_sharded e ~rollback_constructed:true prepared)
          .Engine.serialized)
  in
  let sequential = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "nested sharded: jobs=%d = jobs=1" jobs)
        sequential (run jobs))
    [ 2; 4; 8 ];
  Alcotest.(check bool) "workers stayed within the budget" true
    (Pool.worker_count () <= Pool.domain_budget () - 1)

let test_adaptive_jobs_identical () =
  (* jobs=0 (adaptive) must be invisible in results too: whatever
     parallelism the cost estimate picks, output equals sequential. *)
  let setup = Setup.build ~with_standard:false ~scale:0.003 () in
  Engine.shutdown setup.Setup.engine;
  let run jobs text =
    let e = Engine.create ~jobs setup.Setup.coll in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown e)
      (fun () ->
        (Engine.run e ~rollback_constructed:true text).Engine.serialized)
  in
  List.iter
    (fun q ->
      let text = q.Queries.standoff setup.Setup.standoff_doc in
      Alcotest.(check string)
        (Printf.sprintf "adaptive %s = jobs=1" q.Queries.id)
        (run 1 text) (run 0 text))
    Queries.all

(* ------------------------------------------------------------------ *)
(* Deadlines fire inside parallel chunks                               *)

let test_deadline_fires () =
  (* Figure-6 protocol at an unpayable budget: the run must report
     Timed_out, not hang, with parallel workers active. *)
  let setup = Setup.build ~with_standard:false ~scale:0.01 () in
  Engine.shutdown setup.Setup.engine;
  let e = Engine.create ~jobs:4 setup.Setup.coll in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      let q = Queries.q2 in
      let text = q.Queries.standoff setup.Setup.standoff_doc in
      (* Per-iteration Basic_merge rescans the index every iteration —
         the strategy Figure 6 shows DNFing — so even a small scale
         cannot finish in a microsecond. *)
      match
        Engine.run_with_timeout e ~strategy:Config.Basic_merge
          ~seconds:1e-6 text
      with
      | Timing.Timed_out _ -> ()
      | Timing.Finished _ ->
          Alcotest.fail "expected a timeout with jobs=4, query finished")

(* ------------------------------------------------------------------ *)
(* Randomized equivalence                                              *)

let qcheck_parallel_equals_sequential =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 12) (pair (int_bound 60) (int_bound 25)))
        (list_size (1 -- 12) (pair (int_bound 60) (int_bound 25))))
  in
  let print (xs, ys) =
    let f = List.map (fun (s, w) -> Printf.sprintf "[%d,%d]" s (s + w)) in
    Printf.sprintf "a=%s b=%s" (String.concat ";" (f xs))
      (String.concat ";" (f ys))
  in
  QCheck.Test.make
    ~name:"parallel results equal sequential on random documents" ~count:60
    (QCheck.make ~print gen)
    (fun (a_regions, b_regions) ->
      let el name (s, w) =
        Printf.sprintf "<%s start=\"%d\" end=\"%d\"/>" name s (s + w)
      in
      let doc =
        "<t>"
        ^ String.concat "" (List.map (el "a") a_regions)
        ^ String.concat "" (List.map (el "b") b_regions)
        ^ "</t>"
      in
      let coll = Collection.create () in
      ignore (Collection.load_string coll ~name:"r.xml" doc);
      let run jobs q =
        let e = Engine.create ~strategy:Config.Loop_lifted ~jobs coll in
        Fun.protect
          ~finally:(fun () -> Engine.shutdown e)
          (fun () ->
            (Engine.run e ~rollback_constructed:true q).Engine.serialized)
      in
      List.for_all
        (fun op ->
          let q =
            Printf.sprintf
              "for $x in doc(\"r.xml\")//a return <g>{count($x/%s::b)}</g>"
              op
          in
          let sequential = run 1 q in
          List.for_all (fun jobs -> run jobs q = sequential) jobs_sweep)
        [ "select-narrow"; "select-wide"; "reject-narrow"; "reject-wide" ])

let () =
  Alcotest.run "parallel"
    [
      ( "identical-results",
        [
          Alcotest.test_case "figure1: all operators" `Quick
            test_figure1_operators;
          Alcotest.test_case "figure1: all strategies" `Quick
            test_figure1_strategies;
          Alcotest.test_case "empty-context rejects" `Quick
            test_empty_context_rejects;
          Alcotest.test_case "multi-document sharding" `Quick
            test_multi_document;
          Alcotest.test_case "xmark Q1/Q2/Q6/Q7" `Slow test_xmark_queries;
          Alcotest.test_case "engine-level sharded run" `Slow
            test_xmark_sharded_run;
          Alcotest.test_case "nested batches: sharded multi-doc caps" `Quick
            test_nested_cap_inheritance;
          Alcotest.test_case "adaptive jobs identical" `Slow
            test_adaptive_jobs_identical;
          QCheck_alcotest.to_alcotest qcheck_parallel_equals_sequential;
        ] );
      ( "deadlines",
        [ Alcotest.test_case "timeout fires with jobs=4" `Slow
            test_deadline_fires ] );
    ]
