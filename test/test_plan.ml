(* Plan-layer tests: the optimizer's rewrites are visible in the
   rendered plan (candidate pushdown, strategy selection, step/filter
   fusion, constant folding), and — the safety net behind all of them —
   the optimized plan returns exactly what the direct (unoptimized)
   lowering returns, on the §3.1 sample document and the XMark
   workload. *)

module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Op = Standoff.Op
module Engine = Standoff_xquery.Engine
module Plan = Standoff_xquery.Plan
module Setup = Standoff_xmark.Setup
module Queries = Standoff_xmark.Queries

let figure1_doc =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

let figure1_engine () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"figure1.xml" figure1_doc);
  Engine.create coll

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains what out needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S in plan:\n%s" what needle out)
    true (contains out needle)

let check_absent what out needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S absent from plan:\n%s" what needle out)
    false (contains out needle)

(* ------------------------------------------------------------------ *)
(* Construction detection (drives the HTTP server's lock choice)       *)

let test_constructs_detection () =
  let engine = figure1_engine () in
  let constructs q = Engine.prepared_constructs (Engine.prepare engine q) in
  Alcotest.(check bool)
    "plain path does not construct" false
    (constructs "doc(\"figure1.xml\")//shot");
  Alcotest.(check bool)
    "aggregate does not construct" false
    (constructs "count(doc(\"figure1.xml\")//video/select-wide::music)");
  Alcotest.(check bool)
    "element constructor detected" true
    (constructs "<r>{doc(\"figure1.xml\")//shot}</r>");
  Alcotest.(check bool)
    "constructor in a FLWOR body detected" true
    (constructs "for $s in doc(\"figure1.xml\")//shot return <hit/>");
  Alcotest.(check bool)
    "constructor behind a declared function detected" true
    (constructs "declare function local:mk() { <x/> };\nlocal:mk()")

(* ------------------------------------------------------------------ *)
(* Rewrites, observed through the rendered plan                        *)

let test_pushdown () =
  let engine = figure1_engine () in
  let q = "doc(\"figure1.xml\")//select-narrow::shot" in
  let optimized = Engine.explain engine q in
  check_contains "pushdown" optimized "candidates=elements(shot)";
  check_contains "pushdown" optimized "[pushed-down]";
  let direct = Engine.explain engine ~optimize:false q in
  check_contains "direct" direct "candidates=all-annotations";
  check_absent "direct" direct "[pushed-down]"

let test_pushdown_skipped_for_dominant_name () =
  (* Every annotation is a shot, so scanning elements(shot) buys
     nothing over the full region index: the statistics veto the
     pushdown (threshold: name covers > 80% of annotations). *)
  let coll = Collection.create () in
  ignore
    (Collection.load_string coll ~name:"shots.xml"
       "<t><shot start=\"0\" end=\"5\"/><shot start=\"2\" end=\"4\"/>\
        <shot start=\"6\" end=\"9\"/></t>");
  let engine = Engine.create coll in
  let out = Engine.explain engine "doc(\"shots.xml\")//select-wide::shot" in
  check_contains "dominant name" out "candidates=all-annotations";
  check_absent "dominant name" out "[pushed-down]"

let test_strategy_selection () =
  let engine = figure1_engine () in
  let q = "doc(\"figure1.xml\")//select-narrow::shot" in
  check_contains "default" (Engine.explain engine q) "strategy=auto";
  check_contains "pinned by argument"
    (Engine.explain engine ~strategy:Config.Loop_lifted q)
    "strategy=loop-lifted";
  check_contains "pinned by prolog"
    (Engine.explain engine
       ("declare option standoff-strategy \"basic\";\n" ^ q))
    "strategy=basic"

let test_positional_fusion () =
  let engine = figure1_engine () in
  let q =
    "for $m in doc(\"figure1.xml\")//music return $m/select-narrow::shot[1]"
  in
  let optimized = Engine.explain engine q in
  check_contains "fused join position" optimized "select-narrow::shot[1]";
  check_absent "fused join position" optimized "filter";
  let direct = Engine.explain engine ~optimize:false q in
  check_contains "direct keeps the filter" direct "filter";
  (* Plain axis steps fuse the same way. *)
  let steps = Engine.explain engine "doc(\"figure1.xml\")//shot[2]" in
  check_contains "fused step position" steps "step child::shot[2]"

let test_name_fusion () =
  let engine = figure1_engine () in
  let q = "doc(\"figure1.xml\")//select-narrow::node()[self::shot]" in
  let optimized = Engine.explain engine q in
  check_contains "self test fused into join" optimized
    "standoff-join select-narrow::shot";
  check_absent "self test fused into join" optimized "filter";
  let direct = Engine.explain engine ~optimize:false q in
  check_contains "direct keeps node() + filter" direct
    "standoff-join select-narrow::node()";
  check_contains "direct keeps node() + filter" direct "filter"

let test_constant_folding () =
  let engine = figure1_engine () in
  let plan q = Plan.render (Engine.prepared_plan (Engine.prepare engine q)) in
  Alcotest.(check string) "arithmetic" "literal 3" (plan "1 + 2");
  Alcotest.(check string) "comparison + if" "literal \"no\""
    (plan "if (1 = 2) then \"yes\" else \"no\"");
  Alcotest.(check string) "singleton sequence" "literal 7" (plan "(7)");
  (* Division by zero must raise at run time, not at plan time. *)
  check_contains "div-by-zero unfolded" (plan "1 div 0") "binop"

let test_explain_analyze () =
  let engine = figure1_engine () in
  let out =
    Engine.explain_analyze engine
      "for $m in doc(\"figure1.xml\")//music return $m/select-narrow::shot"
  in
  check_contains "analyze" out "standoff-join select-narrow::shot";
  check_contains "analyze" out "calls=1";
  check_contains "analyze" out "rows_in=2";
  check_contains "analyze" out "time=";
  check_contains "analyze" out "strategy="

let find_sub haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* Mask the only run-dependent part of an analysis suffix. *)
let strip_timings out =
  String.split_on_char '\n' out
  |> List.map (fun line ->
         match find_sub line " time=" with
         | Some i -> String.sub line 0 i ^ " time=_)"
         | None -> line)
  |> String.concat "\n"

(* Drop the whole analysis suffix, leaving the static plan line. *)
let strip_analysis out =
  String.split_on_char '\n' out
  |> List.map (fun line ->
         let cut marker =
           Option.map (fun i -> String.sub line 0 i) (find_sub line marker)
         in
         match cut "  (calls=" with
         | Some s -> s
         | None -> Option.value ~default:line (cut "  (not executed)"))
  |> String.concat "\n"

let test_explain_analyze_xmark_regression () =
  (* EXPLAIN ANALYZE is now derived from the span tree; its rendering
     for the paper's workload must stay what it always was: the static
     plan, each executed node decorated with a (calls=... time=...)
     suffix that is stable across runs modulo timings. *)
  let setup = Setup.build ~scale:0.002 ~with_standard:false () in
  let engine = setup.Setup.engine in
  List.iter
    (fun q ->
      let text = q.Queries.standoff setup.Setup.standoff_doc in
      let analyzed = Engine.explain_analyze engine text in
      check_contains (q.Queries.id ^ " annotated") analyzed "(calls=";
      Alcotest.(check string)
        (q.Queries.id ^ " stable modulo timings")
        (strip_timings analyzed)
        (strip_timings (Engine.explain_analyze engine text));
      Alcotest.(check string)
        (q.Queries.id ^ " skeleton matches EXPLAIN")
        (Engine.explain engine text)
        (strip_analysis analyzed))
    Queries.all

(* ------------------------------------------------------------------ *)
(* Equivalence: optimized plan vs direct lowering                      *)

let both_paths engine ?context_doc q =
  let run ~optimize =
    (Engine.run_prepared engine ?context_doc ~rollback_constructed:true
       (Engine.prepare engine ~optimize q))
      .Engine.serialized
  in
  (run ~optimize:false, run ~optimize:true)

let test_equivalence_figure1 () =
  let engine = figure1_engine () in
  List.iter
    (fun op ->
      let q =
        Printf.sprintf
          "for $s in doc(\"figure1.xml\")//music[@artist = \"U2\"]/%s::shot \
           return string($s/@id)"
          (Op.to_string op)
      in
      let direct, planned = both_paths engine q in
      Alcotest.(check string) (Op.to_string op) direct planned)
    Op.all;
  (* Function form with an explicit candidate sequence. *)
  let direct, planned =
    both_paths engine
      "count(select-wide(doc(\"figure1.xml\")//music, \
       doc(\"figure1.xml\")//shot))"
  in
  Alcotest.(check string) "function form" direct planned

let test_equivalence_reject_empty_context () =
  (* A reject-* iteration whose context is empty keeps every candidate
     (vacuous rejection) — the planned path must preserve that. *)
  let engine = figure1_engine () in
  let q =
    "for $x in (1, 2) return count(reject-narrow(\
     if ($x = 1) then doc(\"figure1.xml\")//music else (), \
     doc(\"figure1.xml\")//shot))"
  in
  let direct, planned = both_paths engine q in
  Alcotest.(check string) "reject with empty iteration" direct planned;
  (* Iteration 1: only Interview is not inside a music region;
     iteration 2: empty context keeps all three shots. *)
  Alcotest.(check string) "expected counts" "1 3" planned

let test_equivalence_xmark () =
  let setup = Setup.build ~scale:0.002 ~with_standard:false () in
  List.iter
    (fun q ->
      let direct, planned =
        both_paths setup.Setup.engine
          (q.Queries.standoff setup.Setup.standoff_doc)
      in
      Alcotest.(check string) q.Queries.id direct planned;
      Alcotest.(check bool)
        (Printf.sprintf "%s non-trivial" q.Queries.id)
        true
        (String.length planned > 0))
    Queries.all

let () =
  Alcotest.run "plan"
    [
      ( "optimizer",
        [
          Alcotest.test_case "candidate pushdown" `Quick test_pushdown;
          Alcotest.test_case "pushdown skipped for dominant name" `Quick
            test_pushdown_skipped_for_dominant_name;
          Alcotest.test_case "strategy selection" `Quick test_strategy_selection;
          Alcotest.test_case "positional fusion" `Quick test_positional_fusion;
          Alcotest.test_case "name fusion" `Quick test_name_fusion;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze;
          Alcotest.test_case "explain analyze xmark regression" `Quick
            test_explain_analyze_xmark_regression;
          Alcotest.test_case "construction detection" `Quick
            test_constructs_detection;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "figure 1 operators" `Quick
            test_equivalence_figure1;
          Alcotest.test_case "reject with empty context" `Quick
            test_equivalence_reject_empty_context;
          Alcotest.test_case "xmark Q1 Q2 Q6 Q7" `Quick test_equivalence_xmark;
        ] );
    ]
