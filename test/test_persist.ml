(* Persistence layer tests: codec primitives, document and collection
   roundtrips, corruption detection, and end-to-end query equivalence
   after reload. *)

module Codec = Standoff_util.Codec
module Dom = Standoff_xml.Dom
module Doc = Standoff_store.Doc
module Blob = Standoff_store.Blob
module Collection = Standoff_store.Collection
module Persist = Standoff_store.Persist
module Engine = Standoff_xquery.Engine

(* ------------------------------------------------------------ *)
(* Codec                                                         *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.byte w 200;
  Codec.Writer.varint w 0;
  Codec.Writer.varint w (-1);
  Codec.Writer.varint w max_int;
  Codec.Writer.varint w min_int;
  Codec.Writer.varint64 w Int64.max_int;
  Codec.Writer.varint64 w Int64.min_int;
  Codec.Writer.string w "";
  Codec.Writer.string w "hello \x00 world";
  Codec.Writer.int_array w [| 1; -2; 3 |];
  Codec.Writer.string_array w [| "a"; ""; "b" |];
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  Alcotest.(check int) "byte" 200 (Codec.Reader.byte r);
  Alcotest.(check int) "zero" 0 (Codec.Reader.varint r);
  Alcotest.(check int) "minus one" (-1) (Codec.Reader.varint r);
  Alcotest.(check int) "max_int" max_int (Codec.Reader.varint r);
  Alcotest.(check int) "min_int" min_int (Codec.Reader.varint r);
  Alcotest.(check int64) "max64" Int64.max_int (Codec.Reader.varint64 r);
  Alcotest.(check int64) "min64" Int64.min_int (Codec.Reader.varint64 r);
  Alcotest.(check string) "empty" "" (Codec.Reader.string r);
  Alcotest.(check string) "string" "hello \x00 world" (Codec.Reader.string r);
  Alcotest.(check (array int)) "ints" [| 1; -2; 3 |] (Codec.Reader.int_array r);
  Alcotest.(check (array string)) "strings" [| "a"; ""; "b" |]
    (Codec.Reader.string_array r);
  Alcotest.(check bool) "consumed" true (Codec.Reader.at_end r)

let test_codec_truncation () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "hello";
  let s = Codec.Writer.contents w in
  let truncated = String.sub s 0 (String.length s - 2) in
  Alcotest.(check bool) "raises" true
    (match Codec.Reader.string (Codec.Reader.create truncated) with
    | exception Codec.Reader.Corrupt _ -> true
    | _ -> false)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"varint64 roundtrip" ~count:1000
    QCheck.(map Int64.of_int int)
    (fun v ->
      let w = Codec.Writer.create () in
      Codec.Writer.varint64 w v;
      Int64.equal v (Codec.Reader.varint64 (Codec.Reader.create (Codec.Writer.contents w))))

(* ------------------------------------------------------------ *)
(* Documents                                                     *)

let sample =
  "<site a=\"1\"><people><person id=\"p0\"><name>Alice &amp; co</name>\
   </person></people><!--note--><?pi data?></site>"

let test_doc_roundtrip () =
  let d = Doc.parse ~name:"sample.xml" sample in
  let d' = Persist.doc_of_string (Persist.doc_to_string d) in
  Doc.check_invariants d';
  Alcotest.(check string) "name kept" "sample.xml" d'.Doc.doc_name;
  Alcotest.(check bool) "same tree" true
    (Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d')));
  Alcotest.(check int) "same attrs" (Doc.attribute_count d)
    (Doc.attribute_count d')

let test_doc_file_roundtrip () =
  let d = Doc.parse ~name:"sample.xml" sample in
  let path = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_doc d path;
      let d' = Persist.load_doc path in
      Alcotest.(check bool) "tree equal" true
        (Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d'))))

let test_corruption_detected () =
  let d = Doc.parse ~name:"s" sample in
  let s = Persist.doc_to_string d in
  let check_rejects label s =
    Alcotest.(check bool) label true
      (match Persist.doc_of_string s with
      | exception Persist.Corrupt _ -> true
      | _ -> false)
  in
  (* Flip a payload byte: checksum failure. *)
  let flipped = Bytes.of_string s in
  let mid = String.length s / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xFF));
  check_rejects "bit flip" (Bytes.to_string flipped);
  (* Truncation. *)
  check_rejects "truncation" (String.sub s 0 (String.length s - 3));
  (* Wrong magic. *)
  check_rejects "bad magic" ("XXXX" ^ String.sub s 4 (String.length s - 4));
  (* Wrong container tag. *)
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"x" "<a/>");
  let coll_file = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove coll_file)
    (fun () ->
      Persist.save_collection coll coll_file;
      let ic = open_in_bin coll_file in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_rejects "tag mismatch" contents)

(* Random documents roundtrip through the binary format. *)
let gen_tree =
  let open QCheck.Gen in
  let rec node depth =
    if depth = 0 then map (fun s -> Dom.text s) (oneofl [ "x"; "y&z"; " " ])
    else
      frequency
        [
          (2, map (fun s -> Dom.text s) (oneofl [ "t"; "<>&" ]));
          (1, return (Dom.Comment "c"));
          ( 4,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              (oneofl [ "a"; "b"; "c" ])
              (map
                 (fun vs -> List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vs)
                 (list_size (0 -- 2) (oneofl [ "1"; "two" ])))
              (list_size (0 -- 3) (node (depth - 1))) );
        ]
  in
  map
    (fun children -> Dom.document (Dom.element "root" children))
    (list_size (0 -- 4) (node 3))

let qcheck_doc_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip on random documents" ~count:300
    (QCheck.make
       ~print:(fun dom -> Standoff_xml.Serializer.to_string dom)
       gen_tree)
    (fun dom ->
      let d = Doc.of_dom ~name:"r" dom in
      let d' = Persist.doc_of_string (Persist.doc_to_string d) in
      Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d')))

(* ------------------------------------------------------------ *)
(* Hostile shapes: empty documents, unicode and odd names, sparse
   name-pool ids                                                 *)

(* Attribute/element names and values the XML layer accepts but a
   format with hidden ASCII or density assumptions would mangle. *)
let odd_names =
  [ "a"; "ns:b"; "_x"; "\xc3\xa9"; "\xe5\xb1\x9e\xe6\x80\xa7"; "a-b.c"; "xml:lang"; "A.B" ]

let odd_values =
  [ ""; " "; "\t"; "\xc3\xbc"; "\xf0\x9f\x98\x80"; "line\nbreak"; "&<>\"'"; "\x00\x01" ]

let gen_hostile_tree =
  let open QCheck.Gen in
  let name = oneofl odd_names in
  let value = oneofl odd_values in
  let attrs =
    map
      (fun kvs ->
        (* XML wants attribute names unique per element. *)
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs)
      (list_size (0 -- 3) (pair name value))
  in
  let rec node depth =
    if depth = 0 then map Dom.text (oneofl [ "t"; "\xe2\x98\x83"; " " ])
    else
      frequency
        [
          (1, map Dom.text (oneofl [ "x"; "\xc3\xa9t\xc3\xa9" ]));
          ( 4,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              name attrs
              (list_size (0 -- 2) (node (depth - 1))) );
        ]
  in
  frequency
    [
      (* The empty document: a childless, attribute-less root. *)
      (1, return (Dom.document (Dom.element "root" [])));
      ( 6,
        map2
          (fun attrs children ->
            Dom.document (Dom.element ~attrs "root" children))
          attrs
          (list_size (0 -- 3) (node 2)) );
    ]

let qcheck_hostile_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip on hostile documents" ~count:300
    (QCheck.make
       ~print:(fun dom -> Standoff_xml.Serializer.to_string dom)
       gen_hostile_tree)
    (fun dom ->
      let d = Doc.of_dom ~name:"hostile \xc3\xa4.xml" dom in
      let d' = Persist.doc_of_string (Persist.doc_to_string d) in
      Doc.check_invariants d';
      d'.Doc.doc_name = d.Doc.doc_name
      && Doc.attribute_count d = Doc.attribute_count d'
      && Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d')))

(* Name-pool ids need not be dense: build a document whose pool has
   unused slots between the used ids (as an editor that deleted layers
   might leave behind) and require the persisted form to carry it. *)
let test_sparse_name_pool () =
  let d =
    Doc.parse ~name:"sparse.xml"
      "<a x=\"1\"><b y=\"2\"><c/></b><b/>text</a>"
  in
  let spread = 3 in
  let pool_size = Standoff_store.Name_pool.count d.Doc.names in
  let names' =
    Array.init
      ((pool_size * spread) + 1)
      (fun i ->
        if i mod spread = 0 && i / spread < pool_size then
          Standoff_store.Name_pool.name d.Doc.names (i / spread)
        else Printf.sprintf "unused-%d" i)
  in
  (* [-1] marks unnamed kinds (text, the document node): not an id. *)
  let remap = Array.map (fun id -> if id < 0 then id else id * spread) in
  let d' =
    Doc.of_columns ~doc_name:d.Doc.doc_name ~names:names' ~kind:d.Doc.kind
      ~size:d.Doc.size ~level:d.Doc.level ~parent:d.Doc.parent
      ~name:(remap d.Doc.name) ~value:d.Doc.value
      ~attr_owner:d.Doc.attr_owner ~attr_name:(remap d.Doc.attr_name)
      ~attr_value:d.Doc.attr_value
  in
  Doc.check_invariants d';
  let d'' = Persist.doc_of_string (Persist.doc_to_string d') in
  Doc.check_invariants d'';
  Alcotest.(check bool) "sparse-pool tree survives" true
    (Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d'' (Doc.root d'')));
  Alcotest.(check int) "attributes survive" (Doc.attribute_count d)
    (Doc.attribute_count d'')

(* The in-memory collection codec (used by WAL snapshots) agrees with
   the file-based one, hostile contents included. *)
let test_collection_string_roundtrip () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"empty.xml" "<root/>");
  (* The parser only admits ASCII names; hostile names enter through
     the DOM constructor, as a transformation pipeline would add them. *)
  ignore
    (Collection.add coll
       (Doc.of_dom ~name:"odd \xc3\xa9.xml"
          (Dom.document
             (Dom.element
                ~attrs:[ ("xml:lang", "fr"); ("\xc3\xa9", "\xf0\x9f\x98\x80") ]
                "a"
                [ Dom.element "b" [] ]))));
  Collection.add_blob coll
    (Blob.of_string ~name:"bin" "\x00\x01\xff binary \n bytes");
  let coll' = Persist.collection_of_string (Persist.collection_to_string coll) in
  Alcotest.(check int) "doc count" 2 (Collection.doc_count coll');
  Alcotest.(check (option int)) "empty doc kept" (Some 0)
    (Collection.doc_id_of_name coll' "empty.xml");
  Alcotest.(check (option int)) "odd-named doc kept" (Some 1)
    (Collection.doc_id_of_name coll' "odd \xc3\xa9.xml");
  (match Collection.blob coll' "bin" with
  | Some b ->
      Alcotest.(check string) "binary blob intact"
        "\x00\x01\xff binary \n bytes" (Blob.contents b)
  | None -> Alcotest.fail "blob lost");
  (* Deterministic encoding: string -> collection -> string is a
     fixpoint (documents in order, blobs sorted). *)
  let s = Persist.collection_to_string coll in
  Alcotest.(check string) "encoding is a fixpoint" s
    (Persist.collection_to_string (Persist.collection_of_string s))

(* ------------------------------------------------------------ *)
(* Collections and query equivalence                             *)

let test_collection_roundtrip () =
  let coll = Collection.create () in
  ignore
    (Collection.load_string coll ~name:"fig1.xml"
       "<sample><shot id=\"A\" start=\"0\" end=\"8\"/>\
        <music start=\"0\" end=\"31\"/></sample>");
  ignore (Collection.load_string coll ~name:"other.xml" "<x><y/></x>");
  Collection.add_blob coll (Blob.of_string ~name:"stream.bin" "0123456789");
  let path = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_collection coll path;
      let coll' = Persist.load_collection path in
      Alcotest.(check int) "doc count" 2 (Collection.doc_count coll');
      Alcotest.(check (option int)) "doc by name kept" (Some 0)
        (Collection.doc_id_of_name coll' "fig1.xml");
      (match Collection.blob coll' "stream.bin" with
      | Some b -> Alcotest.(check string) "blob" "0123456789" (Blob.contents b)
      | None -> Alcotest.fail "blob lost");
      (* Queries over the reloaded collection give identical answers. *)
      let q =
        "for $s in doc(\"fig1.xml\")//music/select-wide::shot \
         return string($s/@id)"
      in
      let run coll = (Engine.run (Engine.create coll) q).Engine.serialized in
      Alcotest.(check string) "query equivalence" (run coll) (run coll'))

let test_xmark_roundtrip () =
  (* The real workload end-to-end: generate, transform, save, reload,
     and check a StandOff query agrees. *)
  let setup = Standoff_xmark.Setup.build ~scale:0.002 ~with_standard:false () in
  let path = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_collection setup.Standoff_xmark.Setup.coll path;
      let coll' = Persist.load_collection path in
      let q =
        Standoff_xmark.Queries.q6.Standoff_xmark.Queries.standoff
          setup.Standoff_xmark.Setup.standoff_doc
      in
      let a =
        (Engine.run setup.Standoff_xmark.Setup.engine ~rollback_constructed:true q)
          .Engine.serialized
      in
      let b =
        (Engine.run (Engine.create coll') ~rollback_constructed:true q)
          .Engine.serialized
      in
      Alcotest.(check string) "Q6 equal after reload" a b)

let () =
  Alcotest.run "persist"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
        ] );
      ( "documents",
        [
          Alcotest.test_case "roundtrip" `Quick test_doc_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_doc_file_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_corruption_detected;
          QCheck_alcotest.to_alcotest qcheck_doc_roundtrip;
        ] );
      ( "hostile",
        [
          QCheck_alcotest.to_alcotest qcheck_hostile_roundtrip;
          Alcotest.test_case "sparse name-pool ids" `Quick
            test_sparse_name_pool;
          Alcotest.test_case "collection string roundtrip" `Quick
            test_collection_string_roundtrip;
        ] );
      ( "collections",
        [
          Alcotest.test_case "roundtrip with blobs" `Quick
            test_collection_roundtrip;
          Alcotest.test_case "xmark end-to-end" `Quick test_xmark_roundtrip;
        ] );
    ]
