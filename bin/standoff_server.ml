(* The network query service binary: load documents (from disk, a
   saved database, or a generated XMark instance), wrap them in an
   Engine, and serve queries over HTTP until SIGTERM/SIGINT asks for a
   graceful shutdown (stop accepting, drain in-flight, exit 0).

     standoff-server --xmark 0.01 --port 8080
     curl -sS -X POST --data-binary @q.xq 'localhost:8080/query?strategy=loop-lifted'
     curl -sS localhost:8080/metrics *)

module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Server = Standoff_server.Server
module Setup = Standoff_xmark.Setup

open Cmdliner

let load_collection ?db docs blobs =
  let coll =
    match db with
    | Some path -> Standoff_store.Persist.load_collection path
    | None -> Collection.create ()
  in
  List.iter
    (fun path ->
      let name = Filename.basename path in
      let doc =
        if Filename.check_suffix path ".sodb" then
          Standoff_store.Persist.load_doc path
        else Doc.of_dom ~name (Standoff_xml.Parser.parse_file path)
      in
      ignore (Collection.add coll doc))
    docs;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          Collection.add_blob coll (Blob.of_file ~name path)
      | None ->
          Collection.add_blob coll
            (Blob.of_file ~name:(Filename.basename spec) spec))
    blobs;
  coll

let docs_arg =
  Arg.(
    value & opt_all file []
    & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"XML document to load (repeatable).")

let blobs_arg =
  Arg.(
    value & opt_all string []
    & info [ "b"; "blob" ] ~docv:"NAME=FILE"
        ~doc:"BLOB to register under NAME (repeatable).")

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "db" ] ~docv:"FILE" ~doc:"Load a saved collection database.")

let xmark_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "xmark" ] ~docv:"SCALE"
        ~doc:
          "Generate and load an XMark instance at this scale factor \
           (stand-off transformed, BLOB registered) instead of, or in \
           addition to, documents from disk.  Handy for demos and smoke \
           tests.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 8080
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Port to listen on (0 picks an ephemeral port).")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains serving connections.  0 (the default) derives \
           the count from the machine: half the process domain budget, \
           at least 1.")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission-queue capacity: pending connections beyond the \
           workers; more are shed with 503 + Retry-After.")

let max_body_arg =
  Arg.(
    value
    & opt int (1024 * 1024)
    & info [ "max-body" ] ~docv:"BYTES" ~doc:"Request body cap (413 past it).")

let keep_alive_arg =
  Arg.(
    value & opt int 1000
    & info [ "max-requests-per-connection" ] ~docv:"N"
        ~doc:"Keep-alive bound: close the connection after N requests.")

let timeout_ms_arg =
  Arg.(
    value
    & opt (some float) (Some 30_000.0)
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline in milliseconds (clients override \
           with ?timeout-ms=, clamped to --max-timeout-ms).")

let max_timeout_ms_arg =
  Arg.(
    value & opt float 300_000.0
    & info [ "max-timeout-ms" ] ~docv:"MS"
        ~doc:"Upper clamp for client-requested deadlines.")

let socket_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "socket-timeout" ] ~docv:"SECONDS"
        ~doc:"Receive/send timeout on connections.")

let grace_arg =
  Arg.(
    value & opt float 10.0
    & info [ "grace" ] ~docv:"SECONDS"
        ~doc:"Drain budget for graceful shutdown.")

let strategy_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Config.strategy_of_string s)
        with Invalid_argument m -> Error (`Msg m)),
      fun fmt s -> Format.pp_print_string fmt (Config.strategy_to_string s) )

let strategy_arg =
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Pin the evaluation strategy engine-wide (clients can still \
           override per request with ?strategy=).")

let jobs_arg =
  Arg.(
    value
    & opt int (Config.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Engine parallelism (domains) per query evaluation.  0 (the \
           default) sizes each run adaptively from its plan cost, within \
           what the domain budget has left after the connection workers.")

let cache_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Engine.cache_mode_of_string s)
        with Invalid_argument m -> Error (`Msg m)),
      fun fmt m -> Format.pp_print_string fmt (Engine.cache_mode_to_string m) )

let cache_arg =
  Arg.(
    value
    & opt (some cache_conv) None
    & info [ "cache" ] ~docv:"MODE"
        ~doc:
          "Query caching level: off | plan | result.  Defaults to \
           \\$(b,STANDOFF_CACHE), else off.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Slow-query threshold: runs at least this slow land in the \
           slow-query log (GET /slow) and on stderr.  Defaults to \
           \\$(b,STANDOFF_SLOW_MS), else disabled.")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durable data directory (created if missing).  Boot recovers \
           the newest snapshot plus the WAL suffix; updates are logged \
           before they are acknowledged; shutdown writes a compacting \
           snapshot.  Without it the store is purely in-memory.")

let fsync_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Standoff_store.Wal.fsync_policy_of_string s)
        with Invalid_argument m -> Error (`Msg m)),
      fun fmt p ->
        Format.pp_print_string fmt (Standoff_store.Wal.fsync_policy_to_string p)
    )

let fsync_arg =
  Arg.(
    value
    & opt fsync_conv Standoff_store.Wal.Always
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "WAL fsync policy: always (acknowledged implies durable), \
           batch[:N] (fsync every N appends; bounded loss window), or \
           never (leave it to the OS).  Only meaningful with --data-dir.")

let auth_token_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token" ]
        ~env:(Cmd.Env.info "STANDOFF_AUTH_TOKEN")
        ~docv:"TOKEN"
        ~doc:
          "Require $(b,Authorization: Bearer) TOKEN on /query, /update, \
           /ingest and /admin/* (401 otherwise; constant-time compare).  \
           /healthz and /metrics stay open.  Defaults to \
           \\$(b,STANDOFF_AUTH_TOKEN), else no authentication.")

let snapshot_every_arg =
  Arg.(
    value & opt int 1000
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Write a compacting snapshot (and reset the WAL) every N \
           updates; 0 disables periodic snapshots (POST /admin/snapshot \
           and clean shutdown still compact).  Only meaningful with \
           --data-dir.")

let serve docs blobs db xmark host port workers queue max_body keep_alive
    timeout_ms max_timeout_ms socket_timeout grace strategy jobs cache slow_ms
    auth_token data_dir fsync snapshot_every =
  try
    let config =
      {
        Server.default_config with
        host;
        port;
        workers;
        queue_capacity = queue;
        max_body_bytes = max_body;
        max_requests_per_connection = keep_alive;
        default_timeout_ms = timeout_ms;
        max_timeout_ms;
        socket_timeout_s = socket_timeout;
        grace_s = grace;
        auth_token;
      }
    in
    (* Deferred boot: bind and serve before recovery, so the process is
       observable (alive, not ready) through a long WAL replay —
       /healthz answers 200 and engine-backed endpoints answer 503
       until the engine is installed below. *)
    let server = Server.create_deferred ~config () in
    (* Handlers only flag the request; the actual stop runs on the
       main thread (a signal handler must not join domains). *)
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Server.start server;
    let seed () =
      let coll = load_collection ?db docs blobs in
      (match xmark with
      | Some scale ->
          let setup = Setup.build ~scale ~with_standard:false ~jobs:1 () in
          (* Re-register the generated documents and BLOB in our own
             collection so --doc/--db loads can coexist with --xmark. *)
          Collection.fold_docs
            (fun () _ d -> ignore (Collection.add coll d))
            () setup.Setup.coll;
          Collection.fold_blobs
            (fun () b -> Collection.add_blob coll b)
            () setup.Setup.coll;
          Printf.printf "loaded XMark scale %g as %S (%s)\n%!" scale
            setup.Setup.standoff_doc
            (Setup.size_label setup.Setup.serialized_size)
      | None -> ());
      coll
    in
    let durable, coll =
      match data_dir with
      | None -> (None, seed ())
      | Some dir ->
          let d, recovery =
            Standoff.Durable.open_dir ~policy:fsync
              ~snapshot_every:(max 0 snapshot_every) ~seed dir
          in
          let snap_label =
            match recovery.Standoff.Durable.rec_snapshot with
            | Some (lsn, _) -> Printf.sprintf "snapshot lsn=%d" lsn
            | None -> "no snapshot"
          in
          Printf.printf
            "standoff-server: recovered %s (fsync=%s): %s, replayed %d WAL \
             record(s)%s\n\
             %!"
            dir
            (Standoff_store.Wal.fsync_policy_to_string fsync)
            snap_label recovery.Standoff.Durable.rec_replayed
            (match recovery.Standoff.Durable.rec_torn with
            | Some reason -> Printf.sprintf " (torn tail dropped: %s)" reason
            | None -> "");
          if
            recovery.Standoff.Durable.rec_snapshot <> None
            && (docs <> [] || db <> None || xmark <> None)
          then
            Printf.printf
              "standoff-server: note: --doc/--db/--xmark ignored — %s \
               already holds a snapshot\n\
               %!"
              dir;
          (Some d, Standoff.Durable.collection d)
    in
    let engine = Engine.create ?strategy ~jobs ?slow_ms ?cache coll in
    if Engine.slow_ms engine <> None then
      Standoff_obs.Slow_log.set_sink
        (Some
           (fun e ->
             Printf.eprintf "slow query: %s\n%!"
               (Standoff_obs.Slow_log.entry_to_string e)));
    Server.install_engine server ?durable engine;
    let module Pool = Standoff_util.Pool in
    let jobs_label =
      match Engine.jobs engine with
      | 0 -> Printf.sprintf "auto(<=%d)" (Pool.max_parallelism ())
      | n -> string_of_int n
    in
    Printf.printf
      "standoff-server: domain budget %d -> %d connection worker(s) + \
       engine jobs %s\n\
       standoff-server listening on %s:%d (queue=%d cache=%s auth=%s) — %d \
       document(s) loaded\n\
       endpoints: POST /query, POST /update, POST /ingest, \
       POST /admin/snapshot, GET /explain, GET /metrics, GET /slow, \
       GET /healthz\n\
       %!"
      (Pool.domain_budget ()) (Server.workers server) jobs_label host
      (Server.port server) queue
      (Engine.cache_mode_to_string (Engine.cache_mode engine))
      (if auth_token = None then "off" else "bearer")
      (Collection.doc_count coll);
    while not (Atomic.get stop_requested) do
      Thread.delay 0.1
    done;
    Printf.printf "standoff-server: shutting down (grace %gs)...\n%!" grace;
    Server.stop server;
    (* Workers are gone: no writer can race the final compaction. *)
    (match durable with
    | Some d ->
        if Standoff.Durable.dirty d then
          Printf.printf "standoff-server: writing shutdown snapshot\n%!";
        Standoff.Durable.close
          ~generation:(Standoff.Catalog.version (Engine.catalog engine))
          d
    | None -> ());
    Engine.shutdown engine;
    Printf.printf "standoff-server: drained, bye\n%!";
    exit 0
  with
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s(%s): %s\n" fn arg (Unix.error_message e);
      exit 1
  | Standoff_xml.Parser.Parse_error { line; col; msg } ->
      Printf.eprintf "XML parse error at line %d, col %d: %s\n" line col msg;
      exit 1
  | Standoff_store.Persist.Corrupt msg ->
      Printf.eprintf "corrupt database file: %s\n" msg;
      exit 1
  | Standoff_store.Wal.Corrupt msg ->
      Printf.eprintf "corrupt write-ahead log: %s\n" msg;
      exit 1
  | Standoff.Durable.Recovery_error msg ->
      Printf.eprintf "recovery failed: %s\n" msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "i/o error: %s\n" msg;
      exit 1

let () =
  let info =
    Cmd.info "standoff-server"
      ~doc:
        "Serve StandOff XQuery over HTTP: admission control, per-request \
         deadlines, keep-alive, graceful shutdown"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const serve $ docs_arg $ blobs_arg $ db_arg $ xmark_arg $ host_arg
            $ port_arg $ workers_arg $ queue_arg $ max_body_arg
            $ keep_alive_arg $ timeout_ms_arg $ max_timeout_ms_arg
            $ socket_timeout_arg $ grace_arg $ strategy_arg $ jobs_arg
            $ cache_arg $ slow_ms_arg $ auth_token_arg $ data_dir_arg
            $ fsync_arg $ snapshot_every_arg)))
