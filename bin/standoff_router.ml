(* The shard-router binary: spawn (or attach to) N standoff-server
   shard processes, consistent-hash document names across them, and
   serve the routed API on one front port until SIGTERM/SIGINT.

     standoff-router --shards 4 --data-root /var/lib/standoff --port 8080
     standoff-router --shard 10.0.0.1:8080 --shard 10.0.0.2:8080

   Managed shards get their own data directory under --data-root and
   are supervised: health-checked, restarted with backoff when they
   die, terminated on shutdown. *)

module Router = Standoff_router.Router
open Cmdliner

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind the front port on.")

let port_arg =
  Arg.(
    value & opt int 8080
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"Front port to listen on (0 picks an ephemeral port).")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Spawn and supervise N standoff-server shard processes (named \
           shard-0 … shard-N-1, each with its own data directory under \
           --data-root).")

let external_arg =
  Arg.(
    value & opt_all string []
    & info [ "shard" ] ~docv:"[NAME=]HOST:PORT"
        ~doc:
          "Attach an externally managed shard (repeatable).  NAME is the \
           placement identity and must stay stable across restarts; it \
           defaults to HOST:PORT.")

let data_root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-root" ] ~docv:"DIR"
        ~doc:
          "Root for managed shards' data directories (DIR/shard-0, …).  \
           Without it managed shards run in-memory.")

let shard_exe_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-exe" ] ~docv:"PATH"
        ~doc:
          "The standoff-server executable to spawn for managed shards.  \
           Defaults to standoff_server.exe next to this binary.")

let shard_workers_arg =
  Arg.(
    value & opt int 0
    & info [ "shard-workers" ] ~docv:"N"
        ~doc:"Worker domains per managed shard (0 = the shard's auto sizing).")

let fsync_arg =
  Arg.(
    value & opt string "always"
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:"WAL fsync policy passed to managed shards (with --data-root).")

let snapshot_every_arg =
  Arg.(
    value & opt int 1000
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:"Snapshot cadence passed to managed shards (with --data-root).")

let auth_token_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token" ]
        ~env:(Cmd.Env.info "STANDOFF_AUTH_TOKEN")
        ~docv:"TOKEN"
        ~doc:
          "Require $(b,Authorization: Bearer) TOKEN on /query, /update, \
           /ingest and /admin/* (401 otherwise).  Managed shards are \
           spawned with the same token unless --shard-token overrides it.")

let shard_token_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard-token" ] ~docv:"TOKEN"
        ~doc:
          "Bearer token the router presents to its shards (and spawns \
           managed shards with).  Defaults to --auth-token.")

let max_body_arg =
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "max-body" ] ~docv:"BYTES" ~doc:"Request body cap (413 past it).")

let grace_arg =
  Arg.(
    value & opt float 5.0
    & info [ "grace" ] ~docv:"SECONDS"
        ~doc:"Drain/terminate budget for graceful shutdown.")

(* An ephemeral port for a managed shard: bind 0, read, release.  The
   tiny race against another process grabbing it before the shard
   binds is acceptable for the local topologies this spawns. *)
let free_port host =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> failwith "free_port")

let parse_external spec =
  let name, addr =
    match String.index_opt spec '=' with
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> (spec, spec)
  in
  match String.rindex_opt addr ':' with
  | None ->
      Printf.eprintf "error: --shard %S: want [NAME=]HOST:PORT\n" spec;
      exit 124
  | Some i -> (
      let host = String.sub addr 0 i in
      let port_s = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port > 0 && host <> "" ->
          { Router.sp_name = name; sp_host = host; sp_port = port;
            sp_spawn = None }
      | _ ->
          Printf.eprintf "error: --shard %S: bad HOST:PORT\n" spec;
          exit 124)

let default_shard_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "standoff_server.exe"

(* The shard only creates the leaf of its --data-dir; the root (and
   any missing ancestors) are the router's to provide. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let run host port shards externals data_root shard_exe shard_workers fsync
    snapshot_every auth_token shard_token max_body grace =
  try
    if shards <= 0 && externals = [] then begin
      Printf.eprintf
        "error: no shards (give --shards N and/or --shard HOST:PORT)\n";
      exit 124
    end;
    let shard_token =
      match shard_token with Some _ as t -> t | None -> auth_token
    in
    let exe =
      match shard_exe with Some e -> e | None -> default_shard_exe ()
    in
    if shards > 0 && not (Sys.file_exists exe) then begin
      Printf.eprintf "error: shard executable %s not found\n" exe;
      exit 124
    end;
    let managed =
      List.init shards (fun i ->
          let name = Printf.sprintf "shard-%d" i in
          let sport = free_port "127.0.0.1" in
          let argv =
            ref
              [
                exe; "--host"; "127.0.0.1"; "--port"; string_of_int sport;
                "--workers"; string_of_int shard_workers;
              ]
          in
          (match data_root with
          | Some root ->
              mkdir_p (Filename.concat root name);
              argv :=
                !argv
                @ [
                    "--data-dir"; Filename.concat root name;
                    "--fsync"; fsync;
                    "--snapshot-every"; string_of_int snapshot_every;
                  ]
          | None -> ());
          (match shard_token with
          | Some tok -> argv := !argv @ [ "--auth-token"; tok ]
          | None -> ());
          {
            Router.sp_name = name;
            sp_host = "127.0.0.1";
            sp_port = sport;
            sp_spawn = Some (exe, Array.of_list !argv);
          })
    in
    let specs = managed @ List.map parse_external externals in
    let config =
      {
        Router.default_config with
        host;
        port;
        max_body_bytes = max_body;
        auth_token;
        shard_token;
      }
    in
    let router = Router.create ~config specs in
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Router.start router;
    Printf.printf
      "standoff-router listening on %s:%d — %d shard(s): %s (auth=%s)\n\
       endpoints: POST /query, POST /update, POST /ingest, \
       POST /admin/snapshot, GET /metrics, GET /shards, GET /healthz\n\
       %!"
      host (Router.port router) (List.length specs)
      (String.concat ", "
         (List.map
            (fun s ->
              Printf.sprintf "%s@%s:%d%s" s.Router.sp_name s.Router.sp_host
                s.Router.sp_port
                (if s.Router.sp_spawn = None then "" else " (managed)"))
            specs))
      (if auth_token = None then "off" else "bearer");
    while not (Atomic.get stop_requested) do
      Thread.delay 0.1
    done;
    Printf.printf "standoff-router: shutting down (grace %gs)...\n%!" grace;
    Router.stop ~grace_s:grace router;
    Printf.printf "standoff-router: bye\n%!";
    exit 0
  with
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s(%s): %s\n" fn arg (Unix.error_message e);
      exit 1
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let () =
  let info =
    Cmd.info "standoff-router"
      ~doc:
        "Scale StandOff XQuery out across shard processes: consistent \
         hashing, supervised shard lifecycles, streamed proxying"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ host_arg $ port_arg $ shards_arg $ external_arg
            $ data_root_arg $ shard_exe_arg $ shard_workers_arg $ fsync_arg
            $ snapshot_every_arg $ auth_token_arg $ shard_token_arg
            $ max_body_arg $ grace_arg)))
