(* Command-line interface to the StandOff XQuery engine.

   Subcommands:
     query      evaluate an XQuery (with the four StandOff axes) against
                XML documents loaded from disk
     shred      load a document and print storage/annotation statistics
     xmark-gen  generate an XMark document, optionally stand-off
                transformed with its BLOB
     axes       run the four StandOff joins between two node sets and
                print the §3.1-style table *)

module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Config = Standoff.Config
module Op = Standoff.Op
module Annots = Standoff.Annots
module Engine = Standoff_xquery.Engine
module Gen = Standoff_xmark.Gen
module Standoffify = Standoff_xmark.Standoffify
module Convert = Standoff_convert.Convert

open Cmdliner

let load_collection ?db docs blobs =
  let coll =
    match db with
    | Some path -> Standoff_store.Persist.load_collection path
    | None -> Collection.create ()
  in
  List.iter
    (fun path ->
      let name = Filename.basename path in
      let doc =
        (* .sodb documents load from the binary store, skipping the
           parse/shred pipeline. *)
        if Filename.check_suffix path ".sodb" then
          Standoff_store.Persist.load_doc path
        else Doc.of_dom ~name (Standoff_xml.Parser.parse_file path)
      in
      ignore (Collection.add coll doc))
    docs;
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          Collection.add_blob coll (Blob.of_file ~name path)
      | None -> Collection.add_blob coll (Blob.of_file ~name:(Filename.basename spec) spec))
    blobs;
  coll

let handle_errors f =
  try f () with
  | Standoff_xquery.Err.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Standoff_xquery.Lexer.Syntax_error { line; col; msg } ->
      Printf.eprintf "syntax error at line %d, col %d: %s\n" line col msg;
      exit 1
  | Standoff_xml.Parser.Parse_error { line; col; msg } ->
      Printf.eprintf "XML parse error at line %d, col %d: %s\n" line col msg;
      exit 1
  | Annots.Invalid_region { pre; msg } ->
      Printf.eprintf "invalid region on node %d: %s\n" pre msg;
      exit 1
  | Standoff_store.Persist.Corrupt msg ->
      Printf.eprintf "corrupt database file: %s\n" msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "i/o error: %s\n" msg;
      exit 1
  | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* ---------------- shared options ---------------- *)

let docs_arg =
  Arg.(
    value & opt_all file []
    & info [ "d"; "doc" ] ~docv:"FILE" ~doc:"XML document to load (repeatable).")

let blobs_arg =
  Arg.(
    value & opt_all string []
    & info [ "b"; "blob" ] ~docv:"NAME=FILE"
        ~doc:"BLOB to register under NAME (repeatable).")

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "db" ] ~docv:"FILE"
        ~doc:"Load a saved collection database (see the db-save command).")

let strategy_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Config.strategy_of_string s)
        with Invalid_argument m -> Error (`Msg m)),
      fun fmt s -> Format.pp_print_string fmt (Config.strategy_to_string s) )

let strategy_arg =
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Pin the evaluation strategy: udf-nocand | udf-cand | basic | \
           loop-lifted.  Default: pick per operator from annotation \
           statistics.")

let jobs_arg =
  Arg.(
    value
    & opt int (Config.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate with up to N domains in parallel (merge sweeps, \
           index builds, per-document shards).  1 = fully sequential; \
           0 = adaptive, sized per query from its plan cost within the \
           machine's domain budget.  Defaults to \\$(b,STANDOFF_JOBS) \
           or 0.")

let cache_conv =
  Arg.conv
    ( (fun s ->
        try Ok (Engine.cache_mode_of_string s)
        with Invalid_argument m -> Error (`Msg m)),
      fun fmt m -> Format.pp_print_string fmt (Engine.cache_mode_to_string m) )

let cache_arg =
  Arg.(
    value
    & opt (some cache_conv) None
    & info [ "cache" ] ~docv:"MODE"
        ~doc:
          "Query caching level: off | plan (reuse prepared plans) | result \
           (additionally serve byte-identical results for repeat queries; \
           updates invalidate).  Defaults to \\$(b,STANDOFF_CACHE), else \
           off.  The result-cache byte budget is 64 MiB, overridable with \
           \\$(b,STANDOFF_CACHE_MB).")

let dataguide_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "dataguide" ] ~docv:"BOOL"
        ~doc:
          "Use the DataGuide path index: downward child/descendant name \
           paths collapse into single index probes and the planner's \
           statistics answer from per-path cardinalities.  Results are \
           byte-identical either way.  Defaults to \
           \\$(b,STANDOFF_DATAGUIDE), else on.")

(* ---------------- query ---------------- *)

let query_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"XQuery text, or @FILE to read it from FILE.")
  in
  let context_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "context" ] ~docv:"DOCNAME"
          ~doc:"Document that leading '/' paths refer to.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc:"Abort after this long.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the optimized query plan instead of evaluating it \
             (candidate pushdown and strategy decisions included).")
  in
  let explain_analyze_arg =
    Arg.(
      value & flag
      & info [ "explain-analyze" ]
          ~doc:
            "Run the query and print the plan annotated with per-operator \
             row counts, index rows scanned, and timings.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After the query, print the engine metrics (joins by strategy, \
             index probes, cache hits, pool queue stats, query latency \
             histogram) in Prometheus text format on stderr.")
  in
  let trace_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:
            "Collect a structured trace of the run (parse, optimize, one \
             span per plan operator with row counts) and write it to FILE \
             as JSON.  On timeout the partial trace is still written.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold in milliseconds: runs at least this slow \
             are reported on stderr.  Defaults to \\$(b,STANDOFF_SLOW_MS), \
             else disabled.")
  in
  let run docs blobs db strategy jobs cache dataguide context timeout explain
      explain_analyze metrics trace_json slow_ms query =
    handle_errors (fun () ->
        let query =
          if String.length query > 0 && query.[0] = '@' then (
            let path = String.sub query 1 (String.length query - 1) in
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic)))
          else query
        in
        let coll =
          if explain then
            (* --explain evaluates nothing, so a missing or unloadable
               collection must not stop it: fall back to an empty one
               (the plan still prints; only the statistics-driven
               decisions lose their input). *)
            try load_collection ?db docs blobs
            with _ -> Collection.create ()
          else load_collection ?db docs blobs
        in
        let engine =
          Engine.create ?strategy ~jobs ?slow_ms ?cache ?dataguide coll
        in
        (* Slow queries (threshold from --slow-ms or STANDOFF_SLOW_MS)
           are reported on stderr as they happen. *)
        if Engine.slow_ms engine <> None then
          Standoff_obs.Slow_log.set_sink
            (Some
               (fun e ->
                 Printf.eprintf "slow query: %s\n%!"
                   (Standoff_obs.Slow_log.entry_to_string e)));
        if explain then begin
          print_endline (Engine.explain engine query);
          exit 0
        end;
        if explain_analyze then begin
          let deadline =
            match timeout with
            | Some seconds -> Standoff_util.Timing.deadline_after seconds
            | None -> Standoff_util.Timing.no_deadline
          in
          print_endline
            (Engine.explain_analyze engine ~deadline ?context_doc:context
               query);
          if metrics then prerr_string (Standoff_obs.Metrics.expose ());
          exit 0
        end;
        let trace =
          Option.map (fun _ -> Standoff_obs.Trace.create ()) trace_json
        in
        (* Emitted on the DNF path too: the collector is finished by the
           run's own cleanup, so the partial trace is well-formed. *)
        let finish () =
          (match (trace_json, trace) with
          | Some path, Some tr ->
              let oc = open_out_bin path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () ->
                  output_string oc (Standoff_obs.Trace.to_json tr);
                  output_char oc '\n')
          | _ -> ());
          if metrics then prerr_string (Standoff_obs.Metrics.expose ())
        in
        match timeout with
        | None ->
            (* Parse/lower/optimize once, then evaluate the prepared
               plan (the query text is not parsed a second time). *)
            let prepared = Engine.prepare engine ?trace query in
            let r =
              Engine.run_prepared engine ?context_doc:context ?trace prepared
            in
            print_endline r.Engine.serialized;
            finish ()
        | Some seconds -> (
            match
              Engine.run_with_timeout engine ?context_doc:context ?trace
                ~seconds query
            with
            | Standoff_util.Timing.Finished (r, t) ->
                print_endline r.Engine.serialized;
                Printf.eprintf "(%.3fs)\n" t;
                finish ()
            | Standoff_util.Timing.Timed_out t ->
                finish ();
                Printf.eprintf "DNF: gave up after %.1fs\n" t;
                exit 2))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XQuery with StandOff axis support")
    Term.(
      const run $ docs_arg $ blobs_arg $ db_arg $ strategy_arg $ jobs_arg
      $ cache_arg $ dataguide_arg $ context_arg $ timeout_arg $ explain_arg
      $ explain_analyze_arg $ metrics_arg $ trace_json_arg $ slow_ms_arg
      $ query_arg)

(* ---------------- shred ---------------- *)

let shred_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run path =
    handle_errors (fun () ->
        let dom = Standoff_xml.Parser.parse_file path in
        let doc = Doc.of_dom ~name:(Filename.basename path) dom in
        Doc.check_invariants doc;
        Printf.printf "document:      %s\n" path;
        Printf.printf "nodes:         %d\n" (Doc.node_count doc);
        Printf.printf "attributes:    %d\n" (Doc.attribute_count doc);
        Printf.printf "elements:      %d\n" (Array.length (Doc.all_elements doc));
        let annots = Annots.extract Config.default doc in
        Printf.printf "annotations:   %d (attribute representation, start/end)\n"
          (Annots.annotation_count annots);
        Printf.printf "region rows:   %d\n"
          (Standoff.Region_index.row_count annots.Annots.index);
        let annots_el =
          Annots.extract (Config.with_region_elements Config.default) doc
        in
        Printf.printf
          "annotations:   %d (element representation, region/start/end)\n"
          (Annots.annotation_count annots_el))
  in
  Cmd.v
    (Cmd.info "shred" ~doc:"Shred a document and print storage statistics")
    Term.(const run $ file_arg)

(* ---------------- xmark-gen ---------------- *)

let xmark_cmd =
  let scale_arg =
    Arg.(
      value & opt float 0.01
      & info [ "scale" ] ~docv:"FACTOR" ~doc:"XMark scale factor (1.0 = 110MB).")
  in
  let seed_arg =
    Arg.(value & opt int64 20060630L & info [ "seed" ] ~docv:"SEED")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output XML file.")
  in
  let standoff_arg =
    Arg.(
      value & flag
      & info [ "standoff" ]
          ~doc:"Apply the StandOff transformation (writes FILE plus FILE.blob).")
  in
  let no_permute_arg =
    Arg.(
      value & flag
      & info [ "no-permute" ] ~doc:"Skip the coarse permutation step.")
  in
  let run scale seed out standoff no_permute =
    handle_errors (fun () ->
        let dom = Gen.generate { Gen.scale; seed } in
        if standoff then begin
          let t = Standoffify.transform ~permute:(not no_permute) dom in
          Standoff_xml.Serializer.to_file ~declaration:true out t.Standoffify.doc;
          let oc = open_out_bin (out ^ ".blob") in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc t.Standoffify.blob);
          Printf.printf "wrote %s and %s.blob\n" out out
        end
        else begin
          Standoff_xml.Serializer.to_file ~declaration:true out dom;
          Printf.printf "wrote %s\n" out
        end)
  in
  Cmd.v
    (Cmd.info "xmark-gen" ~doc:"Generate an XMark document (optionally stand-off)")
    Term.(
      const run $ scale_arg $ seed_arg $ out_arg $ standoff_arg $ no_permute_arg)

(* ---------------- axes ---------------- *)

let axes_cmd =
  let context_q =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"XPATH" ~doc:"Context node expression (S1).")
  in
  let candidate_q =
    Arg.(
      required
      & opt (some string) None
      & info [ "to" ] ~docv:"XPATH" ~doc:"Candidate node expression (S2).")
  in
  let run docs blobs strategy from_q to_q =
    handle_errors (fun () ->
        let coll = load_collection docs blobs in
        let engine = Engine.create ?strategy coll in
        List.iter
          (fun op ->
            let q =
              Printf.sprintf "%s(%s, %s)" (Op.to_string op) from_q to_q
            in
            let r = Engine.run engine q in
            Printf.printf "%s:\n%s\n\n" (Op.to_string op) r.Engine.serialized)
          Op.all)
  in
  Cmd.v
    (Cmd.info "axes"
       ~doc:"Run all four StandOff joins between two node expressions")
    Term.(
      const run $ docs_arg $ blobs_arg $ strategy_arg $ context_q $ candidate_q)

(* ---------------- index ---------------- *)

let index_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let region_el_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "region-element" ] ~docv:"NAME"
          ~doc:"Use the element representation with this region element name.")
  in
  let run path region_el =
    handle_errors (fun () ->
        let doc =
          if Filename.check_suffix path ".sodb" then
            Standoff_store.Persist.load_doc path
          else
            Doc.of_dom ~name:(Filename.basename path)
              (Standoff_xml.Parser.parse_file path)
        in
        let config =
          match region_el with
          | Some region_name ->
              Config.with_region_elements ~region_name Config.default
          | None -> Config.default
        in
        let annots = Annots.extract config doc in
        let idx = annots.Annots.index in
        Printf.printf "%12s %12s %8s  %s\n" "start" "end" "id" "element";
        for row = 0 to Standoff.Region_index.row_count idx - 1 do
          let pre = idx.Standoff.Region_index.ids.(row) in
          Printf.printf "%12Ld %12Ld %8d  %s%s\n"
            idx.Standoff.Region_index.starts.(row)
            idx.Standoff.Region_index.ends.(row)
            pre
            (Option.value ~default:"?" (Doc.name_of doc pre))
            (if idx.Standoff.Region_index.region_ranks.(row) > 0 then
               Printf.sprintf " (region %d)"
                 idx.Standoff.Region_index.region_ranks.(row)
             else "")
        done;
        Printf.printf "%d region rows over %d annotations\n"
          (Standoff.Region_index.row_count idx)
          (Annots.annotation_count annots))
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Print the region index (start|end|id, clustered on start)")
    Term.(const run $ file_arg $ region_el_arg)

(* ---------------- convert ---------------- *)

(* "words=w,token;paras=p" -> [("words", ["w"; "token"]); ("paras", ["p"])] *)
let parse_layer_spec spec =
  String.split_on_char ';' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun part ->
         match String.index_opt part '=' with
         | Some i ->
             let name = String.trim (String.sub part 0 i) in
             let tags =
               String.sub part (i + 1) (String.length part - i - 1)
               |> String.split_on_char ','
               |> List.map String.trim
               |> List.filter (fun t -> t <> "")
             in
             if name = "" || tags = [] then
               invalid_arg
                 (Printf.sprintf "malformed layer %S (want NAME=TAG[,TAG...])"
                    part)
             else (name, tags)
         | None ->
             invalid_arg
               (Printf.sprintf "malformed layer %S (want NAME=TAG[,TAG...])"
                  part))

let write_text path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let convert_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Input XML file(s).  $(b,--to-standoff) takes one inline \
             document; $(b,--to-inline) accepts several annotation \
             documents placed together.")
  in
  let to_standoff_arg =
    Arg.(
      value & flag
      & info [ "to-standoff" ]
          ~doc:
            "Convert inline markup to stand-off: writes OUT (the \
             annotation document), OUT.blob (the extracted text), and one \
             OUT.LAYER.xml per $(b,--layers) entry.")
  in
  let to_inline_arg =
    Arg.(
      value & flag
      & info [ "to-inline" ]
          ~doc:
            "Re-insert stand-off annotations into their BLOB as inline \
             element tags (requires $(b,--blob)).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let blob_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "blob" ] ~docv:"FILE"
          ~doc:"The BLOB the annotation extents refer to ($(b,--to-inline)).")
  in
  let layers_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "layers" ] ~docv:"SPEC"
          ~doc:
            "Layered output ($(b,--to-standoff)): \
             NAME=TAG[,TAG...][;NAME=...]; each layer is a flat annotation \
             document over the shared BLOB.")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw-extents" ]
          ~doc:
            "$(b,--to-inline) over foreign annotations: extents address \
             plain text directly, so do not treat the first byte of every \
             extent as a conversion separator.")
  in
  let run files to_so to_in out blob layers raw =
    handle_errors (fun () ->
        match (to_so, to_in) with
        | true, false ->
            let file =
              match files with
              | [ f ] -> f
              | _ -> invalid_arg "--to-standoff takes exactly one input file"
            in
            let layers =
              Option.value ~default:[] (Option.map parse_layer_spec layers)
            in
            let conv =
              Convert.to_standoff ~layers
                (Standoff_xml.Parser.parse_file file)
            in
            Standoff_xml.Serializer.to_file ~declaration:true out
              conv.Convert.doc;
            write_text (out ^ ".blob") conv.Convert.blob;
            Printf.printf "wrote %s and %s.blob (%d bytes of text)\n" out out
              (String.length conv.Convert.blob);
            List.iter
              (fun (name, layer_doc) ->
                let path =
                  Printf.sprintf "%s.%s.xml" (Filename.remove_extension out)
                    name
                in
                Standoff_xml.Serializer.to_file ~declaration:true path
                  layer_doc;
                Printf.printf "wrote layer %s to %s (%d annotations)\n" name
                  path
                  (List.length layer_doc.Standoff_xml.Dom.root.Standoff_xml.Dom.children))
              conv.Convert.layers
        | false, true ->
            let blob =
              match blob with
              | Some b -> read_text b
              | None -> invalid_arg "--to-inline requires --blob FILE"
            in
            let docs = List.map Standoff_xml.Parser.parse_file files in
            let dom =
              Convert.to_inline ~consume_separator:(not raw) ~blob docs
            in
            Standoff_xml.Serializer.to_file ~declaration:true out dom;
            Printf.printf "wrote %s\n" out
        | _ -> invalid_arg "pass exactly one of --to-standoff / --to-inline")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert between inline markup and stand-off annotations \
          (round-trip safe; layered output)")
    Term.(
      const run $ files_arg $ to_standoff_arg $ to_inline_arg $ out_arg
      $ blob_arg $ layers_arg $ raw_arg)

(* ---------------- db-save ---------------- *)

let db_save_cmd =
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.sodb")
  in
  let run docs blobs out =
    handle_errors (fun () ->
        let coll = load_collection docs blobs in
        Standoff_store.Persist.save_collection coll out;
        Printf.printf "saved %d document(s) to %s\n" (Collection.doc_count coll)
          out)
  in
  Cmd.v
    (Cmd.info "db-save"
       ~doc:
         "Shred documents and save them (plus BLOBs) as a binary database \
          that 'query --db' loads without re-parsing")
    Term.(const run $ docs_arg $ blobs_arg $ out_arg)

let () =
  let info =
    Cmd.info "standoff-cli"
      ~doc:"Stand-off annotation querying with XQuery (Alink et al., 2006)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            query_cmd;
            shred_cmd;
            xmark_cmd;
            axes_cmd;
            index_cmd;
            convert_cmd;
            db_save_cmd;
          ]))
