(* Temporal databases: stand-off joins as temporal joins.

   The paper's related-work section ties the StandOff merge joins to
   the sort-merge joins of temporal databases (Gao, Jensen, Snodgrass,
   Soo; VLDB Journal 2005) — the semi-join and anti-join between
   validity intervals are exactly select/reject-wide and -narrow.  Here
   the "BLOB" is a timeline measured in days since 2000-01-01; an
   employee re-hired after a gap has a non-contiguous employment
   history, which interval-pair temporal joins famously mishandle.

     dune exec examples/temporal.exe *)

module Collection = Standoff_store.Collection
module Engine = Standoff_xquery.Engine

let day_of ~y ~m = ((y - 2000) * 365) + ((m - 1) * 30)

let region (a, b) =
  Printf.sprintf "<region><start>%d</start><end>%d</end></region>" a b

let annotations =
  let employment name stints =
    Printf.sprintf "<employment who=\"%s\">%s</employment>" name
      (String.concat "" (List.map region stints))
  in
  let project id span =
    Printf.sprintf "<project id=\"%s\">%s</project>" id (region span)
  in
  let salary who amount span =
    Printf.sprintf "<salary who=\"%s\" amount=\"%d\">%s</salary>" who amount
      (region span)
  in
  String.concat ""
    [
      "<history>";
      "<staff>";
      (* Ada: continuous 2000-2009. *)
      employment "ada" [ (day_of ~y:2000 ~m:1, day_of ~y:2009 ~m:12) ];
      (* Grace: two stints with a gap during 2004-2005. *)
      employment "grace"
        [
          (day_of ~y:2001 ~m:3, day_of ~y:2004 ~m:6);
          (day_of ~y:2006 ~m:1, day_of ~y:2008 ~m:12);
        ];
      (* Edsger: joined late. *)
      employment "edsger" [ (day_of ~y:2007 ~m:1, day_of ~y:2009 ~m:12) ];
      "</staff>";
      "<projects>";
      project "apollo" (day_of ~y:2002 ~m:1, day_of ~y:2003 ~m:12);
      project "babel" (day_of ~y:2004 ~m:1, day_of ~y:2006 ~m:12);
      project "colossus" (day_of ~y:2008 ~m:1, day_of ~y:2008 ~m:12);
      "</projects>";
      "<payroll>";
      salary "ada" 60 (day_of ~y:2000 ~m:1, day_of ~y:2005 ~m:12);
      salary "ada" 75 (day_of ~y:2006 ~m:1, day_of ~y:2009 ~m:12);
      salary "grace" 65 (day_of ~y:2001 ~m:3, day_of ~y:2004 ~m:6);
      salary "grace" 80 (day_of ~y:2006 ~m:1, day_of ~y:2008 ~m:12);
      (* A payroll bug: salary recorded across Grace's employment gap. *)
      salary "grace" 70 (day_of ~y:2005 ~m:1, day_of ~y:2005 ~m:12);
      "</payroll>";
      "</history>";
    ]

let prolog = "declare option standoff-region \"region\";\n"

let () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"history.xml" annotations);
  let engine = Engine.create coll in
  let run q = (Engine.run engine (prolog ^ q)).Engine.serialized in

  print_endline "Temporal joins over employment/project/payroll intervals\n";

  (* Temporal containment semi-join: projects that ran entirely within
     someone's employment.  babel (2004-2006) spans Grace's gap: her
     two stints do NOT cover it, so only Ada qualifies for babel. *)
  print_endline "who could staff each project for its whole duration?";
  print_endline
    (run
       "for $e in doc(\"history.xml\")//employment\n\
        for $p in $e/select-narrow::project\n\
        order by string($p/@id)\n\
        return concat(string($p/@id), \": \", string($e/@who))");
  print_newline ();

  (* Temporal intersection semi-join. *)
  Printf.printf "who overlapped with project babel at all? %s\n\n"
    (run
       "for $e in doc(\"history.xml\")//project[@id = \"babel\"]\
        /select-wide::employment return string($e/@who)");

  (* Temporal anti-join as an integrity audit: salary intervals not
     covered by the {e same} person's employment.  Grace's 2005 record
     falls into her gap — only the area semantics catches it; a check
     against her employment's overall extent (2001-2008) would pass
     it. *)
  Printf.printf "payroll rows outside the earner's employment periods:\n%s\n\n"
    (run
       "for $e in doc(\"history.xml\")//employment\n\
        for $s in $e/reject-narrow::salary[@who = $e/@who]\n\
        return concat(string($s/@who), \" @\", string($s/@amount), \"k \", \
        string(standoff-relation($s, $e)))");

  (* The check a single-interval temporal model would do — compare
     against the employment's overall extent via standoff-start/end —
     misses the bad row, because the gap disappears in the extent. *)
  Printf.printf "rows flagged by a naive extent-bounds audit: %s(none)\n\n"
    (run
       "for $e in doc(\"history.xml\")//employment\n\
        for $s in doc(\"history.xml\")//salary[@who = $e/@who]\n\
        where standoff-start($s) < standoff-start($e) \
        or standoff-end($s) > standoff-end($e)\n\
        return concat(string($s/@who), \" @\", string($s/@amount), \"k\")");

  (* Allen relations: the classic 13-way interval classification. *)
  print_endline "Allen relation of each project to Ada's employment:";
  print_endline
    (run
       "for $p in doc(\"history.xml\")//project\n\
        order by standoff-start($p)\n\
        return concat(string($p/@id), \": \", standoff-relation($p, \
        doc(\"history.xml\")//employment[@who = \"ada\"]))")
