(* Genome sequence annotation: the application area the paper's
   conclusion singles out for future work.

   A reference sequence (the BLOB, one byte per base) carries
   annotations from independent pipelines: gene models (genes, exons,
   CDS — where a spliced CDS is a non-contiguous area over its exons),
   repeat-masker intervals, and variant calls.  Coordinates are base
   positions; everything is stand-off, so adding a new annotation track
   never touches the sequence or the other tracks.

     dune exec examples/genomics.exe *)

module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Engine = Standoff_xquery.Engine

let rng = Standoff_util.Prng.create 1234L

(* A 10 kb synthetic chromosome region. *)
let sequence =
  String.init 10_000 (fun _ ->
      "ACGT".[Standoff_util.Prng.int rng 4])

let region (a, b) =
  Printf.sprintf "<region><start>%d</start><end>%d</end></region>" a b

let annotations =
  String.concat ""
    [
      "<chromosome name=\"chr21-slice\">";
      "<genes>";
      (* geneA: two exons; its CDS is the non-contiguous spliced area. *)
      Printf.sprintf "<gene id=\"geneA\" strand=\"+\">%s</gene>" (region (1000, 4999));
      Printf.sprintf "<exon gene=\"geneA\" rank=\"1\">%s</exon>" (region (1000, 1799));
      Printf.sprintf "<exon gene=\"geneA\" rank=\"2\">%s</exon>" (region (4200, 4999));
      Printf.sprintf "<cds gene=\"geneA\">%s%s</cds>"
        (region (1100, 1799)) (region (4200, 4820));
      (* geneB: single exon, inside a repeat-rich region. *)
      Printf.sprintf "<gene id=\"geneB\" strand=\"-\">%s</gene>" (region (6200, 7599));
      Printf.sprintf "<exon gene=\"geneB\" rank=\"1\">%s</exon>" (region (6200, 7599));
      Printf.sprintf "<cds gene=\"geneB\">%s</cds>" (region (6300, 7500));
      "</genes>";
      "<repeats>";
      Printf.sprintf "<repeat family=\"Alu\">%s</repeat>" (region (2500, 2799));
      Printf.sprintf "<repeat family=\"LINE1\">%s</repeat>" (region (6000, 6900));
      Printf.sprintf "<repeat family=\"Alu\">%s</repeat>" (region (9000, 9300));
      "</repeats>";
      "<variants>";
      Printf.sprintf "<snv id=\"rs1\" alt=\"T\">%s</snv>" (region (1500, 1500));
      Printf.sprintf "<snv id=\"rs2\" alt=\"G\">%s</snv>" (region (3000, 3000));
      Printf.sprintf "<snv id=\"rs3\" alt=\"A\">%s</snv>" (region (4500, 4500));
      Printf.sprintf "<snv id=\"rs4\" alt=\"C\">%s</snv>" (region (6500, 6500));
      Printf.sprintf "<deletion id=\"del1\">%s</deletion>" (region (7400, 7520));
      "</variants>";
      "</chromosome>";
    ]

let prolog = "declare option standoff-region \"region\";\n"

let () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"chr21.xml" annotations);
  Collection.add_blob coll (Blob.of_string ~name:"chr21.fa" sequence);
  let engine = Engine.create coll in
  let run q = (Engine.run engine (prolog ^ q)).Engine.serialized in

  print_endline "Stand-off genome annotation over a 10 kb sequence slice\n";

  (* Coding variants: SNVs inside a spliced CDS.  rs1 (exonic, coding)
     and rs3 (exonic, coding) qualify; rs2 falls in the intron — inside
     the gene's extent but outside the CDS area, which only the
     non-contiguous containment semantics can tell apart. *)
  Printf.printf "coding SNVs (inside a spliced CDS): %s\n"
    (run
       "for $v in doc(\"chr21.xml\")//cds/select-narrow::snv \
        order by standoff-start($v) return string($v/@id)");

  Printf.printf "intronic/intergenic SNVs:           %s\n"
    (run
       "for $v in doc(\"chr21.xml\")//cds/reject-narrow::snv \
        order by standoff-start($v) return string($v/@id)");

  (* Genes overlapping repeat elements: candidate assembly artefacts. *)
  Printf.printf "genes overlapping repeats:          %s\n"
    (run
       "for $g in doc(\"chr21.xml\")//repeat/select-wide::gene \
        return string($g/@id)");

  (* Variants that touch coding sequence without lying inside it —
     they cross a CDS boundary (overlap minus containment, via the
     node-set difference operator). *)
  Printf.printf "variants crossing a CDS boundary:   %s\n\n"
    (run
       "for $v in doc(\"chr21.xml\")//cds/select-wide::deletion \
        except doc(\"chr21.xml\")//cds/select-narrow::deletion \
        return string($v/@id)");

  (* Allen relation report for geneB against the LINE1 repeat. *)
  Printf.printf "geneB vs LINE1 repeat: %s\n"
    (run
       "standoff-relation(doc(\"chr21.xml\")//gene[@id = \"geneB\"], \
        doc(\"chr21.xml\")//repeat[@family = \"LINE1\"])");

  (* Exons per gene, longest first, with their sequence extracted from
     the BLOB. *)
  print_endline "\nexon catalogue (longest first):";
  print_endline
    (run
       "for $e in doc(\"chr21.xml\")//exon\n\
        order by standoff-end($e) - standoff-start($e) descending\n\
        return concat(string($e/@gene), \" exon \", string($e/@rank),\n\
        \"  [\", string(standoff-start($e)), \"..\", \
        string(standoff-end($e)), \"]  \",\n\
        string-length(standoff-snippet($e, \"chr21.fa\")), \" bp, starts \",\n\
        substring(standoff-snippet($e, \"chr21.fa\"), 1, 12), \"...\")");

  (* The spliced transcript: the CDS area's regions concatenate to the
     mature coding sequence. *)
  Printf.printf "\ngeneA spliced CDS length: %s bp (of %s bp genomic span)\n"
    (run "string-length(standoff-snippet(doc(\"chr21.xml\")//cds[@gene = \"geneA\"], \"chr21.fa\"))")
    (run
       "string(standoff-end(doc(\"chr21.xml\")//cds[@gene = \"geneA\"]) - \
        standoff-start(doc(\"chr21.xml\")//cds[@gene = \"geneA\"]) + 1)")
