(* Digital forensics: querying tool annotations over a disk image.

   The scenario from the paper's introduction (and the XIRAF system it
   grew out of): several analysis tools annotate the raw image of a
   confiscated drive — the filesystem scanner marks partitions and
   live files, the carver recovers deleted files (possibly fragmented
   into non-contiguous block runs), and a keyword scanner marks match
   positions.  Every annotation points into the same BLOB by byte
   offset; the element representation of regions handles the
   fragmented files.

     dune exec examples/forensics.exe *)

module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Doc = Standoff_store.Doc
module Region = Standoff_interval.Region
module Area = Standoff_interval.Area
module Config = Standoff.Config
module Annots = Standoff.Annots
module Engine = Standoff_xquery.Engine

(* A 4 KiB "disk image": 8 sectors of 512 bytes.  Sector layout:
     0     boot sector
     1-2   live file report.txt
     3     unallocated (old directory entry)
     4,6   deleted file secret.txt — fragmented, carved from 2 runs
     5     live file notes.txt
     7     unallocated *)
let sector = 512

let disk_image =
  let buf = Buffer.create (8 * sector) in
  let fill tag =
    let line = Printf.sprintf "[%s]" tag in
    let reps = (sector / String.length line) + 1 in
    Buffer.add_string buf (String.sub (String.concat "" (List.init reps (fun _ -> line))) 0 sector)
  in
  fill "BOOT";
  fill "REPORT-PART1";
  fill "REPORT-PART2";
  fill "FREE";
  fill "SECRET-PLAN-A";
  fill "NOTES meeting at dawn";
  fill "SECRET-PLAN-B";
  fill "FREE";
  Buffer.contents buf

let s n = n * sector
let e n = ((n + 1) * sector) - 1

let region_el (a, b) =
  Printf.sprintf "<region><start>%d</start><end>%d</end></region>" a b

let annotations =
  let file name runs extra =
    Printf.sprintf "<file name=\"%s\"%s>%s</file>" name extra
      (String.concat "" (List.map region_el runs))
  in
  String.concat ""
    [
      "<image>";
      "<filesystem>";
      Printf.sprintf "<partition id=\"p0\">%s</partition>" (region_el (s 0, e 7));
      file "report.txt" [ (s 1, e 2) ] " status=\"live\"";
      file "notes.txt" [ (s 5, e 5) ] " status=\"live\"";
      Printf.sprintf "<unallocated>%s</unallocated>" (region_el (s 3, e 3));
      Printf.sprintf "<unallocated>%s</unallocated>" (region_el (s 7, e 7));
      "</filesystem>";
      "<carver>";
      (* The fragmented deleted file: two non-adjacent block runs. *)
      file "secret.txt" [ (s 4, e 4); (s 6, e 6) ] " status=\"deleted\"";
      "</carver>";
      "<keywords>";
      (* Keyword hits at absolute byte offsets. *)
      Printf.sprintf "<hit term=\"SECRET\">%s</hit>" (region_el (s 4 + 1, s 4 + 6));
      Printf.sprintf "<hit term=\"SECRET\">%s</hit>" (region_el (s 6 + 1, s 6 + 6));
      Printf.sprintf "<hit term=\"dawn\">%s</hit>" (region_el (s 5 + 17, s 5 + 20));
      Printf.sprintf "<hit term=\"dawn\">%s</hit>"
        (region_el (e 6 - 1, s 7 + 2));  (* a hit straddling into free space *)
      "</keywords>";
      "</image>";
    ]

let prolog = "declare option standoff-region \"region\";\n"

let () =
  let coll = Collection.create () in
  let doc_id = Collection.load_string coll ~name:"image.xml" annotations in
  Collection.add_blob coll (Blob.of_string ~name:"disk.img" disk_image);
  let engine = Engine.create coll in
  let run q = (Engine.run engine (prolog ^ q)).Engine.serialized in

  print_endline "Forensic stand-off annotations over a 4 KiB disk image";
  print_endline "(element representation: files may span scattered block runs)\n";

  (* Which keyword hits lie inside deleted files?  Containment must
     respect fragmentation: a hit inside any recovered run counts, a
     hit straddling out of the file does not. *)
  Printf.printf "keyword hits inside deleted files:\n%s\n\n"
    (run
       "for $f in doc(\"image.xml\")//file[@status = \"deleted\"]\n\
        for $h in $f/select-narrow::hit\n\
        return concat(string($h/@term), \" in \", string($f/@name))");

  (* Hits not contained in any live file: suspicious content. *)
  Printf.printf "hits outside every live file:\n%s\n\n"
    (run
       "for $h in doc(\"image.xml\")//file[@status = \"live\"]\
        /reject-narrow::hit\n\
        return string($h/@term)");

  (* Hits straddling into unallocated space: evidence of content that
     continues past a recovered file's end. *)
  Printf.printf "keyword hits reaching into unallocated sectors:\n%s\n\n"
    (run
       "for $h in doc(\"image.xml\")//unallocated/select-wide::hit\n\
        return string($h/@term)");

  (* Everything the carver found that the filesystem does not know:
     carved files not contained in any live file region. *)
  Printf.printf "carved-only content:\n%s\n\n"
    (run
       "for $f in doc(\"image.xml\")//filesystem/file\
        /reject-narrow::file[@status = \"deleted\"]\n\
        return string($f/@name)");

  (* Reassemble the fragmented file from the BLOB using the core API:
     the area of secret.txt is two block runs; read_area concatenates
     them in order. *)
  let doc = Collection.doc coll doc_id in
  let annots =
    Annots.extract (Config.with_region_elements Config.default) doc
  in
  let secret_pre =
    Array.to_list (Doc.elements_named doc "file")
    |> List.find (fun pre -> Doc.attribute doc pre "name" = Some "secret.txt")
  in
  let area = Option.get (Annots.area_of annots secret_pre) in
  let blob = Option.get (Collection.blob coll "disk.img") in
  Printf.printf "secret.txt reassembled from %d fragments (%Ld bytes): %s...\n"
    (Area.region_count area)
    (Area.total_width area)
    (String.sub (Blob.read_area blob area) 0 40);
  Printf.printf "fragment extents: %s\n"
    (String.concat ", "
       (List.map Region.to_string (Area.regions area)))
