examples/genomics.ml: Printf Standoff_store Standoff_util Standoff_xquery String
