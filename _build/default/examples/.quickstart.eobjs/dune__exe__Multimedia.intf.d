examples/multimedia.mli:
