examples/temporal.mli:
