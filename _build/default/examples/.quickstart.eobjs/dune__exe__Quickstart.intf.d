examples/quickstart.mli:
