examples/forensics.ml: Array Buffer List Option Printf Standoff Standoff_interval Standoff_store Standoff_xquery String
