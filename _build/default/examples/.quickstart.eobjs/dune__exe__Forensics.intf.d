examples/forensics.mli:
