examples/genomics.mli:
