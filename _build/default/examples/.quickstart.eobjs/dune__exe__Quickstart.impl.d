examples/quickstart.ml: List Printf Standoff Standoff_store Standoff_xquery
