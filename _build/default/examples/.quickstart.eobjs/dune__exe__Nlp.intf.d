examples/nlp.mli:
