examples/nlp.ml: List Printf Standoff_store Standoff_xquery String
