examples/multimedia.ml: Array Option Printf Standoff Standoff_store Standoff_xquery String
