(* Quickstart: load a stand-off annotation document, run the four
   StandOff joins from the paper's section 3.1, and compare evaluation
   strategies.

     dune exec examples/quickstart.exe *)

module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine

(* The multimedia example of the paper's Figure 1: shots on the video
   track, music on the audio track, both annotating the same stream by
   time range (seconds). *)
let annotations =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

let () =
  (* 1. A collection holds shredded documents (and BLOBs). *)
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"sample.xml" annotations);

  (* 2. An engine evaluates XQuery with four extra axis steps:
        select-narrow::  (containment semi-join)
        select-wide::    (overlap semi-join)
        reject-narrow::  (containment anti-join)
        reject-wide::    (overlap anti-join) *)
  let engine = Engine.create coll in
  let shots_during op =
    (Engine.run engine
       (Printf.sprintf
          "for $s in doc(\"sample.xml\")//music[@artist = \"U2\"]/%s::shot \
           return string($s/@id)"
          op)).Engine.serialized
  in
  print_endline "Which video shots relate to the U2 track?";
  Printf.printf "  entirely during U2        (select-narrow): %s\n"
    (shots_during "select-narrow");
  Printf.printf "  at least partly during U2 (select-wide):   %s\n"
    (shots_during "select-wide");
  Printf.printf "  never entirely during U2  (reject-narrow): %s\n"
    (shots_during "reject-narrow");
  Printf.printf "  fully free of U2          (reject-wide):   %s\n"
    (shots_during "reject-wide");

  (* 3. The same joins as built-in functions (paper alternative 3). *)
  let via_function =
    (Engine.run engine
       "for $s in select-wide(doc(\"sample.xml\")//music[@artist = \"Bach\"], \
        doc(\"sample.xml\")//shot) return string($s/@id)").Engine.serialized
  in
  Printf.printf "\nShots overlapping the Bach track (function form): %s\n"
    via_function;

  (* 4. Every query can run under any of the paper's evaluation
        strategies; results are identical, performance is not (see
        bench/main.exe figure-6). *)
  print_endline "\nSame query under all four strategies:";
  List.iter
    (fun strategy ->
      let r =
        Engine.run engine ~strategy
          "for $s in doc(\"sample.xml\")//music/select-wide::shot \
           return string($s/@id)"
      in
      Printf.printf "  %-12s -> %s\n"
        (Config.strategy_to_string strategy)
        r.Engine.serialized)
    Config.all_strategies;

  (* 5. Region names are configurable per query (paper section 2). *)
  let coll2 = Collection.create () in
  ignore
    (Collection.load_string coll2 ~name:"trace.xml"
       "<trace><call fn=\"main\" from=\"0\" upto=\"100\"/>\
        <call fn=\"parse\" from=\"10\" upto=\"60\"/>\
        <alloc from=\"20\" upto=\"25\"/></trace>");
  let engine2 = Engine.create coll2 in
  let r =
    Engine.run engine2
      "declare option standoff-start \"from\";\n\
       declare option standoff-end \"upto\";\n\
       for $c in doc(\"trace.xml\")//call[exists(select-narrow::alloc)] \
       return string($c/@fn)"
  in
  Printf.printf
    "\nConfigured names (from/upto): calls containing the allocation: %s\n"
    r.Engine.serialized
