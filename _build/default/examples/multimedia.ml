(* Multimedia retrieval: an extended version of the paper's Figure 1.

   A one-hour broadcast annotated by three tools on a millisecond
   timeline: shot boundary detection (video track), music
   identification and speech recognition (audio track).  The speech
   recogniser also produced a transcript BLOB whose regions are
   *character* offsets — two position spaces coexist in one collection,
   one document each.

     dune exec examples/multimedia.exe *)

module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Doc = Standoff_store.Doc
module Config = Standoff.Config
module Annots = Standoff.Annots
module Engine = Standoff_xquery.Engine

let minutes m = m * 60_000

(* Timeline annotations, positions in milliseconds. *)
let timeline =
  let shot id a b =
    Printf.sprintf "<shot id=\"%s\" start=\"%d\" end=\"%d\"/>" id a b
  in
  let music artist a b =
    Printf.sprintf "<music artist=\"%s\" start=\"%d\" end=\"%d\"/>" artist a b
  in
  let speech who a b =
    Printf.sprintf "<speech speaker=\"%s\" start=\"%d\" end=\"%d\"/>" who a b
  in
  String.concat ""
    [
      "<broadcast>";
      "<video>";
      shot "opening-titles" 0 (minutes 2);
      shot "studio-intro" (minutes 2) (minutes 5);
      shot "interview" (minutes 5) (minutes 25);
      shot "concert-footage" (minutes 25) (minutes 40);
      shot "studio-outro" (minutes 40) (minutes 55);
      shot "credits" (minutes 55) (minutes 60);
      "</video>";
      "<audio>";
      music "U2" 0 (minutes 2 - 1);
      music "Bach" (minutes 24) (minutes 41);
      music "Outro-Jingle" (minutes 54) (minutes 60);
      speech "host" (minutes 2) (minutes 6);
      speech "guest" (minutes 6) (minutes 24);
      speech "host" (minutes 40) (minutes 55);
      "</audio>";
      "</broadcast>";
    ]

(* The transcript document annotates a text BLOB by character range. *)
let transcript_text =
  "Welcome to the show. Tonight we talk to the composer about the new \
   recording. It was a wonderful experience, she says. Thank you for \
   watching."

let transcript =
  "<transcript>\
   <utterance speaker=\"host\" start=\"0\" end=\"75\"/>\
   <utterance speaker=\"guest\" start=\"76\" end=\"119\"/>\
   <utterance speaker=\"host\" start=\"120\" end=\"146\"/>\
   <mention entity=\"composer\" start=\"44\" end=\"51\"/>\
   <mention entity=\"recording\" start=\"63\" end=\"75\"/>\
   </transcript>"

let () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"timeline.xml" timeline);
  ignore (Collection.load_string coll ~name:"transcript.xml" transcript);
  Collection.add_blob coll (Blob.of_string ~name:"transcript.txt" transcript_text);
  let engine = Engine.create coll in
  let run q = (Engine.run engine q).Engine.serialized in

  print_endline "One-hour broadcast, three annotation tools, one timeline\n";

  Printf.printf "shots played entirely under Bach:\n  %s\n\n"
    (run
       "for $s in doc(\"timeline.xml\")//music[@artist = \"Bach\"]\
        /select-narrow::shot return string($s/@id)");

  Printf.printf "shots touched by any music at all:\n  %s\n\n"
    (run
       "for $s in doc(\"timeline.xml\")//music/select-wide::shot \
        return string($s/@id)");

  Printf.printf "music-free shots (reject-wide):\n  %s\n\n"
    (run
       "for $s in doc(\"timeline.xml\")//music/reject-wide::shot \
        return string($s/@id)");

  (* Speech over music: simultaneous overlap of two audio layers. *)
  Printf.printf "speech segments overlapping music (voice-over):\n  %s\n\n"
    (run
       "for $s in doc(\"timeline.xml\")//music/select-wide::speech \
        return concat(string($s/@speaker), \" [\", \
        string($s/@start idiv 60000), \"m-\", \
        string($s/@end idiv 60000), \"m]\")");

  (* Steps match within one fragment only: the transcript document has
     its own (character) position space and is queried separately. *)
  Printf.printf "transcript mentions inside host utterances:\n  %s\n\n"
    (run
       "for $m in doc(\"transcript.xml\")//utterance[@speaker = \"host\"]\
        /select-narrow::mention return string($m/@entity)");

  (* The same snippets straight from XQuery, via the extension
     builtin. *)
  Printf.printf "who said 'recording'? %s\n\n"
    (run
       "for $u in doc(\"transcript.xml\")//mention[@entity = \"recording\"]\
        /select-wide::utterance\n\
        return concat(string($u/@speaker), \": \", \
        standoff-snippet($u, \"transcript.txt\"))");

  (* Pull the actual text of each mention out of the BLOB. *)
  let doc =
    Collection.doc coll
      (Option.get (Collection.doc_id_of_name coll "transcript.xml"))
  in
  let annots = Annots.extract Config.default doc in
  let blob = Option.get (Collection.blob coll "transcript.txt") in
  print_endline "mention snippets from the transcript BLOB:";
  Array.iter
    (fun pre ->
      match (Doc.attribute doc pre "entity", Annots.area_of annots pre) with
      | Some entity, Some area ->
          Printf.printf "  %-10s %S\n" entity (Blob.read_area blob area)
      | _ -> ())
    (Doc.elements_named doc "mention")
