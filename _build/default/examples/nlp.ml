(* Natural language processing: concurrent, overlapping annotation
   hierarchies over one text.

   Three independent tools annotate the same sentence by token
   position: a syntactic parser (sentences, phrases), a named-entity
   recogniser, and a prosody tagger whose units cross phrase
   boundaries — the classic "multiple hierarchies" problem of
   concurrent markup (paper section 1).  A separable verb construction
   gives one annotation a non-contiguous area.

     dune exec examples/nlp.exe *)

module Collection = Standoff_store.Collection
module Blob = Standoff_store.Blob
module Engine = Standoff_xquery.Engine

(* Token positions 0-12:
   0:ze  1:belde  2:haar  3:moeder  4:gisteren  5:na  6:een  7:lange
   8:dag  9:op  10:en  11:ging  12:slapen
   Dutch: "ze belde haar moeder gisteren na een lange dag op en ging
   slapen" — the separable verb "belde ... op" occupies positions 1
   and 9: a non-contiguous area. *)
let corpus =
  "ze belde haar moeder gisteren na een lange dag op en ging slapen"

let region (a, b) =
  Printf.sprintf "<region><start>%d</start><end>%d</end></region>" a b

let annotations =
  String.concat ""
    [
      "<corpus>";
      (* syntax layer *)
      "<syntax>";
      Printf.sprintf "<sentence id=\"s1\">%s</sentence>" (region (0, 12));
      Printf.sprintf "<np id=\"np1\" role=\"subj\">%s</np>" (region (0, 0));
      Printf.sprintf "<np id=\"np2\" role=\"obj\">%s</np>" (region (2, 3));
      Printf.sprintf "<pp id=\"pp1\">%s</pp>" (region (5, 8));
      (* the separable verb: belde ... op *)
      Printf.sprintf "<verb id=\"v1\" lemma=\"opbellen\">%s%s</verb>"
        (region (1, 1)) (region (9, 9));
      Printf.sprintf "<verb id=\"v2\" lemma=\"gaan\">%s</verb>" (region (11, 11));
      "</syntax>";
      (* entity layer *)
      "<entities>";
      Printf.sprintf "<entity type=\"person\">%s</entity>" (region (2, 3));
      Printf.sprintf "<entity type=\"time\">%s</entity>" (region (4, 4));
      "</entities>";
      (* prosody layer: intonation units crossing phrase boundaries *)
      "<prosody>";
      Printf.sprintf "<unit contour=\"rise\">%s</unit>" (region (0, 4));
      Printf.sprintf "<unit contour=\"fall\">%s</unit>" (region (5, 12));
      "</prosody>";
      (* token layer *)
      "<tokens>";
      String.concat ""
        (List.mapi
           (fun i w -> Printf.sprintf "<token form=\"%s\">%s</token>" w (region (i, i)))
           (String.split_on_char ' ' corpus));
      "</tokens>";
      "</corpus>";
    ]

let prolog = "declare option standoff-region \"region\";\n"

let () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"corpus.xml" annotations);
  Collection.add_blob coll (Blob.of_string ~name:"corpus.txt" corpus);
  let engine = Engine.create coll in
  let run q = (Engine.run engine (prolog ^ q)).Engine.serialized in

  Printf.printf "corpus: %s\n\n" corpus;

  (* Entities inside object noun phrases — navigation between two
     annotation layers that share no tree structure. *)
  Printf.printf "entities inside object NPs: %s\n"
    (run
       "for $e in doc(\"corpus.xml\")//np[@role = \"obj\"]\
        /select-narrow::entity return string($e/@type)");

  (* Tokens of the separable verb: the area has two regions, and
     containment collects exactly its two tokens. *)
  Printf.printf "tokens of the separable verb 'opbellen': %s\n"
    (run
       "for $t in doc(\"corpus.xml\")//verb[@lemma = \"opbellen\"]\
        /select-narrow::token return string($t/@form)");

  (* Tokens not covered by any syntactic phrase (np/pp/verb):
     containment anti-join over a union of context sets. *)
  Printf.printf "tokens outside every phrase: %s\n"
    (run
       "for $t in (doc(\"corpus.xml\")//np | doc(\"corpus.xml\")//pp \
        | doc(\"corpus.xml\")//verb)/reject-narrow::token \
        return string($t/@form)");

  (* Prosodic units that cross a phrase boundary: they overlap a
     phrase without either containing the other. *)
  Printf.printf "prosodic units overlapping the PP: %s\n"
    (run
       "for $u in doc(\"corpus.xml\")//pp/select-wide::unit \
        return string($u/@contour)");

  (* Phrases wholly inside the rising intonation unit. *)
  Printf.printf "phrases inside the rising contour: %s\n"
    (run
       "for $p in doc(\"corpus.xml\")//unit[@contour = \"rise\"]\
        /select-narrow::*[name(.) = \"np\" or name(.) = \"pp\"] \
        return string($p/@id)");

  (* Cross-check a non-contiguous containment subtlety: the verb area
     {1,9} is NOT contained in the prosodic unit [0,4] (token 9
     escapes), but it does overlap it. *)
  Printf.printf "is 'opbellen' inside the rising unit? %s\n"
    (run
       "exists(doc(\"corpus.xml\")//unit[@contour = \"rise\"]\
        /select-narrow::verb[@lemma = \"opbellen\"])");
  Printf.printf "does it overlap the rising unit?     %s\n"
    (run
       "exists(doc(\"corpus.xml\")//unit[@contour = \"rise\"]\
        /select-wide::verb[@lemma = \"opbellen\"])")
