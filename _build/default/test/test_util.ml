(* Tests for the shared substrate: vectors, binary search, PRNG,
   timing. *)

module Vec = Standoff_util.Vec
module Search = Standoff_util.Search
module Prng = Standoff_util.Prng
module Timing = Standoff_util.Timing

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check int) "last" (99 * 99) (Vec.last v)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Vec.length v);
  Alcotest.(check (list int)) "rest" [ 1; 2 ] (Vec.to_list v)

let test_vec_remove_insert () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  Vec.remove v 1;
  Alcotest.(check (list int)) "after remove" [ 10; 30; 40 ] (Vec.to_list v);
  Vec.insert v 1 99;
  Alcotest.(check (list int)) "after insert" [ 10; 99; 30; 40 ] (Vec.to_list v);
  Vec.insert v 4 7;
  Alcotest.(check (list int)) "insert at end" [ 10; 99; 30; 40; 7 ]
    (Vec.to_list v);
  Vec.insert v 0 1;
  Alcotest.(check int) "insert at front" 1 (Vec.get v 0)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 1 out of bounds (len 1)") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () ->
      ignore (Vec.pop v);
      ignore (Vec.pop v))

let test_vec_sort () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

(* Floats exercise the flat-float-array hazard the backing store must
   avoid. *)
let test_vec_floats () =
  let v = Vec.create () in
  Vec.push v 1.5;
  Vec.push v 2.5;
  Vec.insert v 1 0.25;
  Alcotest.(check (float 0.0)) "sum" 4.25
    (Vec.fold_left ( +. ) 0.0 v);
  Vec.sort compare v;
  Alcotest.(check (float 0.0)) "min first" 0.25 (Vec.get v 0);
  Alcotest.(check (float 0.0)) "pop" 2.5 (Vec.pop v)

let test_vec_truncate_clear () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_lower_bound () =
  let a = [| 1; 3; 3; 5; 9 |] in
  Alcotest.(check int) "lb 0" 0 (Search.lower_bound_int a 0);
  Alcotest.(check int) "lb 3" 1 (Search.lower_bound_int a 3);
  Alcotest.(check int) "lb 4" 3 (Search.lower_bound_int a 4);
  Alcotest.(check int) "lb 10" 5 (Search.lower_bound_int a 10);
  Alcotest.(check int) "ub 3" 3 (Search.upper_bound ~cmp:compare a 3);
  Alcotest.(check bool) "mem 5" true (Search.mem_sorted_int a 5);
  Alcotest.(check bool) "mem 4" false (Search.mem_sorted_int a 4)

let test_lower_bound_empty () =
  Alcotest.(check int) "empty" 0 (Search.lower_bound_int [||] 42)

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let t = Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Prng.int t 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Prng.int_in_range t 5 8 in
    Alcotest.(check bool) "in closed range" true (y >= 5 && y <= 8);
    let f = Prng.float t in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_shuffle_permutes () =
  let t = Prng.create 11L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let t = Prng.create 3L in
  let child = Prng.split t in
  let parent_next = Prng.next_int64 t and child_next = Prng.next_int64 child in
  Alcotest.(check bool) "different streams" true (parent_next <> child_next)

let test_timeout_fires () =
  match
    Timing.run_with_timeout ~seconds:0.05 (fun d ->
        while true do
          Timing.checkpoint d
        done)
  with
  | Timing.Timed_out _ -> ()
  | Timing.Finished _ -> Alcotest.fail "infinite loop finished?"

let test_timeout_completes () =
  match Timing.run_with_timeout ~seconds:10.0 (fun _ -> 42) with
  | Timing.Finished (42, _) -> ()
  | Timing.Finished _ -> Alcotest.fail "wrong value"
  | Timing.Timed_out _ -> Alcotest.fail "spurious timeout"

let qcheck_lower_bound =
  QCheck.Test.make ~name:"lower_bound is first index >= key" ~count:500
    QCheck.(pair (list small_nat) small_nat)
    (fun (l, key) ->
      let a = Array.of_list (List.sort compare l) in
      let i = Search.lower_bound_int a key in
      let ok_left = Array.for_all (fun x -> x < key) (Array.sub a 0 i) in
      let ok_right =
        Array.for_all (fun x -> x >= key) (Array.sub a i (Array.length a - i))
      in
      ok_left && ok_right)

let qcheck_vec_roundtrip =
  QCheck.Test.make ~name:"Vec.of_list |> to_list = id" ~count:500
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "remove/insert" `Quick test_vec_remove_insert;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          Alcotest.test_case "floats" `Quick test_vec_floats;
          Alcotest.test_case "truncate/clear" `Quick test_vec_truncate_clear;
          QCheck_alcotest.to_alcotest qcheck_vec_roundtrip;
        ] );
      ( "search",
        [
          Alcotest.test_case "lower_bound" `Quick test_lower_bound;
          Alcotest.test_case "empty" `Quick test_lower_bound_empty;
          QCheck_alcotest.to_alcotest qcheck_lower_bound;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
        ] );
      ( "timing",
        [
          Alcotest.test_case "timeout fires" `Quick test_timeout_fires;
          Alcotest.test_case "completion" `Quick test_timeout_completes;
        ] );
    ]
