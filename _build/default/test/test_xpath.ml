(* XPath axis tests: hand-checked steps on a fixed document plus a
   qcheck comparison of every axis against a naive reference
   implementation over random trees. *)

module Dom = Standoff_xml.Dom
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Table = Standoff_relalg.Table
module Axes = Standoff_xpath.Axes
module Node_test = Standoff_xpath.Node_test
module Step = Standoff_xpath.Step

let sample =
  "<a><b><c/><d><c/></d></b><e><c/></e><b/></a>"
  (* pres: 0=doc 1=a 2=b 3=c 4=d 5=c 6=e 7=c 8=b *)

let doc () = Doc.parse ~name:"s" sample

let eval d axis context test =
  Array.to_list (Axes.eval d axis ~context:(Array.of_list context) ~test)

let test_descendant () =
  let d = doc () in
  Alcotest.(check (list int)) "all from root" [ 2; 3; 4; 5; 6; 7; 8 ]
    (eval d Axes.Descendant [ 1 ] Node_test.Any);
  Alcotest.(check (list int)) "name test" [ 3; 5; 7 ]
    (eval d Axes.Descendant [ 1 ] (Node_test.Name "c"));
  Alcotest.(check (list int)) "nested contexts pruned" [ 3; 4; 5 ]
    (eval d Axes.Descendant [ 2; 4 ] Node_test.Any)

let test_child () =
  let d = doc () in
  Alcotest.(check (list int)) "root children" [ 2; 6; 8 ]
    (eval d Axes.Child [ 1 ] Node_test.Any);
  Alcotest.(check (list int)) "merged sorted" [ 3; 4; 7 ]
    (eval d Axes.Child [ 2; 6 ] Node_test.Any)

let test_parent_ancestor () =
  let d = doc () in
  Alcotest.(check (list int)) "parent" [ 2; 6 ]
    (eval d Axes.Parent [ 3; 7 ] Node_test.Any);
  Alcotest.(check (list int)) "ancestor" [ 1; 2; 4 ]
    (eval d Axes.Ancestor [ 5 ] Node_test.Any);
  (* Under node() the document node itself is an ancestor. *)
  Alcotest.(check (list int)) "ancestor-or-self" [ 0; 1; 2; 4; 5 ]
    (eval d Axes.Ancestor_or_self [ 5 ] Node_test.Kind_node)

let test_following_preceding () =
  let d = doc () in
  Alcotest.(check (list int)) "following of b" [ 6; 7; 8 ]
    (eval d Axes.Following [ 2 ] Node_test.Any);
  Alcotest.(check (list int)) "preceding of e" [ 2; 3; 4; 5 ]
    (eval d Axes.Preceding [ 6 ] Node_test.Any);
  (* Ancestors are not preceding. *)
  Alcotest.(check (list int)) "preceding of c in d" [ 3 ]
    (eval d Axes.Preceding [ 5 ] Node_test.Any)

let test_siblings () =
  let d = doc () in
  Alcotest.(check (list int)) "following siblings" [ 6; 8 ]
    (eval d Axes.Following_sibling [ 2 ] Node_test.Any);
  Alcotest.(check (list int)) "preceding siblings" [ 2; 6 ]
    (eval d Axes.Preceding_sibling [ 8 ] Node_test.Any)

let test_self () =
  let d = doc () in
  Alcotest.(check (list int)) "self with name test" [ 3 ]
    (eval d Axes.Self [ 3; 4 ] (Node_test.Name "c"))

let test_prune () =
  let d = doc () in
  Alcotest.(check (array int)) "nested removed" [| 1 |]
    (Axes.prune_descendant d [| 1; 2; 5 |]);
  Alcotest.(check (array int)) "disjoint kept" [| 2; 6; 8 |]
    (Axes.prune_descendant d [| 2; 6; 8 |])

let test_axis_names () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Axes.axis_to_string a) true
        (Axes.axis_of_string (Axes.axis_to_string a) = a))
    [
      Axes.Self; Axes.Child; Axes.Descendant; Axes.Descendant_or_self;
      Axes.Parent; Axes.Ancestor; Axes.Ancestor_or_self; Axes.Following;
      Axes.Preceding; Axes.Following_sibling; Axes.Preceding_sibling;
    ]

(* ------------------------------------------------------------ *)
(* Reference semantics                                           *)

let reference d axis context test =
  let n = Doc.node_count d in
  let is_anc a b = Doc.is_ancestor d a b in
  let parent p = Doc.parent_of d p in
  let member p c =
    match axis with
    | Axes.Self -> p = c
    | Axes.Child -> parent p = Some c
    | Axes.Descendant -> is_anc c p
    | Axes.Descendant_or_self -> p = c || is_anc c p
    | Axes.Parent -> Some p = parent c
    | Axes.Ancestor -> is_anc p c
    | Axes.Ancestor_or_self -> p = c || is_anc p c
    | Axes.Following -> p > c && not (is_anc c p)
    | Axes.Preceding -> p < c && not (is_anc p c)
    | Axes.Following_sibling -> p > c && parent p = parent c && parent c <> None
    | Axes.Preceding_sibling -> p < c && parent p = parent c && parent c <> None
  in
  List.init n Fun.id
  |> List.filter (fun p ->
         Node_test.matches d test p && List.exists (member p) context)

let gen_tree =
  let open QCheck.Gen in
  let rec node depth =
    if depth = 0 then return (Dom.text "t")
    else
      frequency
        [
          (1, return (Dom.text "x"));
          ( 4,
            map2
              (fun tag children -> Dom.element tag children)
              (oneofl [ "a"; "b"; "c" ])
              (list_size (0 -- 4) (node (depth - 1))) );
        ]
  in
  map
    (fun children -> Dom.document (Dom.element "root" children))
    (list_size (0 -- 5) (node 3))

let all_axes =
  [
    Axes.Self; Axes.Child; Axes.Descendant; Axes.Descendant_or_self;
    Axes.Parent; Axes.Ancestor; Axes.Ancestor_or_self; Axes.Following;
    Axes.Preceding; Axes.Following_sibling; Axes.Preceding_sibling;
  ]

let arbitrary_case =
  QCheck.make
    ~print:(fun (dom, picks, _) ->
      Printf.sprintf "%s with picks %s"
        (Standoff_xml.Serializer.to_string dom)
        (String.concat "," (List.map string_of_int picks)))
    QCheck.Gen.(
      triple gen_tree (list_size (1 -- 5) (int_bound 50)) (int_bound 2))

let qcheck_axes_match_reference =
  QCheck.Test.make ~name:"every axis agrees with naive reference" ~count:300
    arbitrary_case (fun (dom, picks, test_pick) ->
      let d = Doc.of_dom ~name:"t" dom in
      let n = Doc.node_count d in
      let context =
        List.sort_uniq compare (List.map (fun p -> p mod n) picks)
      in
      let test =
        match test_pick with
        | 0 -> Node_test.Any
        | 1 -> Node_test.Kind_node
        | _ -> Node_test.Name "b"
      in
      List.for_all
        (fun axis ->
          eval d axis context test = reference d axis context test)
        all_axes)

(* The loop-lifted variant must equal running the plain axis once per
   iteration. *)
let qcheck_lifted_equals_per_iteration =
  QCheck.Test.make ~name:"eval_lifted = per-iteration eval" ~count:200
    (QCheck.make
       ~print:(fun (dom, rows) ->
         Printf.sprintf "%s rows=%s"
           (Standoff_xml.Serializer.to_string dom)
           (String.concat ","
              (List.map (fun (i, p) -> Printf.sprintf "%d:%d" i p) rows)))
       QCheck.Gen.(pair gen_tree (list_size (1 -- 8) (pair (int_bound 3) (int_bound 50)))))
    (fun (dom, rows) ->
      let d = Doc.of_dom ~name:"t" dom in
      let n = Doc.node_count d in
      let rows =
        List.sort_uniq compare (List.map (fun (i, p) -> (i, p mod n)) rows)
      in
      let context_iters = Array.of_list (List.map fst rows) in
      let context_pres = Array.of_list (List.map snd rows) in
      List.for_all
        (fun axis ->
          let lifted_iters, lifted_pres =
            Axes.eval_lifted d axis ~context_iters ~context_pres
              ~test:Node_test.Any
          in
          let expected =
            List.concat_map
              (fun iter ->
                let context =
                  rows
                  |> List.filter (fun (i, _) -> i = iter)
                  |> List.map snd |> Array.of_list
                in
                Array.to_list (Axes.eval d axis ~context ~test:Node_test.Any)
                |> List.map (fun pre -> (iter, pre)))
              (List.sort_uniq compare (List.map fst rows))
          in
          List.combine (Array.to_list lifted_iters) (Array.to_list lifted_pres)
          = expected)
        all_axes)

(* ------------------------------------------------------------ *)
(* Loop-lifted step over tables                                  *)

let test_lifted_step () =
  let coll = Collection.create () in
  let id = Collection.load_string coll ~name:"s" sample in
  let node pre = Item.Node { Collection.doc_id = id; pre } in
  (* Two iterations with different contexts, one shared table. *)
  let context = Table.make [| 1; 2; 2 |] [| node 2; node 4; node 6 |] in
  let out =
    Step.axis_step coll Axes.Descendant ~test:(Node_test.Name "c") context
  in
  let pres it =
    List.map
      (fun i -> (Item.node_exn i).Collection.pre)
      (Table.sequence_of_iter out it)
  in
  Alcotest.(check (list int)) "iter 1" [ 3; 5 ] (pres 1);
  Alcotest.(check (list int)) "iter 2" [ 5; 7 ] (pres 2)

let test_attribute_step () =
  let coll = Collection.create () in
  let id =
    Collection.load_string coll ~name:"attrs"
      "<r><x id=\"1\" start=\"0\"/><y id=\"2\"/></r>"
  in
  let node pre = Item.Node { Collection.doc_id = id; pre } in
  let context = Table.make [| 1; 1 |] [| node 2; node 3 |] in
  let all = Step.attribute_step coll ~test:Node_test.Any context in
  Alcotest.(check int) "three attributes" 3 (Table.row_count all);
  let ids = Step.attribute_step coll ~test:(Node_test.Name "id") context in
  Alcotest.(check int) "two id attributes" 2 (Table.row_count ids)

let test_step_rejects_atoms () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"s" sample);
  let context = Table.make [| 1 |] [| Item.Int 3L |] in
  Alcotest.(check bool) "raises" true
    (match Step.axis_step coll Axes.Child ~test:Node_test.Any context with
    | exception Step.Not_a_node _ -> true
    | _ -> false)

let () =
  Alcotest.run "xpath"
    [
      ( "axes",
        [
          Alcotest.test_case "descendant" `Quick test_descendant;
          Alcotest.test_case "child" `Quick test_child;
          Alcotest.test_case "parent/ancestor" `Quick test_parent_ancestor;
          Alcotest.test_case "following/preceding" `Quick
            test_following_preceding;
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "self" `Quick test_self;
          Alcotest.test_case "staircase pruning" `Quick test_prune;
          Alcotest.test_case "axis names" `Quick test_axis_names;
          QCheck_alcotest.to_alcotest qcheck_axes_match_reference;
          QCheck_alcotest.to_alcotest qcheck_lifted_equals_per_iteration;
        ] );
      ( "step",
        [
          Alcotest.test_case "loop-lifted step" `Quick test_lifted_step;
          Alcotest.test_case "attribute step" `Quick test_attribute_step;
          Alcotest.test_case "atoms rejected" `Quick test_step_rejects_atoms;
        ] );
    ]
