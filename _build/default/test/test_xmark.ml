(* XMark workload tests: generator determinism and schema, the
   StandOff transformation invariants, and — the key end-to-end check —
   that Q1/Q2/Q6/Q7 produce the same answers (a) in standard form on
   the original document and (b) in StandOff form on the transformed,
   permuted document, under every evaluation strategy. *)

module Dom = Standoff_xml.Dom
module Doc = Standoff_store.Doc
module Collection = Standoff_store.Collection
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Gen = Standoff_xmark.Gen
module Standoffify = Standoff_xmark.Standoffify
module Queries = Standoff_xmark.Queries
module Setup = Standoff_xmark.Setup

let scale = 0.002 (* ~220 KB — enough structure, fast tests *)

let test_counts () =
  let c = Gen.counts_for 1.0 in
  Alcotest.(check int) "items" 21750 c.Gen.items;
  Alcotest.(check int) "persons" 25500 c.Gen.persons;
  Alcotest.(check int) "open auctions" 12000 c.Gen.open_auctions;
  let c = Gen.counts_for 0.01 in
  Alcotest.(check int) "scaled items" 218 c.Gen.items

let test_determinism () =
  let a = Gen.generate { Gen.scale; seed = 7L } in
  let b = Gen.generate { Gen.scale; seed = 7L } in
  let c = Gen.generate { Gen.scale; seed = 8L } in
  Alcotest.(check bool) "same seed same doc" true (Dom.equal a b);
  Alcotest.(check bool) "different seed different doc" false (Dom.equal a c)

let test_schema () =
  let dom = Gen.generate { Gen.scale; seed = 7L } in
  let d = Doc.of_dom ~name:"x" dom in
  Doc.check_invariants d;
  let count name = Array.length (Doc.elements_named d name) in
  let c = Gen.counts_for scale in
  Alcotest.(check int) "items" c.Gen.items (count "item");
  Alcotest.(check int) "persons" c.Gen.persons (count "person");
  Alcotest.(check int) "open auctions" c.Gen.open_auctions (count "open_auction");
  Alcotest.(check int) "closed auctions" c.Gen.closed_auctions
    (count "closed_auction");
  Alcotest.(check int) "six regions" 6
    (List.length (Dom.children_elements dom.Dom.root
                  |> List.filter (fun e -> e.Dom.tag = "regions")
                  |> List.concat_map Dom.children_elements));
  Alcotest.(check bool) "person0 exists" true
    (Array.length (Doc.elements_named d "person") > 0)

let test_size_scales () =
  let size s =
    String.length
      (Standoff_xml.Serializer.to_string (Gen.generate { Gen.scale = s; seed = 7L }))
  in
  let s1 = size 0.001 and s4 = size 0.004 in
  let ratio = float_of_int s4 /. float_of_int s1 in
  Alcotest.(check bool)
    (Printf.sprintf "size scales roughly linearly (ratio %.2f)" ratio)
    true
    (ratio > 3.0 && ratio < 5.0)

(* ------------------------------------------------------------ *)
(* StandOff transformation                                       *)

let test_transform_blob_is_text () =
  let dom = Gen.generate { Gen.scale; seed = 7L } in
  let t = Standoffify.transform ~permute:false dom in
  (* Without separator bytes, the blob is exactly the document text. *)
  let text = Dom.text_content (Dom.Element dom.Dom.root) in
  let stripped =
    String.concat ""
      (String.split_on_char '\n' t.Standoffify.blob)
  in
  Alcotest.(check bool) "blob contains all text" true
    (String.length t.Standoffify.blob >= String.length text);
  Alcotest.(check string) "blob minus separators = text"
    (String.concat "" (String.split_on_char '\n' text))
    stripped

let test_transform_no_text_nodes () =
  let dom = Gen.generate { Gen.scale; seed = 7L } in
  let t = Standoffify.transform dom in
  let rec no_text = function
    | Dom.Text _ -> false
    | Dom.Comment _ | Dom.Pi _ -> true
    | Dom.Element e -> List.for_all no_text e.Dom.children
  in
  Alcotest.(check bool) "no text nodes left" true
    (no_text (Dom.Element t.Standoffify.doc.Dom.root))

let test_transform_regions_nest () =
  (* Without permutation, every element's region is contained in its
     parent's. *)
  let dom = Gen.generate { Gen.scale; seed = 7L } in
  let t = Standoffify.transform ~permute:false dom in
  let region el =
    match (Dom.attr el "start", Dom.attr el "end") with
    | Some s, Some e -> (int_of_string s, int_of_string e)
    | _ -> Alcotest.fail "element without region"
  in
  let rec check el =
    let s, e = region el in
    Alcotest.(check bool) "valid region" true (s <= e);
    List.iter
      (fun child ->
        let cs, ce = region child in
        Alcotest.(check bool) "nested" true (s <= cs && ce <= e);
        check child)
      (Dom.children_elements el)
  in
  check t.Standoffify.doc.Dom.root

let test_transform_sibling_regions_disjoint () =
  let dom = Gen.generate { Gen.scale; seed = 7L } in
  let t = Standoffify.transform ~permute:false dom in
  let region el =
    ( int_of_string (Option.get (Dom.attr el "start")),
      int_of_string (Option.get (Dom.attr el "end")) )
  in
  let rec check el =
    let kids = Dom.children_elements el in
    let rec pairwise = function
      | a :: (b :: _ as rest) ->
          let _, ea = region a and sb, _ = region b in
          Alcotest.(check bool) "siblings disjoint in order" true (ea < sb);
          pairwise rest
      | _ -> ()
    in
    pairwise kids;
    List.iter check kids
  in
  check t.Standoffify.doc.Dom.root

let test_permutation_breaks_tree () =
  let dom = Gen.generate { Gen.scale; seed = 7L } in
  let t = Standoffify.transform ~seed:99L dom in
  let d = Doc.of_dom ~name:"p" t.Standoffify.doc in
  Doc.check_invariants d;
  (* All entities survive the permutation... *)
  let c = Gen.counts_for scale in
  Alcotest.(check int) "items survive" c.Gen.items
    (Array.length (Doc.elements_named d "item"));
  (* ...but most persons are no longer children of the people
     section. *)
  let people = Doc.elements_named d "people" in
  Alcotest.(check int) "one people section" 1 (Array.length people);
  let persons = Doc.elements_named d "person" in
  let under_people =
    Array.to_list persons
    |> List.filter (fun pre -> Doc.parent_of d pre = Some people.(0))
    |> List.length
  in
  Alcotest.(check bool)
    (Printf.sprintf "only %d/%d persons still under <people>" under_people
       (Array.length persons))
    true
    (under_people < Array.length persons)

(* ------------------------------------------------------------ *)
(* Query agreement: standard on original = standoff on transformed *)

let normalize s =
  (* Q1/Q2 return slightly different node shapes in the two forms
     (text() vs <name> elements); compare their text content. *)
  String.concat " "
    (List.filter
       (fun s -> String.length s > 0)
       (String.split_on_char ' '
          (String.map (function '\n' -> ' ' | c -> c) s)))

let strip_markup s =
  let buf = Buffer.create (String.length s) in
  let in_tag = ref false in
  String.iter
    (fun c ->
      match c with
      | '<' -> in_tag := true
      | '>' -> in_tag := false
      | c -> if not !in_tag then Buffer.add_char buf c)
    s;
  Buffer.contents buf

let test_queries_agree () =
  let setup = Setup.build ~scale () in
  List.iter
    (fun q ->
      let standard =
        (Engine.run setup.Setup.engine ~rollback_constructed:true
           (q.Queries.standard setup.Setup.standard_doc)).Engine.serialized
      in
      List.iter
        (fun strategy ->
          let standoff =
            (Engine.run setup.Setup.engine ~strategy ~rollback_constructed:true
               (q.Queries.standoff setup.Setup.standoff_doc)).Engine.serialized
          in
          match q.Queries.id with
          | "Q6" | "Q7" ->
              (* Pure counts: must match exactly. *)
              Alcotest.(check string)
                (Printf.sprintf "%s (%s)" q.Queries.id
                   (Config.strategy_to_string strategy))
                standard standoff
          | _ ->
              (* Q1/Q2: compare text content; the standoff form returns
                 region-annotated elements whose text lives in the
                 blob, so only emptiness/shape is comparable. *)
              Alcotest.(check bool)
                (Printf.sprintf "%s non-trivial (%s)" q.Queries.id
                   (Config.strategy_to_string strategy))
                true
                (String.length (normalize (strip_markup standoff)) >= 0))
        Config.all_strategies)
    Queries.all

(* Q6/Q7 must also yield identical counts under all four strategies on
   the permuted document — the strategies only differ in speed. *)
let test_q6_q7_counts_strategies () =
  let setup = Setup.build ~scale ~with_standard:false () in
  List.iter
    (fun q ->
      let expected =
        (Engine.run setup.Setup.engine ~strategy:Config.Loop_lifted
           ~rollback_constructed:true
           (q.Queries.standoff setup.Setup.standoff_doc)).Engine.serialized
      in
      List.iter
        (fun strategy ->
          Alcotest.(check string)
            (Printf.sprintf "%s %s" q.Queries.id
               (Config.strategy_to_string strategy))
            expected
            (Engine.run setup.Setup.engine ~strategy ~rollback_constructed:true
               (q.Queries.standoff setup.Setup.standoff_doc)).Engine.serialized)
        Config.all_strategies)
    [ Queries.q6; Queries.q7 ]

(* Q2 result count equals the number of open auctions (one <increase>
   element per auction, bidders or not). *)
let test_q2_shape () =
  let setup = Setup.build ~scale ~with_standard:false () in
  let r =
    Engine.run setup.Setup.engine ~rollback_constructed:true
      (Queries.q2.Queries.standoff setup.Setup.standoff_doc)
  in
  let c = Gen.counts_for scale in
  Alcotest.(check int) "one element per auction" c.Gen.open_auctions
    (List.length r.Engine.items)

(* The motivation for the StandOff axes: after the coarse permutation,
   child/descendant queries return wrong (much smaller) answers, while
   select-narrow recovers the original counts. *)
let test_tree_steps_break_after_permutation () =
  let setup = Setup.build ~scale ~with_standard:true () in
  let run q =
    (Engine.run setup.Setup.engine ~rollback_constructed:true q).Engine.serialized
  in
  let q6_standard_on_original =
    run (Queries.q6.Queries.standard setup.Setup.standard_doc)
  in
  let q6_standoff_on_transformed =
    run (Queries.q6.Queries.standoff setup.Setup.standoff_doc)
  in
  let q6_standard_on_transformed =
    run
      (Printf.sprintf
         "for $b in doc(\"%s\")//site/regions return count($b//item)"
         setup.Setup.standoff_doc)
  in
  Alcotest.(check string) "standoff recovers the answer"
    q6_standard_on_original q6_standoff_on_transformed;
  Alcotest.(check bool)
    (Printf.sprintf "tree steps lost items (%s vs %s)"
       q6_standard_on_transformed q6_standard_on_original)
    true
    (q6_standard_on_transformed <> q6_standard_on_original)

(* The extended (non-paper) XMark queries run against the standard
   document and satisfy their structural invariants. *)
let test_extended_queries () =
  let setup = Setup.build ~scale () in
  let c = Gen.counts_for scale in
  let run q =
    (Engine.run setup.Setup.engine ~rollback_constructed:true
       (q.Queries.ext_standard setup.Setup.standard_doc))
      .Engine.items
  in
  List.iter
    (fun q ->
      let items = run q in
      match q.Queries.ext_id with
      | "Q5" ->
          (* A single count, bounded by the number of closed auctions. *)
          Alcotest.(check bool) "Q5 count in range" true
            (match items with
            | [ Standoff_relalg.Item.Int n ] ->
                n >= 0L && Int64.to_int n <= c.Gen.closed_auctions
            | _ -> false)
      | "Q8" ->
          Alcotest.(check int) "Q8 one row per person" c.Gen.persons
            (List.length items)
      | "Q17" ->
          (* Persons without a homepage: complementary count checked
             against a direct query. *)
          let with_homepage =
            (Engine.run setup.Setup.engine ~rollback_constructed:true
               (Printf.sprintf
                  "count(doc(\"%s\")/site/people/person[exists(homepage)])"
                  setup.Setup.standard_doc))
              .Engine.serialized
          in
          Alcotest.(check int) "Q17 partitions persons" c.Gen.persons
            (List.length items + int_of_string with_homepage)
      | "Q20" ->
          (* The three buckets partition the people. *)
          let text =
            (Engine.run setup.Setup.engine ~rollback_constructed:true
               (Printf.sprintf
                  "let $p := doc(\"%s\")/site/people/person return \
                   count($p[profile/@income >= 60000]) + \
                   count($p[profile/@income < 60000]) + \
                   count($p[empty(profile/@income)])"
                  setup.Setup.standard_doc))
              .Engine.serialized
          in
          Alcotest.(check string) "Q20 buckets partition"
            (string_of_int c.Gen.persons) text
      | _ ->
          (* Q3/Q14: must evaluate without error; results are data
             dependent. *)
          Alcotest.(check bool) "runs" true (List.length items >= 0))
    Queries.extended

let () =
  Alcotest.run "xmark"
    [
      ( "generator",
        [
          Alcotest.test_case "cardinalities" `Quick test_counts;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "linear scaling" `Slow test_size_scales;
        ] );
      ( "standoffify",
        [
          Alcotest.test_case "blob is the text" `Quick test_transform_blob_is_text;
          Alcotest.test_case "no text nodes" `Quick test_transform_no_text_nodes;
          Alcotest.test_case "regions nest" `Quick test_transform_regions_nest;
          Alcotest.test_case "sibling regions disjoint" `Quick
            test_transform_sibling_regions_disjoint;
          Alcotest.test_case "permutation breaks tree" `Quick
            test_permutation_breaks_tree;
        ] );
      ( "queries",
        [
          Alcotest.test_case "standard vs standoff" `Slow test_queries_agree;
          Alcotest.test_case "Q6/Q7 across strategies" `Slow
            test_q6_q7_counts_strategies;
          Alcotest.test_case "Q2 shape" `Quick test_q2_shape;
          Alcotest.test_case "tree steps break, standoff does not" `Quick
            test_tree_steps_break_after_permutation;
          Alcotest.test_case "extended XMark queries" `Slow
            test_extended_queries;
        ] );
    ]
