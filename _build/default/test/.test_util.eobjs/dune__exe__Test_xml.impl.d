test/test_xml.ml: Alcotest Bytes Char List Printf QCheck QCheck_alcotest Standoff_xml String
