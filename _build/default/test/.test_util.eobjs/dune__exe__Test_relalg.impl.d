test/test_relalg.ml: Alcotest Array Fmt Fun Int64 List QCheck QCheck_alcotest Standoff_relalg Standoff_store
