test/test_xpath.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Standoff_relalg Standoff_store Standoff_xml Standoff_xpath String
