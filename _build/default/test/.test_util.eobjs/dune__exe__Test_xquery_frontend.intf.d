test/test_xquery_frontend.mli:
