test/test_standoff.mli:
