test/test_persist.ml: Alcotest Bytes Char Filename Fun Int64 List Printf QCheck QCheck_alcotest Standoff_store Standoff_util Standoff_xmark Standoff_xml Standoff_xquery String Sys
