test/test_atomic.ml: Alcotest Float Int64 QCheck QCheck_alcotest Standoff_relalg Standoff_store Standoff_xquery
