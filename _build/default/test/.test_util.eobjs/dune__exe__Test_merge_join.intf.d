test/test_merge_join.mli:
