test/test_store.ml: Alcotest Array List QCheck QCheck_alcotest Standoff_interval Standoff_store Standoff_xml
