test/test_merge_join.ml: Alcotest Array List Printf QCheck QCheck_alcotest Standoff Standoff_store Standoff_util String
