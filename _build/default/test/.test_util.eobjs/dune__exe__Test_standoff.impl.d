test/test_standoff.ml: Alcotest Array List Printf QCheck QCheck_alcotest Standoff Standoff_interval Standoff_store String
