test/test_interval.ml: Alcotest Gen Hashtbl Int64 List Option QCheck QCheck_alcotest Standoff_interval
