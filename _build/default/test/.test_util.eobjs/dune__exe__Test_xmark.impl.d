test/test_xmark.ml: Alcotest Array Buffer Int64 List Option Printf Standoff Standoff_relalg Standoff_store Standoff_xmark Standoff_xml Standoff_xquery String
