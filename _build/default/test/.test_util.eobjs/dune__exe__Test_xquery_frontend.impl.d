test/test_xquery_frontend.ml: Alcotest Float List Printf Standoff Standoff_relalg Standoff_store Standoff_xpath Standoff_xquery String
