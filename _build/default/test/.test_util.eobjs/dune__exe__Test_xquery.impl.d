test/test_xquery.ml: Alcotest List Printf QCheck QCheck_alcotest Standoff Standoff_relalg Standoff_store Standoff_util Standoff_xquery String
