(* End-to-end tests of the XQuery engine: language features, paths,
   the StandOff axes in query syntax, configuration via declare
   option, and the Figure 2/3 user-defined functions. *)

module Collection = Standoff_store.Collection
module Item = Standoff_relalg.Item
module Config = Standoff.Config
module Engine = Standoff_xquery.Engine
module Err = Standoff_xquery.Err
module Lexer = Standoff_xquery.Lexer

let figure1 =
  "<sample>\
   <video>\
   <shot id=\"Intro\" start=\"0\" end=\"8\"/>\
   <shot id=\"Interview\" start=\"8\" end=\"64\"/>\
   <shot id=\"Outro\" start=\"64\" end=\"94\"/>\
   </video>\
   <audio>\
   <music artist=\"U2\" start=\"0\" end=\"31\"/>\
   <music artist=\"Bach\" start=\"52\" end=\"94\"/>\
   </audio>\
   </sample>"

let make_engine () =
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"figure1.xml" figure1);
  ignore
    (Collection.load_string coll ~name:"books.xml"
       "<books><book year=\"1994\"><title>TCP/IP</title><price>65.95</price>\
        </book><book year=\"2000\"><title>Data on the Web</title>\
        <price>39.95</price></book><book year=\"2000\">\
        <title>XML Queries</title><price>120</price></book></books>");
  Engine.create coll

let run ?strategy ?context_doc q =
  let e = make_engine () in
  (Engine.run e ?strategy ?context_doc q).Engine.serialized

let check ?strategy ?context_doc name expected q =
  Alcotest.(check string) name expected (run ?strategy ?context_doc q)

(* ------------------------------------------------------------ *)
(* Basics                                                        *)

let test_literals () =
  check "int" "42" "42";
  check "negative" "-5" "-(2 + 3)";
  check "string" "hello" "\"hello\"";
  check "string escape" "it's" "\"it's\"";
  check "apos string" "say \"hi\"" "'say \"hi\"'";
  check "float" "2.5" "2.5";
  check "empty sequence" "" "()"

let test_arithmetic () =
  check "add" "7" "3 + 4";
  check "precedence" "14" "2 + 3 * 4";
  check "div exact" "3" "6 div 2";
  check "div inexact" "3.5" "7 div 2";
  check "idiv" "3" "7 idiv 2";
  check "mod" "1" "7 mod 2";
  check "unary minus" "-4" "-4";
  check "float promo" "3.5" "3 + 0.5"

let test_sequences () =
  check "comma" "1 2 3" "1, 2, 3";
  check "nested flatten" "1 2 3 4" "(1, (2, 3), 4)";
  check "range" "3 4 5" "3 to 5";
  check "empty range" "" "5 to 3"

let test_comparisons () =
  check "eq true" "true" "1 = 1";
  check "lt" "true" "1 < 2";
  check "general exists" "true" "(1, 2, 3) = 3";
  check "general no match" "false" "(1, 2) = (4, 5)";
  check "ne general (both directions)" "true" "(1, 2) != 1";
  check "string compare" "true" "\"abc\" < \"abd\"";
  check "empty comparison" "false" "() = 1"

let test_logic () =
  check "and" "false" "1 = 1 and 1 = 2";
  check "or" "true" "1 = 1 or 1 = 2";
  check "not" "true" "not(1 = 2)";
  check "ebv of empty" "false" "boolean(())";
  check "ebv of string" "true" "boolean(\"x\")"

let test_if () =
  check "then" "yes" "if (1 < 2) then \"yes\" else \"no\"";
  check "else" "no" "if (1 > 2) then \"yes\" else \"no\""

let test_flwor () =
  check "simple for" "1 2 3" "for $x in (1, 2, 3) return $x";
  check "nested for, let"
    "twenty one twenty two thirty one thirty two"
    "for $x in (\"twenty\", \"thirty\") for $y in (\"one\", \"two\") \
     let $z := ($x, $y) return $z";
  check "where" "2 4" "for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x";
  check "at position" "1 10 2 20 3 30"
    "for $x at $i in (10, 20, 30) return ($i, $x)";
  check "multiple in one clause" "11 21 12 22"
    "for $x in (1, 2), $y in (10, 20) return $y + $x"

let test_quantified () =
  check "some true" "true" "some $x in (1, 2, 3) satisfies $x > 2";
  check "some false" "false" "some $x in (1, 2) satisfies $x > 5";
  check "every true" "true" "every $x in (2, 4) satisfies $x mod 2 = 0";
  check "every false" "false" "every $x in (2, 3) satisfies $x mod 2 = 0";
  check "every vacuous" "true" "every $x in () satisfies $x > 100"

let test_functions () =
  check "count" "3" "count((1, 2, 3))";
  check "count empty" "0" "count(())";
  check "exists" "true" "exists((1))";
  check "empty()" "true" "empty(())";
  check "sum" "6" "sum((1, 2, 3))";
  check "sum empty" "0" "sum(())";
  check "min/max" "1 3" "(min((2, 1, 3)), max((2, 1, 3)))";
  check "avg" "2" "avg((1, 2, 3))";
  check "concat" "ab1" "concat(\"a\", \"b\", 1)";
  check "string-join" "a-b" "string-join((\"a\", \"b\"), \"-\")";
  check "contains" "true" "contains(\"hello\", \"ell\")";
  check "starts-with" "false" "starts-with(\"hello\", \"ell\")";
  check "string-length" "5" "string-length(\"hello\")";
  check "substring" "ell" "substring(\"hello\", 2, 3)";
  check "distinct-values" "1 2 3" "distinct-values((1, 2, 1, 3, 2))";
  check "string of int" "7" "string(7)"

let test_order_by () =
  check "ascending" "1 2 3" "for $x in (3, 1, 2) order by $x return $x";
  check "descending" "3 2 1"
    "for $x in (3, 1, 2) order by $x descending return $x";
  check "explicit ascending" "1 2 3"
    "for $x in (3, 1, 2) order by $x ascending return $x";
  check "two keys" "b1 a2 b2"
    "for $x in (\"b2\", \"a2\", \"b1\") \
     order by substring($x, 2, 1), substring($x, 1, 1) return $x";
  check "key expression" "1 -2 3"
    "for $x in (1, -2, 3) order by $x * $x return $x";
  check "string literals sort lexicographically" "10 21 9"
    "for $x in (\"21\", \"9\", \"10\") order by $x return $x";
  (* Untyped node content that looks numeric sorts numerically. *)
  check "untyped numeric sorts numerically" "39.95 65.95 120"
    "for $b in doc(\"books.xml\")//book order by $b/price \
     return string($b/price)";
  (* Empty keys sort first, keeping their input order among
     themselves. *)
  check "empty keys first" "2 4 0 1 3"
    "for $x in (1, 2, 3, 4, 0) \
     order by (if ($x mod 2 = 0) then () else $x) return $x";
  check "order by over nodes" "39.95 65.95 120"
    "for $b in doc(\"books.xml\")//book order by number($b/price) \
     return string($b/price)";
  check "order inside outer loop stays per-group" "1 2 9 1 5"
    "for $g in (1, 2) \
     return (for $x in (if ($g = 1) then (2, 9, 1) else (5, 1)) \
             order by $x return $x)";
  check "stable on ties" "a1 a2 b1"
    "for $x in (\"a1\", \"a2\", \"b1\") order by substring($x, 1, 1) return $x"

let test_set_operations () =
  check "intersect" "2"
    "count(doc(\"books.xml\")//book[@year = 2000] intersect \
     doc(\"books.xml\")//book)";
  check "except" "1"
    "count(doc(\"books.xml\")//book except \
     doc(\"books.xml\")//book[@year = 2000])";
  check "union keyword" "3"
    "count(doc(\"books.xml\")//book[1] union doc(\"books.xml\")//book)";
  check "except to empty" "0"
    "count(doc(\"books.xml\")//book except doc(\"books.xml\")//book)"

let test_more_builtins () =
  check "abs" "4" "abs(-4)";
  check "floor" "2" "floor(2.7)";
  check "ceiling" "3" "ceiling(2.1)";
  check "round" "3" "round(2.5)";
  check "normalize-space" "a b c" "normalize-space(\"  a\t b \n c \")";
  check "translate" "ABcA" "translate(\"abca\", \"ab\", \"AB\")";
  check "translate removes" "bc" "translate(\"abca\", \"a\", \"\")";
  check "reverse" "3 2 1" "reverse((1, 2, 3))";
  check "subsequence" "2 3" "subsequence((1, 2, 3, 4), 2, 2)";
  check "subsequence to end" "3 4" "subsequence((1, 2, 3, 4), 3)";
  check "index-of" "2 4" "index-of((\"a\", \"b\", \"c\", \"b\"), \"b\")"

let test_comments () =
  check "comment ignored" "3" "1 + (: one (: nested :) comment :) 2"

let test_declare_variable () =
  check "global variable" "10" "declare variable $n := 10; $n"

(* ------------------------------------------------------------ *)
(* Paths                                                         *)

let test_paths_basic () =
  check "doc + child" "<title>TCP/IP</title>"
    "doc(\"books.xml\")/books/book[1]/title";
  check "descendant" "3" "count(doc(\"books.xml\")//book)";
  check "attribute" "1994" "string(doc(\"books.xml\")//book[1]/@year)";
  check "name test after //" "2"
    "count(doc(\"books.xml\")//book[@year = 2000])";
  (* //title[1] is "first title of each parent", not "first title". *)
  check "text() per-context positional" "TCP/IP\nData on the Web\nXML Queries"
    "doc(\"books.xml\")//title[1]/text()";
  check "parenthesised positional" "TCP/IP"
    "(doc(\"books.xml\")//title)[1]/text()";
  check "wildcard" "6" "count(doc(\"books.xml\")/books/book/*)";
  check "parent" "books"
    "name(doc(\"books.xml\")//book[1]/parent::*)";
  check "dotdot" "books" "name(doc(\"books.xml\")//book[1]/..)"

let test_paths_predicates () =
  check "positional" "Data on the Web"
    "string(doc(\"books.xml\")//book[2]/title)";
  check "position()" "Data on the Web XML Queries"
    "for $t in doc(\"books.xml\")//book[position() > 1]/title \
     return string($t)";
  check "last()" "XML Queries"
    "string(doc(\"books.xml\")//book[last()]/title)";
  check "predicate on attribute" "2"
    "count(doc(\"books.xml\")//book[@year = \"2000\"])";
  check "chained predicates" "1"
    "count(doc(\"books.xml\")//book[@year = 2000][1])";
  (* Per-context-node positional semantics: every book's first child. *)
  check "per-context position" "3"
    "count(doc(\"books.xml\")//book/*[1])"

let test_paths_context () =
  check ~context_doc:"books.xml" "leading slash" "3" "count(/books/book)";
  check ~context_doc:"books.xml" "leading dslash" "3" "count(//book)";
  check ~context_doc:"books.xml" "context in predicate" "2"
    "count(//book[./@year = 2000])"

let test_path_union () =
  (* 3 titles plus book 1's price; book 1's title deduplicates. *)
  check "union dedup doc order" "4"
    "count(doc(\"books.xml\")//title | doc(\"books.xml\")//book[1]/* \
     | doc(\"books.xml\")//title)"

let test_arith_over_nodes () =
  check "sum over prices" "225.9"
    "sum(for $p in doc(\"books.xml\")//price return number($p))";
  check "untyped in comparison" "1"
    "count(doc(\"books.xml\")//book[price > 100])"

(* ------------------------------------------------------------ *)
(* Element constructors                                          *)

let test_constructor_basic () =
  check "fixed" "<out>hi</out>" "<out>hi</out>";
  check "empty" "<out/>" "<out/>";
  check "enclosed atomic" "<out>3</out>" "<out>{1 + 2}</out>";
  check "sequence spacing" "<out>1 2 3</out>" "<out>{1, 2, 3}</out>";
  check "attr enclosed" "<out n=\"7\"/>" "<out n=\"{3 + 4}\"/>";
  check "attr mixed" "<out n=\"x7y\"/>" "<out n=\"x{7}y\"/>";
  check "nested" "<a><b>1</b></a>" "<a><b>{1}</b></a>";
  check "escaped braces" "<a>{}</a>" "<a>{{}}</a>";
  check "entity in ctor" "<a>&amp;</a>" "<a>&amp;</a>"

let test_constructor_copies_nodes () =
  check "node copy" "<pick><title>TCP/IP</title></pick>"
    "<pick>{doc(\"books.xml\")//book[1]/title}</pick>";
  check "per iteration" "<t>TCP/IP</t>\n<t>Data on the Web</t>\n<t>XML Queries</t>"
    "for $b in doc(\"books.xml\")//book return <t>{string($b/title)}</t>"

(* ------------------------------------------------------------ *)
(* StandOff axes in query syntax                                 *)

let so_query expr = "declare option standoff-type \"xs:integer\";\n" ^ expr

let test_standoff_axes_table31 () =
  let q op =
    so_query
      (Printf.sprintf
         "for $s in doc(\"figure1.xml\")//music[@artist = \"U2\"]/%s::shot \
          return string($s/@id)"
         op)
  in
  check "select-narrow" "Intro" (q "select-narrow");
  check "select-wide" "Intro Interview" (q "select-wide");
  check "reject-narrow" "Interview Outro" (q "reject-narrow");
  check "reject-wide" "Outro" (q "reject-wide")

let test_standoff_axes_all_strategies () =
  List.iter
    (fun strategy ->
      check ~strategy "wide under strategy" "Intro Interview"
        (so_query
           "for $s in doc(\"figure1.xml\")//music[@artist = \"U2\"]\
            /select-wide::shot return string($s/@id)"))
    Config.all_strategies

let test_standoff_function_form () =
  (* Alternative 3: built-in function with candidate sequence. *)
  check "function form" "Intro"
    (so_query
       "for $s in select-narrow(doc(\"figure1.xml\")//music[@artist = \"U2\"], \
        doc(\"figure1.xml\")//shot) return string($s/@id)");
  check "function form without candidates + name filter" "Intro"
    (so_query
       "for $s in select-narrow(doc(\"figure1.xml\")//music[@artist = \"U2\"])\
        /self::shot return string($s/@id)")

let test_standoff_option_renaming () =
  let coll = Collection.create () in
  ignore
    (Collection.load_string coll ~name:"t.xml"
       "<t><a from=\"0\" upto=\"10\"/><b from=\"2\" upto=\"5\"/></t>");
  let e = Engine.create coll in
  let r =
    Engine.run e
      "declare option standoff-start \"from\";\n\
       declare option standoff-end \"upto\";\n\
       for $x in doc(\"t.xml\")//a/select-narrow::b return name($x)"
  in
  Alcotest.(check string) "renamed attributes" "b" r.Engine.serialized

let test_standoff_region_elements () =
  let coll = Collection.create () in
  ignore
    (Collection.load_string coll ~name:"t.xml"
       "<t><file><region><start>0</start><end>9</end></region>\
        <region><start>100</start><end>109</end></region></file>\
        <blocka><region><start>2</start><end>5</end></region></blocka>\
        <blockb><region><start>2</start><end>5</end></region>\
        <region><start>50</start><end>60</end></region></blockb></t>");
  let e = Engine.create coll in
  let run q = (Engine.run e ("declare option standoff-region \"region\";\n" ^ q)).Engine.serialized in
  (* Containment is non-strict, so file contains itself; blocka is
     fully inside file's regions; blockb has a region in the gap, so
     containment fails but overlap holds. *)
  Alcotest.(check string) "narrow multi-region" "file blocka"
    (run "for $x in doc(\"t.xml\")//file/select-narrow::* return name($x)");
  Alcotest.(check string) "wide multi-region" "file blocka blockb"
    (run "for $x in doc(\"t.xml\")//file/select-wide::* return name($x)");
  Alcotest.(check string) "narrow excluding self" "blocka"
    (run
       "for $x in doc(\"t.xml\")//file/select-narrow::*[name(.) != \"file\"] \
        return name($x)")

let test_udf_figure3 () =
  (* The paper's Figure 3 UDF, verbatim semantics: containment via
     start/end attributes with a candidate sequence parameter. *)
  let q =
    "declare function local:select-narrow($input as node()*, \
     $candidates as node()*) as node()* {\n\
    \  (for $q in $input\n\
    \   for $p in $candidates\n\
    \   where $p/@start >= $q/@start and $p/@end <= $q/@end\n\
    \     and root($p) = root($q)\n\
    \   return $p)/.\n\
     };\n\
     for $s in local:select-narrow(doc(\"figure1.xml\")\
     //music[@artist = \"U2\"], doc(\"figure1.xml\")//shot)\n\
     return string($s/@id)"
  in
  check "figure 3 UDF" "Intro" q

(* The paper's Figure 2 UDF, verbatim: no candidate sequence, the inner
   loop ranges over root($q)//*.  Declared under the name of the
   built-in, which it must shadow. *)
let test_udf_figure2 () =
  let q =
    "declare module standoff = \"http://w3c.org/tr/standoff/\";\n\
     declare function select-narrow($input as node()*) as node()* {\n\
    \  (for $q in $input\n\
    \   for $p in root($q)//*\n\
    \   where $p/@start >= $q/@start\n\
    \     and $p/@end <= $q/@end\n\
    \   return $p)/.\n\
     };\n\
     for $s in select-narrow(doc(\"figure1.xml\")//music[@artist = \"U2\"])\
     /self::shot\n\
     return string($s/@id)"
  in
  check "figure 2 UDF" "Intro" q

(* Recursive user functions terminate through the empty-loop cutoff:
   the recursive branch of the conditional runs under the iterations
   that took it, which eventually is none. *)
let test_udf_recursion () =
  check "factorial" "120"
    "declare function local:fact($n) {\n\
    \  if ($n <= 1) then 1 else $n * local:fact($n - 1)\n\
     };\n\
     local:fact(5)";
  check "fibonacci" "1 1 2 3 5 8 13"
    "declare function local:fib($n) {\n\
    \  if ($n <= 2) then 1 else local:fib($n - 1) + local:fib($n - 2)\n\
     };\n\
     for $i in 1 to 7 return local:fib($i)";
  check "recursive sequence build" "5 4 3 2 1"
    "declare function local:countdown($n) {\n\
    \  if ($n = 0) then () else ($n, local:countdown($n - 1))\n\
     };\n\
     local:countdown(5)";
  (* Recursion over nodes: depth of the tree. *)
  check "tree depth" "3"
    "declare function local:depth($n) {\n\
    \  if (empty($n/*)) then 1\n\
    \  else 1 + max(for $c in $n/* return local:depth($c))\n\
     };\n\
     local:depth(doc(\"books.xml\")/books)"

let test_udf_nontermination_rejected () =
  let q = "declare function local:f($x) { local:f($x) };\nlocal:f(1)" in
  Alcotest.(check bool) "runaway recursion rejected" true
    (match run q with
    | exception Err.Error msg ->
        let contains s sub =
          let n = String.length sub in
          let rec scan i =
            i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
          in
          scan 0
        in
        contains msg "recursion depth"
    | _ -> false)

(* Extension builtins: region accessors, §3.1 predicates, Allen
   relations, and BLOB snippets. *)
let test_standoff_builtins () =
  check "standoff-start" "8"
    "standoff-start(doc(\"figure1.xml\")//shot[@id = \"Interview\"])";
  check "standoff-end" "64"
    "standoff-end(doc(\"figure1.xml\")//shot[@id = \"Interview\"])";
  check "standoff-contains true" "true"
    "standoff-contains(doc(\"figure1.xml\")//music[@artist = \"U2\"], \
     doc(\"figure1.xml\")//shot[@id = \"Intro\"])";
  check "standoff-contains false" "false"
    "standoff-contains(doc(\"figure1.xml\")//music[@artist = \"U2\"], \
     doc(\"figure1.xml\")//shot[@id = \"Outro\"])";
  check "standoff-overlaps" "true"
    "standoff-overlaps(doc(\"figure1.xml\")//music[@artist = \"U2\"], \
     doc(\"figure1.xml\")//shot[@id = \"Interview\"])";
  check "standoff-relation starts" "starts"
    "standoff-relation(doc(\"figure1.xml\")//shot[@id = \"Intro\"], \
     doc(\"figure1.xml\")//music[@artist = \"U2\"])";
  check "standoff-relation overlaps" "overlaps"
    "standoff-relation(doc(\"figure1.xml\")//shot[@id = \"Interview\"], \
     doc(\"figure1.xml\")//music[@artist = \"Bach\"])";
  check "standoff-relation preceded-by" "preceded-by"
    "standoff-relation(doc(\"figure1.xml\")//shot[@id = \"Outro\"], \
     doc(\"figure1.xml\")//music[@artist = \"U2\"])";
  check "non-annotation yields empty" ""
    "standoff-start(doc(\"figure1.xml\")//video)"

let test_standoff_snippet () =
  let coll = Collection.create () in
  ignore
    (Collection.load_string coll ~name:"notes.xml"
       "<notes><word start=\"0\" end=\"4\"/><word start=\"6\" end=\"10\"/>\
        <gap start=\"4\" end=\"6\"/></notes>");
  Collection.add_blob coll
    (Standoff_store.Blob.of_string ~name:"notes.txt" "hello world");
  let e = Engine.create coll in
  let run q = (Engine.run e q).Engine.serialized in
  Alcotest.(check string) "first word" "hello"
    (run "standoff-snippet((doc(\"notes.xml\")//word)[1], \"notes.txt\")");
  Alcotest.(check string) "second word" "world"
    (run "standoff-snippet((doc(\"notes.xml\")//word)[2], \"notes.txt\")");
  Alcotest.(check bool) "missing blob errors" true
    (match run "standoff-snippet((doc(\"notes.xml\")//word)[1], \"no.bin\")" with
    | exception Err.Error _ -> true
    | _ -> false)

(* The final /. of Figure 2: the self step deduplicates and restores
   document order. *)
let test_dot_step_dedup () =
  check "dedup via /." "2"
    "count((for $b in doc(\"books.xml\")//book[@year = 2000] \
     return ($b, $b))/.)"

(* ------------------------------------------------------------ *)
(* Errors                                                        *)

let expect_error name q =
  match run q with
  | exception Err.Error _ -> ()
  | exception Lexer.Syntax_error _ -> ()
  | r -> Alcotest.failf "%s: expected an error, got %S" name r

let test_errors () =
  expect_error "unbound var" "$nope";
  expect_error "unknown function" "frobnicate(1)";
  expect_error "missing doc" "doc(\"missing.xml\")";
  expect_error "syntax" "for $x in";
  expect_error "bad comparison" "1 = \"x\"";
  expect_error "context absent" "count(//book)";
  expect_error "arity" "count(1, 2)"

let test_timeout () =
  let e = make_engine () in
  match
    Engine.run_with_timeout e ~seconds:0.05
      "count(for $a in 1 to 1000 for $b in 1 to 1000 \
       for $c in 1 to 100 return $a)"
  with
  | Standoff_util.Timing.Timed_out _ -> ()
  | Standoff_util.Timing.Finished _ ->
      (* Plausible on a very fast machine; accept but note the size. *)
      ()

(* Engine-level agreement: on random annotation documents, every
   strategy returns the same answer for every axis, through the full
   parse/compile/evaluate pipeline (nested inside a for-loop so the
   loop-lifted path is really exercised). *)
let qcheck_engine_strategies_agree =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 10) (pair (int_bound 50) (int_bound 20)))
        (list_size (1 -- 10) (pair (int_bound 50) (int_bound 20))))
  in
  let print (xs, ys) =
    let f = List.map (fun (s, w) -> Printf.sprintf "[%d,%d]" s (s + w)) in
    Printf.sprintf "a=%s b=%s" (String.concat ";" (f xs)) (String.concat ";" (f ys))
  in
  QCheck.Test.make ~name:"engine: all strategies agree on random documents"
    ~count:100
    (QCheck.make ~print gen)
    (fun (a_regions, b_regions) ->
      let el name (s, w) =
        Printf.sprintf "<%s start=\"%d\" end=\"%d\"/>" name s (s + w)
      in
      let doc =
        "<t>"
        ^ String.concat "" (List.map (el "a") a_regions)
        ^ String.concat "" (List.map (el "b") b_regions)
        ^ "</t>"
      in
      let coll = Collection.create () in
      ignore (Collection.load_string coll ~name:"r.xml" doc);
      let e = Engine.create coll in
      List.for_all
        (fun axis ->
          let q =
            Printf.sprintf
              "for $x in doc(\"r.xml\")//a return <g>{count($x/%s::b)}</g>"
              axis
          in
          let expected =
            (Engine.run e ~strategy:Config.Loop_lifted ~rollback_constructed:true q)
              .Engine.serialized
          in
          List.for_all
            (fun strategy ->
              (Engine.run e ~strategy ~rollback_constructed:true q).Engine.serialized
              = expected)
            Config.all_strategies)
        [ "select-narrow"; "select-wide"; "reject-narrow"; "reject-wide" ])

(* All four strategies agree on a nested StandOff query (the Q2-like
   shape with the axis inside a for-loop). *)
let test_strategies_agree_nested () =
  let q =
    so_query
      "for $m in doc(\"figure1.xml\")//music \
       return <r>{count($m/select-wide::shot)}</r>"
  in
  let expected = run ~strategy:Config.Loop_lifted q in
  List.iter
    (fun strategy ->
      Alcotest.(check string)
        (Config.strategy_to_string strategy)
        expected (run ~strategy q))
    Config.all_strategies

let () =
  Alcotest.run "xquery"
    [
      ( "basics",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "sequences" `Quick test_sequences;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "logic" `Quick test_logic;
          Alcotest.test_case "if" `Quick test_if;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "declare variable" `Quick test_declare_variable;
        ] );
      ( "flwor",
        [
          Alcotest.test_case "flwor" `Quick test_flwor;
          Alcotest.test_case "quantified" `Quick test_quantified;
          Alcotest.test_case "order by" `Quick test_order_by;
        ] );
      ( "functions",
        [
          Alcotest.test_case "builtins" `Quick test_functions;
          Alcotest.test_case "more builtins" `Quick test_more_builtins;
        ] );
      ( "set-ops",
        [ Alcotest.test_case "intersect/except/union" `Quick test_set_operations ] );
      ( "paths",
        [
          Alcotest.test_case "basic" `Quick test_paths_basic;
          Alcotest.test_case "predicates" `Quick test_paths_predicates;
          Alcotest.test_case "context doc" `Quick test_paths_context;
          Alcotest.test_case "union" `Quick test_path_union;
          Alcotest.test_case "arithmetic over nodes" `Quick
            test_arith_over_nodes;
          Alcotest.test_case "dot step dedup" `Quick test_dot_step_dedup;
        ] );
      ( "constructors",
        [
          Alcotest.test_case "basic" `Quick test_constructor_basic;
          Alcotest.test_case "node copies" `Quick test_constructor_copies_nodes;
        ] );
      ( "standoff",
        [
          Alcotest.test_case "table 3.1 via axes" `Quick
            test_standoff_axes_table31;
          Alcotest.test_case "all strategies" `Quick
            test_standoff_axes_all_strategies;
          Alcotest.test_case "function form" `Quick test_standoff_function_form;
          Alcotest.test_case "option renaming" `Quick
            test_standoff_option_renaming;
          Alcotest.test_case "region elements" `Quick
            test_standoff_region_elements;
          Alcotest.test_case "figure 2 UDF" `Quick test_udf_figure2;
          Alcotest.test_case "figure 3 UDF" `Quick test_udf_figure3;
          Alcotest.test_case "extension builtins" `Quick
            test_standoff_builtins;
          Alcotest.test_case "blob snippets" `Quick test_standoff_snippet;
          Alcotest.test_case "recursive UDFs" `Quick test_udf_recursion;
          Alcotest.test_case "runaway recursion rejected" `Quick
            test_udf_nontermination_rejected;
          Alcotest.test_case "nested strategies agree" `Quick
            test_strategies_agree_nested;
          QCheck_alcotest.to_alcotest qcheck_engine_strategies_agree;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "timeout" `Quick test_timeout;
        ] );
    ]
