(* Unit tests of the XQuery value semantics: atomization, general
   comparison conversion rules, arithmetic, the effective boolean
   value, and the order-by comparator. *)

module Atomic = Standoff_xquery.Atomic
module Err = Standoff_xquery.Err
module Item = Standoff_relalg.Item
module Collection = Standoff_store.Collection

let coll =
  let c = Collection.create () in
  ignore (Collection.load_string c ~name:"d" "<a n=\"5\">hello <b>world</b></a>");
  c

let int i = Atomic.A_int (Int64.of_int i)
let flt f = Atomic.A_float f
let str s = Atomic.A_str s
let untyped s = Atomic.A_untyped s

let cmp c a b = Atomic.compare_atomics c a b

let expect_error f =
  match f () with
  | exception Err.Error _ -> ()
  | _ -> Alcotest.fail "expected a dynamic error"

(* ------------------------------------------------------------ *)

let test_atomize () =
  Alcotest.(check bool) "node to untyped" true
    (match Atomic.atomize coll (Item.Node { Collection.doc_id = 0; pre = 1 }) with
    | Atomic.A_untyped "hello world" -> true
    | _ -> false);
  Alcotest.(check bool) "attribute to untyped" true
    (match
       Atomic.atomize coll
         (Item.Attribute ({ Collection.doc_id = 0; pre = 1 }, "n", "5"))
     with
    | Atomic.A_untyped "5" -> true
    | _ -> false);
  Alcotest.(check bool) "int passthrough" true
    (Atomic.atomize coll (Item.Int 3L) = Atomic.A_int 3L)

let test_string_value () =
  Alcotest.(check string) "float integral" "3"
    (Atomic.string_value coll (Item.Float 3.0));
  Alcotest.(check string) "float fractional" "3.5"
    (Atomic.string_value coll (Item.Float 3.5));
  Alcotest.(check string) "bool" "true" (Atomic.string_value coll (Item.Bool true))

let test_numeric_comparisons () =
  Alcotest.(check bool) "int lt" true (cmp Atomic.Clt (int 1) (int 2));
  Alcotest.(check bool) "promotion" true (cmp Atomic.Ceq (int 2) (flt 2.0));
  Alcotest.(check bool) "float ne" true (cmp Atomic.Cne (flt 1.5) (int 1));
  Alcotest.(check bool) "ge equal" true (cmp Atomic.Cge (int 2) (int 2))

let test_untyped_conversion () =
  (* vs numeric: cast the untyped side. *)
  Alcotest.(check bool) "untyped vs int" true (cmp Atomic.Clt (untyped "8") (int 31));
  Alcotest.(check bool) "int vs untyped" true (cmp Atomic.Cge (int 31) (untyped "8"));
  (* vs string: string comparison. *)
  Alcotest.(check bool) "untyped vs string" true
    (cmp Atomic.Clt (untyped "abc") (str "abd"));
  (* two untyped: equality is string equality... *)
  Alcotest.(check bool) "untyped eq strings" false
    (cmp Atomic.Ceq (untyped "08") (untyped "8"));
  (* ...but ordering goes numeric when both parse (XPath 1.0 rule). *)
  Alcotest.(check bool) "untyped ordering numeric" true
    (cmp Atomic.Cle (untyped "8") (untyped "31"));
  Alcotest.(check bool) "untyped ordering string fallback" true
    (cmp Atomic.Clt (untyped "apple") (untyped "banana"));
  (* uncastable untyped vs numeric errors. *)
  expect_error (fun () -> cmp Atomic.Clt (untyped "x") (int 1))

let test_bool_comparisons () =
  Alcotest.(check bool) "bool eq" true
    (cmp Atomic.Ceq (Atomic.A_bool true) (Atomic.A_bool true));
  Alcotest.(check bool) "untyped to bool" true
    (cmp Atomic.Ceq (untyped "true") (Atomic.A_bool true));
  expect_error (fun () -> cmp Atomic.Ceq (str "x") (int 1))

let test_arithmetic () =
  let a op x y = Atomic.arithmetic op x y in
  Alcotest.(check bool) "int add" true (a Atomic.Add (int 2) (int 3) = int 5);
  Alcotest.(check bool) "exact div stays int" true
    (a Atomic.Div (int 6) (int 2) = int 3);
  Alcotest.(check bool) "inexact div floats" true
    (a Atomic.Div (int 7) (int 2) = flt 3.5);
  Alcotest.(check bool) "idiv truncates" true
    (a Atomic.Idiv (int 7) (int 2) = int 3);
  Alcotest.(check bool) "mod" true (a Atomic.Mod (int 7) (int 2) = int 1);
  Alcotest.(check bool) "untyped operand" true
    (a Atomic.Add (untyped "4") (int 1) = int 5);
  Alcotest.(check bool) "float contagion" true
    (a Atomic.Mul (flt 1.5) (int 2) = flt 3.0);
  expect_error (fun () -> a Atomic.Div (int 1) (int 0));
  expect_error (fun () -> a Atomic.Idiv (int 1) (int 0));
  expect_error (fun () -> a Atomic.Mod (int 1) (int 0));
  expect_error (fun () -> a Atomic.Add (str "x") (int 1))

let test_negate () =
  Alcotest.(check bool) "int" true (Atomic.negate (int 4) = int (-4));
  Alcotest.(check bool) "untyped" true (Atomic.negate (untyped "2.5") = flt (-2.5))

let test_ebv () =
  let ebv = Atomic.effective_boolean_value coll in
  Alcotest.(check bool) "empty" false (ebv []);
  Alcotest.(check bool) "node first" true
    (ebv [ Item.Node { Collection.doc_id = 0; pre = 1 }; Item.Int 0L ]);
  Alcotest.(check bool) "zero" false (ebv [ Item.Int 0L ]);
  Alcotest.(check bool) "nan" false (ebv [ Item.Float Float.nan ]);
  Alcotest.(check bool) "nonempty string" true (ebv [ Item.Str "x" ]);
  Alcotest.(check bool) "empty string" false (ebv [ Item.Str "" ]);
  expect_error (fun () -> ebv [ Item.Int 1L; Item.Int 2L ])

let test_to_number () =
  Alcotest.(check bool) "int64 exact" true
    (Atomic.to_number (untyped "4611686018427387904") = Atomic.A_int 4611686018427387904L);
  Alcotest.(check bool) "float" true (Atomic.to_number (untyped "1.5") = flt 1.5);
  Alcotest.(check bool) "bool" true (Atomic.to_number (Atomic.A_bool true) = int 1);
  expect_error (fun () -> Atomic.to_number (str "nope"))

let test_order_compare () =
  let oc = Atomic.order_compare in
  Alcotest.(check bool) "ints" true (oc (int 1) (int 2) < 0);
  Alcotest.(check bool) "numeric untyped" true (oc (untyped "9") (untyped "10") < 0);
  Alcotest.(check bool) "strings lexicographic" true (oc (str "10") (str "9") < 0);
  Alcotest.(check bool) "mixed falls back to strings" true
    (oc (str "a") (untyped "b") < 0);
  Alcotest.(check int) "equal" 0 (oc (flt 2.0) (int 2))

let qcheck_order_compare_total =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Atomic.A_int (Int64.of_int i)) (int_range (-1000) 1000);
          map (fun f -> Atomic.A_float f) (float_bound_inclusive 100.0);
          map
            (fun i -> Atomic.A_untyped (string_of_int i))
            (int_range (-50) 50);
          map (fun s -> Atomic.A_str s) (oneofl [ "a"; "b"; "10"; "9" ]);
        ])
  in
  let arb = QCheck.make ~print:Atomic.atomic_to_string gen in
  QCheck.Test.make ~name:"order_compare is a total order" ~count:1000
    QCheck.(triple arb arb arb)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Atomic.order_compare a b) = -sgn (Atomic.order_compare b a)
      && ((not (Atomic.order_compare a b <= 0 && Atomic.order_compare b c <= 0))
         || Atomic.order_compare a c <= 0))

let () =
  Alcotest.run "atomic"
    [
      ( "values",
        [
          Alcotest.test_case "atomize" `Quick test_atomize;
          Alcotest.test_case "string value" `Quick test_string_value;
          Alcotest.test_case "to_number" `Quick test_to_number;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "numeric" `Quick test_numeric_comparisons;
          Alcotest.test_case "untyped conversion" `Quick test_untyped_conversion;
          Alcotest.test_case "booleans" `Quick test_bool_comparisons;
          Alcotest.test_case "order_compare" `Quick test_order_compare;
          QCheck_alcotest.to_alcotest qcheck_order_compare_total;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "operators" `Quick test_arithmetic;
          Alcotest.test_case "negate" `Quick test_negate;
        ] );
      ( "ebv",
        [ Alcotest.test_case "effective boolean value" `Quick test_ebv ] );
    ]
