(* White-box tests of the loop-lifted StandOff MergeJoin (Listing 1):
   the Figure 4 execution trace, active-list maintenance, the pending
   list of the overlap sweep, and deadline handling.

   Note on the trace: as discussed in the module documentation of
   [Merge_join_ll], the printed pseudo-code's cross-iteration skip test
   is unsound (it would lose results for candidates contained only in
   the skipped context item), so this implementation skips/replaces
   within one iteration only.  On the Figure 4 input it therefore adds
   c3 (retiring same-iteration c1) where the paper's trace skips c3 —
   the final result set is identical: (iter 1, r1) and (iter 1, r4). *)

module Doc = Standoff_store.Doc
module Timing = Standoff_util.Timing
module Config = Standoff.Config
module Annots = Standoff.Annots
module MJ = Standoff.Merge_join_ll

(* The Figure 4 input: contexts c1..c4 with iterations 1,2,1,1 and
   candidates r1..r4, realised as a stand-off document so that node
   ids are genuine pre ranks (c1=2, c2=3, c3=4, c4=5, r1=6 .. r4=9). *)
let figure4_doc =
  "<t>\
   <c1 start=\"0\" end=\"15\"/>\
   <c2 start=\"12\" end=\"35\"/>\
   <c3 start=\"20\" end=\"30\"/>\
   <c4 start=\"55\" end=\"80\"/>\
   <r1 start=\"5\" end=\"10\"/>\
   <r2 start=\"22\" end=\"45\"/>\
   <r3 start=\"40\" end=\"60\"/>\
   <r4 start=\"65\" end=\"70\"/>\
   </t>"

let c1 = 2
let c2 = 3
let c3 = 4
let c4 = 5
let r1 = 6
let r2 = 7
let r3 = 8
let r4 = 9

let figure4_setup () =
  let d = Doc.parse ~name:"figure4" figure4_doc in
  let annots = Annots.extract Config.default d in
  let context =
    MJ.context_of_annotations annots ~iters:[| 1; 2; 1; 1 |]
      ~pres:[| c1; c2; c3; c4 |]
  in
  let cands = Annots.candidate_index annots ~candidates:(Some [| r1; r2; r3; r4 |]) in
  (annots, context, cands)

let event_to_string = function
  | MJ.Add_active { iter; ctx } -> Printf.sprintf "add(%d,c%d)" iter (ctx - 1)
  | MJ.Skip_covered { iter; ctx } -> Printf.sprintf "skip(%d,c%d)" iter (ctx - 1)
  | MJ.Replace_active { iter; removed; by } ->
      Printf.sprintf "replace(%d,c%d->c%d)" iter (removed - 1) (by - 1)
  | MJ.Trim_active { iter; ctx } -> Printf.sprintf "trim(%d,c%d)" iter (ctx - 1)
  | MJ.Emit { iter; ctx; cand } ->
      Printf.sprintf "emit(%d,c%d,r%d)" iter (ctx - 1) (cand - 5)
  | MJ.Skip_candidates { from_row; to_row } ->
      Printf.sprintf "skipcand(%d->%d)" from_row to_row

let test_figure4_context_sorted () =
  let _, context, _ = figure4_setup () in
  Alcotest.(check int) "four region rows" 4 (MJ.context_row_count context);
  Alcotest.(check (list int64)) "sorted on start" [ 0L; 12L; 20L; 55L ]
    (Array.to_list context.MJ.starts)

let test_figure4_trace () =
  let _, context, cands = figure4_setup () in
  let events = ref [] in
  let matches =
    MJ.select_narrow
      ~trace:(fun e -> events := e :: !events)
      ~single_region:true context cands
  in
  Alcotest.(check (list string))
    "execution trace"
    [
      "add(1,c1)";        (* c1 activated for r1 *)
      "emit(1,c1,r1)";    (* r1 contained in c1 *)
      "add(2,c2)";        (* c2 activated (iteration 2) *)
      "replace(1,c1->c3)";(* c3 extends past c1 within iteration 1 *)
      "add(1,c3)";
      "trim(1,c3)";       (* r3 starts past both ends *)
      "trim(2,c2)";
      "skipcand(2->3)";   (* r3 falls in the gap before c4 *)
      "add(1,c4)";
      "emit(1,c4,r4)";    (* r4 contained in c4 *)
    ]
    (List.rev_map event_to_string !events);
  let pairs =
    Standoff_util.Vec.to_list matches
    |> List.map (fun m -> (m.MJ.m_iter, m.MJ.m_cand))
  in
  Alcotest.(check (list (pair int int)))
    "paper's result: (iter1,r1) and (iter1,r4)"
    [ (1, r1); (1, r4) ]
    pairs

let test_figure4_counterexample_candidate () =
  (* The candidate [22,28] is contained in c3 = [20,30] (iteration 1)
     but in no other iteration-1 context; a cross-iteration skip of c3
     would lose this result. *)
  let d =
    Doc.parse ~name:"cx"
      "<t>\
       <c1 start=\"0\" end=\"15\"/>\
       <c2 start=\"12\" end=\"35\"/>\
       <c3 start=\"20\" end=\"30\"/>\
       <x start=\"22\" end=\"28\"/>\
       </t>"
  in
  let annots = Annots.extract Config.default d in
  let context =
    MJ.context_of_annotations annots ~iters:[| 1; 2; 1 |] ~pres:[| 2; 3; 4 |]
  in
  let cands = Annots.candidate_index annots ~candidates:(Some [| 5 |]) in
  let matches = MJ.select_narrow ~single_region:true context cands in
  let pairs =
    Standoff_util.Vec.to_list matches
    |> List.map (fun m -> (m.MJ.m_iter, m.MJ.m_cand))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int)))
    "both iterations report the candidate"
    [ (1, 5); (2, 5) ]
    pairs

let test_skip_covered () =
  (* Same iteration, second context inside the first: it must be
     skipped, and results must not duplicate. *)
  let d =
    Doc.parse ~name:"sk"
      "<t>\
       <c1 start=\"0\" end=\"100\"/>\
       <c2 start=\"10\" end=\"50\"/>\
       <x start=\"20\" end=\"30\"/>\
       </t>"
  in
  let annots = Annots.extract Config.default d in
  let context =
    MJ.context_of_annotations annots ~iters:[| 7; 7 |] ~pres:[| 2; 3 |]
  in
  let cands = Annots.candidate_index annots ~candidates:(Some [| 4 |]) in
  let events = ref [] in
  let matches =
    MJ.select_narrow
      ~trace:(fun e -> events := e :: !events)
      ~single_region:true context cands
  in
  Alcotest.(check bool) "skip event seen" true
    (List.exists (function MJ.Skip_covered _ -> true | _ -> false) !events);
  Alcotest.(check int) "single match, no duplicate" 1
    (Standoff_util.Vec.length matches)

let test_wide_pending () =
  (* The candidate starts before the only context region but reaches
     into it: only the pending mechanism can find this overlap. *)
  let d =
    Doc.parse ~name:"wp"
      "<t>\
       <c1 start=\"50\" end=\"60\"/>\
       <x start=\"40\" end=\"55\"/>\
       <y start=\"10\" end=\"20\"/>\
       </t>"
  in
  let annots = Annots.extract Config.default d in
  let context =
    MJ.context_of_annotations annots ~iters:[| 1 |] ~pres:[| 2 |]
  in
  let cands = Annots.candidate_index annots ~candidates:(Some [| 3; 4 |]) in
  let matches = MJ.select_wide ~single_region:true context cands in
  let pairs =
    Standoff_util.Vec.to_list matches
    |> List.map (fun m -> (m.MJ.m_iter, m.MJ.m_cand))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (pair int int))) "only the reaching candidate" [ (1, 3) ]
    pairs

let test_wide_boundary_touch () =
  (* Closed intervals: candidate ending exactly at the context start
     overlaps; one position earlier does not. *)
  let d =
    Doc.parse ~name:"wb"
      "<t>\
       <c1 start=\"50\" end=\"60\"/>\
       <x start=\"40\" end=\"50\"/>\
       <y start=\"40\" end=\"49\"/>\
       </t>"
  in
  let annots = Annots.extract Config.default d in
  let context = MJ.context_of_annotations annots ~iters:[| 1 |] ~pres:[| 2 |] in
  let cands = Annots.candidate_index annots ~candidates:(Some [| 3; 4 |]) in
  let matches = MJ.select_wide ~single_region:true context cands in
  let cands_hit =
    Standoff_util.Vec.to_list matches
    |> List.map (fun m -> m.MJ.m_cand)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "touching candidate only" [ 3 ] cands_hit

let test_context_skips_non_annotations () =
  let d =
    Doc.parse ~name:"na" "<t><c1 start=\"0\" end=\"9\"/><plain/></t>"
  in
  let annots = Annots.extract Config.default d in
  let context =
    MJ.context_of_annotations annots ~iters:[| 1; 1 |] ~pres:[| 2; 3 |]
  in
  Alcotest.(check int) "plain element dropped" 1 (MJ.context_row_count context)

(* The lazy-heap active set (the paper's suggested improvement for
   long active lists) must produce exactly the matches of the sorted
   list, on arbitrary overlap patterns. *)
let qcheck_heap_equals_list =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (1 -- 20) (pair (int_bound 80) (int_bound 30)))
        (list_size (0 -- 12) (pair (int_bound 5) (int_bound 30)))
        (list_size (0 -- 12) (int_bound 30)))
  in
  let print (regions, ctx, cand) =
    Printf.sprintf "regions=%s ctx=%s cand=%s"
      (String.concat ";"
         (List.map (fun (s, w) -> Printf.sprintf "[%d,%d]" s (s + w)) regions))
      (String.concat ","
         (List.map (fun (i, p) -> Printf.sprintf "%d:%d" i p) ctx))
      (String.concat "," (List.map string_of_int cand))
  in
  QCheck.Test.make ~name:"lazy-heap active set = sorted list" ~count:500
    (QCheck.make ~print gen)
    (fun (regions, ctx_rows, cand_picks) ->
      let body =
        String.concat ""
          (List.map
             (fun (s, w) ->
               Printf.sprintf "<a start=\"%d\" end=\"%d\"/>" s (s + w))
             regions)
      in
      let d = Doc.parse ~name:"rand" ("<t>" ^ body ^ "</t>") in
      let annots = Annots.extract Config.default d in
      let n = Array.length annots.Standoff.Annots.ids in
      let rows =
        List.sort_uniq compare
          (List.map
             (fun (it, p) -> (it, annots.Standoff.Annots.ids.(p mod n)))
             ctx_rows)
      in
      let context =
        MJ.context_of_annotations annots
          ~iters:(Array.of_list (List.map fst rows))
          ~pres:(Array.of_list (List.map snd rows))
      in
      let cand_ids =
        Array.of_list
          (List.sort_uniq compare
             (List.map (fun p -> annots.Standoff.Annots.ids.(p mod n)) cand_picks))
      in
      let cands = Annots.candidate_index annots ~candidates:(Some cand_ids) in
      let canon matches =
        Standoff_util.Vec.to_list matches
        |> List.map (fun m -> (m.MJ.m_iter, m.MJ.m_cand))
        |> List.sort_uniq compare
      in
      let narrow kind =
        canon (MJ.select_narrow ~active_set:kind ~single_region:true context cands)
      in
      let wide kind =
        canon (MJ.select_wide ~active_set:kind ~single_region:true context cands)
      in
      narrow Standoff.Active_set.Sorted_list = narrow Standoff.Active_set.Lazy_heap
      && wide Standoff.Active_set.Sorted_list = wide Standoff.Active_set.Lazy_heap)

let test_heap_rejects_multi_region () =
  Alcotest.(check bool) "multi-region rejected" true
    (match
       Standoff.Active_set.create Standoff.Active_set.Lazy_heap
         ~single_region:false ~callbacks:Standoff.Active_set.no_callbacks
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_deadline_aborts () =
  (* A deadline in the past must abort the sweep promptly. *)
  let regions =
    String.concat ""
      (List.init 5000 (fun i ->
           Printf.sprintf "<a start=\"%d\" end=\"%d\"/>" i (i + 10)))
  in
  let d = Doc.parse ~name:"big" ("<t>" ^ regions ^ "</t>") in
  let annots = Annots.extract Config.default d in
  let pres = Array.init 5000 (fun i -> i + 2) in
  let context =
    MJ.context_of_annotations annots ~iters:(Array.map (fun _ -> 0) pres) ~pres
  in
  let cands = Annots.candidate_index annots ~candidates:None in
  match
    Timing.run_with_timeout ~seconds:(-1.0) (fun deadline ->
        MJ.select_narrow ~deadline ~single_region:true context cands)
  with
  | Timing.Timed_out _ -> ()
  | Timing.Finished _ -> Alcotest.fail "expected Deadline_exceeded"

let () =
  Alcotest.run "merge-join"
    [
      ( "figure-4",
        [
          Alcotest.test_case "context sorted" `Quick test_figure4_context_sorted;
          Alcotest.test_case "execution trace" `Quick test_figure4_trace;
          Alcotest.test_case "cross-iteration counterexample" `Quick
            test_figure4_counterexample_candidate;
        ] );
      ( "active-list",
        [
          Alcotest.test_case "skip covered" `Quick test_skip_covered;
          Alcotest.test_case "non-annotations dropped" `Quick
            test_context_skips_non_annotations;
        ] );
      ( "wide",
        [
          Alcotest.test_case "pending candidates" `Quick test_wide_pending;
          Alcotest.test_case "boundary touch" `Quick test_wide_boundary_touch;
        ] );
      ( "active-set",
        [
          QCheck_alcotest.to_alcotest qcheck_heap_equals_list;
          Alcotest.test_case "heap needs single-region" `Quick
            test_heap_rejects_multi_region;
        ] );
      ( "deadline",
        [ Alcotest.test_case "aborts" `Quick test_deadline_aborts ] );
    ]
