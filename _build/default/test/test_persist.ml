(* Persistence layer tests: codec primitives, document and collection
   roundtrips, corruption detection, and end-to-end query equivalence
   after reload. *)

module Codec = Standoff_util.Codec
module Dom = Standoff_xml.Dom
module Doc = Standoff_store.Doc
module Blob = Standoff_store.Blob
module Collection = Standoff_store.Collection
module Persist = Standoff_store.Persist
module Engine = Standoff_xquery.Engine

(* ------------------------------------------------------------ *)
(* Codec                                                         *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.byte w 200;
  Codec.Writer.varint w 0;
  Codec.Writer.varint w (-1);
  Codec.Writer.varint w max_int;
  Codec.Writer.varint w min_int;
  Codec.Writer.varint64 w Int64.max_int;
  Codec.Writer.varint64 w Int64.min_int;
  Codec.Writer.string w "";
  Codec.Writer.string w "hello \x00 world";
  Codec.Writer.int_array w [| 1; -2; 3 |];
  Codec.Writer.string_array w [| "a"; ""; "b" |];
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  Alcotest.(check int) "byte" 200 (Codec.Reader.byte r);
  Alcotest.(check int) "zero" 0 (Codec.Reader.varint r);
  Alcotest.(check int) "minus one" (-1) (Codec.Reader.varint r);
  Alcotest.(check int) "max_int" max_int (Codec.Reader.varint r);
  Alcotest.(check int) "min_int" min_int (Codec.Reader.varint r);
  Alcotest.(check int64) "max64" Int64.max_int (Codec.Reader.varint64 r);
  Alcotest.(check int64) "min64" Int64.min_int (Codec.Reader.varint64 r);
  Alcotest.(check string) "empty" "" (Codec.Reader.string r);
  Alcotest.(check string) "string" "hello \x00 world" (Codec.Reader.string r);
  Alcotest.(check (array int)) "ints" [| 1; -2; 3 |] (Codec.Reader.int_array r);
  Alcotest.(check (array string)) "strings" [| "a"; ""; "b" |]
    (Codec.Reader.string_array r);
  Alcotest.(check bool) "consumed" true (Codec.Reader.at_end r)

let test_codec_truncation () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "hello";
  let s = Codec.Writer.contents w in
  let truncated = String.sub s 0 (String.length s - 2) in
  Alcotest.(check bool) "raises" true
    (match Codec.Reader.string (Codec.Reader.create truncated) with
    | exception Codec.Reader.Corrupt _ -> true
    | _ -> false)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"varint64 roundtrip" ~count:1000
    QCheck.(map Int64.of_int int)
    (fun v ->
      let w = Codec.Writer.create () in
      Codec.Writer.varint64 w v;
      Int64.equal v (Codec.Reader.varint64 (Codec.Reader.create (Codec.Writer.contents w))))

(* ------------------------------------------------------------ *)
(* Documents                                                     *)

let sample =
  "<site a=\"1\"><people><person id=\"p0\"><name>Alice &amp; co</name>\
   </person></people><!--note--><?pi data?></site>"

let test_doc_roundtrip () =
  let d = Doc.parse ~name:"sample.xml" sample in
  let d' = Persist.doc_of_string (Persist.doc_to_string d) in
  Doc.check_invariants d';
  Alcotest.(check string) "name kept" "sample.xml" d'.Doc.doc_name;
  Alcotest.(check bool) "same tree" true
    (Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d')));
  Alcotest.(check int) "same attrs" (Doc.attribute_count d)
    (Doc.attribute_count d')

let test_doc_file_roundtrip () =
  let d = Doc.parse ~name:"sample.xml" sample in
  let path = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_doc d path;
      let d' = Persist.load_doc path in
      Alcotest.(check bool) "tree equal" true
        (Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d'))))

let test_corruption_detected () =
  let d = Doc.parse ~name:"s" sample in
  let s = Persist.doc_to_string d in
  let check_rejects label s =
    Alcotest.(check bool) label true
      (match Persist.doc_of_string s with
      | exception Persist.Corrupt _ -> true
      | _ -> false)
  in
  (* Flip a payload byte: checksum failure. *)
  let flipped = Bytes.of_string s in
  let mid = String.length s / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xFF));
  check_rejects "bit flip" (Bytes.to_string flipped);
  (* Truncation. *)
  check_rejects "truncation" (String.sub s 0 (String.length s - 3));
  (* Wrong magic. *)
  check_rejects "bad magic" ("XXXX" ^ String.sub s 4 (String.length s - 4));
  (* Wrong container tag. *)
  let coll = Collection.create () in
  ignore (Collection.load_string coll ~name:"x" "<a/>");
  let coll_file = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove coll_file)
    (fun () ->
      Persist.save_collection coll coll_file;
      let ic = open_in_bin coll_file in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_rejects "tag mismatch" contents)

(* Random documents roundtrip through the binary format. *)
let gen_tree =
  let open QCheck.Gen in
  let rec node depth =
    if depth = 0 then map (fun s -> Dom.text s) (oneofl [ "x"; "y&z"; " " ])
    else
      frequency
        [
          (2, map (fun s -> Dom.text s) (oneofl [ "t"; "<>&" ]));
          (1, return (Dom.Comment "c"));
          ( 4,
            map3
              (fun tag attrs children -> Dom.element ~attrs tag children)
              (oneofl [ "a"; "b"; "c" ])
              (map
                 (fun vs -> List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vs)
                 (list_size (0 -- 2) (oneofl [ "1"; "two" ])))
              (list_size (0 -- 3) (node (depth - 1))) );
        ]
  in
  map
    (fun children -> Dom.document (Dom.element "root" children))
    (list_size (0 -- 4) (node 3))

let qcheck_doc_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip on random documents" ~count:300
    (QCheck.make
       ~print:(fun dom -> Standoff_xml.Serializer.to_string dom)
       gen_tree)
    (fun dom ->
      let d = Doc.of_dom ~name:"r" dom in
      let d' = Persist.doc_of_string (Persist.doc_to_string d) in
      Dom.equal_node (Doc.to_dom d (Doc.root d)) (Doc.to_dom d' (Doc.root d')))

(* ------------------------------------------------------------ *)
(* Collections and query equivalence                             *)

let test_collection_roundtrip () =
  let coll = Collection.create () in
  ignore
    (Collection.load_string coll ~name:"fig1.xml"
       "<sample><shot id=\"A\" start=\"0\" end=\"8\"/>\
        <music start=\"0\" end=\"31\"/></sample>");
  ignore (Collection.load_string coll ~name:"other.xml" "<x><y/></x>");
  Collection.add_blob coll (Blob.of_string ~name:"stream.bin" "0123456789");
  let path = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_collection coll path;
      let coll' = Persist.load_collection path in
      Alcotest.(check int) "doc count" 2 (Collection.doc_count coll');
      Alcotest.(check (option int)) "doc by name kept" (Some 0)
        (Collection.doc_id_of_name coll' "fig1.xml");
      (match Collection.blob coll' "stream.bin" with
      | Some b -> Alcotest.(check string) "blob" "0123456789" (Blob.contents b)
      | None -> Alcotest.fail "blob lost");
      (* Queries over the reloaded collection give identical answers. *)
      let q =
        "for $s in doc(\"fig1.xml\")//music/select-wide::shot \
         return string($s/@id)"
      in
      let run coll = (Engine.run (Engine.create coll) q).Engine.serialized in
      Alcotest.(check string) "query equivalence" (run coll) (run coll'))

let test_xmark_roundtrip () =
  (* The real workload end-to-end: generate, transform, save, reload,
     and check a StandOff query agrees. *)
  let setup = Standoff_xmark.Setup.build ~scale:0.002 ~with_standard:false () in
  let path = Filename.temp_file "standoff" ".sodb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Persist.save_collection setup.Standoff_xmark.Setup.coll path;
      let coll' = Persist.load_collection path in
      let q =
        Standoff_xmark.Queries.q6.Standoff_xmark.Queries.standoff
          setup.Standoff_xmark.Setup.standoff_doc
      in
      let a =
        (Engine.run setup.Standoff_xmark.Setup.engine ~rollback_constructed:true q)
          .Engine.serialized
      in
      let b =
        (Engine.run (Engine.create coll') ~rollback_constructed:true q)
          .Engine.serialized
      in
      Alcotest.(check string) "Q6 equal after reload" a b)

let () =
  Alcotest.run "persist"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
        ] );
      ( "documents",
        [
          Alcotest.test_case "roundtrip" `Quick test_doc_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_doc_file_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_corruption_detected;
          QCheck_alcotest.to_alcotest qcheck_doc_roundtrip;
        ] );
      ( "collections",
        [
          Alcotest.test_case "roundtrip with blobs" `Quick
            test_collection_roundtrip;
          Alcotest.test_case "xmark end-to-end" `Quick test_xmark_roundtrip;
        ] );
    ]
