(* Tests of the region/area semantics layer (paper §2–3): Allen's 13
   relations and their collapse onto containment/overlap, and the
   area-level predicates over non-contiguous annotations. *)

module Region = Standoff_interval.Region
module Area = Standoff_interval.Area
module Allen = Standoff_interval.Allen

let r = Region.make_int

let region_gen =
  QCheck.map
    (fun (a, b) -> if a <= b then r a b else r b a)
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))

let area_gen =
  QCheck.map
    (fun (first, rest) -> Area.make (first :: rest))
    QCheck.(pair region_gen (list_of_size Gen.(0 -- 4) region_gen))

(* ------------------------------------------------------------------ *)
(* Region basics                                                      *)

let test_region_make_invalid () =
  Alcotest.check_raises "start > end"
    (Invalid_argument "Region.make: start 5 > end 3") (fun () ->
      ignore (r 5 3))

let test_region_point () =
  let p = r 7 7 in
  Alcotest.(check int64) "width" 0L (Region.width p);
  Alcotest.(check bool) "contains itself" true (Region.contains p p);
  Alcotest.(check bool) "overlaps itself" true (Region.overlaps p p)

let test_region_contains () =
  Alcotest.(check bool) "proper" true (Region.contains (r 0 10) (r 2 8));
  Alcotest.(check bool) "equal" true (Region.contains (r 0 10) (r 0 10));
  Alcotest.(check bool) "left aligned" true (Region.contains (r 0 10) (r 0 5));
  Alcotest.(check bool) "escapes right" false (Region.contains (r 0 10) (r 5 11));
  Alcotest.(check bool) "inverse" false (Region.contains (r 2 8) (r 0 10))

let test_region_overlaps_touching () =
  (* Closed intervals: sharing a single position counts as overlap. *)
  Alcotest.(check bool) "share endpoint" true (Region.overlaps (r 0 5) (r 5 9));
  Alcotest.(check bool) "adjacent" false (Region.overlaps (r 0 5) (r 6 9));
  Alcotest.(check bool) "disjoint" false (Region.overlaps (r 0 5) (r 7 9))

let test_region_intersection_hull () =
  (match Region.intersection (r 0 10) (r 5 15) with
  | Some x -> Alcotest.(check string) "intersection" "[5,10]" (Region.to_string x)
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check (option string))
    "disjoint intersection" None
    (Option.map Region.to_string (Region.intersection (r 0 4) (r 6 9)));
  Alcotest.(check string) "hull" "[0,15]" (Region.to_string (Region.hull (r 0 10) (r 5 15)))

let test_region_index_order () =
  (* The index clustering order: start ascending, wider region first. *)
  Alcotest.(check bool) "start breaks tie" true (Region.compare (r 0 5) (r 1 2) < 0);
  Alcotest.(check bool) "wider first" true (Region.compare (r 0 9) (r 0 5) < 0);
  Alcotest.(check int) "equal" 0 (Region.compare (r 3 4) (r 3 4))

(* ------------------------------------------------------------------ *)
(* Allen relations                                                    *)

let classify a b = Allen.classify a b

let test_allen_examples () =
  let check name rel a b =
    Alcotest.(check string) name (Allen.to_string rel)
      (Allen.to_string (classify a b))
  in
  check "precedes" Allen.Precedes (r 0 3) (r 5 9);
  check "meets (adjacent)" Allen.Meets (r 0 4) (r 5 9);
  check "overlaps" Allen.Overlaps (r 0 6) (r 5 9);
  check "boundary share is overlap" Allen.Overlaps (r 0 5) (r 5 9);
  check "finished-by" Allen.Finished_by (r 0 9) (r 5 9);
  check "contains" Allen.Contains (r 0 9) (r 2 8);
  check "starts" Allen.Starts (r 0 5) (r 0 9);
  check "equals" Allen.Equals (r 2 8) (r 2 8);
  check "started-by" Allen.Started_by (r 0 9) (r 0 5);
  check "during" Allen.During (r 2 8) (r 0 9);
  check "finishes" Allen.Finishes (r 5 9) (r 0 9);
  check "overlapped-by" Allen.Overlapped_by (r 5 9) (r 0 6);
  check "met-by" Allen.Met_by (r 5 9) (r 0 4);
  check "preceded-by" Allen.Preceded_by (r 5 9) (r 0 3)

let test_allen_count () =
  Alcotest.(check int) "13 relations" 13 (List.length Allen.all)

let qcheck_allen_inverse =
  QCheck.Test.make ~name:"classify r2 r1 = inverse (classify r1 r2)"
    ~count:2000
    QCheck.(pair region_gen region_gen)
    (fun (a, b) -> classify b a = Allen.inverse (classify a b))

let qcheck_allen_overlap_collapse =
  QCheck.Test.make
    ~name:"implies_overlap (classify) = Region.overlaps (paper's collapse)"
    ~count:2000
    QCheck.(pair region_gen region_gen)
    (fun (a, b) -> Allen.implies_overlap (classify a b) = Region.overlaps a b)

let qcheck_allen_containment_collapse =
  QCheck.Test.make
    ~name:"implies_containment (classify) = Region.contains" ~count:2000
    QCheck.(pair region_gen region_gen)
    (fun (a, b) ->
      Allen.implies_containment (classify a b) = Region.contains a b)

(* Exhaustiveness over a small dense grid: every pair of regions in
   [0,6]^2 classifies into exactly one relation, and each relation is
   witnessed. *)
let test_allen_exhaustive_grid () =
  let seen = Hashtbl.create 13 in
  for s1 = 0 to 6 do
    for e1 = s1 to 6 do
      for s2 = 0 to 6 do
        for e2 = s2 to 6 do
          let rel = classify (r s1 e1) (r s2 e2) in
          Hashtbl.replace seen (Allen.to_string rel) ()
        done
      done
    done
  done;
  Alcotest.(check int) "all 13 witnessed" 13 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Areas                                                              *)

let test_area_empty () =
  Alcotest.check_raises "empty area"
    (Invalid_argument "Area.make: an area needs at least one region")
    (fun () -> ignore (Area.make []))

let test_area_normalisation () =
  (* Overlapping and touching regions merge; gaps survive. *)
  let a = Area.make [ r 5 10; r 0 6; r 13 20; r 30 40 ] in
  Alcotest.(check string) "canonical" "{[0,10];[13,20];[30,40]}"
    (Area.to_string a);
  (* Touching regions ([11,20] starts at 10+1) merge as well. *)
  let b = Area.make [ r 0 10; r 11 20 ] in
  Alcotest.(check string) "adjacent merge" "{[0,20]}" (Area.to_string b);
  Alcotest.(check int) "count" 3 (Area.region_count a);
  Alcotest.(check bool) "not contiguous" false (Area.is_contiguous a)

let test_area_extent_width () =
  let a = Area.make [ r 0 10; r 20 30 ] in
  Alcotest.(check string) "extent" "[0,30]" (Region.to_string (Area.extent a));
  Alcotest.(check int64) "total width" 20L (Area.total_width a)

let test_area_contains_multi () =
  let a1 = Area.make [ r 0 10; r 20 30 ] in
  (* Each candidate region inside some region of a1. *)
  Alcotest.(check bool) "split containment" true
    (Area.contains a1 (Area.make [ r 2 5; r 22 28 ]));
  (* A region bridging the gap is not contained. *)
  Alcotest.(check bool) "bridging region" false
    (Area.contains a1 (Area.make [ r 5 25 ]));
  (* One region out of two escapes. *)
  Alcotest.(check bool) "partial escape" false
    (Area.contains a1 (Area.make [ r 2 5; r 15 18 ]))

let test_area_overlaps_multi () =
  let a1 = Area.make [ r 0 10; r 20 30 ] in
  Alcotest.(check bool) "hits second region" true
    (Area.overlaps a1 (Area.make [ r 15 21 ]));
  Alcotest.(check bool) "falls in the gap" false
    (Area.overlaps a1 (Area.make [ r 12 18 ]));
  Alcotest.(check bool) "extent would claim overlap" true
    (Region.overlaps (Area.extent a1) (Region.make_int 12 18))

let qcheck_area_canonical_sorted_disjoint =
  QCheck.Test.make ~name:"canonical areas: sorted, disjoint, gapped"
    ~count:1000 area_gen (fun a ->
      let rec ok = function
        | [] | [ _ ] -> true
        | x :: (y :: _ as rest) ->
            Int64.compare
              (Int64.add (Region.end_pos x) 1L)
              (Region.start_pos y)
            < 0
            && ok rest
      in
      ok (Area.regions a))

let qcheck_area_make_idempotent =
  QCheck.Test.make ~name:"Area.make is idempotent" ~count:1000 area_gen
    (fun a -> Area.equal a (Area.make (Area.regions a)))

let qcheck_area_contains_implies_overlaps =
  QCheck.Test.make ~name:"contains implies overlaps" ~count:2000
    QCheck.(pair area_gen area_gen)
    (fun (a1, a2) -> (not (Area.contains a1 a2)) || Area.overlaps a1 a2)

let qcheck_area_contains_transitive =
  QCheck.Test.make ~name:"containment is transitive" ~count:2000
    QCheck.(triple area_gen area_gen area_gen)
    (fun (a, b, c) ->
      (not (Area.contains a b && Area.contains b c)) || Area.contains a c)

let qcheck_area_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:2000
    QCheck.(pair area_gen area_gen)
    (fun (a1, a2) -> Area.overlaps a1 a2 = Area.overlaps a2 a1)

let () =
  Alcotest.run "interval"
    [
      ( "region",
        [
          Alcotest.test_case "make invalid" `Quick test_region_make_invalid;
          Alcotest.test_case "point region" `Quick test_region_point;
          Alcotest.test_case "contains" `Quick test_region_contains;
          Alcotest.test_case "overlap touching" `Quick
            test_region_overlaps_touching;
          Alcotest.test_case "intersection/hull" `Quick
            test_region_intersection_hull;
          Alcotest.test_case "index order" `Quick test_region_index_order;
        ] );
      ( "allen",
        [
          Alcotest.test_case "examples" `Quick test_allen_examples;
          Alcotest.test_case "count" `Quick test_allen_count;
          Alcotest.test_case "exhaustive grid" `Quick test_allen_exhaustive_grid;
          QCheck_alcotest.to_alcotest qcheck_allen_inverse;
          QCheck_alcotest.to_alcotest qcheck_allen_overlap_collapse;
          QCheck_alcotest.to_alcotest qcheck_allen_containment_collapse;
        ] );
      ( "area",
        [
          Alcotest.test_case "empty" `Quick test_area_empty;
          Alcotest.test_case "normalisation" `Quick test_area_normalisation;
          Alcotest.test_case "extent/width" `Quick test_area_extent_width;
          Alcotest.test_case "multi-region containment" `Quick
            test_area_contains_multi;
          Alcotest.test_case "multi-region overlap" `Quick
            test_area_overlaps_multi;
          QCheck_alcotest.to_alcotest qcheck_area_canonical_sorted_disjoint;
          QCheck_alcotest.to_alcotest qcheck_area_make_idempotent;
          QCheck_alcotest.to_alcotest qcheck_area_contains_implies_overlaps;
          QCheck_alcotest.to_alcotest qcheck_area_contains_transitive;
          QCheck_alcotest.to_alcotest qcheck_area_overlap_symmetric;
        ] );
    ]
